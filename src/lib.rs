#![warn(missing_docs)]

//! # gpu-abstractions — facade crate
//!
//! Reproduction of *"Harnessing the Power of GPUs without Losing Abstractions in
//! SaC and ArrayOL: A Comparative Study"* (Guo et al., HIPS 2011).
//!
//! This crate re-exports the workspace's public API so examples and downstream
//! users can depend on a single crate:
//!
//! * [`mdarray`] — multidimensional array substrate,
//! * [`arrayol`] — the ArrayOL specification language (tilers, task graphs),
//! * [`sac_lang`] — the SaC front end and high-level optimiser (WITH-loop folding),
//! * [`simgpu`] — the deterministic GPU simulator and profiler,
//! * [`sac_cuda`] — the SaC → CUDA backend,
//! * [`gaspard`] — the MDE/MARTE → OpenCL chain,
//! * [`downscaler`] — the H.263 downscaler case study,
//! * [`scenarios`] — the multi-pipeline workload registry (each entry
//!   expressed on both routes, bit-checked cross-route, servable),
//! * [`serve`] — the fleet batch-serving front-end (sharding, admission
//!   control, tenant fairness, load shedding).
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for the
//! full system inventory.

pub use arrayol;
pub use downscaler;
pub use gaspard;
pub use mdarray;
pub use sac_cuda;
pub use sac_lang;
pub use scenarios;
pub use serve;
pub use simgpu;
