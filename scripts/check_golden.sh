#!/usr/bin/env bash
# Golden-numbers smoke check: rerun the eight headline ablations on the
# hd1080 scenario and diff the machine-readable records byte-for-byte
# against the checked-in expected values.
#
# The simulator is deterministic and the JSON writer renders floats via
# Rust's shortest-roundtrip formatting, so an exact diff is the right
# check — any drift in the published numbers (streams 3.611s -> 2.001s,
# memory 3.612s/2.781s pooled, fusion 2.246s / 3 launches, planopt
# 1.408s -> 1.399s fused, serve 3.96x frames/s at 4 devices, tune's
# 1.399s autotuned headline) fails loudly. The serve ablation's replay
# templates and event loop are pure IEEE arithmetic (no libm), so its
# numbers golden just as exactly, and the autotuner's search is a
# deterministic sweep with tie-keeps-first, so its table goldens too.
#
# Usage: scripts/check_golden.sh [--bless]
#   --bless  regenerate expected/*.json instead of diffing

set -euo pipefail
cd "$(dirname "$0")/.."

bless=0
if [[ "${1:-}" == "--bless" ]]; then
  bless=1
fi

cargo build --release -q -p bench

out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT

status=0
for exp in streams memory fusion fusion-parity planopt serve scenarios tune; do
  record="${exp//-/_}_hd1080.json"
  ./target/release/reproduce "$exp" --scenario hd1080 --json "$out_dir/$record" \
    > /dev/null
  if [[ $bless -eq 1 ]]; then
    cp "$out_dir/$record" "expected/$record"
    echo "blessed expected/$record"
  elif diff -u "expected/$record" "$out_dir/$record"; then
    echo "ok: $exp matches expected/$record"
  else
    echo "FAIL: $exp diverged from expected/$record" >&2
    status=1
  fi
done
exit $status
