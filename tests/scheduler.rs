//! The shared launch-plan scheduler against its legacy entry points.
//!
//! Both routes' public executors (`run_frames_pipelined`,
//! `run_opencl_frames`) are thin wrappers over
//! `simgpu::schedule::BatchScheduler`; these tests pin that equivalence
//! down differentially — same outputs, same simulated clock, same per-engine
//! busy time — and check the degradation ladder converges to a bit-identical
//! result from any starting lane count.

use gpu_abstractions::{downscaler, gaspard, sac_cuda, simgpu};

use downscaler::frames::FrameGenerator;
use downscaler::pipelines::{build_gaspard, build_sac};
use downscaler::sac_src::{Part, Variant};
use downscaler::Scenario;
use proptest::prelude::*;
use simgpu::device::{Device, DeviceConfig};
use simgpu::profiler::OpClass;
use simgpu::schedule::{BatchScheduler, ExecOptions};
use simgpu::Calibration;

const CLASSES: [OpClass; 4] = [OpClass::H2D, OpClass::Kernel, OpClass::D2H, OpClass::Host];

fn assert_same_timeline(a: &Device, b: &Device, what: &str) {
    assert_eq!(a.now_us(), b.now_us(), "{what}: simulated clocks differ");
    for class in CLASSES {
        assert_eq!(
            a.profiler.engine_busy_us(class),
            b.profiler.engine_busy_us(class),
            "{what}: {class:?} engine busy time differs"
        );
    }
}

/// An HD-frame scenario through the legacy SaC wrapper and through a
/// hand-lowered plan on the scheduler: identical outputs, identical clock,
/// identical per-engine busy totals.
#[test]
fn sac_wrapper_is_the_scheduler_differentially() {
    let mut s = Scenario::hd1080();
    s.frames = 2;
    let route = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 0x5CED);
    let frames: Vec<_> = (0..s.frames).map(|f| vec![gen.frame_rank3(f)]).collect();
    let opts = ExecOptions { streams: 2, channel_chunks: s.channels, ..Default::default() };

    let mut legacy_dev = Device::gtx480();
    let (legacy_outs, legacy_stats) =
        sac_cuda::exec::run_frames_pipelined(&route.cuda, &mut legacy_dev, &frames, opts).unwrap();

    let mut direct_dev = Device::gtx480();
    let plan = sac_cuda::exec::lower_plan(&route.cuda, opts.channel_chunks).unwrap();
    let (direct_outs, direct_stats) =
        BatchScheduler::new(&plan).run(&mut direct_dev, &frames, &opts).unwrap();

    let direct_outs: Vec<_> =
        direct_outs.into_iter().map(|mut frame| frame.pop().unwrap()).collect();
    assert_eq!(legacy_outs, direct_outs);
    assert_eq!(legacy_stats, direct_stats);
    assert_same_timeline(&legacy_dev, &direct_dev, "SaC");
}

/// Same differential check for the GASPARD2 route.
#[test]
fn gaspard_wrapper_is_the_scheduler_differentially() {
    let mut s = Scenario::hd1080();
    s.frames = 2;
    let route = build_gaspard(&s).unwrap();
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 0x5CED);
    let frames: Vec<_> = (0..s.frames).map(|f| gen.frame_channels(f)).collect();
    let opts = ExecOptions { streams: 2, ..Default::default() };

    let mut legacy_dev = Device::gtx480();
    let legacy_outs =
        gaspard::run_opencl_frames(&route.opencl, &mut legacy_dev, &frames, opts).unwrap();

    let mut direct_dev = Device::gtx480();
    let plan = gaspard::lower_plan(&route.opencl);
    let (direct_outs, _) = BatchScheduler::new(&plan).run(&mut direct_dev, &frames, &opts).unwrap();

    assert_eq!(legacy_outs, direct_outs);
    assert_same_timeline(&legacy_dev, &direct_dev, "Gaspard");
}

/// When a plan requests a chunk count that does not divide the array length
/// the device falls back to a single transfer; the run stats must report the
/// one transfer actually issued, not the requested chunk count.
#[test]
fn chunk_fallback_reports_actual_transfer_counts() {
    use simgpu::kir::{BinOp, KernelBuilder, KernelFlavor, Special};
    use simgpu::schedule::{ArrayDecl, LaunchPlan, PlanKernel, PlanStep};
    use simgpu::LaunchConfig;

    let n = 10usize; // not divisible by the requested 3 chunks
    let mut b = KernelBuilder::new("dbl", KernelFlavor::Cuda);
    let x = b.buffer_param("x", true);
    let gid = b.special(Special::GlobalIdX);
    let v = b.load(x, gid);
    let two = b.constant(2);
    let w = b.bin(BinOp::Mul, v, two);
    b.store(x, gid, w);
    let kernel = b.finish();

    let plan = LaunchPlan {
        arrays: vec![ArrayDecl { name: "x".into(), shape: vec![n] }],
        inputs: vec![0],
        outputs: vec![0],
        kernels: vec![PlanKernel::new(&kernel, LaunchConfig::cover_1d(n, n as u32), vec![0])],
        host_ops: Vec::new(),
        steps: vec![
            PlanStep::Upload { array: 0, chunks: 3 },
            PlanStep::Launch { kernel: 0 },
            PlanStep::Download { array: 0, chunks: 3 },
        ],
        prologue: Vec::new(),
        invariant: Vec::new(),
        batches: Vec::new(),
        carries: Vec::new(),
        lane_label: "stream lanes",
    };

    let frames = vec![vec![mdarray::NdArray::from_fn([n], |ix| ix[0] as i64)]; 2];
    let mut dev = Device::gtx480();
    let (_, stats) =
        BatchScheduler::new(&plan).run(&mut dev, &frames, &ExecOptions::default()).unwrap();

    // Per frame: one upload and one download actually issued, not three.
    assert_eq!(stats.h2d, 2);
    assert_eq!(stats.d2h, 2);
    assert!(dev.profiler.notes().any(|n| n.contains("fell back")), "fallback must be noted");

    // The issued count matches the profiler's own call count.
    let h2d_calls: u64 =
        dev.profiler.records().filter(|r| r.name.starts_with("memcpyHtoD")).map(|r| r.calls).sum();
    assert_eq!(stats.h2d as u64, h2d_calls);
}

/// Array length used by the random-plan property; divisible by every chunk
/// count the generator requests, so no fallback noise in the comparison.
const PROP_N: usize = 12;

/// One chain-link kernel for the random-plan property: `y = 2*x + add`,
/// with a distinct `add` per link so a misrouted transfer changes outputs.
fn prop_kernel(name: String, add: i64) -> simgpu::kir::Kernel {
    use simgpu::kir::{BinOp, KernelBuilder, KernelFlavor, Special};
    let mut b = KernelBuilder::new(name, KernelFlavor::Cuda);
    let x = b.buffer_param("x", false);
    let y = b.buffer_param("y", true);
    let gid = b.special(Special::GlobalIdX);
    let v = b.load(x, gid);
    let two = b.constant(2);
    let w = b.bin(BinOp::Mul, v, two);
    let w = b.bin_imm(BinOp::Add, w, add);
    b.store(y, gid, w);
    b.finish()
}

/// Build a valid naive-placement plan from the property's parameters:
/// independent kernel chains, per-kernel host round trips, chains
/// interleaved by a seeded shuffle. Deterministic in its arguments, so the
/// baseline and each optimized run rebuild the identical plan (LaunchPlan
/// is not Clone).
fn prop_plan<'a>(
    kernels: &'a [simgpu::kir::Kernel],
    chains: &[usize],
    chunks: usize,
    order_seed: u64,
) -> simgpu::schedule::LaunchPlan<'a> {
    use simgpu::schedule::{ArrayDecl, LaunchPlan, PlanKernel, PlanStep};
    use simgpu::LaunchConfig;
    let mut arrays = Vec::new();
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut plan_kernels = Vec::new();
    let mut queues: Vec<std::collections::VecDeque<PlanStep>> = Vec::new();
    let mut kid = 0;
    for (c, &len) in chains.iter().enumerate() {
        let base = arrays.len();
        for i in 0..=len {
            arrays.push(ArrayDecl { name: format!("a{c}_{i}"), shape: vec![PROP_N] });
        }
        inputs.push(base);
        outputs.push(base + len);
        let mut steps = std::collections::VecDeque::new();
        steps.push_back(PlanStep::Upload { array: base, chunks });
        for i in 0..len {
            let k = plan_kernels.len();
            plan_kernels.push(PlanKernel::new(
                &kernels[kid],
                LaunchConfig::cover_1d(PROP_N, PROP_N as u32),
                vec![base + i, base + i + 1],
            ));
            kid += 1;
            steps.push_back(PlanStep::Alloc { array: base + i + 1 });
            steps.push_back(PlanStep::Launch { kernel: k });
            steps.push_back(PlanStep::Download { array: base + i + 1, chunks });
            if i + 1 < len {
                steps.push_back(PlanStep::Upload { array: base + i + 1, chunks });
            }
        }
        queues.push(steps);
    }
    // Interleave the chains with a seeded LCG; intra-chain order is kept, so
    // the merge preserves validity.
    let mut steps = Vec::new();
    let mut state = order_seed | 1;
    while queues.iter().any(|q| !q.is_empty()) {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let live: Vec<usize> = (0..queues.len()).filter(|&i| !queues[i].is_empty()).collect();
        let pick = live[(state >> 33) as usize % live.len()];
        steps.push(queues[pick].pop_front().unwrap());
    }
    LaunchPlan {
        arrays,
        inputs,
        outputs,
        kernels: plan_kernels,
        host_ops: Vec::new(),
        steps,
        prologue: Vec::new(),
        invariant: Vec::new(),
        batches: Vec::new(),
        carries: Vec::new(),
        lane_label: "stream lanes",
    }
}

proptest! {
    /// Every planopt pass subset, applied to a random valid naive-placement
    /// plan, preserves frame outputs bit-identically against the
    /// unoptimized plan — under 1 and 2 queues, on a capacity-constrained
    /// device with the degradation ladder enabled.
    #[test]
    fn planopt_passes_preserve_outputs_on_random_plans(
        chains in proptest::collection::vec(1usize..=3, 1..=3),
        chunks in 1usize..=4,
        order_seed in any::<u64>(),
    ) {
        let kernels: Vec<_> = chains
            .iter()
            .enumerate()
            .flat_map(|(c, &len)| {
                (0..len).map(move |i| prop_kernel(format!("k{c}_{i}"), (c * 7 + i + 1) as i64))
            })
            .collect();
        let frames: Vec<Vec<mdarray::NdArray<i64>>> = (0..3)
            .map(|f| {
                (0..chains.len())
                    .map(|c| {
                        mdarray::NdArray::from_fn([PROP_N], |ix| {
                            (f * 31 + c * 13 + ix[0]) as i64
                        })
                    })
                    .collect()
            })
            .collect();

        let plan = prop_plan(&kernels, &chains, chunks, order_seed);
        plan.validate().expect("generated plan must be valid");
        let mut base_dev = Device::gtx480();
        let (base_outs, _) = BatchScheduler::new(&plan)
            .run(&mut base_dev, &frames, &ExecOptions::default())
            .unwrap();
        let capacity = base_dev.peak_allocated_bytes() * 2;

        for mask in 1u32..16 {
            let level = simgpu::PlanOptLevel {
                residency: mask & 1 != 0,
                dead_transfers: mask & 2 != 0,
                reorder: mask & 4 != 0,
                coalesce: mask & 8 != 0,
                ..simgpu::PlanOptLevel::OFF
            };
            for streams in [1usize, 2] {
                let mut plan = prop_plan(&kernels, &chains, chunks, order_seed);
                simgpu::optimize(&mut plan, level).unwrap();
                let opts = ExecOptions { streams, degrade_on_oom: true, ..Default::default() };
                let mut dev = Device::new(DeviceConfig::toy(capacity), Calibration::gtx480());
                let (outs, _) = BatchScheduler::new(&plan).run(&mut dev, &frames, &opts).unwrap();
                prop_assert_eq!(
                    &outs, &base_outs,
                    "outputs diverged under mask {:#06b}, {} queue(s)", mask, streams
                );
            }
        }
    }
}

/// Baselines for the degradation property, computed once: the routes, the
/// frame batch, the unconstrained 1-lane outputs, and the peak footprint
/// that sizes the constrained device.
struct DegradationFixture {
    s: Scenario,
    sac: downscaler::pipelines::SacRoute,
    gasp: downscaler::pipelines::GaspardRoute,
    sac_frames: Vec<Vec<mdarray::NdArray<i64>>>,
    gasp_frames: Vec<Vec<mdarray::NdArray<i64>>>,
    sac_base: Vec<mdarray::NdArray<i64>>,
    gasp_base: Vec<Vec<mdarray::NdArray<i64>>>,
    sac_capacity: usize,
    gasp_capacity: usize,
}

fn degradation_fixture() -> &'static DegradationFixture {
    static FIXTURE: std::sync::OnceLock<DegradationFixture> = std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut s = Scenario::tiny();
        s.frames = 4;
        let sac = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();
        let gasp = build_gaspard(&s).unwrap();
        let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 0xACED);
        let sac_frames: Vec<_> = (0..s.frames).map(|f| vec![gen.frame_rank3(f)]).collect();
        let gasp_frames: Vec<_> = (0..s.frames).map(|f| gen.frame_channels(f)).collect();

        // Unconstrained 1-lane baseline; its peak sizes the constrained device.
        let base_opts = ExecOptions { channel_chunks: s.channels, ..Default::default() };
        let mut base_dev = Device::gtx480();
        let (sac_base, _) =
            sac_cuda::exec::run_frames_pipelined(&sac.cuda, &mut base_dev, &sac_frames, base_opts)
                .unwrap();
        let sac_capacity = base_dev.peak_allocated_bytes() * 2;
        let mut base_dev = Device::gtx480();
        let gasp_base = gaspard::run_opencl_frames(
            &gasp.opencl,
            &mut base_dev,
            &gasp_frames,
            ExecOptions::default(),
        )
        .unwrap();
        let gasp_capacity = base_dev.peak_allocated_bytes() * 2;
        DegradationFixture {
            s,
            sac,
            gasp,
            sac_frames,
            gasp_frames,
            sac_base,
            gasp_base,
            sac_capacity,
            gasp_capacity,
        }
    })
}

proptest! {
    /// On a device sized for about two lanes, any requested lane count in
    /// 1..=8 with the degradation ladder enabled converges to a completed
    /// run whose outputs are bit-identical to the unconstrained 1-lane
    /// baseline — on both routes.
    #[test]
    fn degradation_converges_to_bit_identical_outputs(lanes in 1usize..9) {
        let fx = degradation_fixture();
        let opts = ExecOptions {
            streams: lanes,
            degrade_on_oom: true,
            channel_chunks: fx.s.channels,
            ..Default::default()
        };
        let mut dev = Device::new(DeviceConfig::toy(fx.sac_capacity), Calibration::gtx480());
        let (sac_outs, _) =
            sac_cuda::exec::run_frames_pipelined(&fx.sac.cuda, &mut dev, &fx.sac_frames, opts)
                .unwrap();
        prop_assert_eq!(&sac_outs, &fx.sac_base, "SaC outputs diverged at {} lanes", lanes);

        let mut dev = Device::new(DeviceConfig::toy(fx.gasp_capacity), Calibration::gtx480());
        let gasp_outs = gaspard::run_opencl_frames(
            &fx.gasp.opencl, &mut dev, &fx.gasp_frames,
            ExecOptions { channel_chunks: 0, ..opts },
        ).unwrap();
        prop_assert_eq!(&gasp_outs, &fx.gasp_base, "Gaspard outputs diverged at {} lanes", lanes);
    }
}
