//! The shared launch-plan scheduler against its legacy entry points.
//!
//! Both routes' public executors (`run_frames_pipelined`,
//! `run_opencl_frames`) are thin wrappers over
//! `simgpu::schedule::BatchScheduler`; these tests pin that equivalence
//! down differentially — same outputs, same simulated clock, same per-engine
//! busy time — and check the degradation ladder converges to a bit-identical
//! result from any starting lane count.

use gpu_abstractions::{downscaler, gaspard, sac_cuda, simgpu};

use downscaler::frames::FrameGenerator;
use downscaler::pipelines::{build_gaspard, build_sac};
use downscaler::sac_src::{Part, Variant};
use downscaler::Scenario;
use proptest::prelude::*;
use simgpu::device::{Device, DeviceConfig};
use simgpu::profiler::OpClass;
use simgpu::schedule::{BatchScheduler, ExecOptions};
use simgpu::Calibration;

const CLASSES: [OpClass; 4] = [OpClass::H2D, OpClass::Kernel, OpClass::D2H, OpClass::Host];

fn assert_same_timeline(a: &Device, b: &Device, what: &str) {
    assert_eq!(a.now_us(), b.now_us(), "{what}: simulated clocks differ");
    for class in CLASSES {
        assert_eq!(
            a.profiler.engine_busy_us(class),
            b.profiler.engine_busy_us(class),
            "{what}: {class:?} engine busy time differs"
        );
    }
}

/// An HD-frame scenario through the legacy SaC wrapper and through a
/// hand-lowered plan on the scheduler: identical outputs, identical clock,
/// identical per-engine busy totals.
#[test]
fn sac_wrapper_is_the_scheduler_differentially() {
    let mut s = Scenario::hd1080();
    s.frames = 2;
    let route = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 0x5CED);
    let frames: Vec<_> = (0..s.frames).map(|f| vec![gen.frame_rank3(f)]).collect();
    let opts = ExecOptions { streams: 2, channel_chunks: s.channels, ..Default::default() };

    let mut legacy_dev = Device::gtx480();
    let (legacy_outs, legacy_stats) =
        sac_cuda::exec::run_frames_pipelined(&route.cuda, &mut legacy_dev, &frames, opts).unwrap();

    let mut direct_dev = Device::gtx480();
    let plan = sac_cuda::exec::lower_plan(&route.cuda, opts.channel_chunks).unwrap();
    let (direct_outs, direct_stats) =
        BatchScheduler::new(&plan).run(&mut direct_dev, &frames, &opts).unwrap();

    let direct_outs: Vec<_> =
        direct_outs.into_iter().map(|mut frame| frame.pop().unwrap()).collect();
    assert_eq!(legacy_outs, direct_outs);
    assert_eq!(legacy_stats, direct_stats);
    assert_same_timeline(&legacy_dev, &direct_dev, "SaC");
}

/// Same differential check for the GASPARD2 route.
#[test]
fn gaspard_wrapper_is_the_scheduler_differentially() {
    let mut s = Scenario::hd1080();
    s.frames = 2;
    let route = build_gaspard(&s).unwrap();
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 0x5CED);
    let frames: Vec<_> = (0..s.frames).map(|f| gen.frame_channels(f)).collect();
    let opts = ExecOptions { streams: 2, ..Default::default() };

    let mut legacy_dev = Device::gtx480();
    let legacy_outs =
        gaspard::run_opencl_frames(&route.opencl, &mut legacy_dev, &frames, opts).unwrap();

    let mut direct_dev = Device::gtx480();
    let plan = gaspard::lower_plan(&route.opencl);
    let (direct_outs, _) = BatchScheduler::new(&plan).run(&mut direct_dev, &frames, &opts).unwrap();

    assert_eq!(legacy_outs, direct_outs);
    assert_same_timeline(&legacy_dev, &direct_dev, "Gaspard");
}

/// The deprecated per-route option structs are aliases of the one unified
/// type; code written against any of the old names keeps compiling for one
/// release and produces the same configuration.
#[test]
#[allow(deprecated)]
fn deprecated_option_aliases_resolve_to_the_unified_type() {
    let sac: sac_cuda::PipelineOptions = ExecOptions { streams: 3, ..Default::default() };
    let gasp: gaspard::OpenClPipelineOptions = sac;
    let batch: downscaler::pipelines::BatchOptions = gasp;
    let unified: ExecOptions = batch;
    assert_eq!(unified.streams, 3);
    assert_eq!(unified, ExecOptions { streams: 3, ..Default::default() });
}

/// Baselines for the degradation property, computed once: the routes, the
/// frame batch, the unconstrained 1-lane outputs, and the peak footprint
/// that sizes the constrained device.
struct DegradationFixture {
    s: Scenario,
    sac: downscaler::pipelines::SacRoute,
    gasp: downscaler::pipelines::GaspardRoute,
    sac_frames: Vec<Vec<mdarray::NdArray<i64>>>,
    gasp_frames: Vec<Vec<mdarray::NdArray<i64>>>,
    sac_base: Vec<mdarray::NdArray<i64>>,
    gasp_base: Vec<Vec<mdarray::NdArray<i64>>>,
    sac_capacity: usize,
    gasp_capacity: usize,
}

fn degradation_fixture() -> &'static DegradationFixture {
    static FIXTURE: std::sync::OnceLock<DegradationFixture> = std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut s = Scenario::tiny();
        s.frames = 4;
        let sac = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();
        let gasp = build_gaspard(&s).unwrap();
        let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 0xACED);
        let sac_frames: Vec<_> = (0..s.frames).map(|f| vec![gen.frame_rank3(f)]).collect();
        let gasp_frames: Vec<_> = (0..s.frames).map(|f| gen.frame_channels(f)).collect();

        // Unconstrained 1-lane baseline; its peak sizes the constrained device.
        let base_opts = ExecOptions { channel_chunks: s.channels, ..Default::default() };
        let mut base_dev = Device::gtx480();
        let (sac_base, _) =
            sac_cuda::exec::run_frames_pipelined(&sac.cuda, &mut base_dev, &sac_frames, base_opts)
                .unwrap();
        let sac_capacity = base_dev.peak_allocated_bytes() * 2;
        let mut base_dev = Device::gtx480();
        let gasp_base = gaspard::run_opencl_frames(
            &gasp.opencl,
            &mut base_dev,
            &gasp_frames,
            ExecOptions::default(),
        )
        .unwrap();
        let gasp_capacity = base_dev.peak_allocated_bytes() * 2;
        DegradationFixture {
            s,
            sac,
            gasp,
            sac_frames,
            gasp_frames,
            sac_base,
            gasp_base,
            sac_capacity,
            gasp_capacity,
        }
    })
}

proptest! {
    /// On a device sized for about two lanes, any requested lane count in
    /// 1..=8 with the degradation ladder enabled converges to a completed
    /// run whose outputs are bit-identical to the unconstrained 1-lane
    /// baseline — on both routes.
    #[test]
    fn degradation_converges_to_bit_identical_outputs(lanes in 1usize..9) {
        let fx = degradation_fixture();
        let opts = ExecOptions {
            streams: lanes,
            degrade_on_oom: true,
            channel_chunks: fx.s.channels,
            ..Default::default()
        };
        let mut dev = Device::new(DeviceConfig::toy(fx.sac_capacity), Calibration::gtx480());
        let (sac_outs, _) =
            sac_cuda::exec::run_frames_pipelined(&fx.sac.cuda, &mut dev, &fx.sac_frames, opts)
                .unwrap();
        prop_assert_eq!(&sac_outs, &fx.sac_base, "SaC outputs diverged at {} lanes", lanes);

        let mut dev = Device::new(DeviceConfig::toy(fx.gasp_capacity), Calibration::gtx480());
        let gasp_outs = gaspard::run_opencl_frames(
            &fx.gasp.opencl, &mut dev, &fx.gasp_frames,
            ExecOptions { channel_chunks: 0, ..opts },
        ).unwrap();
        prop_assert_eq!(&gasp_outs, &fx.gasp_base, "Gaspard outputs diverged at {} lanes", lanes);
    }
}
