//! Properties of the simulated async-stream timeline and the pipelined
//! frame executors.
//!
//! The invariants under test:
//! * an overlapped schedule's makespan is bounded below by the busiest
//!   engine and above by the fully serialized sum,
//! * one stream *is* the synchronous API — same results, same simulated
//!   clock, same profile, bit for bit,
//! * double buffering strictly beats the serialized baseline on both
//!   compilation routes while leaving outputs bit-identical to the golden
//!   CPU reference.

use gpu_abstractions::{downscaler, gaspard, simgpu};

use downscaler::frames::FrameGenerator;
use downscaler::pipelines::{
    build_gaspard, build_sac, reference_downscale, run_gaspard_batch, run_sac_batch, ExecOptions,
};
use downscaler::sac_src::{Part, Variant};
use downscaler::Scenario;
use proptest::prelude::*;
use simgpu::device::{Device, StreamId};
use simgpu::profiler::OpClass;

const CLASSES: [OpClass; 4] = [OpClass::H2D, OpClass::Kernel, OpClass::D2H, OpClass::Host];

/// Schedule a random op sequence over `stream_count` streams; return the
/// device for inspection.
fn schedule_random(ops: &[(u8, u8, u16)], stream_count: usize) -> Device {
    let mut device = Device::gtx480();
    let mut streams = vec![StreamId::DEFAULT];
    for _ in 1..stream_count {
        streams.push(device.create_stream());
    }
    for (i, &(stream, class, dur)) in ops.iter().enumerate() {
        let class = CLASSES[class as usize % CLASSES.len()];
        let us = f64::from(dur) + 1.0;
        device
            .replay_on(&format!("op{i}"), class, us, streams[stream as usize % streams.len()])
            .unwrap();
    }
    device.synchronize();
    device
}

proptest! {
    #[test]
    fn makespan_bounded_by_serial_sum_and_busiest_engine(
        ops in proptest::collection::vec((0u8..4, 0u8..4, 0u16..2000), 1..40),
        stream_count in 1usize..5,
    ) {
        let device = schedule_random(&ops, stream_count);
        let makespan = device.now_us();
        let serial_sum: f64 = ops.iter().map(|&(_, _, d)| f64::from(d) + 1.0).sum();
        let busiest = CLASSES
            .iter()
            .map(|&c| device.profiler.engine_busy_us(c))
            .fold(0.0f64, f64::max);
        prop_assert!(makespan <= serial_sum + 1e-6, "{makespan} > {serial_sum}");
        prop_assert!(makespan >= busiest - 1e-6, "{makespan} < {busiest}");
        prop_assert!((device.profiler.makespan_us() - makespan).abs() < 1e-9);
    }

    #[test]
    fn one_stream_schedule_is_the_serial_sum(
        ops in proptest::collection::vec((0u8..4, 0u8..4, 0u16..2000), 1..40),
    ) {
        let device = schedule_random(&ops, 1);
        let serial_sum: f64 = ops.iter().map(|&(_, _, d)| f64::from(d) + 1.0).sum();
        prop_assert!((device.now_us() - serial_sum).abs() < 1e-6);
        prop_assert_eq!(device.profiler.overlap_percent(), 0.0);
    }
}

#[test]
fn one_stream_batches_reproduce_serialized_profiles_exactly() {
    let s = Scenario::tiny();
    let seed = 0xD05C;
    let sac = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();
    let gasp = build_gaspard(&s).unwrap();
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, seed);

    // The pre-stream serialized executors, one frame at a time.
    let mut sac_serial = Device::gtx480();
    for f in 0..s.frames {
        sac_cuda::exec::run_on_device_opts(
            &sac.cuda,
            &mut sac_serial,
            &[gen.frame_rank3(f)],
            sac_cuda::ExecOptions { channel_chunks: s.channels, ..Default::default() },
        )
        .unwrap();
    }
    let mut gasp_serial = Device::gtx480();
    for f in 0..s.frames {
        gaspard::run_opencl(&gasp.opencl, &mut gasp_serial, &gen.frame_channels(f)).unwrap();
    }

    // The batch executors in 1-stream mode.
    let mut sac_batch = Device::gtx480();
    run_sac_batch(
        &s,
        &sac,
        &mut sac_batch,
        seed,
        ExecOptions {
            host_ns_per_op: sac_cuda::HostCost::default().ns_per_op,
            ..Default::default()
        },
    )
    .unwrap();
    let mut gasp_batch = Device::gtx480();
    run_gaspard_batch(&s, &gasp, &mut gasp_batch, seed, ExecOptions::default()).unwrap();

    assert_eq!(sac_batch.now_us(), sac_serial.now_us());
    assert_eq!(gasp_batch.now_us(), gasp_serial.now_us());
    let serial: Vec<_> = sac_serial.profiler.records().collect();
    let batch: Vec<_> = sac_batch.profiler.records().collect();
    assert_eq!(serial, batch);
    let serial: Vec<_> = gasp_serial.profiler.records().collect();
    let batch: Vec<_> = gasp_batch.profiler.records().collect();
    assert_eq!(serial, batch);
}

#[test]
fn double_buffering_beats_sync_with_bit_identical_outputs() {
    let mut s = Scenario::tiny();
    s.frames = 8;
    let seed = 0xBEEF;
    let sac = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();
    let gasp = build_gaspard(&s).unwrap();
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, seed);

    let mut makespans = Vec::new();
    for streams in [1usize, 2] {
        let opts = ExecOptions { streams, ..Default::default() };
        let mut sac_dev = Device::gtx480();
        let sac_outs = run_sac_batch(&s, &sac, &mut sac_dev, seed, opts).unwrap();
        let mut gasp_dev = Device::gtx480();
        let gasp_outs = run_gaspard_batch(&s, &gasp, &mut gasp_dev, seed, opts).unwrap();

        // Outputs stay bit-identical to the golden CPU reference at every
        // stream count.
        for f in 0..s.frames {
            let expect = reference_downscale(&s, &gen.frame_rank3(f));
            assert_eq!(sac_outs[f], expect, "SaC frame {f} at {streams} streams");
            assert_eq!(
                FrameGenerator::stack(&gasp_outs[f]),
                expect,
                "Gaspard frame {f} at {streams} streams"
            );
        }
        makespans.push((sac_dev.now_us(), gasp_dev.now_us()));
    }
    let (sync, db) = (makespans[0], makespans[1]);
    assert!(db.0 < sync.0, "SaC: {} !< {}", db.0, sync.0);
    assert!(db.1 < sync.1, "Gaspard: {} !< {}", db.1, sync.1);
}
