//! The fleet-serving layer, pinned down three ways: shard determinism
//! (any device count × any policy yields bit-identical outputs), a
//! differential check that 1-device serving is exactly the direct
//! `BatchScheduler` (outputs, clock, per-engine busy time), and a
//! saturation run showing weighted fairness keeps every tenant served
//! while admission control sheds the overflow cleanly.

use gpu_abstractions::{downscaler, serve, simgpu};

use downscaler::frames::FrameGenerator;
use downscaler::pipelines::{build_gaspard, fused_gaspard_plan, reference_downscale};
use downscaler::Scenario;
use proptest::prelude::*;
use serve::{Job, JobOutcome, ServeConfig, ServeError, ShardPolicy};
use simgpu::device::Device;
use simgpu::profiler::OpClass;
use simgpu::schedule::{BatchScheduler, ExecOptions};
use simgpu::Fleet;

const CLASSES: [OpClass; 4] = [OpClass::H2D, OpClass::Kernel, OpClass::D2H, OpClass::Host];
const POLICIES: [ShardPolicy; 3] =
    [ShardPolicy::RoundRobin, ShardPolicy::LeastLoaded, ShardPolicy::StickyByTenant];

/// The tiny scenario's fused Gaspard route, its launch plan, and a batch of
/// functional single-frame jobs with known golden-model outputs.
struct Fixture {
    s: Scenario,
    route: downscaler::pipelines::GaspardRoute,
}

impl Fixture {
    fn new() -> Fixture {
        let s = Scenario::tiny();
        let route = build_gaspard(&s).unwrap();
        Fixture { s, route }
    }

    fn plan(&self) -> simgpu::LaunchPlan<'_> {
        fused_gaspard_plan(&self.route).unwrap()
    }

    /// `count` single-frame functional jobs over `tenants` tenants,
    /// arriving `gap_us` apart.
    fn jobs(&self, count: usize, tenants: usize, gap_us: f64) -> Vec<Job> {
        let gen = FrameGenerator::new(self.s.channels, self.s.rows, self.s.cols, 0xD05C);
        (0..count)
            .map(|j| {
                Job::functional(j, j % tenants, gap_us * j as f64, vec![gen.frame_channels(j)])
            })
            .collect()
    }

    /// Golden-model planes for job `j` of [`Fixture::jobs`].
    fn expected(&self, j: usize) -> Vec<mdarray::NdArray<i64>> {
        let gen = FrameGenerator::new(self.s.channels, self.s.rows, self.s.cols, 0xD05C);
        FrameGenerator::unstack(&reference_downscale(&self.s, &gen.frame_rank3(j)))
    }
}

fn cfg(policy: ShardPolicy, tenants: usize) -> ServeConfig {
    ServeConfig {
        policy,
        queue_capacity: 64,
        tenant_weights: vec![1; tenants],
        exec: ExecOptions { streams: 2, pool: true, ..Default::default() },
    }
}

fn completed_outputs(outcomes: &[JobOutcome]) -> Vec<(usize, &Vec<Vec<mdarray::NdArray<i64>>>)> {
    outcomes
        .iter()
        .enumerate()
        .filter_map(|(j, o)| match o {
            JobOutcome::Completed { outputs, .. } => Some((j, outputs)),
            JobOutcome::Shed { .. } => None,
        })
        .collect()
}

/// 1-device serving of a back-to-back burst is *exactly* K sequential
/// direct `BatchScheduler` runs: same outputs, same simulated clock, same
/// per-engine busy time, same run counters.
#[test]
fn one_device_serve_is_the_scheduler_differentially() {
    let fx = Fixture::new();
    let plan = fx.plan();
    let jobs = fx.jobs(5, 2, 0.0);
    let cfg = cfg(ShardPolicy::RoundRobin, 2);

    let mut fleet = Fleet::gtx480(1).unwrap();
    let report = serve::serve(&mut fleet, &plan, &jobs, &cfg).unwrap();
    assert_eq!(report.completed, 5);

    let mut direct = Device::gtx480();
    direct.set_pool_enabled(cfg.exec.pool);
    let mut direct_stats = simgpu::RunStats::default();
    let mut direct_outs = Vec::new();
    for job in &jobs {
        let (outs, st) =
            BatchScheduler::new(&plan).run(&mut direct, &job.frames, &cfg.exec).unwrap();
        direct_stats.accumulate(&st);
        direct_outs.push(outs);
    }

    let served = fleet.device(0);
    assert_eq!(served.now_us(), direct.now_us(), "simulated clocks differ");
    for class in CLASSES {
        assert_eq!(
            served.profiler.engine_busy_us(class),
            direct.profiler.engine_busy_us(class),
            "{class:?} engine busy time differs"
        );
    }
    assert_eq!(report.stats, direct_stats);
    for (j, outputs) in completed_outputs(&report.outcomes) {
        assert_eq!(outputs, &direct_outs[j], "job {j} outputs differ");
    }
    assert_eq!(report.makespan_us, direct.now_us());
}

/// Saturation with weighted fairness and shedding active: a 25-job burst
/// hits a 1-device fleet with queue depth 8. One job runs, eight queue,
/// sixteen are shed at the door; the dequeue order then belongs entirely
/// to the 3:1 weighted-fairness rule. No admitted tenant starves, the
/// weighted tenant's jobs finish earlier on average, and every completed
/// job's outputs still match the golden model bit for bit.
#[test]
fn saturation_sheds_without_starving_any_tenant() {
    let fx = Fixture::new();
    let plan = fx.plan();
    // 1µs arrival gaps: the whole burst lands before the first job ends.
    let jobs = fx.jobs(25, 2, 1.0);
    let mut cfg = cfg(ShardPolicy::RoundRobin, 2);
    cfg.queue_capacity = 8;
    cfg.tenant_weights = vec![3, 1];
    let mut fleet = Fleet::gtx480(1).unwrap();
    let report = serve::serve(&mut fleet, &plan, &jobs, &cfg).unwrap();

    assert_eq!(report.completed, 9, "1 running + 8 queued");
    assert_eq!(report.shed, 16);
    // The fairness rule's ratios only grow with grants, so every admitted
    // job is eventually picked: no tenant starves.
    for t in &report.tenants {
        assert!(t.completed > 0, "tenant {} starved: {report:?}", t.tenant);
    }
    // Among the queued jobs (1..=8; job 0 started unqueued), the weight-3
    // tenant's jobs complete earlier on average than the weight-1 tenant's.
    let mut mean_end = [0.0f64; 2];
    let mut count = [0usize; 2];
    for (j, o) in report.outcomes.iter().enumerate().take(9).skip(1) {
        if let JobOutcome::Completed { end_us, .. } = o {
            mean_end[jobs[j].tenant] += *end_us;
            count[jobs[j].tenant] += 1;
        }
    }
    let mean = |t: usize| mean_end[t] / count[t] as f64;
    assert!(count[0] == 4 && count[1] == 4, "queued jobs split 4/4: {count:?}");
    assert!(
        mean(0) < mean(1),
        "weight-3 tenant should finish earlier on average: {} vs {}",
        mean(0),
        mean(1)
    );
    // Shed notes landed in the merged roll-up; completed outputs are intact.
    let merged = fleet.merged_profiler();
    assert_eq!(merged.notes().filter(|n| n.starts_with("shed:")).count(), report.shed);
    for (j, outputs) in completed_outputs(&report.outcomes) {
        assert_eq!(outputs.len(), 1);
        assert_eq!(outputs[0], fx.expected(j), "job {j} corrupted");
    }
}

/// The new knobs are validated with typed errors, not panics: zero devices
/// (at fleet construction), zero queue capacity, zero tenant weight.
#[test]
fn degenerate_serving_configs_are_typed_errors() {
    let fx = Fixture::new();
    let plan = fx.plan();
    let jobs = fx.jobs(2, 2, 0.0);

    let err = Fleet::gtx480(0);
    assert!(
        matches!(&err, Err(simgpu::ScheduleError::Config(m)) if m.contains("devices")),
        "{err:?}"
    );

    let mut zero_queue = cfg(ShardPolicy::RoundRobin, 2);
    zero_queue.queue_capacity = 0;
    let mut fleet = Fleet::gtx480(1).unwrap();
    let err = serve::serve(&mut fleet, &plan, &jobs, &zero_queue);
    assert!(matches!(&err, Err(ServeError::Config(m)) if m.contains("queue_capacity")), "{err:?}");

    let mut zero_weight = cfg(ShardPolicy::LeastLoaded, 2);
    zero_weight.tenant_weights = vec![1, 0];
    let err = serve::serve(&mut fleet, &plan, &jobs, &zero_weight);
    assert!(matches!(&err, Err(ServeError::Config(m)) if m.contains("weight 0")), "{err:?}");
}

/// Every registry workload's default mix serves end to end: functional
/// two-frame jobs on a 1-device fleet complete with outputs bit-identical
/// to the entry's CPU reference. The temporal carry entry also serves on
/// a *2-device* fleet — each job is its own batch, so fleets can shard
/// carry plans that `Fleet::run_round_robin` must reject at width > 1.
#[test]
fn registry_mixes_serve_with_reference_outputs() {
    use gpu_abstractions::scenarios::{registry_small, Route};

    for w in registry_small() {
        let built = w.build().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let plan = built.plan(Route::Gaspard).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let tenants = w.mix.tenants;
        let jobs: Vec<Job> = (0..4)
            .map(|j| {
                Job::functional(
                    j,
                    j % tenants,
                    w.mix.mean_gap_us * j as f64,
                    built.frames(Route::Gaspard, 2),
                )
            })
            .collect();
        let cfg = cfg(ShardPolicy::RoundRobin, tenants);

        let widths: &[usize] = if w.temporal() { &[1, 2] } else { &[1] };
        for &devices in widths {
            let mut fleet = Fleet::gtx480(devices).unwrap();
            let report = serve::serve(&mut fleet, &plan, &jobs, &cfg).unwrap();
            assert_eq!(report.completed, jobs.len(), "{} at {devices} devices", w.name);
            for (j, outputs) in completed_outputs(&report.outcomes) {
                assert_eq!(outputs.len(), 2, "{} job {j}", w.name);
                for (f, frame_outs) in outputs.iter().enumerate() {
                    assert_eq!(
                        built.canon(frame_outs.clone()),
                        built.reference(f),
                        "{} job {j} frame {f} at {devices} devices",
                        w.name
                    );
                }
            }
        }
    }
}

proptest! {
    /// Any fleet width x any sharding policy x any arrival spacing serves
    /// bit-identical job outputs: sharding and queueing decide *when and
    /// where* a frame is computed, never *what* it computes.
    #[test]
    fn any_width_and_policy_serve_bit_identical_outputs(
        devices in 1usize..=5,
        policy_ix in 0usize..3,
        jobs_n in 2usize..=8,
        gap_ix in 0usize..3,
    ) {
        let fx = Fixture::new();
        let plan = fx.plan();
        let gap_us = [0.0, 40.0, 4000.0][gap_ix];
        let jobs = fx.jobs(jobs_n, 2, gap_us);
        let cfg = cfg(POLICIES[policy_ix], 2);

        let mut fleet = Fleet::gtx480(devices).unwrap();
        let report = serve::serve(&mut fleet, &plan, &jobs, &cfg).unwrap();
        prop_assert_eq!(report.completed, jobs_n, "queue depth 64 must not shed");
        for (j, outputs) in completed_outputs(&report.outcomes) {
            prop_assert_eq!(outputs.len(), 1, "job {} frame count", j);
            prop_assert_eq!(&outputs[0], &fx.expected(j), "job {} diverged", j);
        }
    }
}
