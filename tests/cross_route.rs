//! Cross-crate integration: both compilation routes, the interpreter, the
//! flat evaluator and the reference filters must agree bit-exactly on the
//! same video frames — the property underlying the paper's entire comparison.

use downscaler::frames::{FrameGenerator, FrameSink};
use downscaler::pipelines::{build_gaspard, build_sac, reference_downscale};
use downscaler::sac_src::{program_src, Part, Variant};
use downscaler::Scenario;
use sac_cuda::exec::{run_on_device_opts, ExecOptions};
use sac_lang::value::Value;
use sac_lang::Interp;
use simgpu::device::Device;

#[test]
fn five_implementations_one_result() {
    let s = Scenario::tiny();
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 77);
    let planes = gen.frame_channels(0);
    let frame = FrameGenerator::stack(&planes);

    // 1. Golden CPU filters.
    let expect = reference_downscale(&s, &frame);

    // 2. The SaC AST interpreter on the non-generic source.
    let src = program_src(&s, Variant::NonGeneric, Part::Full);
    let prog = sac_lang::parse_program(&src).unwrap();
    let mut interp = Interp::new(&prog);
    let got = interp.call("main", vec![Value::Arr(frame.clone())]).unwrap();
    assert_eq!(got.as_array().unwrap(), &expect, "AST interpreter");

    // 3. The optimised flat program, evaluated sequentially.
    let route = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();
    let flat_out = route.flat.run(std::slice::from_ref(&frame), &mut 0).unwrap();
    assert_eq!(flat_out, expect, "flat evaluator after WLF");

    // 4. The CUDA route on the simulated device.
    let mut device = Device::gtx480();
    let (cuda_out, _) = run_on_device_opts(
        &route.cuda,
        &mut device,
        std::slice::from_ref(&frame),
        ExecOptions { channel_chunks: s.channels, ..Default::default() },
    )
    .unwrap();
    assert_eq!(cuda_out, expect, "SaC -> CUDA route");

    // 5. The GASPARD2 OpenCL route.
    let gasp = build_gaspard(&s).unwrap();
    let mut device2 = Device::gtx480();
    let outs = gaspard::run_opencl(&gasp.opencl, &mut device2, &planes).unwrap();
    assert_eq!(FrameGenerator::stack(&outs), expect, "GASPARD2 -> OpenCL route");
}

#[test]
fn generic_variant_agrees_end_to_end() {
    let s = Scenario::tiny();
    let frame = FrameGenerator::new(s.channels, s.rows, s.cols, 5).frame_rank3(1);
    let expect = reference_downscale(&s, &frame);

    let route = build_sac(&s, Variant::Generic, Part::Full, &Default::default()).unwrap();
    assert!(route.cuda.host_steps_per_run() > 0, "generic route must fall back to the host");
    let mut device = Device::gtx480();
    let (out, stats) = run_on_device_opts(
        &route.cuda,
        &mut device,
        std::slice::from_ref(&frame),
        ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(out, expect);
    assert!(stats.host_ops > 0);
    // Also sequentially.
    assert_eq!(route.flat.run(&[frame], &mut 0).unwrap(), expect);
}

#[test]
fn multi_frame_stream_is_deterministic() {
    let s = Scenario::tiny();
    let route = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 9);

    let run_stream = || {
        let mut device = Device::gtx480();
        let mut sink = FrameSink::new();
        for f in 0..3 {
            let frame = gen.frame_rank3(f);
            let (out, _) =
                run_on_device_opts(&route.cuda, &mut device, &[frame], ExecOptions::default())
                    .unwrap();
            sink.consume(&FrameGenerator::unstack(&out));
        }
        (sink.digest, device.now_us())
    };
    let (d1, t1) = run_stream();
    let (d2, t2) = run_stream();
    assert_eq!(d1, d2, "results deterministic across runs");
    assert_eq!(t1, t2, "simulated time deterministic across runs");
}

#[test]
fn per_filter_and_full_pipelines_compose() {
    let s = Scenario::tiny();
    let frame = FrameGenerator::new(s.channels, s.rows, s.cols, 31).frame_rank3(0);

    let h = build_sac(&s, Variant::NonGeneric, Part::Horizontal, &Default::default()).unwrap();
    let v = build_sac(&s, Variant::NonGeneric, Part::Vertical, &Default::default()).unwrap();
    let full = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();

    let mut d = Device::gtx480();
    let opts = ExecOptions::default();
    let (hf, _) = run_on_device_opts(&h.cuda, &mut d, std::slice::from_ref(&frame), opts).unwrap();
    let (vf, _) = run_on_device_opts(&v.cuda, &mut d, &[hf], opts).unwrap();
    let (direct, _) = run_on_device_opts(&full.cuda, &mut d, &[frame], opts).unwrap();
    assert_eq!(vf, direct);
}

#[test]
fn gaspard_and_sac_kernel_structure_differs_as_published() {
    // The structural finding of §VIII.C: same maths, different kernel
    // decomposition (3+3 model-driven vs 5+7 after folding).
    let s = Scenario::tiny();
    let gasp = build_gaspard(&s).unwrap();
    assert_eq!(gasp.opencl.kernels.len(), 2 * s.channels);

    let sac = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();
    assert_eq!(sac.cuda.launches_per_run(), 12);
    // Both routes transfer the same frame data.
    let mut d1 = Device::gtx480();
    let planes = FrameGenerator::new(s.channels, s.rows, s.cols, 1).frame_channels(0);
    gaspard::run_opencl(&gasp.opencl, &mut d1, &planes).unwrap();
    let mut d2 = Device::gtx480();
    run_on_device_opts(
        &sac.cuda,
        &mut d2,
        &[FrameGenerator::stack(&planes)],
        ExecOptions { channel_chunks: s.channels, ..Default::default() },
    )
    .unwrap();
    let h2d1 = d1.profiler.class_total_us(simgpu::profiler::OpClass::H2D);
    let h2d2 = d2.profiler.class_total_us(simgpu::profiler::OpClass::H2D);
    assert!((h2d1 - h2d2).abs() < 1e-6, "equal frame traffic: {h2d1} vs {h2d2}");
}
