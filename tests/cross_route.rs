//! Cross-crate integration: both compilation routes, the interpreter, the
//! flat evaluator and the reference filters must agree bit-exactly on the
//! same video frames — the property underlying the paper's entire comparison.

use downscaler::frames::{FrameGenerator, FrameSink};
use downscaler::pipelines::{build_gaspard, build_sac, reference_downscale};
use downscaler::sac_src::{program_src, Part, Variant};
use downscaler::Scenario;
use mdarray::NdArray;
use sac_cuda::exec::{run_on_device_opts, ExecOptions};
use sac_lang::value::Value;
use sac_lang::Interp;
use simgpu::device::Device;
use simgpu::profiler::OpClass;

#[test]
fn five_implementations_one_result() {
    let s = Scenario::tiny();
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 77);
    let planes = gen.frame_channels(0);
    let frame = FrameGenerator::stack(&planes);

    // 1. Golden CPU filters.
    let expect = reference_downscale(&s, &frame);

    // 2. The SaC AST interpreter on the non-generic source.
    let src = program_src(&s, Variant::NonGeneric, Part::Full);
    let prog = sac_lang::parse_program(&src).unwrap();
    let mut interp = Interp::new(&prog);
    let got = interp.call("main", vec![Value::Arr(frame.clone())]).unwrap();
    assert_eq!(got.as_array().unwrap(), &expect, "AST interpreter");

    // 3. The optimised flat program, evaluated sequentially.
    let route = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();
    let flat_out = route.flat.run(std::slice::from_ref(&frame), &mut 0).unwrap();
    assert_eq!(flat_out, expect, "flat evaluator after WLF");

    // 4. The CUDA route on the simulated device.
    let mut device = Device::gtx480();
    let (cuda_out, _) = run_on_device_opts(
        &route.cuda,
        &mut device,
        std::slice::from_ref(&frame),
        ExecOptions { channel_chunks: s.channels, ..Default::default() },
    )
    .unwrap();
    assert_eq!(cuda_out, expect, "SaC -> CUDA route");

    // 5. The GASPARD2 OpenCL route.
    let gasp = build_gaspard(&s).unwrap();
    let mut device2 = Device::gtx480();
    let outs = gaspard::run_opencl(&gasp.opencl, &mut device2, &planes).unwrap();
    assert_eq!(FrameGenerator::stack(&outs), expect, "GASPARD2 -> OpenCL route");
}

#[test]
fn generic_variant_agrees_end_to_end() {
    let s = Scenario::tiny();
    let frame = FrameGenerator::new(s.channels, s.rows, s.cols, 5).frame_rank3(1);
    let expect = reference_downscale(&s, &frame);

    let route = build_sac(&s, Variant::Generic, Part::Full, &Default::default()).unwrap();
    assert!(route.cuda.host_steps_per_run() > 0, "generic route must fall back to the host");
    let mut device = Device::gtx480();
    let (out, stats) = run_on_device_opts(
        &route.cuda,
        &mut device,
        std::slice::from_ref(&frame),
        ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(out, expect);
    assert!(stats.host_ops > 0);
    // Also sequentially.
    assert_eq!(route.flat.run(&[frame], &mut 0).unwrap(), expect);
}

#[test]
fn multi_frame_stream_is_deterministic() {
    let s = Scenario::tiny();
    let route = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 9);

    let run_stream = || {
        let mut device = Device::gtx480();
        let mut sink = FrameSink::new();
        for f in 0..3 {
            let frame = gen.frame_rank3(f);
            let (out, _) =
                run_on_device_opts(&route.cuda, &mut device, &[frame], ExecOptions::default())
                    .unwrap();
            sink.consume(&FrameGenerator::unstack(&out));
        }
        (sink.digest, device.now_us())
    };
    let (d1, t1) = run_stream();
    let (d2, t2) = run_stream();
    assert_eq!(d1, d2, "results deterministic across runs");
    assert_eq!(t1, t2, "simulated time deterministic across runs");
}

#[test]
fn per_filter_and_full_pipelines_compose() {
    let s = Scenario::tiny();
    let frame = FrameGenerator::new(s.channels, s.rows, s.cols, 31).frame_rank3(0);

    let h = build_sac(&s, Variant::NonGeneric, Part::Horizontal, &Default::default()).unwrap();
    let v = build_sac(&s, Variant::NonGeneric, Part::Vertical, &Default::default()).unwrap();
    let full = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();

    let mut d = Device::gtx480();
    let opts = ExecOptions::default();
    let (hf, _) = run_on_device_opts(&h.cuda, &mut d, std::slice::from_ref(&frame), opts).unwrap();
    let (vf, _) = run_on_device_opts(&v.cuda, &mut d, &[hf], opts).unwrap();
    let (direct, _) = run_on_device_opts(&full.cuda, &mut d, &[frame], opts).unwrap();
    assert_eq!(vf, direct);
}

#[test]
fn fused_gaspard_route_agrees_with_unfused_and_reference() {
    let s = Scenario::tiny();
    let route = build_gaspard(&s).unwrap();
    // Every per-channel H→V pair fuses; nothing is refused on the downscaler.
    let fused_plan = downscaler::pipelines::fused_gaspard_plan(&route).unwrap();
    let launches = fused_plan
        .steps
        .iter()
        .filter(|st| matches!(st, simgpu::schedule::PlanStep::Launch { .. }))
        .count();
    assert_eq!(launches, s.channels, "{fused_plan:?}");

    let planes = FrameGenerator::new(s.channels, s.rows, s.cols, 77).frame_channels(0);
    let expect = reference_downscale(&s, &FrameGenerator::stack(&planes));
    let frames = vec![planes];
    let opts = gaspard::ExecOptions::default();
    let mut d_unf = Device::gtx480();
    let out_unf = gaspard::run_opencl_frames(&route.opencl, &mut d_unf, &frames, opts).unwrap();
    let mut d_fus = Device::gtx480();
    let fus_opts = gaspard::ExecOptions { optimize: simgpu::PlanOptLevel::FUSION_FAITHFUL, ..opts };
    let out_fus = gaspard::run_opencl_frames(&route.opencl, &mut d_fus, &frames, fus_opts).unwrap();
    assert_eq!(out_fus, out_unf, "fusion must preserve bits");
    assert_eq!(FrameGenerator::stack(&out_fus[0]), expect, "fused route vs golden filters");
    // Same bits for half the launches and strictly less simulated time.
    assert!(
        d_fus.profiler.class_calls(OpClass::Kernel) < d_unf.profiler.class_calls(OpClass::Kernel)
    );
    assert!(d_fus.now_us() < d_unf.now_us());
}

#[test]
fn fusion_refuses_multi_consumer_diamond() {
    use gaspard::transform::ScheduledArray;
    use gaspard::{deploy, generate_opencl, run_opencl_frames, schedule, Platform};

    let (model, alloc) = gaspard::fixtures::mini_two_stage_model();
    let mut sm = schedule(&deploy(model, Platform::cpu_gpu(), alloc).unwrap()).unwrap();
    // Diamond: s1's intermediate also feeds a second consumer with its own
    // sink, so fusing s1 into either consumer would recompute or orphan it.
    let mut extra = sm.kernels[1].clone();
    extra.name = "s2b".into();
    let out_shape = sm.arrays[extra.output].shape.clone();
    sm.arrays.push(ScheduledArray { name: "o2".into(), shape: out_shape });
    extra.output = sm.arrays.len() - 1;
    sm.kernels.push(extra);
    sm.outputs.push(sm.arrays.len() - 1);

    let prog = generate_opencl(&sm).unwrap();
    // Refusal: the plan-level pass leaves the launch structure unchanged and
    // records the reason.
    let unfused_plan = gaspard::exec::lower_plan(&prog);
    let mut fused_plan = gaspard::exec::lower_plan(&prog);
    let report = simgpu::planopt::optimize(&mut fused_plan, simgpu::PlanOptLevel::FUSION).unwrap();
    let launches = |plan: &simgpu::schedule::LaunchPlan<'_>| {
        plan.steps.iter().filter(|s| matches!(s, simgpu::schedule::PlanStep::Launch { .. })).count()
    };
    assert_eq!(launches(&fused_plan), launches(&unfused_plan));
    assert!(
        report.notes.iter().any(|n| n.contains("refused") && n.contains("feeds 2 consumers")),
        "{:?}",
        report.notes
    );

    let frames: Vec<Vec<NdArray<i64>>> = (0..2)
        .map(|f| {
            vec![NdArray::from_fn([4usize, 16], |ix| ((ix[0] * 16 + ix[1] + f * 7) % 29) as i64)]
        })
        .collect();
    let opts = ExecOptions { streams: 2, ..Default::default() };
    let mut d_unf = Device::gtx480();
    let base = run_opencl_frames(&prog, &mut d_unf, &frames, opts).unwrap();
    let mut d_fus = Device::gtx480();
    let fus_opts = ExecOptions { optimize: simgpu::PlanOptLevel::FUSION, ..opts };
    let got = run_opencl_frames(&prog, &mut d_fus, &frames, fus_opts).unwrap();
    assert_eq!(got, base, "refused fusion must fall back to unfused results");
    // The fallback is surfaced to the profiler for ablation reports.
    assert!(
        d_fus.profiler.notes().any(|n| n.contains("refused") && n.contains("feeds 2 consumers")),
        "missing refusal note"
    );
}

/// Every registry workload — not just the downscaler — is bit-identical
/// across both routes, 1 vs 2 streams, and planopt OFF vs ALL, and every
/// configuration matches the entry's CPU reference. This is the paper's
/// core property lifted from one case study to a family of pipelines.
#[test]
fn registry_workloads_agree_across_routes_streams_and_planopt() {
    use scenarios::{registry_small, Route};
    use simgpu::PlanOptLevel;

    for w in registry_small() {
        let built = w.build().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let mut baseline: Option<Vec<NdArray<i64>>> = None;
        for route in Route::BOTH {
            for streams in [1usize, 2] {
                for (passes, optimize) in [("off", PlanOptLevel::OFF), ("all", PlanOptLevel::ALL)] {
                    let label =
                        format!("{} ({} streams={streams} passes={passes})", w.name, route.name());
                    let opts = simgpu::schedule::ExecOptions {
                        streams,
                        pool: streams > 1,
                        executed: 3,
                        optimize,
                        ..Default::default()
                    };
                    let mut device = Device::gtx480();
                    let (outs, _) = built
                        .run(route, &mut device, &opts)
                        .unwrap_or_else(|e| panic!("{label}: {e}"));
                    for (f, out) in outs.iter().enumerate() {
                        assert_eq!(out, &built.reference(f), "{label}: frame {f} vs CPU reference");
                    }
                    match &baseline {
                        None => baseline = Some(outs),
                        Some(b) => assert_eq!(&outs, b, "{label}: diverges from first config"),
                    }
                }
            }
        }
    }
}

#[test]
fn gaspard_and_sac_kernel_structure_differs_as_published() {
    // The structural finding of §VIII.C: same maths, different kernel
    // decomposition (3+3 model-driven vs 5+7 after folding).
    let s = Scenario::tiny();
    let gasp = build_gaspard(&s).unwrap();
    assert_eq!(gasp.opencl.kernels.len(), 2 * s.channels);

    let sac = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();
    assert_eq!(sac.cuda.launches_per_run(), 12);
    // Both routes transfer the same frame data.
    let mut d1 = Device::gtx480();
    let planes = FrameGenerator::new(s.channels, s.rows, s.cols, 1).frame_channels(0);
    gaspard::run_opencl(&gasp.opencl, &mut d1, &planes).unwrap();
    let mut d2 = Device::gtx480();
    run_on_device_opts(
        &sac.cuda,
        &mut d2,
        &[FrameGenerator::stack(&planes)],
        ExecOptions { channel_chunks: s.channels, ..Default::default() },
    )
    .unwrap();
    let h2d1 = d1.profiler.class_total_us(simgpu::profiler::OpClass::H2D);
    let h2d2 = d2.profiler.class_total_us(simgpu::profiler::OpClass::H2D);
    assert!((h2d1 - h2d2).abs() < 1e-6, "equal frame traffic: {h2d1} vs {h2d2}");
}

/// The tentpole property of the plan-level fusion pass: a SaC route built
/// with WITH-loop folding *disabled* plus plan fusion must recover (or
/// beat) the WLF-on launch count and agree bit-exactly; the GASPARD2
/// stencil chain must drop from three kernels per frame to one.
#[test]
fn plan_level_fusion_recovers_wlf_and_collapses_the_stencil_chain() {
    use sac_lang::opt::OptConfig;
    use scenarios::{registry_small, Kind, Route};
    use simgpu::PlanOptLevel;

    let w = registry_small().into_iter().find(|w| w.kind == Kind::ImagePipe).unwrap();
    let wlf_on = w.build().unwrap();
    let wlf_off = w
        .build_with_sac_config(&OptConfig { with_loop_folding: false, resolve_modulo: true })
        .unwrap();

    let launches = |plan: &simgpu::schedule::LaunchPlan<'_>| {
        plan.steps.iter().filter(|s| matches!(s, simgpu::schedule::PlanStep::Launch { .. })).count()
    };

    // Unfused baseline really is one kernel per stage.
    let sac_unfused = wlf_off.plan(Route::Sac).unwrap();
    assert_eq!(launches(&sac_unfused), 3, "WLF-off imagepipe should have 3 stage kernels");
    let mut sac_fused = wlf_off.plan(Route::Sac).unwrap();
    let report = simgpu::planopt::optimize(&mut sac_fused, PlanOptLevel::FUSION).unwrap();
    assert!(
        launches(&sac_fused) <= launches(&wlf_on.plan(Route::Sac).unwrap()),
        "plan fusion must recover the WLF-on launch count: {:?}",
        report.notes
    );
    assert_eq!(launches(&sac_fused), 1, "{:?}", report.notes);

    // GASPARD2: 3 stencil kernels/frame collapse to 1.
    let mut gasp_fused = wlf_off.plan(Route::Gaspard).unwrap();
    let report = simgpu::planopt::optimize(&mut gasp_fused, PlanOptLevel::FUSION).unwrap();
    assert_eq!(launches(&gasp_fused), 1, "{:?}", report.notes);

    // Bit-identical outputs and timing parity across all four configs.
    let run = |built: &scenarios::BuiltWorkload, route, optimize| {
        let opts = simgpu::schedule::ExecOptions { optimize, ..Default::default() };
        let mut device = Device::gtx480();
        let (outs, stats) = built.run(route, &mut device, &opts).unwrap();
        (outs, stats, device.now_us())
    };
    let (on_outs, on_stats, on_us) = run(&wlf_on, Route::Sac, simgpu::PlanOptLevel::OFF);
    let (off_outs, off_stats, off_us) = run(&wlf_off, Route::Sac, simgpu::PlanOptLevel::OFF);
    let (fus_outs, fus_stats, fus_us) = run(&wlf_off, Route::Sac, simgpu::PlanOptLevel::FUSION);
    for (f, out) in fus_outs.iter().enumerate() {
        assert_eq!(out, &wlf_off.reference(f), "frame {f} vs CPU reference");
    }
    assert_eq!(fus_outs, on_outs);
    assert_eq!(fus_outs, off_outs);
    assert!(off_stats.launches > on_stats.launches, "WLF-off must launch more kernels");
    assert!(fus_stats.launches <= on_stats.launches, "fusion must recover WLF launch counts");
    assert!(off_us > on_us, "unfused must be slower");
    assert!(fus_us <= on_us, "fused-at-plan-level must match or beat WLF-on: {fus_us} vs {on_us}");

    let (g_outs, g_stats, _) = run(&wlf_off, Route::Gaspard, simgpu::PlanOptLevel::OFF);
    let (gf_outs, gf_stats, _) = run(&wlf_off, Route::Gaspard, simgpu::PlanOptLevel::FUSION);
    assert_eq!(gf_outs, g_outs);
    assert_eq!(gf_outs, fus_outs, "both routes agree after plan fusion");
    assert!(gf_stats.launches < g_stats.launches);
}

/// Parity between the faithful-codegen fusion mode (the successor of the
/// removed route-local `fuse_model`) and the default lean mode on the
/// downscaler: identical outputs, equal-or-better launch counts and time.
#[test]
fn plan_fusion_matches_route_local_fusion_on_the_downscaler() {
    use simgpu::PlanOptLevel;

    let s = Scenario::tiny();
    let unfused = build_gaspard(&s).unwrap();
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 4242);
    let frames: Vec<Vec<NdArray<i64>>> = (0..2).map(|f| gen.frame_channels(f)).collect();
    let opts = gaspard::ExecOptions::default();

    // Faithful: the exact kernels the scheduled-model-level fuse_model
    // route generated (6 -> 3 kernels, same composed bodies).
    let mut d_legacy = Device::gtx480();
    let legacy_opts = gaspard::ExecOptions { optimize: PlanOptLevel::FUSION_FAITHFUL, ..opts };
    let legacy =
        gaspard::run_opencl_frames(&unfused.opencl, &mut d_legacy, &frames, legacy_opts).unwrap();

    // Default: the same pass with the lean fused codegen.
    let mut d_plan = Device::gtx480();
    let plan_opts = gaspard::ExecOptions { optimize: PlanOptLevel::FUSION, ..opts };
    let plan =
        gaspard::run_opencl_frames(&unfused.opencl, &mut d_plan, &frames, plan_opts).unwrap();

    assert_eq!(plan, legacy, "lean plan fusion must match the faithful mode bit-for-bit");
    let launches = |d: &Device| {
        d.profiler.records().filter(|r| r.class == OpClass::Kernel).map(|r| r.calls).sum::<u64>()
    };
    assert_eq!(launches(&d_plan), launches(&d_legacy), "both fusion modes collapse the same pairs");
    assert!(
        d_plan.now_us() <= d_legacy.now_us(),
        "lean codegen must not be slower than the faithful baseline: {} vs {}",
        d_plan.now_us(),
        d_legacy.now_us()
    );
}
