//! The paper's published observations, asserted as executable checks
//! (scaled-down scenario; the HD numbers are in EXPERIMENTS.md).

use downscaler::pipelines::{build_gaspard, build_sac};
use downscaler::sac_src::{Part, Variant};
use downscaler::Scenario;
use sac_lang::opt::OptConfig;

fn scenario() -> Scenario {
    // Large enough that launch overhead does not dominate the simulated GPU.
    Scenario::new("claims", 3, 270, 480, 10).unwrap()
}

/// §VIII.C: "the final fused WITH-loop for horizontal filter after applying
/// WLF has 5 generators (the vertical filter has 7 generators). Since the
/// CUDA backend creates one kernel for each generator, this means 5 kernels
/// need to be launched."
#[test]
fn wlf_generator_counts() {
    let s = scenario();
    let h = build_sac(&s, Variant::NonGeneric, Part::Horizontal, &OptConfig::default()).unwrap();
    let v = build_sac(&s, Variant::NonGeneric, Part::Vertical, &OptConfig::default()).unwrap();
    assert_eq!(h.cuda.launches_per_run(), 5);
    assert_eq!(v.cuda.launches_per_run(), 7);
}

/// §VIII.B: "We have three kernels to do the horizontal filter and three to
/// do the vertical filter as well."
#[test]
fn gaspard_kernel_counts() {
    let g = build_gaspard(&scenario()).unwrap();
    let h = g.opencl.kernels.iter().filter(|k| k.kernel.name.starts_with("hf_")).count();
    let v = g.opencl.kernels.iter().filter(|k| k.kernel.name.starts_with("vf_")).count();
    assert_eq!((h, v), (3, 3));
}

/// §VII: "the SAC compiler does not attempt to parallelise loops apart from
/// WITH-loops, [so] the for-loop nest is executed on the host" and "the
/// intermediate result has to be transferred back to the host memory before
/// the output tiler can access it."
#[test]
fn generic_output_tiler_stays_on_host_and_forces_transfer() {
    let s = scenario();
    let g = build_sac(&s, Variant::Generic, Part::Horizontal, &OptConfig::default()).unwrap();
    assert_eq!(g.cuda.host_steps_per_run(), 1);
    // A device-to-host transfer precedes the host step in the plan.
    let plan = &g.cuda.plan;
    let host_at = plan
        .iter()
        .position(|op| matches!(op, sac_cuda::PlanOp::HostStep { .. }))
        .expect("host step present");
    assert!(
        plan[..host_at].iter().any(|op| matches!(op, sac_cuda::PlanOp::Download { .. })),
        "{plan:?}"
    );
}

/// §VIII.A (Figure 9 shapes): CUDA ≫ sequential; non-generic ≫ generic on
/// the GPU; generic ≈ non-generic sequentially.
#[test]
fn figure9_orderings() {
    let s = scenario();
    let rows = bench::figure9(&s).unwrap();
    let by = |label: &str| rows.iter().find(|r| r.config == label).unwrap();
    let sg = by("SAC-Seq Generic");
    let sn = by("SAC-Seq Non-Generic");
    let cg = by("SAC-CUDA Generic");
    let cn = by("SAC-CUDA Non-Generic");
    for dim in [|r: &bench::Fig9Row| r.horizontal_s, |r: &bench::Fig9Row| r.vertical_s] {
        assert!(dim(cn) < dim(sn), "GPU beats sequential");
        assert!(dim(cg) > 2.0 * dim(cn), "generic pays for the host round-trip");
        let seq_ratio = dim(sg) / dim(sn);
        assert!((0.8..1.6).contains(&seq_ratio), "sequential variants comparable, got {seq_ratio}");
    }
}

/// Tables I/II shapes: transfers are roughly half of the total for both
/// routes; SaC's kernel time exceeds Gaspard2's (more kernels, no
/// cross-kernel reuse); totals stay within the same ballpark ("performance
/// benefits of both approaches are comparable").
#[test]
fn table_shapes() {
    let s = scenario();
    let t1 = bench::table1(&s).unwrap(); // Gaspard2
    let t2 = bench::table2(&s).unwrap(); // SaC
    let transfers = |t: &bench::ProfileTable| t.rows[2].percent + t.rows[3].percent;
    assert!((30.0..70.0).contains(&transfers(&t1)), "{:?}", t1.rows);
    assert!((30.0..70.0).contains(&transfers(&t2)), "{:?}", t2.rows);
    // Kernel groups: SaC > Gaspard per filter.
    assert!(t2.rows[0].time_us > t1.rows[0].time_us);
    assert!(t2.rows[1].time_us > t1.rows[1].time_us);
    // Comparable totals (Gaspard ahead, within a factor ~1.5).
    assert!(t1.total_s < t2.total_s);
    assert!(t2.total_s / t1.total_s < 1.5, "{} vs {}", t2.total_s, t1.total_s);
}

/// §VIII.C's causal claim, as an ablation: with kernel-launch overhead and
/// the L1 advantage removed from the cost model, the gap between the routes
/// narrows.
#[test]
fn gap_tracks_launch_overhead_and_reuse() {
    let s = scenario();
    let base = simgpu::Calibration::gtx480();
    let (sac0, gas0) = bench::totals_with_calibration(&s, base.clone()).unwrap();
    let gap0 = sac0 - gas0;
    let kinder = simgpu::Calibration {
        kernel_launch_us: 0.0,
        l1_access_ns: base.dram_access_ns, // no reuse benefit for anyone
        ..base
    };
    let (sac1, gas1) = bench::totals_with_calibration(&s, kinder).unwrap();
    // Removing the two effects the paper blames must shrink SaC's deficit
    // relative to Gaspard2 (which loses its reuse advantage).
    let gap1 = sac1 - gas1;
    assert!(gap0 > 0.0);
    assert!(gap1 < gap0, "gap {gap0} -> {gap1}");
}

/// §VII: WLF "renders allocation of intermediate arrays in memory
/// unnecessary" — measured as the simulated device's memory high-water mark.
#[test]
fn wlf_shrinks_device_footprint() {
    let s = scenario();
    let frame = downscaler::FrameGenerator::new(s.channels, s.rows, s.cols, 1).frame_rank3(0);
    let mut peaks = Vec::new();
    for cfg in [OptConfig::default(), OptConfig { with_loop_folding: false, resolve_modulo: true }]
    {
        let route = build_sac(&s, Variant::NonGeneric, Part::Full, &cfg).unwrap();
        let mut device = simgpu::device::Device::gtx480();
        sac_cuda::exec::run_on_device(
            &route.cuda,
            &mut device,
            std::slice::from_ref(&frame),
            sac_cuda::exec::HostCost::default(),
        )
        .unwrap();
        peaks.push(device.peak_allocated_bytes());
    }
    let (folded, unfolded) = (peaks[0], peaks[1]);
    assert!(
        folded * 2 < unfolded,
        "folded peak {folded} should be well under unfolded peak {unfolded}"
    );
}

/// The structural counts hold at the paper's exact HD scale too (compile
/// only — execution at HD is exercised by the `reproduce` binary).
#[test]
fn hd_scale_structure() {
    let s = Scenario::hd1080();
    let full = build_sac(&s, Variant::NonGeneric, Part::Full, &OptConfig::default()).unwrap();
    assert_eq!(full.cuda.launches_per_run(), 12);
    assert_eq!(full.report.host_steps, 0);
    // Folded result shapes: hf [3,1080,720], vf (result) [3,480,720].
    let result = &full.flat.arrays[full.flat.result];
    assert_eq!(result.shape, vec![3, 480, 720]);

    let g = build_gaspard(&s).unwrap();
    assert_eq!(g.opencl.kernels.len(), 6);
    // Figure 10's repetition space for the horizontal channel kernels.
    let hf = g.scheduled.kernels.iter().find(|k| k.name == "hf_bhf").unwrap();
    assert_eq!(hf.repetition, vec![1080, 240]);
}
