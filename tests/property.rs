//! Property-based tests over the core invariants.

use arrayol::{IMat, Tiler};
use mdarray::{NdArray, Shape};
use proptest::prelude::*;
use sac_lang::opt::{optimize, ArgDesc, OptConfig};
use sac_lang::value::Value;
use sac_lang::Interp;

proptest! {
    /// Euclidean modulo (the language's `%`) always lands in [0, n).
    #[test]
    fn euclid_mod_in_range(a in -10_000i64..10_000, n in 1i64..500) {
        let v = sac_lang::value::euclid_mod(a, n).unwrap();
        prop_assert!((0..n).contains(&v));
        // Compatible with the mathematical definition.
        prop_assert_eq!((a - v) % n, 0);
    }

    /// Non-overlapping block tilers: gather then scatter reproduces the
    /// original array for any block size / repetition count.
    #[test]
    fn tiler_gather_scatter_roundtrip(
        rows in 1usize..6,
        tiles in 1usize..6,
        block in 1usize..5,
        seed in any::<u32>(),
    ) {
        let cols = tiles * block;
        let tiler = Tiler::new(
            vec![0, 0],
            IMat::from_rows(&[&[0], &[1]]),
            IMat::from_rows(&[&[1, 0], &[0, block as i64]]),
        );
        let rep = Shape::new(vec![rows, tiles]);
        let pat = Shape::new(vec![block]);
        let arr = NdArray::from_fn([rows, cols], |ix| {
            ((ix[0] * 31 + ix[1] * 7 + seed as usize) % 251) as i64
        });
        tiler.check_exact_cover(arr.shape(), &rep, &pat).unwrap();
        let tiles_arr = tiler.gather(&arr, &rep, &pat).unwrap();
        let mut rebuilt = NdArray::filled([rows, cols], -1i64);
        tiler.scatter(&tiles_arr, &mut rebuilt, &rep, &pat).unwrap();
        prop_assert_eq!(rebuilt, arr);
    }

    /// Overlapping gathers read the elements the tiler formulae dictate,
    /// wrapping toroidally, for arbitrary origins and steps.
    #[test]
    fn tiler_gather_matches_formula(
        origin in -5i64..5,
        step in 1i64..5,
        pattern in 1usize..6,
        tiles in 1usize..5,
        cols in 6usize..20,
    ) {
        let tiler = Tiler::new(
            vec![0, origin],
            IMat::from_rows(&[&[0], &[1]]),
            IMat::from_rows(&[&[1, 0], &[0, step]]),
        );
        let rep = Shape::new(vec![2, tiles]);
        let pat = Shape::new(vec![pattern]);
        let arr = NdArray::from_fn([2usize, cols], |ix| (ix[0] * cols + ix[1]) as i64);
        let gathered = tiler.gather(&arr, &rep, &pat).unwrap();
        for i in 0..2usize {
            for t in 0..tiles {
                for p in 0..pattern {
                    let col = (origin + (t as i64) * step + p as i64)
                        .rem_euclid(cols as i64) as usize;
                    prop_assert_eq!(
                        *gathered.get(&[i, t, p]).unwrap(),
                        *arr.get(&[i, col]).unwrap()
                    );
                }
            }
        }
    }

    /// The optimiser (inline + constant fold + lower + WLF + splitting)
    /// preserves the interpreter's semantics on randomized two-stage
    /// stencil pipelines with wrap-around addressing.
    #[test]
    fn optimizer_preserves_semantics(
        n_tiles in 2usize..6,
        stepw in 2usize..5,
        off1 in 0usize..3,
        off2 in 0usize..3,
        mul in 1i64..5,
        seed in any::<u32>(),
    ) {
        let cols = n_tiles * stepw;
        let src = format!(
            r#"
int[*] stage1(int[2,{cols}] f)
{{
    out = with {{
        (. <= rep <= .) {{
            tile = with {{
                (. <= pat <= .) : f[[rep[0], (rep[1] * {stepw} + pat[0] + {off1}) % {cols}]];
            }} : genarray( [{stepw}], 0);
        }} : tile;
    }} : genarray( [2,{n_tiles}]);
    return( out);
}}
int[*] main(int[2,{cols}] f)
{{
    inter = stage1(f);
    out = with {{
        (. <= rep <= .) : inter[[rep[0], rep[1] % {n_tiles}, {off2}]] * {mul};
    }} : genarray( [2,{n_tiles}]);
    return( out);
}}
"#,
            off2 = off2.min(stepw - 1),
        );
        let prog = sac_lang::parse_program(&src).unwrap();
        let frame = NdArray::from_fn([2usize, cols], |ix| {
            ((ix[0] * 131 + ix[1] * 17 + seed as usize) % 97) as i64
        });

        let mut interp = Interp::new(&prog);
        let expect = interp.call("main", vec![Value::Arr(frame.clone())]).unwrap();

        let args = [ArgDesc::Array { name: "f".into(), shape: vec![2, cols] }];
        for cfg in [
            OptConfig::default(),
            OptConfig { with_loop_folding: false, resolve_modulo: false },
            OptConfig { with_loop_folding: true, resolve_modulo: false },
        ] {
            let (flat, _) = optimize(&prog, "main", &args, &cfg).unwrap();
            let got = flat.run(std::slice::from_ref(&frame), &mut 0).unwrap();
            prop_assert_eq!(Value::Arr(got), expect.clone(), "config {:?}", cfg);
        }
    }

    /// Kernel-IR compilation + simulated execution agree with the flat
    /// evaluator on randomized single-loop programs (stride + wrap).
    #[test]
    fn simulated_gpu_matches_flat_eval(
        rows in 1usize..5,
        cols in 2usize..16,
        stride in 1usize..4,
        shift in 0i64..8,
        bias in -50i64..50,
    ) {
        let src = format!(
            r#"
int[*] main(int[{rows},{cols}] a)
{{
    out = with {{
        ([0,0] <= iv < [{rows},{cols}] step [1,{stride}]) {{
            v = a[[iv[0], (iv[1] + {shift}) % {cols}]];
        }} : v + {bias};
    }} : genarray( [{rows},{cols}], 7);
    return( out);
}}
"#
        );
        let prog = sac_lang::parse_program(&src).unwrap();
        let args = [ArgDesc::Array { name: "a".into(), shape: vec![rows, cols] }];
        let (flat, _) = optimize(&prog, "main", &args, &OptConfig::default()).unwrap();
        let frame = NdArray::from_fn([rows, cols], |ix| (ix[0] * 100 + ix[1]) as i64);
        let expect = flat.run(std::slice::from_ref(&frame), &mut 0).unwrap();

        let cuda = sac_cuda::compile_flat_program(&flat).unwrap();
        let mut device = simgpu::device::Device::gtx480();
        let (got, _) = sac_cuda::exec::run_on_device(
            &cuda,
            &mut device,
            &[frame],
            sac_cuda::exec::HostCost::default(),
        )
        .unwrap();
        prop_assert_eq!(got, expect);
    }

    /// The frame generator stays within the 8-bit pixel range and is
    /// deterministic in (seed, frame, channel).
    #[test]
    fn frame_generator_contract(seed in any::<u64>(), frame in 0usize..50) {
        let g = downscaler::FrameGenerator::new(2, 18, 16, seed);
        let a = g.frame_channels(frame);
        let b = g.frame_channels(frame);
        prop_assert_eq!(&a, &b);
        for ch in &a {
            prop_assert!(ch.as_slice().iter().all(|&v| (0..=255).contains(&v)));
        }
    }
}
