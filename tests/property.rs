//! Property-based tests over the core invariants.

use arrayol::{IMat, Tiler};
use gaspard::{
    deploy, generate_opencl, run_opencl_frames, schedule, to_arrayol, Allocation, Component,
    ComponentKind, Connection, ExecOptions, Model, PartRef, Platform, Port, PortDir, Stereotype,
    TilerSpec, WindowSpec,
};
use mdarray::{NdArray, Shape};
use proptest::prelude::*;
use sac_lang::opt::{optimize, ArgDesc, OptConfig};
use sac_lang::value::Value;
use sac_lang::Interp;
use simgpu::device::Device;

/// Column-axis parameters of one repetitive filter stage (the row axis is
/// always an untiled pass-through, like the downscaler's).
struct StageParams {
    /// Paving step along the input's column axis.
    step: usize,
    /// Gathered pattern width.
    pattern: usize,
    /// Interpolation windows `(offset, len)` with `offset + len <= pattern`;
    /// one output element per window.
    windows: Vec<(usize, usize)>,
    /// Interpolation divisor.
    divisor: i64,
    /// Repetitions along the column axis.
    tiles: usize,
}

impl StageParams {
    fn out_per_tile(&self) -> usize {
        self.windows.len()
    }
}

/// A parametric version of `gaspard::fixtures::mini_two_stage_model`:
/// source → f1 → f2 → sink, with each stage's tiling drawn from `StageParams`.
fn two_stage_model(rows: usize, in_cols: usize, p1: &StageParams, p2: &StageParams) -> Model {
    let task = |name: &str, p: &StageParams| Component {
        name: name.into(),
        stereotype: Stereotype::SwResource,
        ports: vec![
            Port { name: "pin".into(), dir: PortDir::In, shape: vec![p.pattern] },
            Port { name: "pout".into(), dir: PortDir::Out, shape: vec![p.out_per_tile()] },
        ],
        kind: ComponentKind::Elementary {
            op: gaspard::ElementaryOp::InterpolateWindows {
                windows: p
                    .windows
                    .iter()
                    .map(|&(offset, len)| WindowSpec { offset, len })
                    .collect(),
                divisor: p.divisor,
            },
        },
    };
    let stage = |name: &str, in_cols: usize, p: &StageParams, task: &str| Component {
        name: name.into(),
        stereotype: Stereotype::SwResource,
        ports: vec![
            Port { name: "fin".into(), dir: PortDir::In, shape: vec![rows, in_cols] },
            Port {
                name: "fout".into(),
                dir: PortDir::Out,
                shape: vec![rows, p.tiles * p.out_per_tile()],
            },
        ],
        kind: ComponentKind::Repetitive {
            repetition: vec![rows, p.tiles],
            inner: task.into(),
            input_tilers: vec![(
                vec![p.pattern],
                TilerSpec {
                    origin: vec![0, 0],
                    fitting: vec![vec![0], vec![1]],
                    paving: vec![vec![1, 0], vec![0, p.step as i64]],
                },
            )],
            output_tilers: vec![(
                vec![p.out_per_tile()],
                TilerSpec {
                    origin: vec![0, 0],
                    fitting: vec![vec![0], vec![1]],
                    paving: vec![vec![1, 0], vec![0, p.out_per_tile() as i64]],
                },
            )],
        },
    };
    let mid_cols = p1.tiles * p1.out_per_tile();
    let out_cols = p2.tiles * p2.out_per_tile();
    Model {
        name: "prop".into(),
        components: vec![
            task("t1", p1),
            task("t2", p2),
            stage("filter1", in_cols, p1, "t1"),
            stage("filter2", mid_cols, p2, "t2"),
            Component {
                name: "source".into(),
                stereotype: Stereotype::SwResource,
                ports: vec![Port {
                    name: "frame".into(),
                    dir: PortDir::Out,
                    shape: vec![rows, in_cols],
                }],
                kind: ComponentKind::FrameSource,
            },
            Component {
                name: "sink".into(),
                stereotype: Stereotype::SwResource,
                ports: vec![Port {
                    name: "frame".into(),
                    dir: PortDir::In,
                    shape: vec![rows, out_cols],
                }],
                kind: ComponentKind::FrameSink,
            },
            Component {
                name: "app".into(),
                stereotype: Stereotype::SwResource,
                ports: vec![],
                kind: ComponentKind::Composite {
                    parts: vec![
                        ("src".into(), "source".into()),
                        ("f1".into(), "filter1".into()),
                        ("f2".into(), "filter2".into()),
                        ("snk".into(), "sink".into()),
                    ],
                    connections: vec![
                        Connection {
                            from: PartRef::Part { part: "src".into(), port: "frame".into() },
                            to: PartRef::Part { part: "f1".into(), port: "fin".into() },
                        },
                        Connection {
                            from: PartRef::Part { part: "f1".into(), port: "fout".into() },
                            to: PartRef::Part { part: "f2".into(), port: "fin".into() },
                        },
                        Connection {
                            from: PartRef::Part { part: "f2".into(), port: "fout".into() },
                            to: PartRef::Part { part: "snk".into(), port: "frame".into() },
                        },
                    ],
                },
            },
        ],
        root: "app".into(),
    }
}

fn random_windows(rng: &mut TestRng, pattern: usize, n: usize) -> Vec<(usize, usize)> {
    (0..n)
        .map(|_| {
            let offset = rng.below(pattern as u64) as usize;
            let len = 1 + rng.below((pattern - offset) as u64) as usize;
            (offset, len)
        })
        .collect()
}

proptest! {
    /// Euclidean modulo (the language's `%`) always lands in [0, n).
    #[test]
    fn euclid_mod_in_range(a in -10_000i64..10_000, n in 1i64..500) {
        let v = sac_lang::value::euclid_mod(a, n).unwrap();
        prop_assert!((0..n).contains(&v));
        // Compatible with the mathematical definition.
        prop_assert_eq!((a - v) % n, 0);
    }

    /// Non-overlapping block tilers: gather then scatter reproduces the
    /// original array for any block size / repetition count.
    #[test]
    fn tiler_gather_scatter_roundtrip(
        rows in 1usize..6,
        tiles in 1usize..6,
        block in 1usize..5,
        seed in any::<u32>(),
    ) {
        let cols = tiles * block;
        let tiler = Tiler::new(
            vec![0, 0],
            IMat::from_rows(&[&[0], &[1]]),
            IMat::from_rows(&[&[1, 0], &[0, block as i64]]),
        );
        let rep = Shape::new(vec![rows, tiles]);
        let pat = Shape::new(vec![block]);
        let arr = NdArray::from_fn([rows, cols], |ix| {
            ((ix[0] * 31 + ix[1] * 7 + seed as usize) % 251) as i64
        });
        tiler.check_exact_cover(arr.shape(), &rep, &pat).unwrap();
        let tiles_arr = tiler.gather(&arr, &rep, &pat).unwrap();
        let mut rebuilt = NdArray::filled([rows, cols], -1i64);
        tiler.scatter(&tiles_arr, &mut rebuilt, &rep, &pat).unwrap();
        prop_assert_eq!(rebuilt, arr);
    }

    /// Overlapping gathers read the elements the tiler formulae dictate,
    /// wrapping toroidally, for arbitrary origins and steps.
    #[test]
    fn tiler_gather_matches_formula(
        origin in -5i64..5,
        step in 1i64..5,
        pattern in 1usize..6,
        tiles in 1usize..5,
        cols in 6usize..20,
    ) {
        let tiler = Tiler::new(
            vec![0, origin],
            IMat::from_rows(&[&[0], &[1]]),
            IMat::from_rows(&[&[1, 0], &[0, step]]),
        );
        let rep = Shape::new(vec![2, tiles]);
        let pat = Shape::new(vec![pattern]);
        let arr = NdArray::from_fn([2usize, cols], |ix| (ix[0] * cols + ix[1]) as i64);
        let gathered = tiler.gather(&arr, &rep, &pat).unwrap();
        for i in 0..2usize {
            for t in 0..tiles {
                for p in 0..pattern {
                    let col = (origin + (t as i64) * step + p as i64)
                        .rem_euclid(cols as i64) as usize;
                    prop_assert_eq!(
                        *gathered.get(&[i, t, p]).unwrap(),
                        *arr.get(&[i, col]).unwrap()
                    );
                }
            }
        }
    }

    /// The optimiser (inline + constant fold + lower + WLF + splitting)
    /// preserves the interpreter's semantics on randomized two-stage
    /// stencil pipelines with wrap-around addressing.
    #[test]
    fn optimizer_preserves_semantics(
        n_tiles in 2usize..6,
        stepw in 2usize..5,
        off1 in 0usize..3,
        off2 in 0usize..3,
        mul in 1i64..5,
        seed in any::<u32>(),
    ) {
        let cols = n_tiles * stepw;
        let src = format!(
            r#"
int[*] stage1(int[2,{cols}] f)
{{
    out = with {{
        (. <= rep <= .) {{
            tile = with {{
                (. <= pat <= .) : f[[rep[0], (rep[1] * {stepw} + pat[0] + {off1}) % {cols}]];
            }} : genarray( [{stepw}], 0);
        }} : tile;
    }} : genarray( [2,{n_tiles}]);
    return( out);
}}
int[*] main(int[2,{cols}] f)
{{
    inter = stage1(f);
    out = with {{
        (. <= rep <= .) : inter[[rep[0], rep[1] % {n_tiles}, {off2}]] * {mul};
    }} : genarray( [2,{n_tiles}]);
    return( out);
}}
"#,
            off2 = off2.min(stepw - 1),
        );
        let prog = sac_lang::parse_program(&src).unwrap();
        let frame = NdArray::from_fn([2usize, cols], |ix| {
            ((ix[0] * 131 + ix[1] * 17 + seed as usize) % 97) as i64
        });

        let mut interp = Interp::new(&prog);
        let expect = interp.call("main", vec![Value::Arr(frame.clone())]).unwrap();

        let args = [ArgDesc::Array { name: "f".into(), shape: vec![2, cols] }];
        for cfg in [
            OptConfig::default(),
            OptConfig { with_loop_folding: false, resolve_modulo: false },
            OptConfig { with_loop_folding: true, resolve_modulo: false },
        ] {
            let (flat, _) = optimize(&prog, "main", &args, &cfg).unwrap();
            let got = flat.run(std::slice::from_ref(&frame), &mut 0).unwrap();
            prop_assert_eq!(Value::Arr(got), expect.clone(), "config {:?}", cfg);
        }
    }

    /// Kernel-IR compilation + simulated execution agree with the flat
    /// evaluator on randomized single-loop programs (stride + wrap).
    #[test]
    fn simulated_gpu_matches_flat_eval(
        rows in 1usize..5,
        cols in 2usize..16,
        stride in 1usize..4,
        shift in 0i64..8,
        bias in -50i64..50,
    ) {
        let src = format!(
            r#"
int[*] main(int[{rows},{cols}] a)
{{
    out = with {{
        ([0,0] <= iv < [{rows},{cols}] step [1,{stride}]) {{
            v = a[[iv[0], (iv[1] + {shift}) % {cols}]];
        }} : v + {bias};
    }} : genarray( [{rows},{cols}], 7);
    return( out);
}}
"#
        );
        let prog = sac_lang::parse_program(&src).unwrap();
        let args = [ArgDesc::Array { name: "a".into(), shape: vec![rows, cols] }];
        let (flat, _) = optimize(&prog, "main", &args, &OptConfig::default()).unwrap();
        let frame = NdArray::from_fn([rows, cols], |ix| (ix[0] * 100 + ix[1]) as i64);
        let expect = flat.run(std::slice::from_ref(&frame), &mut 0).unwrap();

        let cuda = sac_cuda::compile_flat_program(&flat).unwrap();
        let mut device = simgpu::device::Device::gtx480();
        let (got, _) = sac_cuda::exec::run_on_device(
            &cuda,
            &mut device,
            &[frame],
            sac_cuda::exec::HostCost::default(),
        )
        .unwrap();
        prop_assert_eq!(got, expect);
    }

    /// Tiler-composition fusion over random exact-cover two-stage chains is
    /// semantics-preserving: the fused program's outputs are bit-identical to
    /// the unfused program and to the ArrayOL CPU reference — serialized,
    /// double-buffered (`queues = 2`), and under OOM degradation back to one
    /// queue.
    #[test]
    fn fused_chain_matches_unfused_and_cpu_reference(
        rows in 1usize..4,
        ow1 in 1usize..4,
        grouping in any::<bool>(),
        m in 1usize..3,
        tiles_base in 1usize..4,
        st1 in 1usize..5,
        pw1_extra in 0usize..3,
        pw2_extra in 0usize..3,
        wseed in any::<u64>(),
        seed in any::<u32>(),
    ) {
        // Derive a legal chain: the producer's output tiler always paves its
        // array exactly (blocks of `ow1`); the consumer either steps in whole
        // blocks (aligned case, `st2 = m·ow1`) or groups several consumer
        // tiles inside one block (grouping case, `st2 | ow1`).
        let mut wr = TestRng::new(wseed);
        let (st2, pw2, tiles1, tiles2) = if grouping {
            let divisors: Vec<usize> = (1..=ow1).filter(|d| ow1 % d == 0).collect();
            let st2 = divisors[wr.below(divisors.len() as u64) as usize];
            let b = ow1 / st2;
            (st2, 1 + pw2_extra % st2.max(1), tiles_base, b * m)
        } else {
            (m * ow1, 1 + pw2_extra, tiles_base * m, tiles_base)
        };
        let pw1 = st1 + pw1_extra;
        let p1 = StageParams {
            step: st1,
            pattern: pw1,
            windows: random_windows(&mut wr, pw1, ow1),
            divisor: 1 + wr.below(3) as i64,
            tiles: tiles1,
        };
        let ow2 = 1 + wr.below(3) as usize;
        let p2 = StageParams {
            step: st2,
            pattern: pw2,
            windows: random_windows(&mut wr, pw2, ow2),
            divisor: 1 + wr.below(3) as i64,
            tiles: tiles2,
        };
        let in_cols = tiles1 * st1;
        let model = two_stage_model(rows, in_cols, &p1, &p2);
        let alloc = Allocation::default()
            .allocate("source", "i7_930")
            .allocate("sink", "i7_930")
            .allocate("filter1", "gtx480")
            .allocate("filter2", "gtx480");
        let sm = schedule(&deploy(model, Platform::cpu_gpu(), alloc).unwrap()).unwrap();

        let prog = generate_opencl(&sm).unwrap();
        // The plan-level pass must fuse the randomized two-stage chain
        // into a single launch.
        let mut fused_plan = gaspard::exec::lower_plan(&prog);
        let report =
            simgpu::planopt::optimize(&mut fused_plan, simgpu::PlanOptLevel::FUSION).unwrap();
        let fused_launches = fused_plan
            .steps
            .iter()
            .filter(|st| matches!(st, simgpu::schedule::PlanStep::Launch { .. }))
            .count();
        prop_assert_eq!(fused_launches, 1, "notes: {:?}", report.notes);

        let frames: Vec<Vec<NdArray<i64>>> = (0..2)
            .map(|f| {
                vec![NdArray::from_fn([rows, in_cols], |ix| {
                    ((ix[0] * 131 + ix[1] * 17 + f * 59 + seed as usize) % 97) as i64
                })]
            })
            .collect();

        // ArrayOL CPU reference from the unfused scheduled model.
        let g = to_arrayol(&sm).unwrap();
        let reference: Vec<Vec<NdArray<i64>>> = frames
            .iter()
            .map(|frame| {
                let mut inputs = std::collections::HashMap::new();
                inputs.insert(g.external_inputs[0], frame[0].clone());
                let env =
                    arrayol::exec::execute(&g, &inputs, &arrayol::exec::ExecOptions::sequential())
                        .unwrap();
                vec![env[&g.external_outputs[0]].clone()]
            })
            .collect();

        let run = |fuse: bool, queues, degrade, device: &mut Device| {
            let optimize =
                if fuse { simgpu::PlanOptLevel::FUSION } else { simgpu::PlanOptLevel::OFF };
            run_opencl_frames(
                &prog,
                device,
                &frames,
                ExecOptions {
                    streams: queues,
                    degrade_on_oom: degrade,
                    optimize,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let unfused = run(false, 1, false, &mut Device::gtx480());
        prop_assert_eq!(&unfused, &reference);

        let mut serial_dev = Device::gtx480();
        let fused_serial = run(true, 1, false, &mut serial_dev);
        prop_assert_eq!(&fused_serial, &reference);
        prop_assert_eq!(run(true, 2, false, &mut Device::gtx480()), reference.clone());

        // A device sized for one lane-set but not two: the 2-queue attempt
        // OOMs and the degradation ladder lands back on 1 queue with the
        // same bits.
        let peak = serial_dev.peak_allocated_bytes();
        let cfg = simgpu::DeviceConfig::toy(peak * 3 / 2);
        let mut constrained = Device::new(cfg, simgpu::Calibration::gtx480());
        prop_assert_eq!(run(true, 2, true, &mut constrained), reference);
        prop_assert!(
            constrained.profiler.notes().any(|n| n.contains("degraded")),
            "no degradation note"
        );
    }

    /// The frame generator stays within the 8-bit pixel range and is
    /// deterministic in (seed, frame, channel).
    #[test]
    fn frame_generator_contract(seed in any::<u64>(), frame in 0usize..50) {
        let g = downscaler::FrameGenerator::new(2, 18, 16, seed);
        let a = g.frame_channels(frame);
        let b = g.frame_channels(frame);
        prop_assert_eq!(&a, &b);
        for ch in &a {
            prop_assert!(ch.as_slice().iter().all(|&v| (0..=255).contains(&v)));
        }
    }

    /// Swapping the cost model changes *only* the simulated clock. Outputs,
    /// launch counts, transfer counts and transfer byte totals are
    /// bit-identical across the paper model, the zero model, the
    /// alloc-charging model, the warp/occupancy model and a fully
    /// randomized calibration — at 1 and 2 streams on every small-registry
    /// workload, and through the OOM degradation ladder on a starved
    /// device. Each opt-in model announces itself by name in the profiler.
    #[test]
    fn cost_models_change_only_the_clock(
        entry_ix in 0usize..4,
        streams in 1usize..=2,
        launch_us in 0.0f64..200.0,
        lat_us in 0.0f64..100.0,
        h2d_bw in 1.0f64..20_000.0,
        d2h_bw in 1.0f64..20_000.0,
        instr_ns in 0.0f64..1.0,
        dram_ns in 0.0f64..1.0,
        l1_ns in 0.0f64..0.5,
        malloc_us in 0.0f64..200.0,
    ) {
        use simgpu::cost::CostModelSpec;

        let w = scenarios::registry_small().swap_remove(entry_ix);
        let built = w.build().unwrap();
        let route = scenarios::Route::Gaspard;
        let executed = if w.temporal() { 3.min(w.frames) } else { 2 };
        let base = ExecOptions {
            streams,
            executed,
            host_ns_per_op: 40.0,
            ..Default::default()
        };
        let random_calib = simgpu::Calibration {
            kernel_launch_us: launch_us,
            h2d_latency_us: lat_us,
            h2d_bytes_per_us: h2d_bw,
            d2h_latency_us: lat_us / 2.0,
            d2h_bytes_per_us: d2h_bw,
            instr_ns,
            dram_access_ns: dram_ns,
            l1_access_ns: l1_ns,
            malloc_us,
            free_us: malloc_us / 4.0,
        };

        // Baseline: the paper-calibrated model the device boots with.
        let mut base_dev = Device::gtx480();
        let (base_outs, base_stats) = built.run(route, &mut base_dev, &base).unwrap();

        let check = |outs: &Vec<NdArray<i64>>, stats: &simgpu::RunStats, who: &str| {
            prop_assert_eq!(outs, &base_outs, "{} outputs diverged", who);
            prop_assert_eq!(stats.launches, base_stats.launches, "{} launches", who);
            prop_assert_eq!(stats.h2d, base_stats.h2d, "{} h2d count", who);
            prop_assert_eq!(stats.d2h, base_stats.d2h, "{} d2h count", who);
            prop_assert_eq!(stats.h2d_bytes, base_stats.h2d_bytes, "{} h2d bytes", who);
            prop_assert_eq!(stats.d2h_bytes, base_stats.d2h_bytes, "{} d2h bytes", who);
        };

        // Opt-in models selected by spec through `ExecOptions.cost` — each
        // must surface its name as a profiler note (models are identified
        // by `describe()`, never by float equality).
        for spec in [CostModelSpec::Zero, CostModelSpec::PaperAlloc, CostModelSpec::WarpTile] {
            let mut dev = Device::gtx480();
            let (outs, stats) =
                built.run(route, &mut dev, &ExecOptions { cost: spec, ..base }).unwrap();
            let name = spec.name().expect("non-inherit spec has a name");
            check(&outs, &stats, name);
            prop_assert!(
                dev.profiler.notes().any(|n| n == format!("cost model: {name}")),
                "no '{}' model note", name
            );
        }

        // A randomized calibration installed directly on the device.
        let mut rand_dev =
            Device::new(simgpu::DeviceConfig::gtx480(), random_calib.clone());
        let (outs, stats) = built.run(route, &mut rand_dev, &base).unwrap();
        check(&outs, &stats, "randomized calibration");

        // OOM degradation: starve the device to one lane's worth so a
        // 2-stream batch must walk the degradation ladder; the invariance
        // holds through degradation under both the paper model and the
        // randomized one.
        if streams == 2 {
            let mut probe = Device::gtx480();
            built.run(route, &mut probe, &ExecOptions { streams: 1, ..base }).unwrap();
            let starved = || simgpu::DeviceConfig::toy(probe.peak_allocated_bytes());
            let degrade = ExecOptions { degrade_on_oom: true, ..base };

            let mut paper = Device::new(starved(), simgpu::Calibration::gtx480());
            let (outs, stats) = built.run(route, &mut paper, &degrade).unwrap();
            check(&outs, &stats, "degraded paper");

            let mut random = Device::new(starved(), random_calib);
            let (outs_r, stats_r) = built.run(route, &mut random, &degrade).unwrap();
            check(&outs_r, &stats_r, "degraded randomized");
            prop_assert_eq!(
                paper.profiler.notes().filter(|n| n.contains("degraded")).count(),
                random.profiler.notes().filter(|n| n.contains("degraded")).count(),
                "degradation ladders diverged across models"
            );
        }
    }
}
