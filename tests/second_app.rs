//! A second application through both compilation routes: a 4:1 block-mean
//! *thumbnailer* with a brightness/contrast post-pass. Exercises the same
//! abstractions as the downscaler (tilers, WITH-loops, folding, both code
//! generators) on a differently-shaped pipeline, demonstrating that nothing
//! in the toolchain is downscaler-specific.

use mdarray::NdArray;
use sac_cuda::exec::{run_on_device, HostCost};
use sac_lang::opt::{optimize, ArgDesc, OptConfig};
use simgpu::device::Device;

const ROWS: usize = 24;
const COLS: usize = 32;

/// Hand-written reference: 4-pixel horizontal means, then `v*2 + 10`.
fn reference(frame: &NdArray<i64>) -> NdArray<i64> {
    NdArray::from_fn([ROWS, COLS / 4], |ix| {
        let sum: i64 = (0..4).map(|p| *frame.get(&[ix[0], ix[1] * 4 + p]).unwrap()).sum();
        (sum / 4) * 2 + 10
    })
}

fn test_frame() -> NdArray<i64> {
    NdArray::from_fn([ROWS, COLS], |ix| ((ix[0] * 13 + ix[1] * 29) % 256) as i64)
}

/// The SaC version: gather/mean WITH-loop, then an elementwise WITH-loop;
/// WLF fuses them into one kernel.
#[test]
fn sac_route_thumbnailer() {
    let src = format!(
        r#"
int[*] mean4(int[{ROWS},{COLS}] f)
{{
    out = with {{
        (. <= rep <= .) {{
            s = f[[rep[0], rep[1] * 4]] + f[[rep[0], rep[1] * 4 + 1]]
              + f[[rep[0], rep[1] * 4 + 2]] + f[[rep[0], rep[1] * 4 + 3]];
        }} : s / 4;
    }} : genarray( [{ROWS},{TC}]);
    return( out);
}}
int[*] main(int[{ROWS},{COLS}] f)
{{
    thumb = mean4(f);
    out = with {{ (. <= iv <= .) : thumb[iv] * 2 + 10; }} : genarray( [{ROWS},{TC}], 0);
    return( out);
}}
"#,
        TC = COLS / 4
    );
    let prog = sac_lang::parse_program(&src).unwrap();
    let args = [ArgDesc::Array { name: "f".into(), shape: vec![ROWS, COLS] }];
    let (flat, report) = optimize(&prog, "main", &args, &OptConfig::default()).unwrap();
    // The two loops fuse; the access pattern is wrap-free so no splits occur.
    assert_eq!(report.fold.folds, 1);
    assert_eq!(flat.generator_count(), 1);

    let frame = test_frame();
    let expect = reference(&frame);
    assert_eq!(flat.run(std::slice::from_ref(&frame), &mut 0).unwrap(), expect);
    assert_eq!(flat.run_parallel(std::slice::from_ref(&frame), 4).unwrap(), expect);

    let cuda = sac_cuda::compile_flat_program(&flat).unwrap();
    let mut device = Device::gtx480();
    let (got, stats) =
        run_on_device(&cuda, &mut device, std::slice::from_ref(&frame), HostCost::default())
            .unwrap();
    assert_eq!(got, expect);
    assert_eq!(stats.launches, 1, "fused pipeline is a single kernel");
}

/// The GASPARD2 version: two repetitive tasks (SumReduce-style mean via
/// windows, then an AffineMap) wired by tilers.
#[test]
fn gaspard_route_thumbnailer() {
    use gaspard::model::*;
    use gaspard::transform::{deploy, schedule, to_arrayol};
    let tc = COLS / 4;

    let mean_task = Component {
        name: "Mean4".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![
            Port { name: "pin".into(), dir: PortDir::In, shape: vec![4] },
            Port { name: "pout".into(), dir: PortDir::Out, shape: vec![1] },
        ],
        // The IP set has no divide, so this route computes block *sums*;
        // its reference expectation below differs from the SaC route's
        // mean accordingly.
        kind: ComponentKind::Elementary { op: ElementaryOp::SumReduce },
    };
    let post_task = Component {
        name: "Post".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![
            Port { name: "pin".into(), dir: PortDir::In, shape: vec![1] },
            Port { name: "pout".into(), dir: PortDir::Out, shape: vec![1] },
        ],
        kind: ComponentKind::Elementary { op: ElementaryOp::AffineMap { mul: 2, add: 10 } },
    };
    let mean_stage = Component {
        name: "MeanStage".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![
            Port { name: "fin".into(), dir: PortDir::In, shape: vec![ROWS, COLS] },
            Port { name: "fout".into(), dir: PortDir::Out, shape: vec![ROWS, tc] },
        ],
        kind: ComponentKind::Repetitive {
            repetition: vec![ROWS, tc],
            inner: "Mean4".into(),
            input_tilers: vec![(
                vec![4],
                TilerSpec {
                    origin: vec![0, 0],
                    fitting: vec![vec![0], vec![1]],
                    paving: vec![vec![1, 0], vec![0, 4]],
                },
            )],
            output_tilers: vec![(
                vec![1],
                TilerSpec {
                    origin: vec![0, 0],
                    fitting: vec![vec![0], vec![1]],
                    paving: vec![vec![1, 0], vec![0, 1]],
                },
            )],
        },
    };
    let post_stage = Component {
        name: "PostStage".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![
            Port { name: "fin".into(), dir: PortDir::In, shape: vec![ROWS, tc] },
            Port { name: "fout".into(), dir: PortDir::Out, shape: vec![ROWS, tc] },
        ],
        kind: ComponentKind::Repetitive {
            repetition: vec![ROWS, tc],
            inner: "Post".into(),
            input_tilers: vec![(
                vec![1],
                TilerSpec {
                    origin: vec![0, 0],
                    fitting: vec![vec![0], vec![1]],
                    paving: vec![vec![1, 0], vec![0, 1]],
                },
            )],
            output_tilers: vec![(
                vec![1],
                TilerSpec {
                    origin: vec![0, 0],
                    fitting: vec![vec![0], vec![1]],
                    paving: vec![vec![1, 0], vec![0, 1]],
                },
            )],
        },
    };
    let source = Component {
        name: "Src".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![Port { name: "out".into(), dir: PortDir::Out, shape: vec![ROWS, COLS] }],
        kind: ComponentKind::FrameSource,
    };
    let sink = Component {
        name: "Snk".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![Port { name: "in".into(), dir: PortDir::In, shape: vec![ROWS, tc] }],
        kind: ComponentKind::FrameSink,
    };
    let root = Component {
        name: "Thumb".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![],
        kind: ComponentKind::Composite {
            parts: vec![
                ("src".into(), "Src".into()),
                ("mean".into(), "MeanStage".into()),
                ("post".into(), "PostStage".into()),
                ("snk".into(), "Snk".into()),
            ],
            connections: vec![
                Connection {
                    from: PartRef::Part { part: "src".into(), port: "out".into() },
                    to: PartRef::Part { part: "mean".into(), port: "fin".into() },
                },
                Connection {
                    from: PartRef::Part { part: "mean".into(), port: "fout".into() },
                    to: PartRef::Part { part: "post".into(), port: "fin".into() },
                },
                Connection {
                    from: PartRef::Part { part: "post".into(), port: "fout".into() },
                    to: PartRef::Part { part: "snk".into(), port: "in".into() },
                },
            ],
        },
    };
    let model = Model {
        name: "thumbnailer".into(),
        components: vec![mean_task, post_task, mean_stage, post_stage, source, sink, root],
        root: "Thumb".into(),
    };
    let alloc = Allocation::default()
        .allocate("Src", "i7_930")
        .allocate("Snk", "i7_930")
        .allocate("MeanStage", "gtx480")
        .allocate("PostStage", "gtx480");

    let deployed = deploy(model, Platform::cpu_gpu(), alloc).unwrap();
    let scheduled = schedule(&deployed).unwrap();
    let opencl = gaspard::generate_opencl(&scheduled).unwrap();
    assert_eq!(opencl.kernels.len(), 2);

    // This route computes sum4 then *2+10 (no divide in the IP set).
    let frame = test_frame();
    let expect = NdArray::from_fn([ROWS, tc], |ix| {
        let sum: i64 = (0..4).map(|p| *frame.get(&[ix[0], ix[1] * 4 + p]).unwrap()).sum();
        sum * 2 + 10
    });

    // Generated OpenCL on the device == ArrayOL reference executor.
    let mut device = Device::gtx480();
    let outs = gaspard::run_opencl(&opencl, &mut device, std::slice::from_ref(&frame)).unwrap();
    assert_eq!(outs[0], expect);

    let g = to_arrayol(&scheduled).unwrap();
    let mut inputs = std::collections::HashMap::new();
    inputs.insert(g.external_inputs[0], frame);
    let seq =
        arrayol::exec::execute(&g, &inputs, &arrayol::exec::ExecOptions::sequential()).unwrap();
    assert_eq!(seq[&g.external_outputs[0]], expect);

    // Host artefacts generate too.
    let host = gaspard::emit::emit_host_source(&opencl);
    assert!(host.contains("clEnqueueNDRangeKernel"));
}
