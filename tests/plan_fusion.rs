//! Property tests for the route-agnostic plan-level kernel-fusion pass.
//!
//! Random multi-stage exact-cover stencil chains are lowered to naive
//! [`LaunchPlan`]s (every intermediate makes a host round trip), then run
//! under **every** planopt pass subset × streams {1, 2}. Whatever the pass
//! manager does to the plan, the batch outputs must stay bit-identical to the
//! CPU reference semantics of the composed accesses (`apply_access`), and the
//! fusion pass must collapse each chain to a single launch per frame.
//!
//! An OOM sub-case re-runs the fused plan on a memory-starved toy device with
//! lane degradation enabled, and a `Carry` regression pins the
//! refusal-as-fallback behaviour at the integration level.

use arrayol::access::{apply_access, ElementaryOp, TiledAccess, TilerSpec};
use mdarray::NdArray;
use proptest::prelude::*;
use proptest::TestRng;
use simgpu::device::{Device, DeviceConfig};
use simgpu::schedule::Carry;
use simgpu::{
    optimize, ArrayDecl, BatchScheduler, Calibration, ExecOptions, KernelFlavor, LaunchPlan,
    PlanKernel, PlanOptLevel, PlanStep, TiledKernel,
};

/// Sliding column-stencil access `[rows, cols] -> [rows, cols - k + 1]`:
/// row-parallel, unit paving along the column axis, pattern width `k`.
fn stencil(rows: usize, cols: usize, weights: Vec<i64>) -> TiledAccess {
    let k = weights.len();
    TiledAccess {
        repetition: vec![rows, cols - k + 1],
        in_pattern: vec![k],
        in_tiler: TilerSpec {
            origin: vec![0, 0],
            fitting: vec![vec![0], vec![1]],
            paving: vec![vec![1, 0], vec![0, 1]],
        },
        out_pattern: vec![1],
        out_tiler: TilerSpec {
            origin: vec![0, 0],
            fitting: vec![vec![0], vec![0]],
            paving: vec![vec![1, 0], vec![0, 1]],
        },
        op: ElementaryOp::WeightedSum { weights },
    }
}

fn gen(name: &str, acc: &TiledAccess, in_shape: &[usize], out_shape: &[usize]) -> TiledKernel {
    simgpu::generate_tiled_kernel(name, acc, in_shape, out_shape, KernelFlavor::Cuda).unwrap()
}

/// The naive N-stage plan a route without fusion would emit: upload the
/// input, then per stage alloc + launch + download, with every intermediate
/// re-uploaded for its consumer (a full host round trip for the pass
/// manager to clean up).
fn chain_plan<'a>(
    kernels: &'a [TiledKernel],
    accesses: &[TiledAccess],
    shapes: &[Vec<usize>],
) -> LaunchPlan<'a> {
    let n = kernels.len();
    let mut steps = vec![PlanStep::Upload { array: 0, chunks: 1 }];
    for i in 0..n {
        steps.push(PlanStep::Alloc { array: i + 1 });
        steps.push(PlanStep::Launch { kernel: i });
        steps.push(PlanStep::Download { array: i + 1, chunks: 1 });
        if i + 1 < n {
            steps.push(PlanStep::Upload { array: i + 1, chunks: 1 });
        }
    }
    LaunchPlan {
        arrays: shapes
            .iter()
            .enumerate()
            .map(|(i, s)| ArrayDecl { name: format!("a{i}"), shape: s.clone() })
            .collect(),
        inputs: vec![0],
        outputs: vec![n],
        kernels: kernels
            .iter()
            .zip(accesses)
            .enumerate()
            .map(|(i, (k, a))| {
                PlanKernel::new(&k.kernel, k.config, vec![i + 1, i]).with_access(a.clone())
            })
            .collect(),
        host_ops: Vec::new(),
        steps,
        prologue: Vec::new(),
        invariant: Vec::new(),
        batches: Vec::new(),
        carries: Vec::new(),
        lane_label: "stream lanes",
    }
}

/// The pass subset encoded by the low six bits of `bits`.
fn level_from_bits(bits: u32) -> PlanOptLevel {
    PlanOptLevel {
        fusion: bits & 1 != 0,
        residency: bits & 2 != 0,
        dead_transfers: bits & 4 != 0,
        reorder: bits & 8 != 0,
        coalesce: bits & 16 != 0,
        fusion_faithful: bits & 32 != 0,
    }
}

proptest! {
    /// Fused ≡ unfused ≡ CPU reference on random 2–4 stage exact-cover
    /// chains, for every planopt pass subset and both lane counts, with an
    /// OOM-degradation sub-case on the fused plan.
    #[test]
    fn every_pass_subset_preserves_chain_semantics(
        rows in 1usize..4,
        n_stages in 2usize..5,
        extra_cols in 1usize..7,
        seed in any::<u32>(),
    ) {
        let mut rng = TestRng::new(seed as u64 + 1);

        // Random stage widths and weights; the input is wide enough that
        // every stage output keeps at least `extra_cols` columns.
        let widths: Vec<usize> =
            (0..n_stages).map(|_| 1 + rng.below(3) as usize).collect();
        let weightses: Vec<Vec<i64>> = widths
            .iter()
            .map(|&k| (0..k).map(|_| rng.below(7) as i64 - 3).collect())
            .collect();
        let cols0 = widths.iter().map(|k| k - 1).sum::<usize>() + extra_cols;

        let mut shapes = vec![vec![rows, cols0]];
        let mut accesses = Vec::new();
        for (i, w) in weightses.iter().enumerate() {
            let cols = shapes[i][1];
            accesses.push(stencil(rows, cols, w.clone()));
            shapes.push(vec![rows, cols - (w.len() - 1)]);
        }
        let kernels: Vec<TiledKernel> = accesses
            .iter()
            .enumerate()
            .map(|(i, a)| gen(&format!("s{i}"), a, &shapes[i], &shapes[i + 1]))
            .collect();

        // Two input frames and their CPU reference outputs.
        let frames: Vec<Vec<NdArray<i64>>> = (0..2)
            .map(|f| {
                vec![NdArray::from_fn(vec![rows, cols0], |ix| {
                    (f * 1000 + ix[0] * cols0 + ix[1] + seed as usize) as i64 % 41 - 17
                })]
            })
            .collect();
        let expect: Vec<NdArray<i64>> = frames
            .iter()
            .map(|f| {
                let mut cur = f[0].clone();
                for (acc, shape) in accesses.iter().zip(&shapes[1..]) {
                    cur = apply_access(acc, &cur, shape);
                }
                cur
            })
            .collect();

        for bits in 0..64u32 {
            let level = level_from_bits(bits);
            for streams in [1usize, 2] {
                let mut plan = chain_plan(&kernels, &accesses, &shapes);
                optimize(&mut plan, level).unwrap();
                let launches =
                    plan.steps.iter().filter(|s| matches!(s, PlanStep::Launch { .. })).count();
                if level.fusion {
                    prop_assert_eq!(launches, 1, "bits {:02x}: {:?}", bits, plan.steps);
                } else {
                    prop_assert_eq!(launches, n_stages, "bits {:02x}: {:?}", bits, plan.steps);
                }
                let mut device = Device::gtx480();
                let (outs, stats) = BatchScheduler::new(&plan)
                    .run(&mut device, &frames, &ExecOptions { streams, ..Default::default() })
                    .unwrap();
                prop_assert_eq!(stats.launches, launches * frames.len());
                for (got, want) in outs.iter().zip(&expect) {
                    prop_assert_eq!(&got[0], want, "bits {:02x} streams {}", bits, streams);
                }
            }
        }

        // OOM degradation: give the toy device exactly one lane's worth of
        // memory; a 2-lane fused batch must degrade (not fail) and still
        // produce the reference outputs.
        let mut plan = chain_plan(&kernels, &accesses, &shapes);
        optimize(&mut plan, PlanOptLevel::FUSION).unwrap();
        let mut probe = Device::gtx480();
        BatchScheduler::new(&plan)
            .run(&mut probe, &frames, &ExecOptions::default())
            .unwrap();
        let mut starved =
            Device::new(DeviceConfig::toy(probe.peak_allocated_bytes()), Calibration::gtx480());
        let (outs, _) = BatchScheduler::new(&plan)
            .run(
                &mut starved,
                &frames,
                &ExecOptions { streams: 2, degrade_on_oom: true, ..Default::default() },
            )
            .unwrap();
        for (got, want) in outs.iter().zip(&expect) {
            prop_assert_eq!(&got[0], want, "OOM-degraded run diverged");
        }
    }
}

/// A `Carry` edge through the intermediate must block fusion with a refusal
/// note — and the refused plan must still run correctly, including the
/// serialized cross-frame data flow.
#[test]
fn carry_through_the_intermediate_blocks_fusion_and_stays_correct() {
    let (rows, cols) = (3, 5);
    let accesses = vec![stencil(rows, cols, vec![2]), stencil(rows, cols, vec![3])];
    let shapes = vec![vec![rows, cols]; 3];
    let kernels = vec![
        gen("dbl", &accesses[0], &shapes[0], &shapes[1]),
        gen("tpl", &accesses[1], &shapes[1], &shapes[2]),
    ];

    let build = || {
        let mut plan = chain_plan(&kernels, &accesses, &shapes);
        // Frame f+1's input is frame f's intermediate (2·input).
        plan.carries = vec![Carry { from: 1, to: 0 }];
        plan
    };
    let frames: Vec<Vec<NdArray<i64>>> =
        vec![vec![NdArray::from_fn(vec![rows, cols], |ix| (ix[0] * cols + ix[1]) as i64)]; 2];

    let mut fused = build();
    let report = optimize(&mut fused, PlanOptLevel::FUSION).unwrap();
    assert!(
        report.notes.iter().any(|n| n.contains("crosses the temporal carry boundary")),
        "{:?}",
        report.notes
    );
    let launches = |p: &LaunchPlan<'_>| {
        p.steps.iter().filter(|s| matches!(s, PlanStep::Launch { .. })).count()
    };
    assert_eq!(launches(&fused), 2, "refusal must leave the chain unfused");

    let run = |plan: &LaunchPlan<'_>| {
        let mut device = Device::gtx480();
        let (outs, _) =
            BatchScheduler::new(plan).run(&mut device, &frames, &ExecOptions::default()).unwrap();
        outs
    };
    let base = run(&build());
    let refused = run(&fused);
    assert_eq!(refused, base, "the refused plan must not change results");

    // Frame 0: out = 6·in. Frame 1: input := 2·in, so out = 12·in.
    for (f, mul) in [(0usize, 6i64), (1, 12)] {
        let want = NdArray::from_fn(vec![rows, cols], |ix| (ix[0] * cols + ix[1]) as i64 * mul);
        assert_eq!(refused[f][0], want, "frame {f}");
    }
}
