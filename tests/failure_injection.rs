//! Failure injection: every layer must surface faults as typed errors, never
//! panics or silent corruption.

use downscaler::pipelines::{build_gaspard, build_sac};
use downscaler::sac_src::{Part, Variant};
use downscaler::{FrameGenerator, Scenario};
use sac_cuda::exec::{run_on_device, HostCost};
use sac_lang::wir::{FlatGen, FlatProgram, FlatWith, Step, SymExpr};
use simgpu::device::{Device, DeviceConfig};
use simgpu::Calibration;

/// A device too small for the frames: the run must fail with OutOfMemory and
/// leave no partial simulated-time record inconsistencies.
#[test]
fn device_oom_is_reported() {
    let s = Scenario::tiny();
    let route = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();
    let frame = FrameGenerator::new(s.channels, s.rows, s.cols, 1).frame_rank3(0);
    // Frame alone needs 3*18*32*4 = 6912 bytes; give the device less.
    let mut device = Device::new(DeviceConfig::toy(4096), Calibration::gtx480());
    let err =
        run_on_device(&route.cuda, &mut device, std::slice::from_ref(&frame), HostCost::default());
    match err {
        Err(sac_cuda::CudaError::Sim(simgpu::SimError::OutOfMemory { .. })) => {}
        other => panic!("expected OutOfMemory, got {other:?}"),
    }
}

/// The same, for the OpenCL route.
#[test]
fn gaspard_oom_is_reported() {
    let s = Scenario::tiny();
    let route = build_gaspard(&s).unwrap();
    let channels = FrameGenerator::new(s.channels, s.rows, s.cols, 1).frame_channels(0);
    let mut device = Device::new(DeviceConfig::toy(1024), Calibration::gtx480());
    let err = gaspard::run_opencl(&route.opencl, &mut device, &channels);
    assert!(
        matches!(err, Err(gaspard::GaspardError::Sim(simgpu::SimError::OutOfMemory { .. }))),
        "{err:?}"
    );
}

/// A hand-built flat program with an out-of-bounds load: the kernel must
/// fault (as a real GPU would report an illegal access), not wrap or clamp.
#[test]
fn kernel_oob_load_faults() {
    let mut p = FlatProgram::default();
    let a = p.declare("a", vec![8]);
    let out = p.declare("out", vec![8]);
    p.inputs.push(a);
    p.result = out;
    p.steps.push(Step::With {
        target: out,
        with: FlatWith {
            shape: vec![8],
            default: 0,
            modarray_src: None,
            generators: vec![FlatGen::dense(
                &[8],
                // a[iv + 4]: indices 4..12 run past the end.
                SymExpr::Load {
                    array: a,
                    index: vec![SymExpr::bin(
                        sac_lang::ast::BinKind::Add,
                        SymExpr::Idx(0),
                        SymExpr::Const(4),
                    )],
                },
            )],
        },
    });
    // The flat evaluator catches it…
    let frame = mdarray::NdArray::filled([8usize], 1i64);
    assert!(p.run(std::slice::from_ref(&frame), &mut 0).is_err());
    // …and so does the simulated device.
    let cuda = sac_cuda::compile_flat_program(&p).unwrap();
    let mut device = Device::gtx480();
    let err = run_on_device(&cuda, &mut device, &[frame], HostCost::default());
    assert!(
        matches!(err, Err(sac_cuda::CudaError::Sim(simgpu::SimError::OutOfBounds { .. }))),
        "{err:?}"
    );
}

/// Malformed SaC programs are rejected with a line-numbered parse error or a
/// typed check error — never accepted or panicked on.
#[test]
fn frontend_rejects_malformed_programs() {
    for (src, expect) in [
        ("int f( { }", "parse"),
        ("int f() { return( x); }", "type"),
        ("int f() { y = with { } : genarray( [2]); return( y); }", "parse"),
        ("int f(int x) { y = x; }", "type"), // missing return
    ] {
        let result = sac_lang::parse_program(src)
            .map_err(|e| e.to_string())
            .and_then(|p| sac_lang::types::check_program(&p).map_err(|e| e.to_string()));
        let err = result.expect_err(src);
        assert!(err.contains(expect), "'{src}' gave: {err}");
    }
}

/// Runtime faults in SaC programs (division by zero, out-of-range selection)
/// surface as evaluation errors from every execution engine.
#[test]
fn runtime_faults_are_uniform() {
    let src = r#"
int[*] main(int[4] a)
{
    out = with { (. <= iv <= .) : a[iv] / (a[iv] - a[iv]); } : genarray( [4], 0);
    return( out);
}
"#;
    let prog = sac_lang::parse_program(src).unwrap();
    let frame = mdarray::NdArray::filled([4usize], 3i64);

    // Interpreter.
    let mut interp = sac_lang::Interp::new(&prog);
    assert!(interp.call("main", vec![sac_lang::value::Value::Arr(frame.clone())]).is_err());

    // Flat evaluator and device.
    let args = [sac_lang::opt::ArgDesc::Array { name: "a".into(), shape: vec![4] }];
    let (flat, _) = sac_lang::opt::optimize(&prog, "main", &args, &Default::default()).unwrap();
    assert!(flat.run(std::slice::from_ref(&frame), &mut 0).is_err());
    let cuda = sac_cuda::compile_flat_program(&flat).unwrap();
    let mut device = Device::gtx480();
    let err = run_on_device(&cuda, &mut device, &[frame], HostCost::default());
    assert!(
        matches!(err, Err(sac_cuda::CudaError::Sim(simgpu::SimError::DivByZero { .. }))),
        "{err:?}"
    );
}

/// Deployment faults: a model whose filters are allocated to a nonexistent
/// resource is rejected by the chain, not at code generation time.
#[test]
fn bad_allocation_rejected_at_deploy() {
    let (model, _) = downscaler::model::downscaler_model(&Scenario::tiny());
    let alloc = gaspard::Allocation::default()
        .allocate("FrameGenerator", "i7_930")
        .allocate("FrameConstructor", "i7_930")
        .allocate("HFilterChannel", "tpu9000")
        .allocate("VFilterChannel", "gtx480");
    let err = gaspard::transform::deploy(model, gaspard::Platform::cpu_gpu(), alloc);
    assert!(matches!(err, Err(gaspard::GaspardError::UnknownElement { .. })), "{err:?}");
}
