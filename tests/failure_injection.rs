//! Failure injection: every layer must surface faults as typed errors, never
//! panics or silent corruption.

use downscaler::pipelines::{
    build_gaspard, build_sac, run_gaspard_batch, run_sac_batch, ExecOptions, PipelineError,
};
use downscaler::sac_src::{Part, Variant};
use downscaler::{FrameGenerator, Scenario};
use proptest::prelude::*;
use sac_cuda::exec::{run_on_device, HostCost};
use sac_lang::wir::{FlatGen, FlatProgram, FlatWith, Step, SymExpr};
use simgpu::device::{BufferId, Device, DeviceConfig};
use simgpu::Calibration;
use std::collections::HashMap;

/// A device too small for the frames: the run must fail with OutOfMemory and
/// leave no partial simulated-time record inconsistencies.
#[test]
fn device_oom_is_reported() {
    let s = Scenario::tiny();
    let route = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();
    let frame = FrameGenerator::new(s.channels, s.rows, s.cols, 1).frame_rank3(0);
    // Frame alone needs 3*18*32*4 = 6912 bytes; give the device less.
    let mut device = Device::new(DeviceConfig::toy(4096), Calibration::gtx480());
    let err =
        run_on_device(&route.cuda, &mut device, std::slice::from_ref(&frame), HostCost::default());
    match err {
        Err(sac_cuda::CudaError::Sim(simgpu::SimError::OutOfMemory { .. })) => {}
        other => panic!("expected OutOfMemory, got {other:?}"),
    }
}

/// The same, for the OpenCL route.
#[test]
fn gaspard_oom_is_reported() {
    let s = Scenario::tiny();
    let route = build_gaspard(&s).unwrap();
    let channels = FrameGenerator::new(s.channels, s.rows, s.cols, 1).frame_channels(0);
    let mut device = Device::new(DeviceConfig::toy(1024), Calibration::gtx480());
    let err = gaspard::run_opencl(&route.opencl, &mut device, &channels);
    assert!(
        matches!(err, Err(gaspard::GaspardError::Sim(simgpu::SimError::OutOfMemory { .. }))),
        "{err:?}"
    );
}

/// Double free: the second `free` returns `UnknownBuffer` and the allocated
/// byte accounting stays exact — with the pool off and on.
#[test]
fn double_free_is_rejected_with_exact_accounting() {
    for pool in [false, true] {
        let mut d = Device::new(DeviceConfig::toy(1 << 20), Calibration::gtx480());
        d.set_pool_enabled(pool);
        let a = d.malloc(100).unwrap();
        let b = d.malloc(100).unwrap();
        let bytes_per = d.allocated_bytes() / 2;
        assert!(bytes_per >= 400, "pool={pool}");

        d.free(a).unwrap();
        assert_eq!(d.allocated_bytes(), bytes_per, "pool={pool}");
        let err = d.free(a);
        assert!(matches!(err, Err(simgpu::SimError::UnknownBuffer { .. })), "pool={pool}: {err:?}");
        // The rejected free changed no accounting.
        assert_eq!(d.allocated_bytes(), bytes_per, "pool={pool}");
        assert_eq!(d.profiler.alloc.frees, 1, "pool={pool}");

        d.free(b).unwrap();
        assert_eq!(d.allocated_bytes(), 0, "pool={pool}");
        assert_eq!(d.profiler.alloc.frees, 2, "pool={pool}");
    }
}

/// Mid-batch OOM with degradation enabled: the batch that dies under plain
/// multi-stream settings completes at reduced lanes with results
/// bit-identical to the 1-stream run, and reports the downgrade.
#[test]
fn mid_batch_oom_degrades_to_fewer_lanes() {
    let s = Scenario::tiny(); // 2 frames: the second frame's lane OOMs
    let seed = 9;
    let sac = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();
    let gasp = build_gaspard(&s).unwrap();

    // SaC route.
    let mut base = Device::gtx480();
    let baseline = run_sac_batch(&s, &sac, &mut base, seed, ExecOptions::default()).unwrap();
    let cfg = DeviceConfig::toy(base.peak_allocated_bytes()); // one lane fits
    let two = ExecOptions { streams: 2, ..Default::default() };

    let mut naive = Device::new(cfg.clone(), Calibration::gtx480());
    let err = run_sac_batch(&s, &sac, &mut naive, seed, two);
    assert!(
        matches!(
            err,
            Err(PipelineError::Cuda(sac_cuda::CudaError::Sim(
                simgpu::SimError::OutOfMemory { .. }
            )))
        ),
        "{err:?}"
    );

    let mut deg = Device::new(cfg, Calibration::gtx480());
    let outs = run_sac_batch(&s, &sac, &mut deg, seed, ExecOptions { degrade_on_oom: true, ..two })
        .unwrap();
    assert_eq!(outs, baseline);
    assert_eq!(deg.allocated_bytes(), 0);
    assert!(deg.profiler.notes().any(|n| n.contains("degraded")));

    // GASPARD route.
    let mut base = Device::gtx480();
    let baseline = run_gaspard_batch(&s, &gasp, &mut base, seed, ExecOptions::default()).unwrap();
    let cfg = DeviceConfig::toy(base.peak_allocated_bytes());

    let mut naive = Device::new(cfg.clone(), Calibration::gtx480());
    let err = run_gaspard_batch(&s, &gasp, &mut naive, seed, two);
    assert!(
        matches!(
            err,
            Err(PipelineError::Gaspard(gaspard::GaspardError::Sim(
                simgpu::SimError::OutOfMemory { .. }
            )))
        ),
        "{err:?}"
    );

    let mut deg = Device::new(cfg, Calibration::gtx480());
    let outs =
        run_gaspard_batch(&s, &gasp, &mut deg, seed, ExecOptions { degrade_on_oom: true, ..two })
            .unwrap();
    assert_eq!(outs, baseline);
    assert!(deg.profiler.notes().any(|n| n.contains("degraded")));
}

proptest! {
    /// Pool hit/miss/cached-bytes accounting matches a naive replay of the
    /// same malloc/free sequence over power-of-two size classes.
    #[test]
    fn pool_accounting_matches_naive_replay(
        ops in proptest::collection::vec((1usize..64, any::<bool>()), 1..40)
    ) {
        // Huge capacity (no eviction interference), free timing.
        let mut d = Device::new(DeviceConfig::toy(1 << 30), Calibration::zero());
        d.set_pool_enabled(true);

        let mut live: Vec<(BufferId, usize)> = Vec::new(); // (id, class_len)
        let mut bins: HashMap<usize, usize> = HashMap::new(); // class_len -> cached
        let (mut hits, mut misses) = (0u64, 0u64);
        let mut cached = 0usize;
        for (len, free_oldest) in ops {
            if free_oldest && !live.is_empty() {
                let (id, class) = live.remove(0);
                d.free(id).unwrap();
                *bins.entry(class).or_insert(0) += 1;
                cached += class * 4;
            }
            let class = len.next_power_of_two();
            let id = d.malloc(len).unwrap();
            match bins.get_mut(&class) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    cached -= class * 4;
                    hits += 1;
                }
                _ => misses += 1,
            }
            live.push((id, class));
        }

        prop_assert_eq!(d.profiler.alloc.pool_hits, hits);
        prop_assert_eq!(d.profiler.alloc.pool_misses, misses);
        prop_assert_eq!(d.profiler.alloc.mallocs, misses);
        prop_assert_eq!(d.pool().cached_bytes(), cached);
        // Charged bytes equal the sum of live buffers' class sizes.
        let expect_live: usize = live.iter().map(|(_, c)| c * 4).sum();
        prop_assert_eq!(d.allocated_bytes(), expect_live);
        prop_assert_eq!(d.footprint_bytes(), expect_live + cached);
    }
}

/// A hand-built flat program with an out-of-bounds load: the kernel must
/// fault (as a real GPU would report an illegal access), not wrap or clamp.
#[test]
fn kernel_oob_load_faults() {
    let mut p = FlatProgram::default();
    let a = p.declare("a", vec![8]);
    let out = p.declare("out", vec![8]);
    p.inputs.push(a);
    p.result = out;
    p.steps.push(Step::With {
        target: out,
        with: FlatWith {
            shape: vec![8],
            default: 0,
            modarray_src: None,
            generators: vec![FlatGen::dense(
                &[8],
                // a[iv + 4]: indices 4..12 run past the end.
                SymExpr::Load {
                    array: a,
                    index: vec![SymExpr::bin(
                        sac_lang::ast::BinKind::Add,
                        SymExpr::Idx(0),
                        SymExpr::Const(4),
                    )],
                },
            )],
        },
    });
    // The flat evaluator catches it…
    let frame = mdarray::NdArray::filled([8usize], 1i64);
    assert!(p.run(std::slice::from_ref(&frame), &mut 0).is_err());
    // …and so does the simulated device.
    let cuda = sac_cuda::compile_flat_program(&p).unwrap();
    let mut device = Device::gtx480();
    let err = run_on_device(&cuda, &mut device, &[frame], HostCost::default());
    assert!(
        matches!(err, Err(sac_cuda::CudaError::Sim(simgpu::SimError::OutOfBounds { .. }))),
        "{err:?}"
    );
}

/// Malformed SaC programs are rejected with a line-numbered parse error or a
/// typed check error — never accepted or panicked on.
#[test]
fn frontend_rejects_malformed_programs() {
    for (src, expect) in [
        ("int f( { }", "parse"),
        ("int f() { return( x); }", "type"),
        ("int f() { y = with { } : genarray( [2]); return( y); }", "parse"),
        ("int f(int x) { y = x; }", "type"), // missing return
    ] {
        let result = sac_lang::parse_program(src)
            .map_err(|e| e.to_string())
            .and_then(|p| sac_lang::types::check_program(&p).map_err(|e| e.to_string()));
        let err = result.expect_err(src);
        assert!(err.contains(expect), "'{src}' gave: {err}");
    }
}

/// Runtime faults in SaC programs (division by zero, out-of-range selection)
/// surface as evaluation errors from every execution engine.
#[test]
fn runtime_faults_are_uniform() {
    let src = r#"
int[*] main(int[4] a)
{
    out = with { (. <= iv <= .) : a[iv] / (a[iv] - a[iv]); } : genarray( [4], 0);
    return( out);
}
"#;
    let prog = sac_lang::parse_program(src).unwrap();
    let frame = mdarray::NdArray::filled([4usize], 3i64);

    // Interpreter.
    let mut interp = sac_lang::Interp::new(&prog);
    assert!(interp.call("main", vec![sac_lang::value::Value::Arr(frame.clone())]).is_err());

    // Flat evaluator and device.
    let args = [sac_lang::opt::ArgDesc::Array { name: "a".into(), shape: vec![4] }];
    let (flat, _) = sac_lang::opt::optimize(&prog, "main", &args, &Default::default()).unwrap();
    assert!(flat.run(std::slice::from_ref(&frame), &mut 0).is_err());
    let cuda = sac_cuda::compile_flat_program(&flat).unwrap();
    let mut device = Device::gtx480();
    let err = run_on_device(&cuda, &mut device, &[frame], HostCost::default());
    assert!(
        matches!(err, Err(sac_cuda::CudaError::Sim(simgpu::SimError::DivByZero { .. }))),
        "{err:?}"
    );
}

/// Deployment faults: a model whose filters are allocated to a nonexistent
/// resource is rejected by the chain, not at code generation time.
#[test]
fn bad_allocation_rejected_at_deploy() {
    let (model, _) = downscaler::model::downscaler_model(&Scenario::tiny());
    let alloc = gaspard::Allocation::default()
        .allocate("FrameGenerator", "i7_930")
        .allocate("FrameConstructor", "i7_930")
        .allocate("HFilterChannel", "tpu9000")
        .allocate("VFilterChannel", "gtx480");
    let err = gaspard::transform::deploy(model, gaspard::Platform::cpu_gpu(), alloc);
    assert!(matches!(err, Err(gaspard::GaspardError::UnknownElement { .. })), "{err:?}");
}
