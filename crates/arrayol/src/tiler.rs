//! Tilers: ArrayOL's mechanism for addressing sub-arrays (*patterns*).
//!
//! A tiler binds a task port to an array and is defined by three pieces of
//! data (Section IV of the paper):
//!
//! * **origin vector** `o` — where the reference tile starts in the array,
//! * **fitting matrix** `F` — how a pattern's elements map to array elements:
//!   `e_i = o_ref + F·i  (mod s_array)` for every pattern index `i`,
//! * **paving matrix** `P` — how tiles cover the array as the repetition index
//!   advances: `ref_r = o + P·r  (mod s_array)` for every repetition index `r`.
//!
//! All addressing is modulo the array shape, which makes every tiler total:
//! boundary tiles wrap around (toroidal addressing), exactly as in ArrayOL.

use crate::linalg::{to_signed, vadd, IMat, IVec};
use crate::validate::ArrayOlError;
use mdarray::{IndexIter, NdArray, Shape};

/// A tiler: origin vector, fitting matrix and paving matrix.
///
/// ```
/// use arrayol::{IMat, Tiler};
/// use mdarray::{NdArray, Shape};
///
/// // The paper's horizontal-filter input tiler: 11-pixel patterns along the
/// // columns, one tile every 8 columns, one row of tiles per image row.
/// let tiler = Tiler::new(
///     vec![0, 0],
///     IMat::from_rows(&[&[0], &[1]]),          // fitting: pattern walks columns
///     IMat::from_rows(&[&[1, 0], &[0, 8]]),    // paving: rows x 8-column tiles
/// );
/// let frame = NdArray::from_fn([2usize, 16], |ix| (ix[0] * 16 + ix[1]) as i64);
/// let tiles = tiler
///     .gather(&frame, &Shape::new(vec![2, 2]), &Shape::new(vec![11]))
///     .unwrap();
/// assert_eq!(tiles.shape().dims(), &[2, 2, 11]);
/// assert_eq!(*tiles.get(&[1, 1, 0]).unwrap(), 16 + 8); // row 1, tile 1 starts at col 8
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tiler {
    /// Origin of the reference tile in array space (length = array rank).
    pub origin: IVec,
    /// Fitting matrix, `array_rank × pattern_rank`.
    pub fitting: IMat,
    /// Paving matrix, `array_rank × repetition_rank`.
    pub paving: IMat,
}

impl Tiler {
    /// Construct a tiler; matrices are validated lazily via [`Tiler::validate`].
    pub fn new(origin: IVec, fitting: IMat, paving: IMat) -> Self {
        Tiler { origin, fitting, paving }
    }

    /// Check this tiler against the shapes it is supposed to connect.
    pub fn validate(
        &self,
        array: &Shape,
        pattern: &Shape,
        repetition: &Shape,
    ) -> Result<(), ArrayOlError> {
        if self.origin.len() != array.rank() {
            return Err(ArrayOlError::TilerDimMismatch {
                what: "origin length vs array rank",
                expected: array.rank(),
                actual: self.origin.len(),
            });
        }
        if self.fitting.rows() != array.rank() {
            return Err(ArrayOlError::TilerDimMismatch {
                what: "fitting rows vs array rank",
                expected: array.rank(),
                actual: self.fitting.rows(),
            });
        }
        if self.fitting.cols() != pattern.rank() {
            return Err(ArrayOlError::TilerDimMismatch {
                what: "fitting cols vs pattern rank",
                expected: pattern.rank(),
                actual: self.fitting.cols(),
            });
        }
        if self.paving.rows() != array.rank() {
            return Err(ArrayOlError::TilerDimMismatch {
                what: "paving rows vs array rank",
                expected: array.rank(),
                actual: self.paving.rows(),
            });
        }
        if self.paving.cols() != repetition.rank() {
            return Err(ArrayOlError::TilerDimMismatch {
                what: "paving cols vs repetition rank",
                expected: repetition.rank(),
                actual: self.paving.cols(),
            });
        }
        Ok(())
    }

    /// The reference element of tile `rep`: `o + P·rep` (unwrapped, signed).
    pub fn reference(&self, rep: &[usize]) -> IVec {
        vadd(&self.origin, &self.paving.mv(&to_signed(rep)))
    }

    /// Array index of pattern element `pat` within tile `rep`, wrapped modulo
    /// the array shape: `(o + P·rep + F·pat) mod s_array`.
    pub fn element_index(&self, array: &Shape, rep: &[usize], pat: &[usize]) -> Vec<usize> {
        let unwrapped = vadd(&self.reference(rep), &self.fitting.mv(&to_signed(pat)));
        array.wrap(&unwrapped)
    }

    /// Gather every tile into an intermediate array of shape
    /// `repetition ++ pattern` (the paper's Step 1 for input tilers).
    pub fn gather(
        &self,
        array: &NdArray<i64>,
        repetition: &Shape,
        pattern: &Shape,
    ) -> Result<NdArray<i64>, ArrayOlError> {
        self.validate(array.shape(), pattern, repetition)?;
        let out_shape = repetition.concat(pattern);
        let mut data = Vec::with_capacity(out_shape.len());
        IndexIter::for_each_index(repetition, |rep| {
            IndexIter::for_each_index(pattern, |pat| {
                let ix = self.element_index(array.shape(), rep, pat);
                data.push(*array.get_unchecked(&ix));
            });
        });
        NdArray::from_vec(out_shape, data).map_err(|_| ArrayOlError::BadTaskOutput {
            task: "gather".into(),
            detail: "length".into(),
        })
    }

    /// Scatter a `repetition ++ pattern` intermediate into `out` (the paper's
    /// Step 3 for output tilers). Elements hit more than once are overwritten
    /// in repetition order; use [`Tiler::check_exact_cover`] to rule that out.
    pub fn scatter(
        &self,
        tiles: &NdArray<i64>,
        out: &mut NdArray<i64>,
        repetition: &Shape,
        pattern: &Shape,
    ) -> Result<(), ArrayOlError> {
        self.validate(out.shape(), pattern, repetition)?;
        let expected = repetition.concat(pattern);
        if tiles.shape() != &expected {
            return Err(ArrayOlError::BadTaskOutput {
                task: "scatter".into(),
                detail: format!("tiles shape {} != {}", tiles.shape(), expected),
            });
        }
        let src = tiles.as_slice();
        let mut pos = 0usize;
        let out_shape = out.shape().clone();
        IndexIter::for_each_index(repetition, |rep| {
            IndexIter::for_each_index(pattern, |pat| {
                let ix = self.element_index(&out_shape, rep, pat);
                out.set_unchecked(&ix, src[pos]);
                pos += 1;
            });
        });
        Ok(())
    }

    /// Verify that tiling writes every element of `array` exactly once —
    /// the condition for an output tiler to define a single-assignment array.
    pub fn check_exact_cover(
        &self,
        array: &Shape,
        repetition: &Shape,
        pattern: &Shape,
    ) -> Result<(), ArrayOlError> {
        self.validate(array, pattern, repetition)?;
        let mut counts = vec![0u32; array.len()];
        IndexIter::for_each_index(repetition, |rep| {
            IndexIter::for_each_index(pattern, |pat| {
                let ix = self.element_index(array, rep, pat);
                counts[array.offset_unchecked(&ix)] += 1;
            });
        });
        for (off, &c) in counts.iter().enumerate() {
            if c != 1 {
                return Err(ArrayOlError::NotExactCover {
                    element: array.index_of(off),
                    writes: c as usize,
                });
            }
        }
        Ok(())
    }

    /// Convenience: a 1-D "sliding window" tiler along dimension `dim` of a
    /// rank-2 array — pattern of `width` consecutive elements, tiles stepped by
    /// `step` along `dim` and by 1 along the other dimension.
    ///
    /// This is exactly the shape of the downscaler's filters: the horizontal
    /// filter is `sliding_window(1, 11, 8)`, reading an 11-pixel pattern every
    /// 8 columns.
    pub fn sliding_window(dim: usize, step: i64) -> Tiler {
        assert!(dim < 2, "sliding_window is defined for rank-2 arrays");
        let fitting =
            if dim == 0 { IMat::from_rows(&[&[1], &[0]]) } else { IMat::from_rows(&[&[0], &[1]]) };
        let paving = if dim == 0 {
            IMat::from_rows(&[&[step, 0], &[0, 1]])
        } else {
            IMat::from_rows(&[&[1, 0], &[0, step]])
        };
        Tiler { origin: vec![0, 0], fitting, paving }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's horizontal-filter input tiler (Figure 10):
    /// array {1080,1920}, pattern {11}, origin {0,0},
    /// fitting {{0},{1}}, paving {{1,0},{0,8}}, repetition {1080,240}.
    fn hfilter_input_tiler() -> Tiler {
        Tiler::new(vec![0, 0], IMat::from_rows(&[&[0], &[1]]), IMat::from_rows(&[&[1, 0], &[0, 8]]))
    }

    /// The paper's horizontal-filter output tiler: array {1080,720},
    /// pattern {3}, fitting {{0},{1}}, paving {{1,0},{0,3}}.
    fn hfilter_output_tiler() -> Tiler {
        Tiler::new(vec![0, 0], IMat::from_rows(&[&[0], &[1]]), IMat::from_rows(&[&[1, 0], &[0, 3]]))
    }

    #[test]
    fn validate_catches_dimension_errors() {
        let t = hfilter_input_tiler();
        let arr = Shape::new(vec![1080, 1920]);
        let pat = Shape::new(vec![11]);
        let rep = Shape::new(vec![1080, 240]);
        assert!(t.validate(&arr, &pat, &rep).is_ok());
        // Wrong pattern rank.
        assert!(t.validate(&arr, &Shape::new(vec![11, 1]), &rep).is_err());
        // Wrong repetition rank.
        assert!(t.validate(&arr, &pat, &Shape::new(vec![1080])).is_err());
        // Wrong array rank.
        assert!(t.validate(&Shape::new(vec![1080]), &pat, &rep).is_err());
    }

    #[test]
    fn element_index_matches_paper_formulae() {
        let t = hfilter_input_tiler();
        let arr = Shape::new(vec![16, 32]);
        // ref_r = o + P.r: repetition (2, 3) -> row 2, col 24.
        assert_eq!(t.reference(&[2, 3]), vec![2, 24]);
        // e_i = ref + F.i: pattern index 5 -> col 29.
        assert_eq!(t.element_index(&arr, &[2, 3], &[5]), vec![2, 29]);
        // Wrapping: pattern overruns the right edge and wraps modulo 32.
        assert_eq!(t.element_index(&arr, &[0, 3], &[10]), vec![0, 2]);
    }

    #[test]
    fn gather_produces_rep_concat_pattern() {
        let t = hfilter_input_tiler();
        // Small frame: 2 rows x 16 cols, repetition 2 x 2, pattern 11.
        let frame = NdArray::from_fn([2usize, 16], |ix| (ix[0] * 16 + ix[1]) as i64);
        let rep = Shape::new(vec![2, 2]);
        let pat = Shape::new(vec![11]);
        let tiles = t.gather(&frame, &rep, &pat).unwrap();
        assert_eq!(tiles.shape().dims(), &[2, 2, 11]);
        // Tile (0,0) = columns 0..11 of row 0.
        assert_eq!(*tiles.get(&[0, 0, 4]).unwrap(), 4);
        // Tile (1,1) starts at column 8 of row 1.
        assert_eq!(*tiles.get(&[1, 1, 0]).unwrap(), 16 + 8);
        // Wrapping within tile (0,1): pattern index 10 is column 18 mod 16 = 2.
        assert_eq!(*tiles.get(&[0, 1, 10]).unwrap(), 2);
    }

    #[test]
    fn scatter_is_inverse_of_gather_for_exact_covers() {
        // Non-overlapping output tiler: pattern 3, step 3, 2x4 tiles on 2x12.
        let t = hfilter_output_tiler();
        let rep = Shape::new(vec![2, 4]);
        let pat = Shape::new(vec![3]);
        let out_shape = Shape::new(vec![2, 12]);
        t.check_exact_cover(&out_shape, &rep, &pat).unwrap();

        let original = NdArray::from_fn([2usize, 12], |ix| (ix[0] * 100 + ix[1]) as i64);
        let tiles = t.gather(&original, &rep, &pat).unwrap();
        let mut rebuilt = NdArray::filled([2usize, 12], -1i64);
        t.scatter(&tiles, &mut rebuilt, &rep, &pat).unwrap();
        assert_eq!(rebuilt, original);
    }

    #[test]
    fn exact_cover_detects_overlap_and_gaps() {
        // Overlapping: pattern 3 stepped by 2 over 12 columns writes some twice.
        let overlapping = Tiler::new(
            vec![0, 0],
            IMat::from_rows(&[&[0], &[1]]),
            IMat::from_rows(&[&[1, 0], &[0, 2]]),
        );
        let err = overlapping
            .check_exact_cover(
                &Shape::new(vec![2, 12]),
                &Shape::new(vec![2, 6]),
                &Shape::new(vec![3]),
            )
            .unwrap_err();
        assert!(matches!(err, ArrayOlError::NotExactCover { .. }));

        // Gapped: pattern 2 stepped by 3 leaves every third column unwritten.
        let gapped = Tiler::new(
            vec![0, 0],
            IMat::from_rows(&[&[0], &[1]]),
            IMat::from_rows(&[&[1, 0], &[0, 3]]),
        );
        let err = gapped
            .check_exact_cover(
                &Shape::new(vec![2, 12]),
                &Shape::new(vec![2, 4]),
                &Shape::new(vec![2]),
            )
            .unwrap_err();
        assert!(matches!(err, ArrayOlError::NotExactCover { writes: 0, .. }));
    }

    #[test]
    fn paper_hfilter_tilers_cover_output_exactly() {
        // Scaled-down frame keeping the 8 -> 3 column ratio: 4x48 -> 4x18.
        let out = Shape::new(vec![4, 18]);
        let rep = Shape::new(vec![4, 6]);
        let pat = Shape::new(vec![3]);
        hfilter_output_tiler().check_exact_cover(&out, &rep, &pat).unwrap();
    }

    #[test]
    fn sliding_window_constructor() {
        let t = Tiler::sliding_window(1, 8);
        assert_eq!(t, hfilter_input_tiler());
        let tv = Tiler::sliding_window(0, 9);
        assert_eq!(tv.paving.row(0), &[9, 0]);
        assert_eq!(tv.fitting.row(0), &[1]);
        assert_eq!(tv.fitting.row(1), &[0]);
    }

    #[test]
    fn origin_offsets_every_tile() {
        let mut t = hfilter_input_tiler();
        t.origin = vec![1, 2];
        let arr = Shape::new(vec![8, 32]);
        assert_eq!(t.element_index(&arr, &[0, 0], &[0]), vec![1, 2]);
        assert_eq!(t.element_index(&arr, &[1, 1], &[3]), vec![2, 13]);
    }
}
