//! Tiler composition: fusing a producer→consumer pair of repetitive tasks.
//!
//! Following Feautrier's elementary transformation analysis for Array-OL, a
//! producer that tiles its output array `M` and a consumer that tiles `M` back
//! in can — under legality conditions checked here — be composed into a single
//! repetitive task that never materialises `M`. The composed task gathers
//! directly from the producer's *input* array through a **composed gather
//! tiler**, recomputes the producer patterns it needs in registers, and
//! scatters through the consumer's output tiler.
//!
//! The algebra works dimension by dimension on `M` and only accepts tilers in
//! *canonical form* (each pattern/repetition axis drives at most one array
//! dimension with unit fitting steps and positive paving steps — true of every
//! tiler the GASPARD2 chain schedules). Everything else **refuses** rather
//! than risking an illegal fusion: the caller falls back to the unfused route.
//!
//! Writing `s_d` for the producer's block extent along dimension `d` (its
//! output pattern extent there), the producer must pave `M` contiguously
//! (`step == s_d`, `s_d · reps == |M_d|`, checked via
//! [`Tiler::check_exact_cover`]). A consumer stepping `c_d` with window `w_d`
//! then composes in one of two ways:
//!
//! * **aligned stepping** (`c_d ≡ 0 mod s_d`): each consumer instance reads
//!   `U_d = ⌈w_d / s_d⌉` whole producer blocks starting `β_d = c_d / s_d`
//!   blocks apart;
//! * **block grouping** (`s_d ≡ 0 mod c_d`): `B_d = s_d / c_d` consecutive
//!   consumer instances fall inside one producer block, so the fused task
//!   runs the consumer `B_d` times per gathered block.
//!
//! Boundary windows that step outside `M` are legal only when the producer's
//! own input addressing is wrap-consistent: advancing a producer repetition
//! axis by its full extent must be a no-op modulo the input array shape.

use crate::linalg::{vadd, IMat};
use crate::tiler::Tiler;
use crate::validate::ArrayOlError;
use mdarray::Shape;

/// One side of a repetitive task, as seen by the composition algebra.
#[derive(Debug, Clone, Copy)]
pub struct StagePorts<'a> {
    /// Input tiler (over the stage's input array).
    pub in_tiler: &'a Tiler,
    /// Input pattern shape.
    pub in_pattern: &'a [usize],
    /// Output tiler (over the stage's output array).
    pub out_tiler: &'a Tiler,
    /// Output pattern shape.
    pub out_pattern: &'a [usize],
    /// Repetition space.
    pub repetition: &'a [usize],
}

/// Why a producer→consumer pair cannot be fused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComposeError {
    /// A tiler is not in the canonical form the algebra handles.
    NonCanonical(String),
    /// The consumer's tiling does not line up with the producer's blocks.
    Misaligned(String),
    /// Fusion would need toroidal wrap the producer's input addressing does
    /// not honour.
    WrapInconsistent(String),
    /// The composed scatter tiler failed the exact-cover legality check.
    NotExactCover(ArrayOlError),
}

impl std::fmt::Display for ComposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComposeError::NonCanonical(msg) => write!(f, "non-canonical tiler: {msg}"),
            ComposeError::Misaligned(msg) => write!(f, "misaligned tilings: {msg}"),
            ComposeError::WrapInconsistent(msg) => write!(f, "wrap-inconsistent: {msg}"),
            ComposeError::NotExactCover(e) => write!(f, "composed scatter not exact: {e:?}"),
        }
    }
}

/// The result of composing a producer→consumer tiler pair: everything needed
/// to build one fused repetitive task that bypasses the intermediate array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedTiling {
    /// Repetition space of the fused task (consumer instances, grouped by
    /// block along grouped axes).
    pub repetition: Vec<usize>,
    /// Input pattern shape of the fused task: one producer input pattern per
    /// gathered producer block (`U_0 × … × U_{m-1}` blocks).
    pub gather_pattern: Vec<usize>,
    /// Composed gather tiler over the producer's input array.
    pub gather: Tiler,
    /// Output pattern shape of the fused task: one consumer output pattern
    /// per grouped consumer instance (`B` instances).
    pub scatter_pattern: Vec<usize>,
    /// Scatter tiler over the consumer's output array.
    pub scatter: Tiler,
    /// Producer applications per fused instance (`Π U_d`).
    pub inner_count: usize,
    /// Flat producer input pattern length.
    pub inner_in_len: usize,
    /// Flat producer output pattern length.
    pub inner_out_len: usize,
    /// For each grouped consumer instance: the flat indices into the
    /// recomputed intermediate (`inner_count × inner_out_len` values) that
    /// form its input pattern.
    pub outer_gathers: Vec<Vec<usize>>,
}

/// Per-`M`-dimension view of a canonical tiler.
struct DimView {
    rep_axis: Option<usize>,
    step: i64,
    pat_axis: Option<usize>,
    extent: usize,
    origin: i64,
}

/// Per-`M`-dimension composition result.
struct DimComp {
    block_size: i64,
    blocks_read: usize,
    alpha: i64,
    beta: i64,
    group: i64,
}

fn non_canonical(what: &str, msg: impl std::fmt::Display) -> ComposeError {
    ComposeError::NonCanonical(format!("{what}: {msg}"))
}

/// Break a tiler over `M` into independent per-dimension views, refusing
/// anything outside canonical form.
fn decompose(
    t: &Tiler,
    pattern: &[usize],
    repetition: &[usize],
    m_rank: usize,
    what: &str,
) -> Result<Vec<DimView>, ComposeError> {
    if t.origin.len() != m_rank || t.fitting.rows() != m_rank || t.paving.rows() != m_rank {
        return Err(non_canonical(what, "tiler rank disagrees with the array"));
    }
    if t.fitting.cols() != pattern.len() || t.paving.cols() != repetition.len() {
        return Err(non_canonical(what, "matrix columns disagree with pattern/repetition"));
    }
    let mut views: Vec<DimView> = (0..m_rank)
        .map(|d| DimView {
            rep_axis: None,
            step: 0,
            pat_axis: None,
            extent: 1,
            origin: t.origin[d],
        })
        .collect();
    for (j, &extent) in pattern.iter().enumerate() {
        let nonzero: Vec<usize> = (0..m_rank).filter(|&d| t.fitting.at(d, j) != 0).collect();
        match nonzero.as_slice() {
            [] if extent == 1 => {}
            [] => return Err(non_canonical(what, format!("pattern axis {j} maps nowhere"))),
            [d] if t.fitting.at(*d, j) == 1 => {
                if views[*d].pat_axis.is_some() {
                    return Err(non_canonical(what, format!("dimension {d} has two pattern axes")));
                }
                views[*d].pat_axis = Some(j);
                views[*d].extent = extent;
            }
            [d] => {
                return Err(non_canonical(
                    what,
                    format!("fitting step {} on dimension {d} is not 1", t.fitting.at(*d, j)),
                ))
            }
            _ => return Err(non_canonical(what, format!("pattern axis {j} is not axis-aligned"))),
        }
    }
    for (a, &count) in repetition.iter().enumerate() {
        let nonzero: Vec<usize> = (0..m_rank).filter(|&d| t.paving.at(d, a) != 0).collect();
        match nonzero.as_slice() {
            [] if count == 1 => {}
            [] => return Err(non_canonical(what, format!("repetition axis {a} maps nowhere"))),
            [d] if t.paving.at(*d, a) > 0 => {
                if views[*d].rep_axis.is_some() {
                    return Err(non_canonical(
                        what,
                        format!("dimension {d} has two repetition axes"),
                    ));
                }
                views[*d].rep_axis = Some(a);
                views[*d].step = t.paving.at(*d, a);
            }
            [d] => {
                return Err(non_canonical(
                    what,
                    format!("paving step {} on dimension {d} is not positive", t.paving.at(*d, a)),
                ))
            }
            _ => {
                return Err(non_canonical(what, format!("repetition axis {a} is not axis-aligned")))
            }
        }
    }
    Ok(views)
}

/// Row-major lattice of a small shape.
fn lattice(shape: &[usize]) -> Vec<Vec<usize>> {
    let mut out = vec![vec![]];
    for &d in shape {
        let mut next = Vec::with_capacity(out.len() * d);
        for prefix in &out {
            for x in 0..d {
                let mut p = prefix.clone();
                p.push(x);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

/// Row-major flattening of `ix` under `shape`.
fn flatten(ix: &[usize], shape: &[usize]) -> usize {
    ix.iter().zip(shape).fold(0, |acc, (&i, &d)| acc * d + i)
}

/// Compose a producer stage writing `mid_shape` with a consumer stage reading
/// it, yielding the tiling of the fused stage over `in_shape` → `out_shape`.
pub fn compose(
    producer: &StagePorts<'_>,
    consumer: &StagePorts<'_>,
    in_shape: &Shape,
    mid_shape: &Shape,
    out_shape: &Shape,
) -> Result<FusedTiling, ComposeError> {
    let m_dims = mid_shape.dims();
    let m_rank = m_dims.len();
    let po = decompose(
        producer.out_tiler,
        producer.out_pattern,
        producer.repetition,
        m_rank,
        "producer output",
    )?;
    let ci = decompose(
        consumer.in_tiler,
        consumer.in_pattern,
        consumer.repetition,
        m_rank,
        "consumer input",
    )?;
    if producer.in_tiler.origin.len() != in_shape.dims().len() {
        return Err(non_canonical("producer input", "tiler rank disagrees with the array"));
    }

    // Legality precondition: the producer writes every element of `M` exactly
    // once — the same exact-cover check the validator runs on output tilers.
    producer
        .out_tiler
        .check_exact_cover(
            mid_shape,
            &Shape::new(producer.repetition.to_vec()),
            &Shape::new(producer.out_pattern.to_vec()),
        )
        .map_err(ComposeError::NotExactCover)?;

    let mut dims: Vec<DimComp> = Vec::with_capacity(m_rank);
    for d in 0..m_rank {
        let s = po[d].extent as i64;
        let prod_count = po[d].rep_axis.map_or(1, |a| producer.repetition[a]) as i64;
        if po[d].rep_axis.is_some() && po[d].step != s {
            return Err(ComposeError::Misaligned(format!(
                "producer blocks on dimension {d} are not contiguous (step {} vs extent {s})",
                po[d].step
            )));
        }
        if s * prod_count != m_dims[d] as i64 {
            return Err(ComposeError::Misaligned(format!(
                "producer blocks do not tile dimension {d} ({s}×{prod_count} vs {})",
                m_dims[d]
            )));
        }

        let align = ci[d].origin - po[d].origin;
        if align % s != 0 {
            return Err(ComposeError::Misaligned(format!(
                "consumer origin on dimension {d} is not block-aligned (offset {align}, block {s})"
            )));
        }
        let alpha = align / s;
        let w = ci[d].extent as i64;
        let c = if ci[d].rep_axis.is_some() { ci[d].step } else { 0 };
        let n = ci[d].rep_axis.map_or(1, |ax| consumer.repetition[ax]) as i64;
        let (group, blocks_read, beta) = if c % s == 0 {
            (1, ((w + s - 1) / s) as usize, c / s)
        } else if s % c == 0 {
            let b = s / c;
            if (b - 1) * c + w > s {
                return Err(ComposeError::Misaligned(format!(
                    "consumer windows on dimension {d} straddle producer blocks \
                     (footprint {} over block {s})",
                    (b - 1) * c + w
                )));
            }
            if n % b != 0 {
                return Err(ComposeError::Misaligned(format!(
                    "consumer repetition {n} on dimension {d} is not divisible by group {b}"
                )));
            }
            (b, 1, 1)
        } else {
            return Err(ComposeError::Misaligned(format!(
                "consumer step {c} on dimension {d} is incommensurate with block {s}"
            )));
        };

        // Virtual producer repetitions the fused gather addresses along this
        // dimension; out-of-range ones rely on toroidal wrap being consistent
        // between `M` and the producer's input addressing.
        let n_fused = n / group;
        let last = alpha + beta * (n_fused - 1);
        let (min_rp, max_rp) = (alpha.min(last), alpha.max(last) + blocks_read as i64 - 1);
        if min_rp < 0 || max_rp >= prod_count {
            let Some(a) = po[d].rep_axis else {
                return Err(ComposeError::WrapInconsistent(format!(
                    "dimension {d} needs virtual producer repetitions but the producer has none"
                )));
            };
            for (e, &ae) in in_shape.dims().iter().enumerate() {
                let t = producer.in_tiler.paving.at(e, a);
                if t != 0 && (t * prod_count) % ae as i64 != 0 {
                    return Err(ComposeError::WrapInconsistent(format!(
                        "wrapping producer repetition axis {a} (extent {prod_count}) moves the \
                         input window by {t}·{prod_count} ≢ 0 mod {ae}"
                    )));
                }
            }
        }
        dims.push(DimComp { block_size: s, blocks_read, alpha, beta, group });
    }

    let prod_rank = producer.repetition.len();
    let cons_rank = consumer.repetition.len();

    // Composed index maps, built with the tiler algebra: the fused gather is
    // the producer's input tiler pre-composed with the block-selection map.
    let mut alpha_vec = vec![0i64; prod_rank];
    let mut b_mat = IMat::zeros(prod_rank, cons_rank);
    let mut u_embed = IMat::zeros(prod_rank, m_rank);
    let mut groups = vec![1i64; cons_rank];
    for (d, dc) in dims.iter().enumerate() {
        if let Some(a) = po[d].rep_axis {
            alpha_vec[a] = dc.alpha;
            *u_embed.at_mut(a, d) = 1;
            if let Some(ax) = ci[d].rep_axis {
                *b_mat.at_mut(a, ax) = dc.beta;
            }
        }
        if let Some(ax) = ci[d].rep_axis {
            groups[ax] = dc.group;
        }
    }
    let p_in = &producer.in_tiler.paving;
    let gather = Tiler::new(
        vadd(&producer.in_tiler.origin, &p_in.mv(&alpha_vec)),
        p_in.matmul(&u_embed).hcat(&producer.in_tiler.fitting),
        p_in.matmul(&b_mat),
    );
    let blocks_read: Vec<usize> = dims.iter().map(|dc| dc.blocks_read).collect();
    let mut gather_pattern = blocks_read.clone();
    gather_pattern.extend_from_slice(producer.in_pattern);

    let repetition: Vec<usize> =
        (0..cons_rank).map(|ax| consumer.repetition[ax] / groups[ax] as usize).collect();

    let group_shape: Vec<usize> = groups.iter().map(|&g| g as usize).collect();
    let mut scatter_pattern = group_shape.clone();
    scatter_pattern.extend_from_slice(consumer.out_pattern);
    let mut group_diag = IMat::zeros(cons_rank, cons_rank);
    for (ax, &g) in groups.iter().enumerate() {
        *group_diag.at_mut(ax, ax) = g;
    }
    let p_out = &consumer.out_tiler.paving;
    let scatter = Tiler::new(
        consumer.out_tiler.origin.clone(),
        p_out.hcat(&consumer.out_tiler.fitting),
        p_out.matmul(&group_diag),
    );

    // Legality post-check, again via exact cover: the fused task must still
    // write every element of the output exactly once.
    scatter
        .check_exact_cover(
            out_shape,
            &Shape::new(repetition.clone()),
            &Shape::new(scatter_pattern.clone()),
        )
        .map_err(ComposeError::NotExactCover)?;

    // Static gather plan for the consumer stage: which recomputed producer
    // outputs each grouped consumer instance reads.
    let inner_out_len: usize = producer.out_pattern.iter().product();
    let mut outer_gathers = Vec::with_capacity(group_shape.iter().product());
    for b in lattice(&group_shape) {
        let mut row = Vec::with_capacity(consumer.in_pattern.iter().product());
        for i in lattice(consumer.in_pattern) {
            let mut u_ix = vec![0usize; m_rank];
            let mut j_ix = vec![0usize; producer.out_pattern.len()];
            for (d, dc) in dims.iter().enumerate() {
                let mut rel = 0i64;
                if let Some(ax) = ci[d].rep_axis {
                    rel += ci[d].step * b[ax] as i64;
                }
                if let Some(p) = ci[d].pat_axis {
                    rel += i[p] as i64;
                }
                debug_assert!(rel >= 0);
                u_ix[d] = (rel / dc.block_size) as usize;
                debug_assert!(u_ix[d] < dc.blocks_read);
                if let Some(q) = po[d].pat_axis {
                    j_ix[q] = (rel % dc.block_size) as usize;
                } else {
                    debug_assert_eq!(rel % dc.block_size, 0);
                }
            }
            let chunk = flatten(&u_ix, &blocks_read);
            row.push(chunk * inner_out_len + flatten(&j_ix, producer.out_pattern));
        }
        outer_gathers.push(row);
    }

    Ok(FusedTiling {
        repetition,
        gather_pattern,
        gather,
        scatter_pattern,
        scatter,
        inner_count: blocks_read.iter().product(),
        inner_in_len: producer.in_pattern.iter().product(),
        inner_out_len,
        outer_gathers,
    })
}

/// CPU reference for a fused stage: evaluate it exactly as the generated
/// kernel would, useful for testing the algebra without a code generator.
///
/// `inner` and `outer` are the producer and consumer elementary functions on
/// flat patterns; `input` is the producer's input array (flat, row-major).
pub fn apply_fused(
    fused: &FusedTiling,
    inner: impl Fn(&[i64]) -> Vec<i64>,
    outer: impl Fn(&[i64]) -> Vec<i64>,
    input: &[i64],
    in_shape: &Shape,
    out_shape: &Shape,
) -> Vec<i64> {
    let mut out = vec![0i64; out_shape.len()];
    for rep in lattice(&fused.repetition) {
        let mut pattern = Vec::with_capacity(fused.gather_pattern.iter().product());
        for p in lattice(&fused.gather_pattern) {
            let ix = fused.gather.element_index(in_shape, &rep, &p);
            pattern.push(input[flatten(&ix, in_shape.dims())]);
        }
        let mut mid = Vec::with_capacity(fused.inner_count * fused.inner_out_len);
        for chunk in pattern.chunks(fused.inner_in_len) {
            mid.extend(inner(chunk));
        }
        let mut result = Vec::new();
        for row in &fused.outer_gathers {
            let gathered: Vec<i64> = row.iter().map(|&k| mid[k]).collect();
            result.extend(outer(&gathered));
        }
        for (p, v) in lattice(&fused.scatter_pattern).iter().zip(result) {
            let ix = fused.scatter.element_index(out_shape, &rep, p);
            out[flatten(&ix, out_shape.dims())] = v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::IMat;
    use mdarray::Shape;

    /// Reference (unfused) evaluation of one repetitive stage.
    fn run_stage(
        ports: &StagePorts<'_>,
        op: &dyn Fn(&[i64]) -> Vec<i64>,
        input: &[i64],
        in_shape: &Shape,
        out_shape: &Shape,
    ) -> Vec<i64> {
        let mut out = vec![0i64; out_shape.len()];
        for rep in lattice(ports.repetition) {
            let mut pat = Vec::new();
            for p in lattice(ports.in_pattern) {
                let ix = ports.in_tiler.element_index(in_shape, &rep, &p);
                pat.push(input[flatten(&ix, in_shape.dims())]);
            }
            for (p, v) in lattice(ports.out_pattern).iter().zip(op(&pat)) {
                let ix = ports.out_tiler.element_index(out_shape, &rep, p);
                out[flatten(&ix, out_shape.dims())] = v;
            }
        }
        out
    }

    fn interp(windows: &[(usize, usize)], divisor: i64) -> impl Fn(&[i64]) -> Vec<i64> + '_ {
        move |pat: &[i64]| {
            windows
                .iter()
                .map(|&(off, len)| {
                    let t: i64 = pat[off..off + len].iter().sum();
                    t / divisor - t % divisor
                })
                .collect()
        }
    }

    /// The miniature two-stage chain from the gaspard fixtures: both stages
    /// interpolate 5→2 along columns. Composition takes the aligned-stepping
    /// branch on columns and needs a wrap-consistent virtual repetition.
    #[test]
    fn aligned_stepping_chain_matches_unfused() {
        let col = IMat::from_rows(&[&[0], &[1]]);
        let stage_in = |step: i64| {
            Tiler::new(vec![0, 0], col.clone(), IMat::from_rows(&[&[1, 0], &[0, step]]))
        };
        let producer = StagePorts {
            in_tiler: &stage_in(4),
            in_pattern: &[5],
            out_tiler: &stage_in(2),
            out_pattern: &[2],
            repetition: &[4, 4],
        };
        let consumer = StagePorts {
            in_tiler: &stage_in(4),
            in_pattern: &[5],
            out_tiler: &stage_in(2),
            out_pattern: &[2],
            repetition: &[4, 2],
        };
        let (a, m, o) = (Shape::new(vec![4, 16]), Shape::new(vec![4, 8]), Shape::new(vec![4, 4]));
        let fused = compose(&producer, &consumer, &a, &m, &o).unwrap();
        assert_eq!(fused.repetition, vec![4, 2]);
        assert_eq!(fused.gather_pattern, vec![1, 3, 5]);
        assert_eq!(fused.inner_count, 3);
        assert_eq!(fused.scatter_pattern, vec![1, 1, 2]);

        let op = interp(&[(0, 3), (2, 3)], 3);
        let input: Vec<i64> = (0..64).map(|v| v * 7 % 23).collect();
        let mid = run_stage(&producer, &op, &input, &a, &m);
        let expect = run_stage(&consumer, &op, &mid, &m, &o);
        let got = apply_fused(&fused, &op, &op, &input, &a, &o);
        assert_eq!(got, expect);
    }

    /// An H-then-V chain shaped like the downscaler: the vertical consumer
    /// steps 1 along columns inside the producer's 3-wide blocks, so fusion
    /// groups 3 consumer instances per gathered block (the grouping branch).
    #[test]
    fn block_grouping_chain_matches_unfused() {
        let col = IMat::from_rows(&[&[0], &[1]]);
        let row = IMat::from_rows(&[&[1], &[0]]);
        let h_in = Tiler::new(vec![0, 0], col.clone(), IMat::from_rows(&[&[1, 0], &[0, 8]]));
        let h_out = Tiler::new(vec![0, 0], col.clone(), IMat::from_rows(&[&[1, 0], &[0, 3]]));
        let v_in = Tiler::new(vec![0, 0], row.clone(), IMat::from_rows(&[&[2, 0], &[0, 1]]));
        let v_out = Tiler::new(vec![0, 0], row.clone(), IMat::from_rows(&[&[2, 0], &[0, 1]]));
        let producer = StagePorts {
            in_tiler: &h_in,
            in_pattern: &[8],
            out_tiler: &h_out,
            out_pattern: &[3],
            repetition: &[8, 2],
        };
        let consumer = StagePorts {
            in_tiler: &v_in,
            in_pattern: &[4],
            out_tiler: &v_out,
            out_pattern: &[2],
            repetition: &[4, 6],
        };
        let (a, m, o) = (Shape::new(vec![8, 16]), Shape::new(vec![8, 6]), Shape::new(vec![8, 6]));
        let fused = compose(&producer, &consumer, &a, &m, &o).unwrap();
        assert_eq!(fused.repetition, vec![4, 2], "columns grouped 3-to-1");
        assert_eq!(fused.gather_pattern, vec![4, 1, 8]);
        assert_eq!(fused.scatter_pattern, vec![1, 3, 2]);
        assert_eq!(fused.outer_gathers.len(), 3);

        let h_op = interp(&[(0, 4), (2, 4), (4, 4)], 4);
        let v_op = interp(&[(0, 3), (1, 3)], 3);
        let input: Vec<i64> = (0..128).map(|v| v * 13 % 31).collect();
        let mid = run_stage(&producer, &h_op, &input, &a, &m);
        let expect = run_stage(&consumer, &v_op, &mid, &m, &o);
        let got = apply_fused(&fused, &h_op, &v_op, &input, &a, &o);
        assert_eq!(got, expect);
    }

    #[test]
    fn incommensurate_step_refuses() {
        let col = IMat::from_rows(&[&[0], &[1]]);
        let h_in = Tiler::new(vec![0, 0], col.clone(), IMat::from_rows(&[&[1, 0], &[0, 8]]));
        let h_out = Tiler::new(vec![0, 0], col.clone(), IMat::from_rows(&[&[1, 0], &[0, 3]]));
        // Steps 2 columns over 3-wide producer blocks: neither branch applies.
        let bad_in = Tiler::new(vec![0, 0], col.clone(), IMat::from_rows(&[&[1, 0], &[0, 2]]));
        let producer = StagePorts {
            in_tiler: &h_in,
            in_pattern: &[8],
            out_tiler: &h_out,
            out_pattern: &[3],
            repetition: &[8, 2],
        };
        let consumer = StagePorts {
            in_tiler: &bad_in,
            in_pattern: &[2],
            out_tiler: &bad_in,
            out_pattern: &[2],
            repetition: &[8, 3],
        };
        let (a, m, o) = (Shape::new(vec![8, 16]), Shape::new(vec![8, 6]), Shape::new(vec![8, 6]));
        let err = compose(&producer, &consumer, &a, &m, &o).unwrap_err();
        assert!(matches!(err, ComposeError::Misaligned(_)), "{err}");
    }

    #[test]
    fn non_exact_producer_refuses() {
        let col = IMat::from_rows(&[&[0], &[1]]);
        let h_in = Tiler::new(vec![0, 0], col.clone(), IMat::from_rows(&[&[1, 0], &[0, 8]]));
        // 3-wide patterns paved 4 apart leave gaps in the intermediate.
        let gappy = Tiler::new(vec![0, 0], col.clone(), IMat::from_rows(&[&[1, 0], &[0, 4]]));
        let producer = StagePorts {
            in_tiler: &h_in,
            in_pattern: &[8],
            out_tiler: &gappy,
            out_pattern: &[3],
            repetition: &[8, 2],
        };
        let consumer = producer;
        let (a, m) = (Shape::new(vec![8, 16]), Shape::new(vec![8, 8]));
        let err = compose(&producer, &consumer, &a, &m, &m).unwrap_err();
        assert!(matches!(err, ComposeError::Misaligned(_) | ComposeError::NotExactCover(_)));
    }
}
