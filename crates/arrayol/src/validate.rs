//! Static well-formedness checks and the crate-wide error type.

/// Errors raised while validating or executing an ArrayOL specification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum ArrayOlError {
    /// A tiler's matrices disagree with the shapes of the array / pattern /
    /// repetition space it connects.
    TilerDimMismatch { what: &'static str, expected: usize, actual: usize },
    /// An output tiler does not write every array element exactly once.
    NotExactCover { element: Vec<usize>, writes: usize },
    /// Two tasks write the same array — violates single assignment.
    MultipleWriters { array: String },
    /// An array is consumed but never produced and is not a graph input.
    NoProducer { array: String },
    /// The task graph contains a dependence cycle (impossible schedule).
    DependenceCycle { involving: String },
    /// An elementary function returned the wrong number or shape of patterns.
    BadTaskOutput { task: String, detail: String },
    /// A referenced array or task id was out of range.
    UnknownId { what: &'static str, id: usize },
    /// An execution input was missing or had the wrong shape.
    BadInput { array: String, detail: String },
}

impl std::fmt::Display for ArrayOlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrayOlError::TilerDimMismatch { what, expected, actual } => {
                write!(f, "tiler {what}: expected dimension {expected}, got {actual}")
            }
            ArrayOlError::NotExactCover { element, writes } => {
                write!(f, "output tiler writes element {element:?} {writes} times (expected 1)")
            }
            ArrayOlError::MultipleWriters { array } => {
                write!(f, "array '{array}' has multiple writers (single assignment violated)")
            }
            ArrayOlError::NoProducer { array } => {
                write!(f, "array '{array}' is read but never produced")
            }
            ArrayOlError::DependenceCycle { involving } => {
                write!(f, "dependence cycle involving task '{involving}'")
            }
            ArrayOlError::BadTaskOutput { task, detail } => {
                write!(f, "task '{task}' produced invalid output: {detail}")
            }
            ArrayOlError::UnknownId { what, id } => write!(f, "unknown {what} id {id}"),
            ArrayOlError::BadInput { array, detail } => {
                write!(f, "bad input for array '{array}': {detail}")
            }
        }
    }
}

impl std::error::Error for ArrayOlError {}
