//! Application graphs: the "globally irregular" half of GILR.
//!
//! An [`ApplicationGraph`] declares multidimensional arrays and the repetitive
//! tasks that exchange them. Because ArrayOL is single-assignment, every array
//! has at most one producer; the graph therefore induces a DAG of true data
//! dependences, and [`ApplicationGraph::schedule`] returns any topological
//! order (all such orders compute the same arrays — the language is
//! deterministic).

use crate::task::{RepetitiveTask, TaskBody};
use crate::validate::ArrayOlError;
use mdarray::Shape;

/// Identifier of an array declared in an [`ApplicationGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

/// Identifier of a task within an [`ApplicationGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// A declared multidimensional array (a graph edge carrier).
#[derive(Debug, Clone)]
pub struct ArrayDecl {
    /// Diagnostic name.
    pub name: String,
    /// Full shape of the array (time expanded as array dimensions, per ArrayOL).
    pub shape: Shape,
}

/// A GILR application: arrays + repetitive tasks.
#[derive(Clone, Debug, Default)]
pub struct ApplicationGraph {
    arrays: Vec<ArrayDecl>,
    tasks: Vec<RepetitiveTask>,
    /// Arrays supplied by the environment (e.g. the input video signal).
    pub external_inputs: Vec<ArrayId>,
    /// Arrays delivered to the environment (e.g. the downscaled video).
    pub external_outputs: Vec<ArrayId>,
}

impl ApplicationGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare an array; returns its id.
    pub fn declare_array(&mut self, name: impl Into<String>, shape: impl Into<Shape>) -> ArrayId {
        self.arrays.push(ArrayDecl { name: name.into(), shape: shape.into() });
        ArrayId(self.arrays.len() - 1)
    }

    /// Add a task; returns its id.
    pub fn add_task(&mut self, task: RepetitiveTask) -> TaskId {
        self.tasks.push(task);
        TaskId(self.tasks.len() - 1)
    }

    /// Look up an array declaration.
    pub fn array(&self, id: ArrayId) -> Result<&ArrayDecl, ArrayOlError> {
        self.arrays.get(id.0).ok_or(ArrayOlError::UnknownId { what: "array", id: id.0 })
    }

    /// Look up a task.
    pub fn task(&self, id: TaskId) -> Result<&RepetitiveTask, ArrayOlError> {
        self.tasks.get(id.0).ok_or(ArrayOlError::UnknownId { what: "task", id: id.0 })
    }

    /// All tasks in declaration order.
    pub fn tasks(&self) -> &[RepetitiveTask] {
        &self.tasks
    }

    /// All array declarations.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Number of tasks (including nested hierarchy only at this level).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// The unique producer of each array, if any.
    fn producers(&self) -> Result<Vec<Option<TaskId>>, ArrayOlError> {
        let mut prod: Vec<Option<TaskId>> = vec![None; self.arrays.len()];
        for (t, task) in self.tasks.iter().enumerate() {
            for port in &task.outputs {
                let slot = prod
                    .get_mut(port.array.0)
                    .ok_or(ArrayOlError::UnknownId { what: "array", id: port.array.0 })?;
                if slot.is_some() {
                    return Err(ArrayOlError::MultipleWriters {
                        array: self.arrays[port.array.0].name.clone(),
                    });
                }
                *slot = Some(TaskId(t));
            }
        }
        Ok(prod)
    }

    /// Validate the graph:
    ///
    /// 1. every port references a declared array,
    /// 2. single assignment: at most one producer per array,
    /// 3. every consumed array is produced or an external input,
    /// 4. tilers are dimensionally consistent with their array / pattern /
    ///    repetition shapes,
    /// 5. every output tiler covers its array exactly once (so results are
    ///    fully defined and repetitions are independent),
    /// 6. the dependence relation is acyclic.
    pub fn validate(&self) -> Result<(), ArrayOlError> {
        let producers = self.producers()?;
        for task in &self.tasks {
            for port in task.inputs.iter().chain(&task.outputs) {
                let arr = self.array(port.array)?;
                port.tiler.validate(&arr.shape, &port.pattern, &task.repetition)?;
            }
            for port in &task.outputs {
                let arr = self.array(port.array)?;
                port.tiler.check_exact_cover(&arr.shape, &task.repetition, &port.pattern)?;
            }
            for port in &task.inputs {
                if producers[port.array.0].is_none() && !self.external_inputs.contains(&port.array)
                {
                    return Err(ArrayOlError::NoProducer {
                        array: self.arrays[port.array.0].name.clone(),
                    });
                }
            }
            if let TaskBody::Hierarchical(sub) = &task.body {
                sub.validate()?;
            }
        }
        self.schedule()?;
        Ok(())
    }

    /// A dependence-respecting task order (Kahn's algorithm).
    ///
    /// Errors with [`ArrayOlError::DependenceCycle`] if the graph is cyclic,
    /// which cannot happen for a well-formed single-assignment specification
    /// unless a task consumes its own output.
    pub fn schedule(&self) -> Result<Vec<TaskId>, ArrayOlError> {
        let producers = self.producers()?;
        // deps[t] = tasks that must run before t.
        let mut indegree = vec![0usize; self.tasks.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.tasks.len()];
        for (t, task) in self.tasks.iter().enumerate() {
            for port in &task.inputs {
                if let Some(TaskId(p)) = producers[port.array.0] {
                    if p != t {
                        indegree[t] += 1;
                        dependents[p].push(t);
                    } else {
                        return Err(ArrayOlError::DependenceCycle { involving: task.name.clone() });
                    }
                }
            }
        }
        let mut ready: Vec<usize> = (0..self.tasks.len()).filter(|&t| indegree[t] == 0).collect();
        let mut order = Vec::with_capacity(self.tasks.len());
        while let Some(t) = ready.pop() {
            order.push(TaskId(t));
            for &d in &dependents[t] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    ready.push(d);
                }
            }
        }
        if order.len() != self.tasks.len() {
            let stuck = (0..self.tasks.len())
                .find(|&t| indegree[t] > 0)
                .map(|t| self.tasks[t].name.clone())
                .unwrap_or_default();
            return Err(ArrayOlError::DependenceCycle { involving: stuck });
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::IMat;
    use crate::task::{Port, TaskBody};
    use crate::tiler::Tiler;
    use std::sync::Arc;

    fn identity_tiler_1d() -> Tiler {
        // Rank-1 array, scalar-free: pattern {1}, paving step 1.
        Tiler::new(vec![0], IMat::from_rows(&[&[1]]), IMat::from_rows(&[&[1]]))
    }

    fn copy_task(name: &str, input: ArrayId, output: ArrayId, n: usize) -> RepetitiveTask {
        RepetitiveTask {
            name: name.into(),
            repetition: Shape::new(vec![n]),
            inputs: vec![Port::new("in", input, [1usize], identity_tiler_1d())],
            outputs: vec![Port::new("out", output, [1usize], identity_tiler_1d())],
            body: TaskBody::Elementary {
                kernel_name: "copy".into(),
                f: Arc::new(|ins| ins.to_vec()),
            },
        }
    }

    fn pipeline_graph() -> (ApplicationGraph, ArrayId, ArrayId, ArrayId) {
        let mut g = ApplicationGraph::new();
        let a = g.declare_array("a", [8usize]);
        let b = g.declare_array("b", [8usize]);
        let c = g.declare_array("c", [8usize]);
        g.external_inputs.push(a);
        g.external_outputs.push(c);
        g.add_task(copy_task("t1", a, b, 8));
        g.add_task(copy_task("t2", b, c, 8));
        (g, a, b, c)
    }

    #[test]
    fn valid_pipeline_validates_and_schedules() {
        let (g, ..) = pipeline_graph();
        g.validate().unwrap();
        let order = g.schedule().unwrap();
        assert_eq!(order, vec![TaskId(0), TaskId(1)]);
    }

    #[test]
    fn multiple_writers_rejected() {
        let (mut g, a, b, _) = pipeline_graph();
        // A second task also writing b.
        g.add_task(copy_task("t3", a, b, 8));
        assert!(matches!(g.validate(), Err(ArrayOlError::MultipleWriters { .. })));
    }

    #[test]
    fn missing_producer_rejected() {
        let mut g = ApplicationGraph::new();
        let a = g.declare_array("a", [4usize]);
        let b = g.declare_array("b", [4usize]);
        // `a` is not an external input and nothing produces it.
        g.add_task(copy_task("t", a, b, 4));
        assert!(matches!(g.validate(), Err(ArrayOlError::NoProducer { .. })));
    }

    #[test]
    fn self_dependence_is_a_cycle() {
        let mut g = ApplicationGraph::new();
        let a = g.declare_array("a", [4usize]);
        g.add_task(copy_task("t", a, a, 4));
        assert!(matches!(g.schedule(), Err(ArrayOlError::DependenceCycle { .. })));
    }

    #[test]
    fn schedule_respects_dependences_regardless_of_declaration_order() {
        let mut g = ApplicationGraph::new();
        let a = g.declare_array("a", [4usize]);
        let b = g.declare_array("b", [4usize]);
        let c = g.declare_array("c", [4usize]);
        g.external_inputs.push(a);
        // Declare the consumer first.
        g.add_task(copy_task("late", b, c, 4));
        g.add_task(copy_task("early", a, b, 4));
        let order = g.schedule().unwrap();
        assert_eq!(order, vec![TaskId(1), TaskId(0)]);
    }

    #[test]
    fn gapped_output_tiler_fails_validation() {
        let mut g = ApplicationGraph::new();
        let a = g.declare_array("a", [4usize]);
        let b = g.declare_array("b", [8usize]); // twice as large: only half covered
        g.external_inputs.push(a);
        g.add_task(copy_task("t", a, b, 4));
        assert!(matches!(g.validate(), Err(ArrayOlError::NotExactCover { .. })));
    }
}
