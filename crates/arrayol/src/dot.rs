//! Graphviz DOT export of application graphs.
//!
//! Renders the "globally irregular" level — tasks as boxes, arrays as edges
//! labelled with their shapes — the way the paper's Figure 3 draws the
//! downscaler overview.

use crate::graph::ApplicationGraph;
use crate::task::TaskBody;
use std::fmt::Write as _;

/// Render the graph in Graphviz DOT syntax.
pub fn to_dot(g: &ApplicationGraph, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    out.push_str("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n");

    // Environment pseudo-nodes.
    if !g.external_inputs.is_empty() {
        out.push_str("  Tin [shape=plaintext, label=\"Tin\"];\n");
    }
    if !g.external_outputs.is_empty() {
        out.push_str("  Tout [shape=plaintext, label=\"Tout\"];\n");
    }

    for (t, task) in g.tasks().iter().enumerate() {
        let kind = match &task.body {
            TaskBody::Elementary { kernel_name, .. } => kernel_name.clone(),
            TaskBody::Hierarchical(sub) => format!("hierarchy({} tasks)", sub.task_count()),
        };
        let _ =
            writeln!(out, "  t{t} [label=\"{}\\nrep {}\\n{}\"];", task.name, task.repetition, kind);
    }

    // Edges: producer task -> consumer task, labelled by the array.
    let producer_of = |array: crate::graph::ArrayId| -> Option<usize> {
        g.tasks().iter().position(|t| t.outputs.iter().any(|p| p.array == array))
    };
    for (t, task) in g.tasks().iter().enumerate() {
        for port in &task.inputs {
            let decl = &g.arrays()[port.array.0];
            let label = format!("{} {}", decl.name, decl.shape);
            match producer_of(port.array) {
                Some(p) => {
                    let _ = writeln!(out, "  t{p} -> t{t} [label=\"{label}\"];");
                }
                None if g.external_inputs.contains(&port.array) => {
                    let _ = writeln!(out, "  Tin -> t{t} [label=\"{label}\"];");
                }
                None => {}
            }
        }
        for port in &task.outputs {
            if g.external_outputs.contains(&port.array) {
                let decl = &g.arrays()[port.array.0];
                let _ = writeln!(out, "  t{t} -> Tout [label=\"{} {}\"];", decl.name, decl.shape);
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ApplicationGraph;
    use crate::linalg::IMat;
    use crate::task::{Port, RepetitiveTask, TaskBody};
    use crate::tiler::Tiler;
    use mdarray::Shape;
    use std::sync::Arc;

    fn two_stage() -> ApplicationGraph {
        let mut g = ApplicationGraph::new();
        let a = g.declare_array("video_in", [8usize]);
        let b = g.declare_array("mid", [8usize]);
        let c = g.declare_array("video_out", [8usize]);
        g.external_inputs.push(a);
        g.external_outputs.push(c);
        let unit = Tiler::new(vec![0], IMat::from_rows(&[&[1]]), IMat::from_rows(&[&[1]]));
        for (name, i, o) in [("hf", a, b), ("vf", b, c)] {
            g.add_task(RepetitiveTask {
                name: name.into(),
                repetition: Shape::new(vec![8]),
                inputs: vec![Port::new("in", i, [1usize], unit.clone())],
                outputs: vec![Port::new("out", o, [1usize], unit.clone())],
                body: TaskBody::Elementary {
                    kernel_name: "copy".into(),
                    f: Arc::new(|p| p.to_vec()),
                },
            });
        }
        g
    }

    #[test]
    fn dot_contains_tasks_and_dataflow() {
        let dot = to_dot(&two_stage(), "Downscaler");
        assert!(dot.starts_with("digraph \"Downscaler\""));
        assert!(dot.contains("hf"), "{dot}");
        assert!(dot.contains("vf"), "{dot}");
        assert!(dot.contains("Tin -> t0"), "{dot}");
        assert!(dot.contains("t0 -> t1"), "{dot}");
        assert!(dot.contains("t1 -> Tout"), "{dot}");
        assert!(dot.contains("video_in [8]"), "{dot}");
    }

    #[test]
    fn dot_is_balanced() {
        let dot = to_dot(&two_stage(), "x");
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
