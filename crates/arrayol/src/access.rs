//! Plan-level tiled-access descriptions in the o/F/P vocabulary.
//!
//! A [`TiledAccess`] is the route-agnostic record of *how one kernel launch
//! touches its arrays*: a repetition space, an input pattern gathered by an
//! input tiler, an output pattern scattered by an output tiler, and the
//! elementary computation in between. Both route frontends lower to it —
//! the GASPARD2 chain mechanically (its scheduled kernels already carry
//! tilers), the SaC chain by recognising affine WITH-loop bodies — and the
//! plan-level fusion pass composes adjacent accesses with the PR 3
//! tiler-composition algebra ([`crate::compose`]) without knowing which
//! frontend produced them.
//!
//! [`TilerSpec`], [`WindowSpec`] and [`ElementaryOp`] moved here from
//! `gaspard::model` (which re-exports them) so that `simgpu` and `sac-cuda`
//! can speak the vocabulary without depending on the GASPARD2 crate.

use crate::compose::{compose, ComposeError, StagePorts};
use crate::tiler::Tiler;
use mdarray::{NdArray, Shape};

/// A tiler specification as plain data (MARTE RSM on the model side, the
/// recognised WITH-loop access on the SaC side).
///
/// Identical in meaning to [`crate::Tiler`]; kept as plain data because
/// access descriptions are declarative documents attached to IR nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TilerSpec {
    /// Origin vector.
    pub origin: Vec<i64>,
    /// Fitting matrix rows (array-space rank × pattern rank).
    pub fitting: Vec<Vec<i64>>,
    /// Paving matrix rows (array-space rank × repetition rank).
    pub paving: Vec<Vec<i64>>,
}

impl TilerSpec {
    /// Convert to an executable ArrayOL tiler.
    pub fn to_tiler(&self) -> Tiler {
        let rows = self.fitting.len();
        let fcols = self.fitting.first().map_or(0, |r| r.len());
        let pcols = self.paving.first().map_or(0, |r| r.len());
        let fitting =
            crate::IMat::new(rows, fcols, self.fitting.iter().flatten().copied().collect());
        let paving = crate::IMat::new(
            self.paving.len(),
            pcols,
            self.paving.iter().flatten().copied().collect(),
        );
        Tiler::new(self.origin.clone(), fitting, paving)
    }

    /// Convert an executable tiler back to plain data.
    pub fn from_tiler(t: &Tiler) -> Self {
        TilerSpec {
            origin: t.origin.clone(),
            fitting: (0..t.fitting.rows()).map(|r| t.fitting.row(r).to_vec()).collect(),
            paving: (0..t.paving.rows()).map(|r| t.paving.row(r).to_vec()).collect(),
        }
    }
}

/// One interpolation window of an elementary filter task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Offset of the window within the input pattern.
    pub offset: usize,
    /// Window length.
    pub len: usize,
}

/// The computation an elementary task performs on one pattern — the "IP"
/// (intellectual property block) the model links against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElementaryOp {
    /// The H.263 downscaler interpolation: output `k` is
    /// `t/divisor - t%divisor` where `t` sums window `k` of the pattern
    /// (the paper's Figure 5 arithmetic).
    InterpolateWindows {
        /// One window per output element.
        windows: Vec<WindowSpec>,
        /// The divisor (6 in the paper).
        divisor: i64,
    },
    /// `out[i] = in[i] * mul + add` (pattern-sized output).
    AffineMap {
        /// Multiplier.
        mul: i64,
        /// Addend.
        add: i64,
    },
    /// Single-element output: the sum of the pattern.
    SumReduce,
    /// Single-element output: the dot product of the pattern with a fixed
    /// integer weight vector — the elementary form of a 1-D convolution
    /// stencil (blur `[1,2,1]`, gradient `[-1,0,1]`, delta `[1,-1]`, …).
    /// `weights.len()` must equal the input pattern length.
    WeightedSum {
        /// One weight per pattern element.
        weights: Vec<i64>,
    },
    /// `out = in` (pattern copy).
    Copy,
    /// Two fused elementary stages (built by the fusion pass, never written
    /// in models): the pattern is split into `inner_count` chunks of
    /// `inner_in_len`, `inner` runs on each chunk, and every row of
    /// `outer_gathers` selects values from the concatenated inner outputs to
    /// feed one `outer` application. The fused output concatenates the outer
    /// results row by row.
    Composed {
        /// The producer stage's op.
        inner: Box<ElementaryOp>,
        /// How many producer applications one fused instance performs.
        inner_count: usize,
        /// Flat producer input pattern length.
        inner_in_len: usize,
        /// The consumer stage's op.
        outer: Box<ElementaryOp>,
        /// Per grouped consumer instance: flat indices into the inner
        /// outputs forming its input pattern.
        outer_gathers: Vec<Vec<usize>>,
    },
}

impl ElementaryOp {
    /// Output pattern length for a given input pattern length.
    pub fn out_len(&self, in_len: usize) -> usize {
        match self {
            ElementaryOp::InterpolateWindows { windows, .. } => windows.len(),
            ElementaryOp::AffineMap { .. } | ElementaryOp::Copy => in_len,
            ElementaryOp::SumReduce | ElementaryOp::WeightedSum { .. } => 1,
            ElementaryOp::Composed { outer, outer_gathers, .. } => {
                let per_row = outer_gathers.first().map_or(0, |row| outer.out_len(row.len()));
                outer_gathers.len() * per_row
            }
        }
    }

    /// Reference (host) semantics on one gathered pattern.
    pub fn apply(&self, pattern: &[i64]) -> Vec<i64> {
        match self {
            ElementaryOp::InterpolateWindows { windows, divisor } => windows
                .iter()
                .map(|w| {
                    let t: i64 = pattern[w.offset..w.offset + w.len].iter().sum();
                    t / divisor - t % divisor
                })
                .collect(),
            ElementaryOp::AffineMap { mul, add } => {
                pattern.iter().map(|&v| v * mul + add).collect()
            }
            ElementaryOp::SumReduce => vec![pattern.iter().sum()],
            ElementaryOp::WeightedSum { weights } => {
                debug_assert_eq!(pattern.len(), weights.len());
                vec![pattern.iter().zip(weights).map(|(&p, &w)| p * w).sum()]
            }
            ElementaryOp::Copy => pattern.to_vec(),
            ElementaryOp::Composed { inner, inner_count, inner_in_len, outer, outer_gathers } => {
                debug_assert_eq!(pattern.len(), inner_count * inner_in_len);
                let mut mid = Vec::with_capacity(inner_count * inner.out_len(*inner_in_len));
                for chunk in pattern.chunks(*inner_in_len) {
                    mid.extend(inner.apply(chunk));
                }
                let mut out = Vec::new();
                for row in outer_gathers {
                    let gathered: Vec<i64> = row.iter().map(|&k| mid[k]).collect();
                    out.extend(outer.apply(&gathered));
                }
                out
            }
        }
    }
}

/// How one kernel launch touches its single input and single output array:
/// the plan-level access description the fusion pass composes over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TiledAccess {
    /// Repetition space (one kernel instance per lattice point).
    pub repetition: Vec<usize>,
    /// Input pattern shape.
    pub in_pattern: Vec<usize>,
    /// Input tiler (gathers the pattern from the input array).
    pub in_tiler: TilerSpec,
    /// Output pattern shape.
    pub out_pattern: Vec<usize>,
    /// Output tiler (scatters the pattern into the output array).
    pub out_tiler: TilerSpec,
    /// The per-instance computation.
    pub op: ElementaryOp,
}

impl TiledAccess {
    /// The [`StagePorts`]-shaped view needed by the composition algebra.
    fn ports<'a>(&'a self, in_tiler: &'a Tiler, out_tiler: &'a Tiler) -> StagePorts<'a> {
        StagePorts {
            in_tiler,
            in_pattern: &self.in_pattern,
            out_tiler,
            out_pattern: &self.out_pattern,
            repetition: &self.repetition,
        }
    }
}

/// Compose a producer access with a consumer access over the given array
/// shapes (producer input, intermediate, consumer output), yielding the
/// access of the fused kernel. The fused op is
/// [`ElementaryOp::Composed`]`{ inner: producer.op, outer: consumer.op }`.
///
/// Legality (canonical tilers, aligned stepping or block grouping, wrap
/// consistency, exact cover) is delegated to [`crate::compose`]; its typed
/// errors surface through [`ComposeError`] so callers can refuse-and-report.
pub fn compose_access(
    producer: &TiledAccess,
    consumer: &TiledAccess,
    in_shape: &[usize],
    mid_shape: &[usize],
    out_shape: &[usize],
) -> Result<TiledAccess, ComposeError> {
    let (p_in, p_out) = (producer.in_tiler.to_tiler(), producer.out_tiler.to_tiler());
    let (c_in, c_out) = (consumer.in_tiler.to_tiler(), consumer.out_tiler.to_tiler());
    let fused = compose(
        &producer.ports(&p_in, &p_out),
        &consumer.ports(&c_in, &c_out),
        &Shape::new(in_shape.to_vec()),
        &Shape::new(mid_shape.to_vec()),
        &Shape::new(out_shape.to_vec()),
    )?;
    Ok(TiledAccess {
        repetition: fused.repetition,
        in_pattern: fused.gather_pattern,
        in_tiler: TilerSpec::from_tiler(&fused.gather),
        out_pattern: fused.scatter_pattern,
        out_tiler: TilerSpec::from_tiler(&fused.scatter),
        op: ElementaryOp::Composed {
            inner: Box::new(producer.op.clone()),
            inner_count: fused.inner_count,
            inner_in_len: fused.inner_in_len,
            outer: Box::new(consumer.op.clone()),
            outer_gathers: fused.outer_gathers,
        },
    })
}

/// Row-major lattice points of a pattern/repetition shape (the trailing
/// dimension varies fastest). The empty shape yields one empty point.
pub fn lattice_points(shape: &[usize]) -> Vec<Vec<usize>> {
    let mut points = vec![vec![]];
    for &extent in shape {
        let mut next = Vec::with_capacity(points.len() * extent);
        for p in &points {
            for v in 0..extent {
                let mut q = p.clone();
                q.push(v);
                next.push(q);
            }
        }
        points = next;
    }
    points
}

/// CPU reference semantics of one access: gather every pattern through the
/// input tiler, apply the op, scatter through the output tiler. Cells the
/// output tiler never writes stay zero.
pub fn apply_access(
    access: &TiledAccess,
    input: &NdArray<i64>,
    out_shape: &[usize],
) -> NdArray<i64> {
    let in_tiler = access.in_tiler.to_tiler();
    let out_tiler = access.out_tiler.to_tiler();
    let out_sh = Shape::new(out_shape.to_vec());
    let mut out = NdArray::filled(out_shape.to_vec(), 0i64);
    let in_points = lattice_points(&access.in_pattern);
    let out_points = lattice_points(&access.out_pattern);
    for rep in lattice_points(&access.repetition) {
        let pattern: Vec<i64> = in_points
            .iter()
            .map(|p| {
                let ix = in_tiler.element_index(input.shape(), &rep, p);
                *input.get(&ix).expect("gather index wraps in-bounds")
            })
            .collect();
        let result = access.op.apply(&pattern);
        debug_assert_eq!(result.len(), out_points.len());
        for (p, v) in out_points.iter().zip(result) {
            let ix = out_tiler.element_index(&out_sh, &rep, p);
            out.set(&ix, v).expect("scatter index wraps in-bounds");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sliding(rows: usize, in_cols: usize, k: usize, weights: Vec<i64>) -> TiledAccess {
        TiledAccess {
            repetition: vec![rows, in_cols - k + 1],
            in_pattern: vec![k],
            in_tiler: TilerSpec {
                origin: vec![0, 0],
                fitting: vec![vec![0], vec![1]],
                paving: vec![vec![1, 0], vec![0, 1]],
            },
            out_pattern: vec![1],
            out_tiler: TilerSpec {
                origin: vec![0, 0],
                fitting: vec![vec![0], vec![0]],
                paving: vec![vec![1, 0], vec![0, 1]],
            },
            op: ElementaryOp::WeightedSum { weights },
        }
    }

    #[test]
    fn spec_round_trips_through_tiler() {
        let spec = TilerSpec {
            origin: vec![0, 0],
            fitting: vec![vec![0], vec![1]],
            paving: vec![vec![1, 0], vec![0, 4]],
        };
        assert_eq!(TilerSpec::from_tiler(&spec.to_tiler()), spec);
    }

    #[test]
    fn apply_access_matches_hand_stencil() {
        let acc = sliding(2, 6, 3, vec![1, 2, 1]);
        let input = NdArray::from_fn([2usize, 6], |ix| (ix[0] * 6 + ix[1]) as i64);
        let out = apply_access(&acc, &input, &[2, 4]);
        for r in 0..2 {
            for c in 0..4 {
                let base = (r * 6 + c) as i64;
                assert_eq!(*out.get(&[r, c]).unwrap(), base + 2 * (base + 1) + (base + 2));
            }
        }
    }

    #[test]
    fn compose_access_chains_two_stencils() {
        let (rows, cols) = (3, 10);
        let a = sliding(rows, cols, 3, vec![1, 2, 1]);
        let b = sliding(rows, cols - 2, 3, vec![-1, 0, 1]);
        let fused = compose_access(&a, &b, &[rows, cols], &[rows, cols - 2], &[rows, cols - 4])
            .expect("exact-cover chain composes");
        assert_eq!(fused.repetition, vec![rows, cols - 4]);
        let input = NdArray::from_fn([rows, cols], |ix| (ix[0] * cols + ix[1]) as i64 % 13);
        let mid = apply_access(&a, &input, &[rows, cols - 2]);
        let two_step = apply_access(&b, &mid, &[rows, cols - 4]);
        let one_step = apply_access(&fused, &input, &[rows, cols - 4]);
        assert_eq!(one_step.as_slice(), two_step.as_slice());
    }

    #[test]
    fn compose_access_surfaces_legality_errors() {
        let a = sliding(2, 8, 3, vec![1, 2, 1]);
        // A non-canonical consumer fitting (one pattern axis touching two
        // array dims): the algebra must refuse rather than mis-compose.
        let mut b = sliding(2, 6, 3, vec![1, 0, 1]);
        b.in_tiler.fitting = vec![vec![1], vec![1]];
        assert!(compose_access(&a, &b, &[2, 8], &[2, 6], &[2, 4]).is_err());
    }
}
