#![warn(missing_docs)]

//! # arrayol — the ArrayOL specification language
//!
//! ArrayOL (Array Oriented Language) is a specification formalism for
//! multidimensional signal processing, organised around the *GILR* principle:
//! **G**lobally **I**rregular (a graph of tasks exchanging multidimensional
//! arrays), **L**ocally **R**egular (each task repeats an elementary function
//! over a *repetition space*, consuming and producing sub-arrays called
//! *patterns* addressed through *tilers*).
//!
//! This crate implements the language as an executable Rust model:
//!
//! * [`linalg`] — small integer vectors/matrices used by tiler algebra,
//! * [`tiler`] — the tiler (`origin`, `fitting`, `paving`) and its gather /
//!   scatter semantics, `e_i = o + F·i mod s_array`, `ref_r = o + P·r mod s_array`,
//! * [`compose`] — tiler composition: fusing producer→consumer task pairs
//!   into one task that never materialises the intermediate array,
//! * [`access`] — plan-level tiled-access descriptions (plain-data tilers and
//!   elementary ops) that route frontends attach to kernel launches so the
//!   composition algebra can fuse them after lowering,
//! * [`task`] — elementary, repetitive and hierarchical tasks with tiled ports,
//! * [`graph`] — application graphs, single-assignment validation and
//!   dependence-respecting schedules,
//! * [`exec`] — a reference executor (sequential and multi-threaded),
//! * [`validate`] — static well-formedness checks (shape compatibility,
//!   exact-cover for output tilers, single assignment).
//!
//! ## Determinism
//!
//! ArrayOL is a single-assignment, first-order functional formalism: only true
//! data dependences are expressed, so any schedule respecting them produces the
//! same arrays. The executor exploits this by running repetitions in parallel;
//! [`graph::ApplicationGraph::validate`] statically enforces the single
//! assignment property that makes this safe.

pub mod access;
pub mod compose;
pub mod dot;
pub mod exec;
pub mod graph;
pub mod linalg;
pub mod task;
pub mod tiler;
pub mod validate;

pub use access::{compose_access, ElementaryOp, TiledAccess, TilerSpec, WindowSpec};
pub use compose::{compose, ComposeError, FusedTiling, StagePorts};
pub use graph::{ApplicationGraph, ArrayDecl, ArrayId, TaskId};
pub use linalg::{IMat, IVec};
pub use task::{ElementaryFn, Port, RepetitiveTask, Task, TaskBody};
pub use tiler::Tiler;
pub use validate::ArrayOlError;
