//! Reference executor for ArrayOL application graphs.
//!
//! The executor materialises every declared array, runs tasks in a
//! dependence-respecting order, and for each task sweeps its repetition space:
//! gather patterns through input tilers → run the body → scatter patterns
//! through output tilers.
//!
//! Because ArrayOL repetitions are independent (output tilers are validated to
//! be exact covers), the sweep can run in parallel. [`ExecOptions::parallel`]
//! splits the repetition space across std::thread scoped threads; workers compute
//! `(repetition, patterns)` results and the coordinator scatters them, so no
//! two threads ever write one buffer.

use crate::graph::{ApplicationGraph, ArrayId};
use crate::task::{RepetitiveTask, TaskBody};
use crate::validate::ArrayOlError;
use mdarray::{IndexIter, NdArray};
use std::collections::HashMap;

/// Execution configuration.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Run repetition sweeps across threads.
    pub parallel: bool,
    /// Worker count for parallel sweeps (0 = number of available cores).
    pub workers: usize,
}

impl ExecOptions {
    /// Sequential execution.
    pub fn sequential() -> Self {
        Self::default()
    }

    /// Parallel execution with the default worker count.
    pub fn parallel() -> Self {
        ExecOptions { parallel: true, workers: 0 }
    }

    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        }
    }
}

/// Execute `graph` with the given external input arrays.
///
/// Returns every array the graph computed (externally visible outputs can be
/// selected through [`ApplicationGraph::external_outputs`]).
pub fn execute(
    graph: &ApplicationGraph,
    inputs: &HashMap<ArrayId, NdArray<i64>>,
    opts: &ExecOptions,
) -> Result<HashMap<ArrayId, NdArray<i64>>, ArrayOlError> {
    let mut store: Vec<Option<NdArray<i64>>> = vec![None; graph.arrays().len()];
    for &id in &graph.external_inputs {
        let decl = graph.array(id)?;
        let arr = inputs.get(&id).ok_or_else(|| ArrayOlError::BadInput {
            array: decl.name.clone(),
            detail: "missing external input".into(),
        })?;
        if arr.shape() != &decl.shape {
            return Err(ArrayOlError::BadInput {
                array: decl.name.clone(),
                detail: format!("shape {} != declared {}", arr.shape(), decl.shape),
            });
        }
        store[id.0] = Some(arr.clone());
    }

    for tid in graph.schedule()? {
        let task = graph.task(tid)?;
        run_task(graph, task, &mut store, opts)?;
    }

    let mut out = HashMap::new();
    for (i, slot) in store.into_iter().enumerate() {
        if let Some(arr) = slot {
            out.insert(ArrayId(i), arr);
        }
    }
    Ok(out)
}

/// Run one repetitive task against the array store.
fn run_task(
    graph: &ApplicationGraph,
    task: &RepetitiveTask,
    store: &mut [Option<NdArray<i64>>],
    opts: &ExecOptions,
) -> Result<(), ArrayOlError> {
    // Snapshot input arrays (cheap clones of Vec-backed arrays; inputs are
    // immutable during the sweep so sharing would also be sound).
    let mut in_arrays = Vec::with_capacity(task.inputs.len());
    for port in &task.inputs {
        let arr = store[port.array.0].as_ref().ok_or_else(|| ArrayOlError::NoProducer {
            array: graph.arrays()[port.array.0].name.clone(),
        })?;
        in_arrays.push(arr.clone());
    }

    // Allocate outputs.
    let mut out_arrays: Vec<NdArray<i64>> = task
        .outputs
        .iter()
        .map(|port| NdArray::filled(graph.arrays()[port.array.0].shape.clone(), 0i64))
        .collect();

    let reps: Vec<Vec<usize>> = IndexIter::new(&task.repetition).collect();

    let compute_one = |rep: &[usize]| -> Result<Vec<NdArray<i64>>, ArrayOlError> {
        let mut patterns = Vec::with_capacity(task.inputs.len());
        for (port, arr) in task.inputs.iter().zip(&in_arrays) {
            // Gather a single tile: pattern-shaped array addressed by the tiler.
            let pat = NdArray::from_fn(port.pattern.clone(), |pix| {
                let ix = port.tiler.element_index(arr.shape(), rep, pix);
                *arr.get_unchecked(&ix)
            });
            patterns.push(pat);
        }
        let results = run_body(task, &patterns, opts)?;
        if results.len() != task.outputs.len() {
            return Err(ArrayOlError::BadTaskOutput {
                task: task.name.clone(),
                detail: format!(
                    "expected {} output patterns, got {}",
                    task.outputs.len(),
                    results.len()
                ),
            });
        }
        for (port, res) in task.outputs.iter().zip(&results) {
            if res.shape() != &port.pattern {
                return Err(ArrayOlError::BadTaskOutput {
                    task: task.name.clone(),
                    detail: format!("pattern shape {} != port {}", res.shape(), port.pattern),
                });
            }
        }
        Ok(results)
    };

    if opts.parallel && reps.len() > 1 {
        let workers = opts.effective_workers().min(reps.len());
        let chunk = reps.len().div_ceil(workers);
        type WorkerResult = Result<Vec<(usize, Vec<NdArray<i64>>)>, ArrayOlError>;
        let results: Vec<WorkerResult> = std::thread::scope(|s| {
            let handles: Vec<_> = reps
                .chunks(chunk)
                .enumerate()
                .map(|(w, slice)| {
                    let compute_one = &compute_one;
                    s.spawn(move || {
                        let base = w * chunk;
                        let mut local = Vec::with_capacity(slice.len());
                        for (k, rep) in slice.iter().enumerate() {
                            local.push((base + k, compute_one(rep)?));
                        }
                        Ok(local)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        for worker_result in results {
            for (lin, patterns) in worker_result? {
                scatter_patterns(task, &reps[lin], &patterns, &mut out_arrays);
            }
        }
    } else {
        for rep in &reps {
            let patterns = compute_one(rep)?;
            scatter_patterns(task, rep, &patterns, &mut out_arrays);
        }
    }

    for (port, arr) in task.outputs.iter().zip(out_arrays) {
        store[port.array.0] = Some(arr);
    }
    Ok(())
}

/// Scatter one repetition's output patterns through the output tilers.
fn scatter_patterns(
    task: &RepetitiveTask,
    rep: &[usize],
    patterns: &[NdArray<i64>],
    out_arrays: &mut [NdArray<i64>],
) {
    for ((port, pat), out) in task.outputs.iter().zip(patterns).zip(out_arrays) {
        let out_shape = out.shape().clone();
        let mut flat = 0usize;
        IndexIter::for_each_index(&port.pattern, |pix| {
            let ix = port.tiler.element_index(&out_shape, rep, pix);
            out.set_unchecked(&ix, pat.as_slice()[flat]);
            flat += 1;
        });
    }
}

/// Invoke the task body on gathered patterns.
fn run_body(
    task: &RepetitiveTask,
    patterns: &[NdArray<i64>],
    opts: &ExecOptions,
) -> Result<Vec<NdArray<i64>>, ArrayOlError> {
    match &task.body {
        TaskBody::Elementary { f, .. } => Ok(f(patterns)),
        TaskBody::Hierarchical(sub) => {
            if sub.external_inputs.len() != patterns.len() {
                return Err(ArrayOlError::BadTaskOutput {
                    task: task.name.clone(),
                    detail: format!(
                        "hierarchical body expects {} inputs, got {}",
                        sub.external_inputs.len(),
                        patterns.len()
                    ),
                });
            }
            let mut inputs = HashMap::new();
            for (&id, pat) in sub.external_inputs.iter().zip(patterns) {
                inputs.insert(id, pat.clone());
            }
            // Nested sweeps run sequentially; parallelism is applied at the top.
            let produced = execute(sub, &inputs, &ExecOptions::sequential())?;
            let _ = opts;
            sub.external_outputs
                .iter()
                .map(|id| {
                    produced.get(id).cloned().ok_or_else(|| ArrayOlError::BadTaskOutput {
                        task: task.name.clone(),
                        detail: "hierarchical body missing external output".into(),
                    })
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ApplicationGraph;
    use crate::linalg::IMat;
    use crate::task::{Port, TaskBody};
    use crate::tiler::Tiler;
    use mdarray::Shape;
    use std::sync::Arc;

    /// 1-D blocked "scale by 2" task: pattern of 4, non-overlapping.
    fn build_scale_graph(n_tiles: usize) -> (ApplicationGraph, ArrayId, ArrayId) {
        let mut g = ApplicationGraph::new();
        let len = n_tiles * 4;
        let a = g.declare_array("in", [len]);
        let b = g.declare_array("out", [len]);
        g.external_inputs.push(a);
        g.external_outputs.push(b);
        let tiler = Tiler::new(vec![0], IMat::from_rows(&[&[1]]), IMat::from_rows(&[&[4]]));
        g.add_task(RepetitiveTask {
            name: "scale".into(),
            repetition: Shape::new(vec![n_tiles]),
            inputs: vec![Port::new("in", a, [4usize], tiler.clone())],
            outputs: vec![Port::new("out", b, [4usize], tiler)],
            body: TaskBody::Elementary {
                kernel_name: "times2".into(),
                f: Arc::new(|ins| vec![ins[0].map(|v| v * 2)]),
            },
        });
        (g, a, b)
    }

    #[test]
    fn sequential_execution_computes_outputs() {
        let (g, a, b) = build_scale_graph(8);
        g.validate().unwrap();
        let input = NdArray::from_fn([32usize], |ix| ix[0] as i64);
        let mut inputs = HashMap::new();
        inputs.insert(a, input.clone());
        let out = execute(&g, &inputs, &ExecOptions::sequential()).unwrap();
        let expect = input.map(|v| v * 2);
        assert_eq!(out[&b], expect);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (g, a, b) = build_scale_graph(37);
        let input = NdArray::from_fn([148usize], |ix| (ix[0] as i64) * 3 - 7);
        let mut inputs = HashMap::new();
        inputs.insert(a, input);
        let seq = execute(&g, &inputs, &ExecOptions::sequential()).unwrap();
        let par = execute(&g, &inputs, &ExecOptions { parallel: true, workers: 3 }).unwrap();
        assert_eq!(seq[&b], par[&b]);
    }

    #[test]
    fn missing_input_is_reported() {
        let (g, _a, _b) = build_scale_graph(2);
        let err = execute(&g, &HashMap::new(), &ExecOptions::sequential()).unwrap_err();
        assert!(matches!(err, ArrayOlError::BadInput { .. }));
    }

    #[test]
    fn wrong_shape_input_is_reported() {
        let (g, a, _b) = build_scale_graph(2);
        let mut inputs = HashMap::new();
        inputs.insert(a, NdArray::filled([7usize], 0i64));
        let err = execute(&g, &inputs, &ExecOptions::sequential()).unwrap_err();
        assert!(matches!(err, ArrayOlError::BadInput { .. }));
    }

    #[test]
    fn bad_pattern_count_is_reported() {
        let mut g = ApplicationGraph::new();
        let a = g.declare_array("in", [4usize]);
        let b = g.declare_array("out", [4usize]);
        g.external_inputs.push(a);
        let tiler = Tiler::new(vec![0], IMat::from_rows(&[&[1]]), IMat::from_rows(&[&[4]]));
        g.add_task(RepetitiveTask {
            name: "broken".into(),
            repetition: Shape::new(vec![1]),
            inputs: vec![Port::new("in", a, [4usize], tiler.clone())],
            outputs: vec![Port::new("out", b, [4usize], tiler)],
            body: TaskBody::Elementary { kernel_name: "none".into(), f: Arc::new(|_| vec![]) },
        });
        let mut inputs = HashMap::new();
        inputs.insert(a, NdArray::filled([4usize], 1i64));
        let err = execute(&g, &inputs, &ExecOptions::sequential()).unwrap_err();
        assert!(matches!(err, ArrayOlError::BadTaskOutput { .. }));
    }

    #[test]
    fn hierarchical_task_executes_subgraph() {
        // Subgraph: pattern [4] -> add 10 -> pattern [4].
        let mut sub = ApplicationGraph::new();
        let sa = sub.declare_array("p_in", [4usize]);
        let sb = sub.declare_array("p_out", [4usize]);
        sub.external_inputs.push(sa);
        sub.external_outputs.push(sb);
        let unit = Tiler::new(vec![0], IMat::from_rows(&[&[1]]), IMat::from_rows(&[&[4]]));
        sub.add_task(RepetitiveTask {
            name: "inner".into(),
            repetition: Shape::new(vec![1]),
            inputs: vec![Port::new("in", sa, [4usize], unit.clone())],
            outputs: vec![Port::new("out", sb, [4usize], unit.clone())],
            body: TaskBody::Elementary {
                kernel_name: "add10".into(),
                f: Arc::new(|ins| vec![ins[0].map(|v| v + 10)]),
            },
        });

        let mut g = ApplicationGraph::new();
        let a = g.declare_array("in", [8usize]);
        let b = g.declare_array("out", [8usize]);
        g.external_inputs.push(a);
        g.external_outputs.push(b);
        let tiler = Tiler::new(vec![0], IMat::from_rows(&[&[1]]), IMat::from_rows(&[&[4]]));
        g.add_task(RepetitiveTask {
            name: "outer".into(),
            repetition: Shape::new(vec![2]),
            inputs: vec![Port::new("in", a, [4usize], tiler.clone())],
            outputs: vec![Port::new("out", b, [4usize], tiler)],
            body: TaskBody::Hierarchical(Box::new(sub)),
        });
        g.validate().unwrap();

        let mut inputs = HashMap::new();
        inputs.insert(a, NdArray::from_fn([8usize], |ix| ix[0] as i64));
        let out = execute(&g, &inputs, &ExecOptions::sequential()).unwrap();
        let got = &out[&b];
        assert_eq!(got.as_slice(), &[10, 11, 12, 13, 14, 15, 16, 17]);
    }
}

#[cfg(test)]
mod multi_port_tests {
    use super::*;
    use crate::graph::ApplicationGraph;
    use crate::linalg::IMat;
    use crate::task::{Port, TaskBody};
    use crate::tiler::Tiler;
    use mdarray::Shape;
    use std::collections::HashMap;
    use std::sync::Arc;

    /// A task with two inputs and two outputs per repetition: elementwise
    /// sum and difference of two streams.
    #[test]
    fn multi_input_multi_output_task() {
        let mut g = ApplicationGraph::new();
        let a = g.declare_array("a", [12usize]);
        let b = g.declare_array("b", [12usize]);
        let sum = g.declare_array("sum", [12usize]);
        let diff = g.declare_array("diff", [12usize]);
        g.external_inputs.extend([a, b]);
        g.external_outputs.extend([sum, diff]);
        let t = Tiler::new(vec![0], IMat::from_rows(&[&[1]]), IMat::from_rows(&[&[3]]));
        g.add_task(RepetitiveTask {
            name: "sumdiff".into(),
            repetition: Shape::new(vec![4]),
            inputs: vec![
                Port::new("a", a, [3usize], t.clone()),
                Port::new("b", b, [3usize], t.clone()),
            ],
            outputs: vec![
                Port::new("sum", sum, [3usize], t.clone()),
                Port::new("diff", diff, [3usize], t),
            ],
            body: TaskBody::Elementary {
                kernel_name: "sumdiff".into(),
                f: Arc::new(|ins| {
                    let s = ins[0].zip_with(&ins[1], |x, y| x + y).unwrap();
                    let d = ins[0].zip_with(&ins[1], |x, y| x - y).unwrap();
                    vec![s, d]
                }),
            },
        });
        g.validate().unwrap();

        let av = NdArray::from_fn([12usize], |ix| ix[0] as i64 * 2);
        let bv = NdArray::from_fn([12usize], |ix| ix[0] as i64);
        let mut inputs = HashMap::new();
        inputs.insert(a, av.clone());
        inputs.insert(b, bv.clone());
        for opts in [ExecOptions::sequential(), ExecOptions::parallel()] {
            let out = execute(&g, &inputs, &opts).unwrap();
            let esum = av.zip_with(&bv, |x, y| x + y).unwrap();
            let ediff = av.zip_with(&bv, |x, y| x - y).unwrap();
            assert_eq!(out[&sum], esum);
            assert_eq!(out[&diff], ediff);
        }
    }

    /// Diamond dependence: one producer feeding two consumers that merge.
    #[test]
    fn diamond_graph_schedules_and_executes() {
        let mut g = ApplicationGraph::new();
        let src = g.declare_array("src", [8usize]);
        let left = g.declare_array("left", [8usize]);
        let right = g.declare_array("right", [8usize]);
        let merged = g.declare_array("merged", [8usize]);
        g.external_inputs.push(src);
        g.external_outputs.push(merged);
        let unit = Tiler::new(vec![0], IMat::from_rows(&[&[1]]), IMat::from_rows(&[&[1]]));
        let unary = |name: &str, i, o, f: fn(i64) -> i64| RepetitiveTask {
            name: name.into(),
            repetition: Shape::new(vec![8]),
            inputs: vec![Port::new("in", i, Shape::new(vec![1]), unit.clone())],
            outputs: vec![Port::new("out", o, Shape::new(vec![1]), unit.clone())],
            body: TaskBody::Elementary {
                kernel_name: name.into(),
                f: Arc::new(move |ins| vec![ins[0].map(|&v| f(v))]),
            },
        };
        g.add_task(unary("double", src, left, |v| v * 2));
        g.add_task(unary("square", src, right, |v| v * v));
        g.add_task(RepetitiveTask {
            name: "merge".into(),
            repetition: Shape::new(vec![8]),
            inputs: vec![
                Port::new("l", left, Shape::new(vec![1]), unit.clone()),
                Port::new("r", right, Shape::new(vec![1]), unit.clone()),
            ],
            outputs: vec![Port::new("out", merged, Shape::new(vec![1]), unit.clone())],
            body: TaskBody::Elementary {
                kernel_name: "merge".into(),
                f: Arc::new(|ins| vec![ins[0].zip_with(&ins[1], |x, y| x + y).unwrap()]),
            },
        });
        g.validate().unwrap();

        let input = NdArray::from_fn([8usize], |ix| ix[0] as i64);
        let mut inputs = HashMap::new();
        inputs.insert(src, input.clone());
        let out = execute(&g, &inputs, &ExecOptions::sequential()).unwrap();
        let expect = input.map(|&v| v * 2 + v * v);
        assert_eq!(out[&merged], expect);
    }
}
