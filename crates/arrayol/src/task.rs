//! Tasks: the "locally regular" half of GILR.
//!
//! A *repetitive task* applies a body once per point of its *repetition space*.
//! Each application consumes one pattern per input port (gathered through that
//! port's tiler) and produces one pattern per output port (scattered through
//! that port's tiler). Bodies are either *elementary* (an opaque function on
//! patterns — in GASPARD2 terms, a task "linked to an IP") or *hierarchical*
//! (a nested [`ApplicationGraph`](crate::graph::ApplicationGraph) refined at a
//! finer granularity).

use crate::graph::{ApplicationGraph, ArrayId};
use crate::tiler::Tiler;
use mdarray::{NdArray, Shape};
use std::sync::Arc;

/// An elementary task body: patterns in, patterns out.
///
/// The function must be pure — ArrayOL semantics allow the executor to invoke
/// it for repetition points in any order, possibly concurrently.
pub type ElementaryFn = Arc<dyn Fn(&[NdArray<i64>]) -> Vec<NdArray<i64>> + Send + Sync>;

/// A tiled port: which array it touches, the pattern shape exchanged per
/// repetition, and the tiler that addresses the patterns.
#[derive(Clone)]
pub struct Port {
    /// Human-readable port name (used in diagnostics and generated code).
    pub name: String,
    /// The array this port reads from / writes to.
    pub array: ArrayId,
    /// Shape of the pattern exchanged on each repetition.
    pub pattern: Shape,
    /// The tiler binding repetition indices to array elements.
    pub tiler: Tiler,
}

impl Port {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        array: ArrayId,
        pattern: impl Into<Shape>,
        tiler: Tiler,
    ) -> Self {
        Port { name: name.into(), array, pattern: pattern.into(), tiler }
    }
}

/// The body executed at each repetition point.
#[derive(Clone)]
pub enum TaskBody {
    /// An opaque elementary function (GASPARD2: a task linked to an IP).
    Elementary {
        /// Name recorded for generated-code labels and profiling.
        kernel_name: String,
        /// The pattern-level function.
        f: ElementaryFn,
    },
    /// A nested application graph; its `external_inputs`/`external_outputs`
    /// correspond positionally to this task's input/output ports, and each
    /// repetition executes the subgraph on the gathered patterns.
    Hierarchical(Box<ApplicationGraph>),
}

impl std::fmt::Debug for TaskBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskBody::Elementary { kernel_name, .. } => {
                write!(f, "Elementary({kernel_name})")
            }
            TaskBody::Hierarchical(g) => write!(f, "Hierarchical({} tasks)", g.task_count()),
        }
    }
}

/// A repetitive task instance in the application graph.
#[derive(Clone, Debug)]
pub struct RepetitiveTask {
    /// Instance name, e.g. `hf: HorizontalFilter`.
    pub name: String,
    /// The repetition space: the body runs once per index in this shape.
    pub repetition: Shape,
    /// Input ports (patterns gathered before each body invocation).
    pub inputs: Vec<Port>,
    /// Output ports (patterns scattered after each body invocation).
    pub outputs: Vec<Port>,
    /// What runs at each repetition point.
    pub body: TaskBody,
}

impl std::fmt::Debug for Port {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Port({} -> array#{}, pattern {})", self.name, self.array.0, self.pattern)
    }
}

/// Alias used by the public API: tasks are repetitive tasks.
pub type Task = RepetitiveTask;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::IMat;

    #[test]
    fn task_body_debug_labels() {
        let body =
            TaskBody::Elementary { kernel_name: "interp6".into(), f: Arc::new(|ins| ins.to_vec()) };
        assert_eq!(format!("{body:?}"), "Elementary(interp6)");
    }

    #[test]
    fn port_construction() {
        let t = Tiler::new(vec![0, 0], IMat::from_rows(&[&[0], &[1]]), IMat::identity(2));
        let p = Port::new("in", ArrayId(3), [11usize], t);
        assert_eq!(p.array, ArrayId(3));
        assert_eq!(p.pattern.dims(), &[11]);
        assert!(format!("{p:?}").contains("array#3"));
    }
}
