//! Small integer vectors and matrices for tiler algebra.
//!
//! Tiler arithmetic operates on signed integers (offsets can step backwards and
//! are reduced modulo array shapes), with ranks rarely above 3, so these types
//! favour clarity over asymptotic cleverness.

/// A signed integer vector (e.g. a tiler origin or an index).
pub type IVec = Vec<i64>;

/// A dense, row-major signed integer matrix.
///
/// Fitting and paving matrices map pattern-space / repetition-space indices to
/// array-space offsets: an `IMat` with `rows = array_rank` and `cols` equal to
/// the index-space rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IMat {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IMat {
    /// Create a matrix from row-major data; panics if `data.len() != rows*cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<i64>) -> Self {
        assert_eq!(data.len(), rows * cols, "IMat data length must equal rows*cols");
        IMat { rows, cols, data }
    }

    /// Create from nested rows; panics if rows are ragged.
    pub fn from_rows(rows: &[&[i64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in IMat::from_rows");
            data.extend_from_slice(row);
        }
        IMat { rows: r, cols: c, data }
    }

    /// The zero matrix of the given dimensions.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        IMat { rows, cols, data: vec![0; rows * cols] }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = IMat::zeros(n, n);
        for i in 0..n {
            *m.at_mut(i, i) = 1;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> i64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut i64 {
        &mut self.data[r * self.cols + c]
    }

    /// Matrix–vector product; panics if `v.len() != cols`.
    pub fn mv(&self, v: &[i64]) -> IVec {
        assert_eq!(v.len(), self.cols, "IMat::mv dimension mismatch");
        (0..self.rows).map(|r| (0..self.cols).map(|c| self.at(r, c) * v[c]).sum()).collect()
    }

    /// Horizontal concatenation `[self | other]`; panics if row counts differ.
    ///
    /// This is the `CAT(paving, fitting)` of the paper's generic tiler: the
    /// concatenated matrix maps a concatenated `rep ++ pat` index in one product.
    pub fn hcat(&self, other: &IMat) -> IMat {
        assert_eq!(self.rows, other.rows, "IMat::hcat row mismatch");
        let mut m = IMat::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *m.at_mut(r, c) = self.at(r, c);
            }
            for c in 0..other.cols {
                *m.at_mut(r, self.cols + c) = other.at(r, c);
            }
        }
        m
    }

    /// Matrix–matrix product `self · other`; panics if `self.cols != other.rows`.
    ///
    /// Tiler composition chains index maps: if `other` maps a fused repetition
    /// index to a producer repetition index and `self` is the producer's paving,
    /// the product paves the array directly from the fused repetition space.
    pub fn matmul(&self, other: &IMat) -> IMat {
        assert_eq!(self.cols, other.rows, "IMat::matmul dimension mismatch");
        let mut m = IMat::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for c in 0..other.cols {
                *m.at_mut(r, c) = (0..self.cols).map(|k| self.at(r, k) * other.at(k, c)).sum();
            }
        }
        m
    }

    /// Rows of the matrix as slices.
    pub fn row(&self, r: usize) -> &[i64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }
}

/// Componentwise vector addition; panics on length mismatch.
pub fn vadd(a: &[i64], b: &[i64]) -> IVec {
    assert_eq!(a.len(), b.len(), "vadd length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Concatenate two index vectors (`rep ++ pat`).
pub fn vcat(a: &[i64], b: &[i64]) -> IVec {
    let mut v = Vec::with_capacity(a.len() + b.len());
    v.extend_from_slice(a);
    v.extend_from_slice(b);
    v
}

/// Convert an unsigned index to a signed vector.
pub fn to_signed(ix: &[usize]) -> IVec {
    ix.iter().map(|&x| x as i64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mv_is_identity() {
        let m = IMat::identity(3);
        assert_eq!(m.mv(&[7, -2, 5]), vec![7, -2, 5]);
    }

    #[test]
    fn mv_computes_linear_combination() {
        // The horizontal-filter paving {{1,0},{0,8}} from the paper.
        let p = IMat::from_rows(&[&[1, 0], &[0, 8]]);
        assert_eq!(p.mv(&[3, 5]), vec![3, 40]);
    }

    #[test]
    fn hcat_concatenates_columns() {
        let p = IMat::from_rows(&[&[1, 0], &[0, 8]]);
        let f = IMat::from_rows(&[&[0], &[1]]);
        let cat = p.hcat(&f);
        assert_eq!(cat.cols(), 3);
        assert_eq!(cat.row(0), &[1, 0, 0]);
        assert_eq!(cat.row(1), &[0, 8, 1]);
        // CAT(P,F)·(rep ++ pat) == P·rep + F·pat
        let rep = [2i64, 5];
        let pat = [7i64];
        let lhs = cat.mv(&vcat(&rep, &pat));
        let rhs = vadd(&p.mv(&rep), &f.mv(&pat));
        assert_eq!(lhs, rhs);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mv_rejects_wrong_length() {
        IMat::identity(2).mv(&[1, 2, 3]);
    }

    #[test]
    fn matmul_composes_index_maps() {
        let p = IMat::from_rows(&[&[1, 0], &[0, 8]]);
        let b = IMat::from_rows(&[&[9, 0], &[0, 1]]);
        let composed = p.matmul(&b);
        assert_eq!(composed, IMat::from_rows(&[&[9, 0], &[0, 8]]));
        // (P·B)·v == P·(B·v) for any repetition index v.
        let v = [3i64, -2];
        assert_eq!(composed.mv(&v), p.mv(&b.mv(&v)));
        assert_eq!(p.matmul(&IMat::identity(2)), p);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(vadd(&[1, 2], &[10, 20]), vec![11, 22]);
        assert_eq!(vcat(&[1], &[2, 3]), vec![1, 2, 3]);
        assert_eq!(to_signed(&[4, 0]), vec![4, 0]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The tiler identity the paper's generic code relies on:
        /// `MV(CAT(P, F), rep ++ pat) == MV(P, rep) + MV(F, pat)`.
        #[test]
        fn cat_mv_distributes(
            p in proptest::collection::vec(-9i64..9, 4),
            f in proptest::collection::vec(-9i64..9, 2),
            rep in proptest::collection::vec(-100i64..100, 2),
            pat in -100i64..100,
        ) {
            let paving = IMat::new(2, 2, p);
            let fitting = IMat::new(2, 1, f);
            let cat = paving.hcat(&fitting);
            let lhs = cat.mv(&vcat(&rep, &[pat]));
            let rhs = vadd(&paving.mv(&rep), &fitting.mv(&[pat]));
            prop_assert_eq!(lhs, rhs);
        }

        /// Identity matrices are neutral for MV at any size.
        #[test]
        fn identity_is_neutral(v in proptest::collection::vec(-1000i64..1000, 1..6)) {
            let m = IMat::identity(v.len());
            prop_assert_eq!(m.mv(&v), v);
        }
    }
}
