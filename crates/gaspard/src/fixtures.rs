//! Reusable model fixtures for tests, examples and benches.

use crate::model::*;

/// A miniature two-stage filter application:
///
/// ```text
/// source ─(4×16)─► stage1 ─(4×8)─► stage2 ─(4×4)─► sink
/// ```
///
/// Both stages interpolate 2:1 along columns with 3-element windows over a
/// 5-wide pattern, structurally identical to the downscaler's filters but
/// small enough for exhaustive testing. Returns the model plus an allocation
/// mapping I/O to the CPU and stages to the GPU.
pub fn mini_two_stage_model() -> (Model, Allocation) {
    let interp = ElementaryOp::InterpolateWindows {
        windows: vec![WindowSpec { offset: 0, len: 3 }, WindowSpec { offset: 2, len: 3 }],
        divisor: 3,
    };
    let task = |name: &str| Component {
        name: name.into(),
        stereotype: Stereotype::SwResource,
        ports: vec![
            Port { name: "pin".into(), dir: PortDir::In, shape: vec![5] },
            Port { name: "pout".into(), dir: PortDir::Out, shape: vec![2] },
        ],
        kind: ComponentKind::Elementary { op: interp.clone() },
    };
    let stage = |name: &str, rows: usize, in_cols: usize, task: &str| {
        let tiles = in_cols / 4;
        Component {
            name: name.into(),
            stereotype: Stereotype::SwResource,
            ports: vec![
                Port { name: "fin".into(), dir: PortDir::In, shape: vec![rows, in_cols] },
                Port { name: "fout".into(), dir: PortDir::Out, shape: vec![rows, tiles * 2] },
            ],
            kind: ComponentKind::Repetitive {
                repetition: vec![rows, tiles],
                inner: task.into(),
                input_tilers: vec![(
                    vec![5],
                    TilerSpec {
                        origin: vec![0, 0],
                        fitting: vec![vec![0], vec![1]],
                        paving: vec![vec![1, 0], vec![0, 4]],
                    },
                )],
                output_tilers: vec![(
                    vec![2],
                    TilerSpec {
                        origin: vec![0, 0],
                        fitting: vec![vec![0], vec![1]],
                        paving: vec![vec![1, 0], vec![0, 2]],
                    },
                )],
            },
        }
    };
    let source = Component {
        name: "source".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![Port { name: "frame".into(), dir: PortDir::Out, shape: vec![4, 16] }],
        kind: ComponentKind::FrameSource,
    };
    let sink = Component {
        name: "sink".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![Port { name: "frame".into(), dir: PortDir::In, shape: vec![4, 4] }],
        kind: ComponentKind::FrameSink,
    };
    let root = Component {
        name: "app".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![],
        kind: ComponentKind::Composite {
            parts: vec![
                ("src".into(), "source".into()),
                ("s1".into(), "stage1".into()),
                ("s2".into(), "stage2".into()),
                ("snk".into(), "sink".into()),
            ],
            connections: vec![
                Connection {
                    from: PartRef::Part { part: "src".into(), port: "frame".into() },
                    to: PartRef::Part { part: "s1".into(), port: "fin".into() },
                },
                Connection {
                    from: PartRef::Part { part: "s1".into(), port: "fout".into() },
                    to: PartRef::Part { part: "s2".into(), port: "fin".into() },
                },
                Connection {
                    from: PartRef::Part { part: "s2".into(), port: "fout".into() },
                    to: PartRef::Part { part: "snk".into(), port: "frame".into() },
                },
            ],
        },
    };
    let model = Model {
        name: "mini".into(),
        components: vec![
            task("interp"),
            stage("stage1", 4, 16, "interp"),
            stage("stage2", 4, 8, "interp"),
            source,
            sink,
            root,
        ],
        root: "app".into(),
    };
    let alloc = Allocation::default()
        .allocate("source", "i7_930")
        .allocate("sink", "i7_930")
        .allocate("stage1", "gtx480")
        .allocate("stage2", "gtx480");
    (model, alloc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marte::validate;

    #[test]
    fn fixture_is_valid() {
        let (model, _) = mini_two_stage_model();
        validate(&model).unwrap();
    }
}
