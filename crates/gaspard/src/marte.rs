//! MARTE stereotype validation.
//!
//! The MARTE profile's Repetitive Structure Modelling (RSM) package carries
//! the ArrayOL semantics; this module checks that a model's stereotyped
//! elements are mutually consistent before any transformation runs:
//!
//! * repetitive components: the inner component exists, is elementary, and
//!   its port shapes equal the declared pattern shapes; tiler matrices have
//!   the right dimensions for (array rank × pattern/repetition rank); output
//!   tilers tile their array *exactly once* (ArrayOL single assignment),
//! * composites: parts reference declared components, connection endpoints
//!   exist and connect an output to an input with equal shapes,
//! * elementary ops: window specs stay inside the input pattern.

use crate::model::*;
use crate::GaspardError;
use mdarray::Shape;

/// Validate a whole model.
pub fn validate(model: &Model) -> Result<(), GaspardError> {
    if model.component(&model.root).is_none() {
        return Err(GaspardError::UnknownElement {
            what: "root component",
            name: model.root.clone(),
        });
    }
    for c in &model.components {
        validate_component(model, c)?;
    }
    Ok(())
}

fn invalid(element: &str, msg: impl Into<String>) -> GaspardError {
    GaspardError::Invalid { element: element.into(), msg: msg.into() }
}

fn validate_component(model: &Model, c: &Component) -> Result<(), GaspardError> {
    match &c.kind {
        ComponentKind::Elementary { op } => {
            let input = c
                .inputs()
                .next()
                .ok_or_else(|| invalid(&c.name, "elementary task needs an input port"))?;
            let output = c
                .outputs()
                .next()
                .ok_or_else(|| invalid(&c.name, "elementary task needs an output port"))?;
            if input.shape.len() != 1 || output.shape.len() != 1 {
                return Err(invalid(&c.name, "elementary patterns must be rank-1"));
            }
            let in_len = input.shape[0];
            if op.out_len(in_len) != output.shape[0] {
                return Err(invalid(
                    &c.name,
                    format!(
                        "op produces {} elements but the output pattern holds {}",
                        op.out_len(in_len),
                        output.shape[0]
                    ),
                ));
            }
            if let ElementaryOp::InterpolateWindows { windows, divisor } = op {
                if *divisor == 0 {
                    return Err(invalid(&c.name, "divisor must be non-zero"));
                }
                for w in windows {
                    if w.offset + w.len > in_len {
                        return Err(invalid(
                            &c.name,
                            format!(
                                "window {}..{} exceeds pattern length {in_len}",
                                w.offset,
                                w.offset + w.len
                            ),
                        ));
                    }
                }
            }
            if let ElementaryOp::WeightedSum { weights } = op {
                if weights.len() != in_len {
                    return Err(invalid(
                        &c.name,
                        format!(
                            "weighted sum has {} weights but the input pattern holds {in_len}",
                            weights.len()
                        ),
                    ));
                }
            }
        }
        ComponentKind::Repetitive { repetition, inner, input_tilers, output_tilers } => {
            let inner_c = model.component(inner).ok_or_else(|| GaspardError::UnknownElement {
                what: "inner component",
                name: inner.clone(),
            })?;
            if !matches!(inner_c.kind, ComponentKind::Elementary { .. }) {
                return Err(invalid(&c.name, "repetitive inner component must be elementary"));
            }
            let rep = Shape::new(repetition.clone());
            // Pair external ports with tilers positionally.
            let ins: Vec<&Port> = c.inputs().collect();
            let outs: Vec<&Port> = c.outputs().collect();
            if ins.len() != input_tilers.len() || outs.len() != output_tilers.len() {
                return Err(invalid(&c.name, "tiler count does not match port count"));
            }
            let inner_ins: Vec<&Port> = inner_c.inputs().collect();
            let inner_outs: Vec<&Port> = inner_c.outputs().collect();
            if inner_ins.len() != ins.len() || inner_outs.len() != outs.len() {
                return Err(invalid(&c.name, "inner port count does not match"));
            }
            for ((port, (pattern, spec)), inner_port) in
                ins.iter().zip(input_tilers).zip(&inner_ins)
            {
                if &inner_port.shape != pattern {
                    return Err(invalid(
                        &c.name,
                        format!(
                            "inner input pattern {:?} differs from tiler pattern {:?}",
                            inner_port.shape, pattern
                        ),
                    ));
                }
                spec.to_tiler()
                    .validate(&Shape::new(port.shape.clone()), &Shape::new(pattern.clone()), &rep)
                    .map_err(|e| invalid(&c.name, e.to_string()))?;
            }
            for ((port, (pattern, spec)), inner_port) in
                outs.iter().zip(output_tilers).zip(&inner_outs)
            {
                if &inner_port.shape != pattern {
                    return Err(invalid(&c.name, "inner output pattern differs from tiler"));
                }
                let tiler = spec.to_tiler();
                let arr = Shape::new(port.shape.clone());
                let pat = Shape::new(pattern.clone());
                tiler.validate(&arr, &pat, &rep).map_err(|e| invalid(&c.name, e.to_string()))?;
                tiler
                    .check_exact_cover(&arr, &rep, &pat)
                    .map_err(|e| invalid(&c.name, format!("output tiler: {e}")))?;
            }
        }
        ComponentKind::Composite { parts, connections } => {
            for (inst, comp) in parts {
                if model.component(comp).is_none() {
                    return Err(GaspardError::UnknownElement {
                        what: "part component",
                        name: format!("{inst}: {comp}"),
                    });
                }
            }
            for conn in connections {
                let from_shape = endpoint_shape(model, c, &conn.from, PortDir::Out)
                    .map_err(|m| invalid(&c.name, m))?;
                let to_shape = endpoint_shape(model, c, &conn.to, PortDir::In)
                    .map_err(|m| invalid(&c.name, m))?;
                if from_shape != to_shape {
                    return Err(invalid(
                        &c.name,
                        format!("connection shape mismatch: {from_shape:?} -> {to_shape:?}"),
                    ));
                }
            }
        }
        ComponentKind::FrameSource | ComponentKind::FrameSink => {}
    }
    Ok(())
}

/// Shape at a connection endpoint; `expected_dir` is the direction relative
/// to dataflow (an endpoint acting as producer must be a part Out port or a
/// composite External In port, and vice versa).
fn endpoint_shape(
    model: &Model,
    composite: &Component,
    ep: &PartRef,
    expected_dir: PortDir,
) -> Result<Vec<usize>, String> {
    match ep {
        PartRef::External { port } => {
            let p =
                composite.port(port).ok_or_else(|| format!("unknown external port '{port}'"))?;
            // External In ports feed parts (act as producers); External Out
            // ports are fed by parts (act as consumers).
            let ok = match expected_dir {
                PortDir::Out => p.dir == PortDir::In,
                PortDir::In => p.dir == PortDir::Out,
            };
            if !ok {
                return Err(format!("external port '{port}' has the wrong direction"));
            }
            Ok(p.shape.clone())
        }
        PartRef::Part { part, port } => {
            let ComponentKind::Composite { parts, .. } = &composite.kind else {
                return Err("part reference outside a composite".into());
            };
            let comp_name = parts
                .iter()
                .find(|(inst, _)| inst == part)
                .map(|(_, c)| c.as_str())
                .ok_or_else(|| format!("unknown part '{part}'"))?;
            let comp = model.component(comp_name).ok_or("unresolved part component")?;
            let p =
                comp.port(port).ok_or_else(|| format!("unknown port '{port}' on '{comp_name}'"))?;
            if p.dir != expected_dir {
                return Err(format!("port '{part}.{port}' has the wrong direction"));
            }
            Ok(p.shape.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elementary(name: &str, in_len: usize, op: ElementaryOp) -> Component {
        let out_len = op.out_len(in_len);
        Component {
            name: name.into(),
            stereotype: Stereotype::SwResource,
            ports: vec![
                Port { name: "pin".into(), dir: PortDir::In, shape: vec![in_len] },
                Port { name: "pout".into(), dir: PortDir::Out, shape: vec![out_len] },
            ],
            kind: ComponentKind::Elementary { op },
        }
    }

    fn simple_model() -> Model {
        let interp = ElementaryOp::InterpolateWindows {
            windows: vec![WindowSpec { offset: 0, len: 3 }, WindowSpec { offset: 2, len: 3 }],
            divisor: 3,
        };
        let task = elementary("interp", 5, interp);
        let rep = Component {
            name: "filter".into(),
            stereotype: Stereotype::SwResource,
            ports: vec![
                Port { name: "fin".into(), dir: PortDir::In, shape: vec![4, 16] },
                Port { name: "fout".into(), dir: PortDir::Out, shape: vec![4, 8] },
            ],
            kind: ComponentKind::Repetitive {
                repetition: vec![4, 4],
                inner: "interp".into(),
                input_tilers: vec![(
                    vec![5],
                    TilerSpec {
                        origin: vec![0, 0],
                        fitting: vec![vec![0], vec![1]],
                        paving: vec![vec![1, 0], vec![0, 4]],
                    },
                )],
                output_tilers: vec![(
                    vec![2],
                    TilerSpec {
                        origin: vec![0, 0],
                        fitting: vec![vec![0], vec![1]],
                        paving: vec![vec![1, 0], vec![0, 2]],
                    },
                )],
            },
        };
        let root = Component {
            name: "app".into(),
            stereotype: Stereotype::SwResource,
            ports: vec![
                Port { name: "video_in".into(), dir: PortDir::In, shape: vec![4, 16] },
                Port { name: "video_out".into(), dir: PortDir::Out, shape: vec![4, 8] },
            ],
            kind: ComponentKind::Composite {
                parts: vec![("f".into(), "filter".into())],
                connections: vec![
                    Connection {
                        from: PartRef::External { port: "video_in".into() },
                        to: PartRef::Part { part: "f".into(), port: "fin".into() },
                    },
                    Connection {
                        from: PartRef::Part { part: "f".into(), port: "fout".into() },
                        to: PartRef::External { port: "video_out".into() },
                    },
                ],
            },
        };
        Model { name: "mini".into(), components: vec![task, rep, root], root: "app".into() }
    }

    #[test]
    fn valid_model_passes() {
        validate(&simple_model()).unwrap();
    }

    #[test]
    fn rejects_window_outside_pattern() {
        let mut m = simple_model();
        if let ComponentKind::Elementary { op: ElementaryOp::InterpolateWindows { windows, .. } } =
            &mut m.components[0].kind
        {
            windows[1] = WindowSpec { offset: 4, len: 3 };
        }
        assert!(matches!(validate(&m), Err(GaspardError::Invalid { .. })));
    }

    #[test]
    fn rejects_overlapping_output_tiler() {
        let mut m = simple_model();
        if let ComponentKind::Repetitive { output_tilers, .. } = &mut m.components[1].kind {
            // Step 1 instead of 2: outputs overlap.
            output_tilers[0].1.paving = vec![vec![1, 0], vec![0, 1]];
        }
        assert!(matches!(validate(&m), Err(GaspardError::Invalid { .. })));
    }

    #[test]
    fn rejects_shape_mismatched_connection() {
        let mut m = simple_model();
        if let ComponentKind::Composite { .. } = &m.components[2].kind {
            m.components[2].ports[0].shape = vec![4, 12];
        }
        assert!(matches!(validate(&m), Err(GaspardError::Invalid { .. })));
    }

    #[test]
    fn rejects_unknown_root_or_part() {
        let mut m = simple_model();
        m.root = "nope".into();
        assert!(matches!(validate(&m), Err(GaspardError::UnknownElement { .. })));

        let mut m = simple_model();
        if let ComponentKind::Composite { parts, .. } = &mut m.components[2].kind {
            parts[0].1 = "ghost".into();
        }
        assert!(matches!(validate(&m), Err(GaspardError::UnknownElement { .. })));
    }

    #[test]
    fn rejects_wrong_pattern_shape() {
        let mut m = simple_model();
        if let ComponentKind::Repetitive { input_tilers, .. } = &mut m.components[1].kind {
            input_tilers[0].0 = vec![7];
        }
        assert!(matches!(validate(&m), Err(GaspardError::Invalid { .. })));
    }
}
