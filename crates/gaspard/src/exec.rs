//! Host-side execution of generated OpenCL programs on the simulator.
//!
//! The generated host code's behaviour (per the paper's profile in Table I):
//! per frame, every source array is written to the device
//! (`clEnqueueWriteBuffer` ⇒ `memcpyHtoDasync`), all kernels run back to
//! back with intermediates staying in device memory, and every sink array is
//! read back (`memcpyDtoHasync`).
//!
//! Since the launch-plan refactor this module contains no executor of its
//! own: [`lower_plan`] projects a scheduled model's kernel list onto the
//! route-agnostic [`simgpu::schedule::LaunchPlan`] IR, and both entry points
//! are thin wrappers over [`simgpu::schedule::BatchScheduler`] — the same
//! engine that executes the SaC→CUDA route, so command-queue pipelining,
//! OOM degradation and timing replay are shared code, not reimplementations.

use crate::codegen::OpenClProgram;
use crate::GaspardError;
use mdarray::NdArray;
use simgpu::schedule::{
    ArrayDecl, BatchScheduler, LaunchPlan, PlanKernel, PlanStep, RunStats, ScheduleError,
};
use simgpu::Device;

pub use simgpu::schedule::ExecOptions;

/// Where the generated host loop keeps intermediate arrays.
///
/// The MDE-generated host code the paper profiles keeps intermediates
/// device-resident ([`Placement::Resident`]); [`Placement::PerKernelRoundTrip`]
/// lowers the naive placement a straight per-tiler translation would emit —
/// upload each kernel's input, download its output, every kernel, every
/// frame. It exists as the planopt baseline: the residency and dead-transfer
/// passes must recover the resident placement from it mechanically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Intermediates stay in device memory between kernels (paper-faithful).
    Resident,
    /// Every kernel's input is uploaded and its output downloaded — the
    /// maximally redundant placement used as the planopt ablation baseline.
    PerKernelRoundTrip,
}

/// Map a scheduler error back onto this route's error type.
fn from_schedule(e: ScheduleError) -> GaspardError {
    match e {
        ScheduleError::Sim(e) => GaspardError::Sim(e),
        ScheduleError::Overflow { value } => {
            GaspardError::BadInput { msg: format!("value {value} does not fit a device int") }
        }
        ScheduleError::Input(msg) | ScheduleError::Plan(msg) | ScheduleError::Host(msg) => {
            GaspardError::BadInput { msg }
        }
        ScheduleError::Config(msg) => GaspardError::Config(msg),
    }
}

/// Lower a generated OpenCL program to the route-agnostic launch-plan IR.
///
/// The plan mirrors the generated host loop exactly: one `Upload` per source
/// array (whole-buffer writes — the MDE chain does not chunk transfers), one
/// `Alloc` + `Launch` per scheduled kernel with the `[output, input]`
/// argument convention of the generated kernels, and one `Download` per sink
/// array, in model order. The chain performs no host fallbacks, so the plan
/// has no host ops.
pub fn lower_plan(prog: &OpenClProgram) -> LaunchPlan<'_> {
    lower_plan_with(prog, Placement::Resident)
}

/// [`lower_plan`] with an explicit intermediate [`Placement`].
///
/// `PerKernelRoundTrip` emits, per kernel in model order: upload its input,
/// alloc its output, launch, download its output — so every intermediate
/// makes a full host round trip between producer and consumer, and inputs
/// shared by several kernels are uploaded once per reader. This is the
/// placement a per-tiler translation without cross-kernel analysis produces;
/// `simgpu::planopt`'s residency + dead-transfer passes reduce it back to
/// the `Resident` step list.
pub fn lower_plan_with(prog: &OpenClProgram, placement: Placement) -> LaunchPlan<'_> {
    let sm = &prog.model;
    let arrays: Vec<ArrayDecl> = sm
        .arrays
        .iter()
        .map(|a| ArrayDecl { name: a.name.clone(), shape: a.shape.clone() })
        .collect();
    // Each generated kernel pairs 1:1 with its scheduled task, whose tilers
    // describe the access; attaching them lets `simgpu::planopt`'s fusion
    // pass re-fuse the plan without consulting GASPARD2 internals.
    let kernels: Vec<PlanKernel<'_>> = prog
        .kernels
        .iter()
        .zip(&sm.kernels)
        .map(|(k, sk)| {
            PlanKernel::new(&k.kernel, k.config, vec![k.output, k.input])
                .with_access(crate::codegen::access_of(sk))
        })
        .collect();
    let mut steps = Vec::with_capacity(sm.inputs.len() + 2 * prog.kernels.len() + sm.outputs.len());
    match placement {
        Placement::Resident => {
            for &id in &sm.inputs {
                steps.push(PlanStep::Upload { array: id, chunks: 1 });
            }
            for (i, k) in prog.kernels.iter().enumerate() {
                steps.push(PlanStep::Alloc { array: k.output });
                steps.push(PlanStep::Launch { kernel: i });
            }
            for &id in &sm.outputs {
                steps.push(PlanStep::Download { array: id, chunks: 1 });
            }
        }
        Placement::PerKernelRoundTrip => {
            for (i, k) in prog.kernels.iter().enumerate() {
                steps.push(PlanStep::Upload { array: k.input, chunks: 1 });
                steps.push(PlanStep::Alloc { array: k.output });
                steps.push(PlanStep::Launch { kernel: i });
                steps.push(PlanStep::Download { array: k.output, chunks: 1 });
            }
        }
    }
    LaunchPlan {
        arrays,
        inputs: sm.inputs.clone(),
        outputs: sm.outputs.clone(),
        kernels,
        host_ops: Vec::new(),
        steps,
        prologue: Vec::new(),
        invariant: Vec::new(),
        batches: Vec::new(),
        carries: Vec::new(),
        lane_label: "command queues",
    }
}

/// Execute the program once (one frame set) on `device`.
///
/// `inputs` are bound positionally to the scheduled model's source arrays;
/// the returned vector holds one array per sink, in model order. Buffers are
/// released before returning (per-frame cleanup, as the generated host loop
/// does).
pub fn run_opencl(
    prog: &OpenClProgram,
    device: &mut Device,
    inputs: &[NdArray<i64>],
) -> Result<Vec<NdArray<i64>>, GaspardError> {
    let plan = lower_plan(prog);
    let frames = [inputs.to_vec()];
    let (mut outs, _) = BatchScheduler::new(&plan)
        .run(device, &frames, &ExecOptions::default())
        .map_err(from_schedule)?;
    Ok(outs.pop().expect("one frame in, one frame out"))
}

/// Execute a batch of frames with multi-queue double buffering.
///
/// A thin wrapper: lowers `prog` with [`lower_plan`] and hands the batch to
/// [`BatchScheduler`]. Frame `f` runs on command queue `f % streams` (an
/// OpenCL command queue is the simulator's stream) with that queue's private
/// buffer set; in-order queues protect in-place buffer reuse while adjacent
/// frames overlap upload, kernels, and readback on the device's three
/// engines. Returns one sink-array vector per functionally executed frame.
/// The device is synchronized on return, so `device.now_us()` is the batch
/// makespan. Timing replay ([`ExecOptions::total_frames`]) and the
/// OOM-degradation ladder ([`ExecOptions::degrade_on_oom`]) behave exactly
/// as on the SaC route — they are the same code.
pub fn run_opencl_frames(
    prog: &OpenClProgram,
    device: &mut Device,
    frames: &[Vec<NdArray<i64>>],
    opts: ExecOptions,
) -> Result<Vec<Vec<NdArray<i64>>>, GaspardError> {
    let (outs, _) = run_opencl_frames_placed(prog, device, frames, opts, Placement::Resident)?;
    Ok(outs)
}

/// [`run_opencl_frames`] with an explicit intermediate [`Placement`]; also
/// returns the run's transfer/launch counters.
///
/// When `opts.optimize` enables any `simgpu::planopt` pass, the lowered plan
/// is rewritten before scheduling and each pass's change note is surfaced as
/// a profiler note next to the timings.
pub fn run_opencl_frames_placed(
    prog: &OpenClProgram,
    device: &mut Device,
    frames: &[Vec<NdArray<i64>>],
    opts: ExecOptions,
    placement: Placement,
) -> Result<simgpu::schedule::BatchOutput, GaspardError> {
    if frames.is_empty() {
        return Ok((Vec::new(), RunStats::default()));
    }
    // Surface pass-level observations (fusion decisions, refusal fallbacks)
    // once per batch, so ablation reports can show them next to the timings.
    for note in &prog.notes {
        device.profiler.note(note.clone());
    }
    let mut plan = lower_plan_with(prog, placement);
    let report = simgpu::planopt::optimize(&mut plan, opts.optimize).map_err(from_schedule)?;
    for note in report.notes {
        device.profiler.note(note);
    }
    BatchScheduler::new(&plan).run(device, frames, &opts).map_err(from_schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::generate_opencl;
    use crate::fixtures::mini_two_stage_model;
    use crate::model::Platform;
    use crate::transform::{deploy, schedule, to_arrayol};
    use arrayol::exec::{execute, ExecOptions as ArrayOlExecOptions};
    use std::collections::HashMap;

    fn compiled() -> OpenClProgram {
        let (model, alloc) = mini_two_stage_model();
        let dep = deploy(model, Platform::cpu_gpu(), alloc).unwrap();
        let sm = schedule(&dep).unwrap();
        generate_opencl(&sm).unwrap()
    }

    #[test]
    fn generated_opencl_matches_arrayol_reference() {
        let prog = compiled();
        let frame = NdArray::from_fn([4usize, 16], |ix| ((ix[0] * 37 + ix[1] * 11) % 256) as i64);

        // Reference: the ArrayOL projection of the same scheduled model.
        let g = to_arrayol(&prog.model).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(g.external_inputs[0], frame.clone());
        let expect = execute(&g, &inputs, &ArrayOlExecOptions::sequential()).unwrap();
        let expect = &expect[&g.external_outputs[0]];

        // Generated OpenCL on the simulator.
        let mut device = Device::gtx480();
        let got = run_opencl(&prog, &mut device, &[frame]).unwrap();
        assert_eq!(&got[0], expect);
        assert!(device.now_us() > 0.0);
    }

    #[test]
    fn profiler_shows_paper_operations() {
        let prog = compiled();
        let frame = NdArray::filled([4usize, 16], 9i64);
        let mut device = Device::gtx480();
        run_opencl(&prog, &mut device, &[frame]).unwrap();
        let names: Vec<&str> = device.profiler.records().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"memcpyHtoDasync"));
        assert!(names.contains(&"memcpyDtoHasync"));
        assert!(names.contains(&"s1"));
        assert!(names.contains(&"s2"));
    }

    #[test]
    fn input_validation() {
        let prog = compiled();
        let mut device = Device::gtx480();
        assert!(matches!(run_opencl(&prog, &mut device, &[]), Err(GaspardError::BadInput { .. })));
        let wrong = NdArray::filled([3usize, 3], 0i64);
        assert!(matches!(
            run_opencl(&prog, &mut device, &[wrong]),
            Err(GaspardError::BadInput { .. })
        ));
    }

    #[test]
    fn zero_queues_is_rejected_by_the_unified_validation() {
        let prog = compiled();
        let mut device = Device::gtx480();
        let err = run_opencl_frames(
            &prog,
            &mut device,
            &queue_frames(2),
            ExecOptions { streams: 0, ..Default::default() },
        );
        assert!(matches!(err, Err(GaspardError::Config(_))), "{err:?}");
        assert_eq!(device.now_us(), 0.0);
        assert_eq!(device.profiler.records().count(), 0);
    }

    fn queue_frames(n: usize) -> Vec<Vec<NdArray<i64>>> {
        (0..n)
            .map(|f| {
                vec![NdArray::from_fn([4usize, 16], |ix| {
                    ((f * 31 + ix[0] * 37 + ix[1] * 11) % 256) as i64
                })]
            })
            .collect()
    }

    #[test]
    fn one_queue_pipeline_matches_serial_executor_exactly() {
        let prog = compiled();
        let frames = queue_frames(4);

        let mut serial = Device::gtx480();
        let mut serial_outs = Vec::new();
        for f in &frames {
            serial_outs.push(run_opencl(&prog, &mut serial, f).unwrap());
        }

        let mut piped = Device::gtx480();
        let outs = run_opencl_frames(
            &prog,
            &mut piped,
            &frames,
            ExecOptions { streams: 1, ..Default::default() },
        )
        .unwrap();

        assert_eq!(outs, serial_outs);
        assert_eq!(piped.now_us(), serial.now_us());
        let a: Vec<_> = serial.profiler.records().collect();
        let b: Vec<_> = piped.profiler.records().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn two_queues_overlap_and_preserve_results() {
        let prog = compiled();
        let frames = queue_frames(6);

        let mut sync = Device::gtx480();
        let expect = run_opencl_frames(
            &prog,
            &mut sync,
            &frames,
            ExecOptions { streams: 1, ..Default::default() },
        )
        .unwrap();

        let mut db = Device::gtx480();
        let got = run_opencl_frames(
            &prog,
            &mut db,
            &frames,
            ExecOptions { streams: 2, ..Default::default() },
        )
        .unwrap();

        assert_eq!(got, expect);
        assert!(db.now_us() < sync.now_us(), "{} !< {}", db.now_us(), sync.now_us());
        assert!(db.profiler.overlap_percent() > 0.0);
        assert_eq!(db.allocated_bytes(), 0);
    }

    #[test]
    fn naive_placement_with_planopt_recovers_resident_transfers() {
        let prog = compiled();
        let frames = queue_frames(4);
        let opts = ExecOptions { streams: 2, ..Default::default() };

        let mut resident = Device::gtx480();
        let expect = run_opencl_frames(&prog, &mut resident, &frames, opts).unwrap();

        // The per-kernel round-trip placement is correct but moves more data.
        let mut naive = Device::gtx480();
        let (naive_outs, naive_stats) = run_opencl_frames_placed(
            &prog,
            &mut naive,
            &frames,
            opts,
            Placement::PerKernelRoundTrip,
        )
        .unwrap();
        assert_eq!(naive_outs, expect);
        assert!(naive.now_us() > resident.now_us());

        // planopt strips the round trips back out of the naive placement.
        let mut opt = Device::gtx480();
        let (opt_outs, opt_stats) = run_opencl_frames_placed(
            &prog,
            &mut opt,
            &frames,
            ExecOptions { optimize: simgpu::PlanOptLevel::ALL, ..opts },
            Placement::PerKernelRoundTrip,
        )
        .unwrap();
        assert_eq!(opt_outs, expect);
        assert!(
            opt_stats.h2d_bytes < naive_stats.h2d_bytes,
            "{} !< {}",
            opt_stats.h2d_bytes,
            naive_stats.h2d_bytes
        );
        assert!(opt_stats.d2h_bytes < naive_stats.d2h_bytes);
        assert!(opt.now_us() < naive.now_us(), "{} !< {}", opt.now_us(), naive.now_us());
        assert!(opt.profiler.notes().any(|n| n.contains("planopt residency")));
    }

    #[test]
    fn replay_extends_timing_to_total_frames() {
        let prog = compiled();

        let mut full = Device::gtx480();
        run_opencl_frames(
            &prog,
            &mut full,
            &queue_frames(6),
            ExecOptions { streams: 2, ..Default::default() },
        )
        .unwrap();

        let mut replay = Device::gtx480();
        let outs = run_opencl_frames(
            &prog,
            &mut replay,
            &queue_frames(2),
            ExecOptions { streams: 2, total_frames: 6, ..Default::default() },
        )
        .unwrap();

        assert_eq!(outs.len(), 2);
        assert_eq!(replay.now_us(), full.now_us());
        assert_eq!(replay.profiler.spans().count(), full.profiler.spans().count());
    }

    #[test]
    fn oom_batch_degrades_queues_and_completes() {
        let prog = compiled();
        let frames = queue_frames(6);

        // Per-queue footprint, measured on an unconstrained device.
        let mut probe = Device::gtx480();
        let expect = run_opencl_frames(
            &prog,
            &mut probe,
            &frames,
            ExecOptions { streams: 1, ..Default::default() },
        )
        .unwrap();
        let per_queue = probe.peak_allocated_bytes();
        assert!(per_queue > 0);

        // Room for two queues but not four: naive fails, degrading completes
        // with bit-identical outputs and a recorded downgrade.
        let cfg = simgpu::DeviceConfig::toy(per_queue * 2);
        let mut naive = Device::new(cfg.clone(), simgpu::Calibration::gtx480());
        let err = run_opencl_frames(
            &prog,
            &mut naive,
            &frames,
            ExecOptions { streams: 4, ..Default::default() },
        );
        assert!(
            matches!(err, Err(GaspardError::Sim(simgpu::SimError::OutOfMemory { .. }))),
            "{err:?}"
        );

        let mut degraded = Device::new(cfg, simgpu::Calibration::gtx480());
        let outs = run_opencl_frames(
            &prog,
            &mut degraded,
            &frames,
            ExecOptions { streams: 4, degrade_on_oom: true, ..Default::default() },
        )
        .unwrap();
        assert_eq!(outs, expect);
        assert_eq!(degraded.allocated_bytes(), 0);
        assert!(degraded
            .profiler
            .notes()
            .any(|n| n.contains("degraded") && n.contains("command queues")));
    }

    #[test]
    fn repeated_frames_accumulate_profile() {
        let prog = compiled();
        let mut device = Device::gtx480();
        let frame = NdArray::filled([4usize, 16], 1i64);
        for _ in 0..5 {
            run_opencl(&prog, &mut device, std::slice::from_ref(&frame)).unwrap();
        }
        let h2d = device.profiler.records().find(|r| r.name == "memcpyHtoDasync").unwrap();
        assert_eq!(h2d.calls, 5);
        // All buffers were freed each frame.
        assert_eq!(device.allocated_bytes(), 0);
    }
}
