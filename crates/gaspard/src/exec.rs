//! Host-side execution of generated OpenCL programs on the simulator.
//!
//! The generated host code's behaviour (per the paper's profile in Table I):
//! per frame, every source array is written to the device
//! (`clEnqueueWriteBuffer` ⇒ `memcpyHtoDasync`), all kernels run back to
//! back with intermediates staying in device memory, and every sink array is
//! read back (`memcpyDtoHasync`).

use crate::codegen::OpenClProgram;
use crate::GaspardError;
use mdarray::NdArray;
use simgpu::device::{BufferId, Device, StreamId};
use simgpu::kir::KernelArg;
use simgpu::profiler::OpClass;

/// Execute the program once (one frame set) on `device`.
///
/// `inputs` are bound positionally to the scheduled model's source arrays;
/// the returned vector holds one array per sink, in model order.
pub fn run_opencl(
    prog: &OpenClProgram,
    device: &mut Device,
    inputs: &[NdArray<i64>],
) -> Result<Vec<NdArray<i64>>, GaspardError> {
    let mut buffers: Vec<Option<BufferId>> = vec![None; prog.model.arrays.len()];
    let out = exec_frame_on(prog, device, inputs, &mut buffers, StreamId::DEFAULT);
    device.sync_stream(StreamId::DEFAULT).expect("default stream always exists");

    // Per-frame cleanup, as the generated host loop does.
    for buf in buffers.into_iter().flatten() {
        device.free(buf)?;
    }
    out
}

/// Enqueue one frame of the program on `command_queue` (an OpenCL command
/// queue is the simulator's stream).
///
/// `buffers` is this queue's buffer set, indexed by model array id: `Some`
/// entries are reused in place (later frames overwrite them), `None` entries
/// are allocated on demand and left allocated for the caller.
fn exec_frame_on(
    prog: &OpenClProgram,
    device: &mut Device,
    inputs: &[NdArray<i64>],
    buffers: &mut [Option<BufferId>],
    command_queue: StreamId,
) -> Result<Vec<NdArray<i64>>, GaspardError> {
    let sm = &prog.model;
    if inputs.len() != sm.inputs.len() {
        return Err(GaspardError::BadInput {
            msg: format!("expected {} inputs, got {}", sm.inputs.len(), inputs.len()),
        });
    }

    // Upload sources.
    for (&id, arr) in sm.inputs.iter().zip(inputs) {
        if arr.shape().dims() != sm.arrays[id].shape.as_slice() {
            return Err(GaspardError::BadInput {
                msg: format!(
                    "input '{}' has shape {:?}, expected {:?}",
                    sm.arrays[id].name,
                    arr.shape().dims(),
                    sm.arrays[id].shape
                ),
            });
        }
        let data: Vec<i32> = arr
            .as_slice()
            .iter()
            .map(|&v| {
                i32::try_from(v).map_err(|_| GaspardError::BadInput {
                    msg: format!("value {v} does not fit a device int"),
                })
            })
            .collect::<Result<_, _>>()?;
        let buf = match buffers[id] {
            Some(b) => b,
            None => {
                let b = device.malloc(data.len())?;
                buffers[id] = Some(b);
                b
            }
        };
        device.host2device_on(&data, buf, command_queue)?;
    }

    // Launch kernels in schedule order; allocate outputs on demand.
    for k in &prog.kernels {
        if buffers[k.output].is_none() {
            let len: usize = sm.arrays[k.output].shape.iter().product();
            buffers[k.output] = Some(device.malloc(len)?);
        }
        let out = buffers[k.output].expect("just allocated");
        let inp = buffers[k.input].ok_or_else(|| GaspardError::BadInput {
            msg: format!("kernel '{}' input not on device", k.kernel.name),
        })?;
        device.launch_on(
            &k.kernel,
            k.config,
            &[KernelArg::Buffer(out.0), KernelArg::Buffer(inp.0)],
            command_queue,
        )?;
    }

    // Read back sinks.
    let mut outputs = Vec::with_capacity(sm.outputs.len());
    for &id in &sm.outputs {
        let buf = buffers[id].ok_or_else(|| GaspardError::BadInput {
            msg: format!("output '{}' never computed", sm.arrays[id].name),
        })?;
        let data = device.device2host_on(buf, command_queue)?;
        outputs.push(
            NdArray::from_vec(
                sm.arrays[id].shape.clone(),
                data.into_iter().map(i64::from).collect(),
            )
            .expect("device buffer length matches declared shape"),
        );
    }
    Ok(outputs)
}

/// Options for [`run_opencl_frames`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenClPipelineOptions {
    /// Number of command queues = number of device buffer sets. `0` or `1`
    /// serializes on the default queue, reproducing [`run_opencl`]'s
    /// one-frame-at-a-time schedule exactly; `2` double-buffers adjacent
    /// frames across the copy and compute engines.
    pub queues: usize,
    /// When greater than the number of supplied frames, remaining frames are
    /// timing-replayed from the first frame's measured per-operation
    /// durations (exact under the cost model: per-frame cost is
    /// content-independent for fixed shapes). `0` means `frames.len()`.
    pub total_frames: usize,
    /// When a batch attempt fails with [`simgpu::SimError::OutOfMemory`],
    /// release that attempt's device buffers, halve the number of command
    /// queues and retry the whole batch instead of failing — the degradation
    /// ladder `queues → queues/2 → … → 1`. Each downgrade is surfaced as a
    /// profiler note and the failed attempt's simulated time stays charged.
    /// Results are bit-identical at any queue count. Off by default.
    pub degrade_on_oom: bool,
}

/// Execute a batch of frames with multi-queue double buffering.
///
/// Frame `f` runs on command queue `f % queues` with that queue's private
/// buffer set; in-order queues protect in-place buffer reuse while adjacent
/// frames overlap upload, kernels, and readback on the device's three
/// engines. Returns one sink-array vector per functionally executed frame.
/// The device is synchronized on return, so `device.now_us()` is the batch
/// makespan.
pub fn run_opencl_frames(
    prog: &OpenClProgram,
    device: &mut Device,
    frames: &[Vec<NdArray<i64>>],
    opts: OpenClPipelineOptions,
) -> Result<Vec<Vec<NdArray<i64>>>, GaspardError> {
    if frames.is_empty() {
        return Ok(Vec::new());
    }
    // Surface pass-level observations (fusion decisions, refusal fallbacks)
    // once per batch, so ablation reports can show them next to the timings.
    for note in &prog.notes {
        device.profiler.note(note.clone());
    }
    let mut lanes = opts.queues.max(1);
    loop {
        match run_frames_attempt(prog, device, frames, opts, lanes) {
            Err(GaspardError::Sim(simgpu::SimError::OutOfMemory { .. }))
                if opts.degrade_on_oom && lanes > 1 =>
            {
                let next = lanes / 2;
                device.profiler.note(format!(
                    "degraded: out of device memory at {lanes} command queues, \
                     retrying batch with {next}"
                ));
                lanes = next;
            }
            other => return other,
        }
    }
}

/// One batch attempt at a fixed queue count. Buffer sets are released on
/// success *and* failure so an aborted attempt never leaks device memory
/// into a degraded retry.
fn run_frames_attempt(
    prog: &OpenClProgram,
    device: &mut Device,
    frames: &[Vec<NdArray<i64>>],
    opts: OpenClPipelineOptions,
    lanes: usize,
) -> Result<Vec<Vec<NdArray<i64>>>, GaspardError> {
    let mut queues = vec![StreamId::DEFAULT];
    while queues.len() < lanes {
        queues.push(device.create_stream());
    }
    let mut buffer_sets: Vec<Vec<Option<BufferId>>> =
        vec![vec![None; prog.model.arrays.len()]; lanes];

    let run = exec_frames_on_queues(prog, device, frames, opts, lanes, &queues, &mut buffer_sets);

    for set in buffer_sets {
        for buf in set.into_iter().flatten() {
            let freed = device.free(buf);
            if run.is_ok() {
                // On the error path the original failure wins; frees of
                // just-allocated buffers cannot themselves fail.
                freed?;
            }
        }
    }
    device.synchronize();
    run
}

/// The frame loop of one attempt: execute the supplied frames round-robin
/// over `lanes` buffer sets, then replay frame 0's measured spans out to
/// `total_frames`.
fn exec_frames_on_queues(
    prog: &OpenClProgram,
    device: &mut Device,
    frames: &[Vec<NdArray<i64>>],
    opts: OpenClPipelineOptions,
    lanes: usize,
    queues: &[StreamId],
    buffer_sets: &mut [Vec<Option<BufferId>>],
) -> Result<Vec<Vec<NdArray<i64>>>, GaspardError> {
    let mut outputs = Vec::with_capacity(frames.len());
    let mut frame_ops: Vec<(String, OpClass, f64)> = Vec::new();
    for (f, inputs) in frames.iter().enumerate() {
        let lane = f % lanes;
        let span_mark = device.profiler.spans().count();
        let out = exec_frame_on(prog, device, inputs, &mut buffer_sets[lane], queues[lane])?;
        if f == 0 {
            frame_ops = device
                .profiler
                .spans()
                .skip(span_mark)
                .map(|sp| (sp.name.clone(), sp.class, sp.duration_us()))
                .collect();
        }
        outputs.push(out);
    }

    let total = if opts.total_frames == 0 { frames.len() } else { opts.total_frames };
    for f in frames.len()..total {
        let lane = f % lanes;
        for (name, class, us) in &frame_ops {
            device.replay_on(name, *class, *us, queues[lane])?;
        }
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::generate_opencl;
    use crate::fixtures::mini_two_stage_model;
    use crate::model::Platform;
    use crate::transform::{deploy, schedule, to_arrayol};
    use arrayol::exec::{execute, ExecOptions};
    use std::collections::HashMap;

    fn compiled() -> OpenClProgram {
        let (model, alloc) = mini_two_stage_model();
        let dep = deploy(model, Platform::cpu_gpu(), alloc).unwrap();
        let sm = schedule(&dep).unwrap();
        generate_opencl(&sm).unwrap()
    }

    #[test]
    fn generated_opencl_matches_arrayol_reference() {
        let prog = compiled();
        let frame = NdArray::from_fn([4usize, 16], |ix| ((ix[0] * 37 + ix[1] * 11) % 256) as i64);

        // Reference: the ArrayOL projection of the same scheduled model.
        let g = to_arrayol(&prog.model).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(g.external_inputs[0], frame.clone());
        let expect = execute(&g, &inputs, &ExecOptions::sequential()).unwrap();
        let expect = &expect[&g.external_outputs[0]];

        // Generated OpenCL on the simulator.
        let mut device = Device::gtx480();
        let got = run_opencl(&prog, &mut device, &[frame]).unwrap();
        assert_eq!(&got[0], expect);
        assert!(device.now_us() > 0.0);
    }

    #[test]
    fn profiler_shows_paper_operations() {
        let prog = compiled();
        let frame = NdArray::filled([4usize, 16], 9i64);
        let mut device = Device::gtx480();
        run_opencl(&prog, &mut device, &[frame]).unwrap();
        let names: Vec<&str> = device.profiler.records().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"memcpyHtoDasync"));
        assert!(names.contains(&"memcpyDtoHasync"));
        assert!(names.contains(&"s1"));
        assert!(names.contains(&"s2"));
    }

    #[test]
    fn input_validation() {
        let prog = compiled();
        let mut device = Device::gtx480();
        assert!(matches!(run_opencl(&prog, &mut device, &[]), Err(GaspardError::BadInput { .. })));
        let wrong = NdArray::filled([3usize, 3], 0i64);
        assert!(matches!(
            run_opencl(&prog, &mut device, &[wrong]),
            Err(GaspardError::BadInput { .. })
        ));
    }

    fn queue_frames(n: usize) -> Vec<Vec<NdArray<i64>>> {
        (0..n)
            .map(|f| {
                vec![NdArray::from_fn([4usize, 16], |ix| {
                    ((f * 31 + ix[0] * 37 + ix[1] * 11) % 256) as i64
                })]
            })
            .collect()
    }

    #[test]
    fn one_queue_pipeline_matches_serial_executor_exactly() {
        let prog = compiled();
        let frames = queue_frames(4);

        let mut serial = Device::gtx480();
        let mut serial_outs = Vec::new();
        for f in &frames {
            serial_outs.push(run_opencl(&prog, &mut serial, f).unwrap());
        }

        let mut piped = Device::gtx480();
        let outs = run_opencl_frames(
            &prog,
            &mut piped,
            &frames,
            OpenClPipelineOptions { queues: 1, ..Default::default() },
        )
        .unwrap();

        assert_eq!(outs, serial_outs);
        assert_eq!(piped.now_us(), serial.now_us());
        let a: Vec<_> = serial.profiler.records().collect();
        let b: Vec<_> = piped.profiler.records().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn two_queues_overlap_and_preserve_results() {
        let prog = compiled();
        let frames = queue_frames(6);

        let mut sync = Device::gtx480();
        let expect = run_opencl_frames(
            &prog,
            &mut sync,
            &frames,
            OpenClPipelineOptions { queues: 1, ..Default::default() },
        )
        .unwrap();

        let mut db = Device::gtx480();
        let got = run_opencl_frames(
            &prog,
            &mut db,
            &frames,
            OpenClPipelineOptions { queues: 2, ..Default::default() },
        )
        .unwrap();

        assert_eq!(got, expect);
        assert!(db.now_us() < sync.now_us(), "{} !< {}", db.now_us(), sync.now_us());
        assert!(db.profiler.overlap_percent() > 0.0);
        assert_eq!(db.allocated_bytes(), 0);
    }

    #[test]
    fn replay_extends_timing_to_total_frames() {
        let prog = compiled();

        let mut full = Device::gtx480();
        run_opencl_frames(
            &prog,
            &mut full,
            &queue_frames(6),
            OpenClPipelineOptions { queues: 2, ..Default::default() },
        )
        .unwrap();

        let mut replay = Device::gtx480();
        let outs = run_opencl_frames(
            &prog,
            &mut replay,
            &queue_frames(2),
            OpenClPipelineOptions { queues: 2, total_frames: 6, ..Default::default() },
        )
        .unwrap();

        assert_eq!(outs.len(), 2);
        assert_eq!(replay.now_us(), full.now_us());
        assert_eq!(replay.profiler.spans().count(), full.profiler.spans().count());
    }

    #[test]
    fn oom_batch_degrades_queues_and_completes() {
        let prog = compiled();
        let frames = queue_frames(6);

        // Per-queue footprint, measured on an unconstrained device.
        let mut probe = Device::gtx480();
        let expect = run_opencl_frames(
            &prog,
            &mut probe,
            &frames,
            OpenClPipelineOptions { queues: 1, ..Default::default() },
        )
        .unwrap();
        let per_queue = probe.peak_allocated_bytes();
        assert!(per_queue > 0);

        // Room for two queues but not four: naive fails, degrading completes
        // with bit-identical outputs and a recorded downgrade.
        let cfg = simgpu::DeviceConfig::toy(per_queue * 2);
        let mut naive = Device::new(cfg.clone(), simgpu::Calibration::gtx480());
        let err = run_opencl_frames(
            &prog,
            &mut naive,
            &frames,
            OpenClPipelineOptions { queues: 4, ..Default::default() },
        );
        assert!(
            matches!(err, Err(GaspardError::Sim(simgpu::SimError::OutOfMemory { .. }))),
            "{err:?}"
        );

        let mut degraded = Device::new(cfg, simgpu::Calibration::gtx480());
        let outs = run_opencl_frames(
            &prog,
            &mut degraded,
            &frames,
            OpenClPipelineOptions { queues: 4, degrade_on_oom: true, ..Default::default() },
        )
        .unwrap();
        assert_eq!(outs, expect);
        assert_eq!(degraded.allocated_bytes(), 0);
        assert!(degraded.profiler.notes().any(|n| n.contains("degraded")));
    }

    #[test]
    fn repeated_frames_accumulate_profile() {
        let prog = compiled();
        let mut device = Device::gtx480();
        let frame = NdArray::filled([4usize, 16], 1i64);
        for _ in 0..5 {
            run_opencl(&prog, &mut device, std::slice::from_ref(&frame)).unwrap();
        }
        let h2d = device.profiler.records().find(|r| r.name == "memcpyHtoDasync").unwrap();
        assert_eq!(h2d.calls, 5);
        // All buffers were freed each frame.
        assert_eq!(device.allocated_bytes(), 0);
    }
}
