//! Host-side execution of generated OpenCL programs on the simulator.
//!
//! The generated host code's behaviour (per the paper's profile in Table I):
//! per frame, every source array is written to the device
//! (`clEnqueueWriteBuffer` ⇒ `memcpyHtoDasync`), all kernels run back to
//! back with intermediates staying in device memory, and every sink array is
//! read back (`memcpyDtoHasync`).

use crate::codegen::OpenClProgram;
use crate::GaspardError;
use mdarray::NdArray;
use simgpu::device::{BufferId, Device};
use simgpu::kir::KernelArg;

/// Execute the program once (one frame set) on `device`.
///
/// `inputs` are bound positionally to the scheduled model's source arrays;
/// the returned vector holds one array per sink, in model order.
pub fn run_opencl(
    prog: &OpenClProgram,
    device: &mut Device,
    inputs: &[NdArray<i64>],
) -> Result<Vec<NdArray<i64>>, GaspardError> {
    let sm = &prog.model;
    if inputs.len() != sm.inputs.len() {
        return Err(GaspardError::BadInput {
            msg: format!("expected {} inputs, got {}", sm.inputs.len(), inputs.len()),
        });
    }

    let mut buffers: Vec<Option<BufferId>> = vec![None; sm.arrays.len()];

    // Upload sources.
    for (&id, arr) in sm.inputs.iter().zip(inputs) {
        if arr.shape().dims() != sm.arrays[id].shape.as_slice() {
            return Err(GaspardError::BadInput {
                msg: format!(
                    "input '{}' has shape {:?}, expected {:?}",
                    sm.arrays[id].name,
                    arr.shape().dims(),
                    sm.arrays[id].shape
                ),
            });
        }
        let data: Vec<i32> = arr
            .as_slice()
            .iter()
            .map(|&v| {
                i32::try_from(v).map_err(|_| GaspardError::BadInput {
                    msg: format!("value {v} does not fit a device int"),
                })
            })
            .collect::<Result<_, _>>()?;
        let buf = device.malloc(data.len())?;
        device.host2device(&data, buf)?;
        buffers[id] = Some(buf);
    }

    // Launch kernels in schedule order; allocate outputs on demand.
    for k in &prog.kernels {
        if buffers[k.output].is_none() {
            let len: usize = sm.arrays[k.output].shape.iter().product();
            buffers[k.output] = Some(device.malloc(len)?);
        }
        let out = buffers[k.output].expect("just allocated");
        let inp = buffers[k.input].ok_or_else(|| GaspardError::BadInput {
            msg: format!("kernel '{}' input not on device", k.kernel.name),
        })?;
        device.launch(
            &k.kernel,
            k.config,
            &[KernelArg::Buffer(out.0), KernelArg::Buffer(inp.0)],
        )?;
    }

    // Read back sinks.
    let mut outputs = Vec::with_capacity(sm.outputs.len());
    for &id in &sm.outputs {
        let buf = buffers[id].ok_or_else(|| GaspardError::BadInput {
            msg: format!("output '{}' never computed", sm.arrays[id].name),
        })?;
        let data = device.device2host(buf)?;
        outputs.push(
            NdArray::from_vec(
                sm.arrays[id].shape.clone(),
                data.into_iter().map(i64::from).collect(),
            )
            .expect("device buffer length matches declared shape"),
        );
    }

    // Per-frame cleanup, as the generated host loop does.
    for buf in buffers.into_iter().flatten() {
        device.free(buf)?;
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::generate_opencl;
    use crate::fixtures::mini_two_stage_model;
    use crate::model::Platform;
    use crate::transform::{deploy, schedule, to_arrayol};
    use arrayol::exec::{execute, ExecOptions};
    use std::collections::HashMap;

    fn compiled() -> OpenClProgram {
        let (model, alloc) = mini_two_stage_model();
        let dep = deploy(model, Platform::cpu_gpu(), alloc).unwrap();
        let sm = schedule(&dep).unwrap();
        generate_opencl(&sm).unwrap()
    }

    #[test]
    fn generated_opencl_matches_arrayol_reference() {
        let prog = compiled();
        let frame = NdArray::from_fn([4usize, 16], |ix| ((ix[0] * 37 + ix[1] * 11) % 256) as i64);

        // Reference: the ArrayOL projection of the same scheduled model.
        let g = to_arrayol(&prog.model).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(g.external_inputs[0], frame.clone());
        let expect = execute(&g, &inputs, &ExecOptions::sequential()).unwrap();
        let expect = &expect[&g.external_outputs[0]];

        // Generated OpenCL on the simulator.
        let mut device = Device::gtx480();
        let got = run_opencl(&prog, &mut device, &[frame]).unwrap();
        assert_eq!(&got[0], expect);
        assert!(device.now_us() > 0.0);
    }

    #[test]
    fn profiler_shows_paper_operations() {
        let prog = compiled();
        let frame = NdArray::filled([4usize, 16], 9i64);
        let mut device = Device::gtx480();
        run_opencl(&prog, &mut device, &[frame]).unwrap();
        let names: Vec<&str> = device.profiler.records().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"memcpyHtoDasync"));
        assert!(names.contains(&"memcpyDtoHasync"));
        assert!(names.contains(&"s1"));
        assert!(names.contains(&"s2"));
    }

    #[test]
    fn input_validation() {
        let prog = compiled();
        let mut device = Device::gtx480();
        assert!(matches!(
            run_opencl(&prog, &mut device, &[]),
            Err(GaspardError::BadInput { .. })
        ));
        let wrong = NdArray::filled([3usize, 3], 0i64);
        assert!(matches!(
            run_opencl(&prog, &mut device, &[wrong]),
            Err(GaspardError::BadInput { .. })
        ));
    }

    #[test]
    fn repeated_frames_accumulate_profile() {
        let prog = compiled();
        let mut device = Device::gtx480();
        let frame = NdArray::filled([4usize, 16], 1i64);
        for _ in 0..5 {
            run_opencl(&prog, &mut device, std::slice::from_ref(&frame)).unwrap();
        }
        let h2d = device
            .profiler
            .records()
            .find(|r| r.name == "memcpyHtoDasync")
            .unwrap();
        assert_eq!(h2d.calls, 5);
        // All buffers were freed each frame.
        assert_eq!(device.allocated_bytes(), 0);
    }
}
