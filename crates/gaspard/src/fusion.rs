//! Kernel fusion over the scheduled model.
//!
//! The paper's GASPARD2 chain performs no optimising transformation: every
//! elementary task becomes one OpenCL kernel, with intermediate arrays making
//! round trips through device memory — the very gap SaC's WITH-loop folding
//! exploits on the downscaler. This opt-in pass closes it: for each
//! producer→consumer pair of scheduled kernels it asks the tiler-composition
//! algebra ([`arrayol::compose`]) for a fused tiling and, when legal, replaces
//! the pair with a single kernel whose intermediate values live in registers.
//! Arrays that no longer have readers or writers are pruned from the model,
//! so the executor never allocates device buffers for them.
//!
//! Fusion **refuses** — leaving the pair unfused and recording why — when the
//! intermediate array is also a model sink, feeds more than one consumer, the
//! tilings do not compose, or the fused pattern would exceed the code
//! generator's unroll budget. Refusals become profiler notes so ablations can
//! see the fallback.

use crate::codegen::{generate_opencl, OpenClProgram, MAX_PATTERN_UNROLL};
use crate::model::{ElementaryOp, TilerSpec};
use crate::transform::{ScheduledKernel, ScheduledModel};
use crate::GaspardError;
use arrayol::compose::{compose, StagePorts};
use arrayol::Tiler;
use mdarray::Shape;
use std::collections::BTreeSet;

/// What the fusion pass did: which kernel pairs fused, which were refused and
/// why. Stored on the route so benchmarks can report it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FusionReport {
    /// Fused kernel names, one per merged producer→consumer pair.
    pub fused: Vec<String>,
    /// Refused pairs, formatted as `producer→consumer: reason`.
    pub refused: Vec<String>,
}

impl FusionReport {
    /// Render the report as profiler notes (one per event).
    pub fn profiler_notes(&self) -> Vec<String> {
        let mut notes: Vec<String> =
            self.fused.iter().map(|f| format!("fused kernel pair into '{f}'")).collect();
        notes.extend(
            self.refused
                .iter()
                .map(|r| format!("fusion refused: {r}; falling back to unfused kernels")),
        );
        notes
    }
}

fn spec_of(t: &Tiler) -> TilerSpec {
    TilerSpec {
        origin: t.origin.clone(),
        fitting: (0..t.fitting.rows()).map(|r| t.fitting.row(r).to_vec()).collect(),
        paving: (0..t.paving.rows()).map(|r| t.paving.row(r).to_vec()).collect(),
    }
}

/// Fuse every legal producer→consumer kernel pair in `sm`, pruning arrays the
/// fused kernels no longer touch. Infallible: anything that cannot fuse stays
/// unfused and is recorded in the report.
#[deprecated(
    since = "0.9.0",
    note = "use the route-agnostic plan-level pass instead: lower the plan with \
            tiled accesses attached and enable `simgpu::PlanOptLevel` `fusion`"
)]
pub fn fuse_model(sm: &ScheduledModel) -> (ScheduledModel, FusionReport) {
    let mut model = sm.clone();
    let mut report = FusionReport::default();
    let mut seen_refusals: BTreeSet<String> = BTreeSet::new();
    let refuse = |report: &mut FusionReport, seen: &mut BTreeSet<String>, msg: String| {
        if seen.insert(msg.clone()) {
            report.refused.push(msg);
        }
    };

    loop {
        let mut fused_one = false;
        'scan: for i in 0..model.kernels.len() {
            let mid = model.kernels[i].output;
            let consumers: Vec<usize> = (0..model.kernels.len())
                .filter(|&j| j != i && model.kernels[j].input == mid)
                .collect();
            if consumers.is_empty() {
                continue;
            }
            let p_name = model.kernels[i].name.clone();
            let mid_name = model.arrays[mid].name.clone();
            if consumers.len() > 1 {
                refuse(
                    &mut report,
                    &mut seen_refusals,
                    format!(
                        "{p_name}→*: intermediate '{mid_name}' feeds {} consumers",
                        consumers.len()
                    ),
                );
                continue;
            }
            let j = consumers[0];
            let c_name = model.kernels[j].name.clone();
            let edge = format!("{p_name}→{c_name}");
            if model.outputs.contains(&mid) {
                refuse(
                    &mut report,
                    &mut seen_refusals,
                    format!("{edge}: intermediate '{mid_name}' is also a model sink"),
                );
                continue;
            }

            let (p, c) = (&model.kernels[i], &model.kernels[j]);
            let (p_in, p_out) = (p.in_tiler.to_tiler(), p.out_tiler.to_tiler());
            let (c_in, c_out) = (c.in_tiler.to_tiler(), c.out_tiler.to_tiler());
            let producer = StagePorts {
                in_tiler: &p_in,
                in_pattern: &p.in_pattern,
                out_tiler: &p_out,
                out_pattern: &p.out_pattern,
                repetition: &p.repetition,
            };
            let consumer = StagePorts {
                in_tiler: &c_in,
                in_pattern: &c.in_pattern,
                out_tiler: &c_out,
                out_pattern: &c.out_pattern,
                repetition: &c.repetition,
            };
            let in_shape = Shape::new(model.arrays[p.input].shape.clone());
            let mid_shape = Shape::new(model.arrays[mid].shape.clone());
            let out_shape = Shape::new(model.arrays[c.output].shape.clone());
            let fused = match compose(&producer, &consumer, &in_shape, &mid_shape, &out_shape) {
                Ok(f) => f,
                Err(e) => {
                    refuse(&mut report, &mut seen_refusals, format!("{edge}: {e}"));
                    continue;
                }
            };

            let gather_len: usize = fused.gather_pattern.iter().product();
            let scatter_len: usize = fused.scatter_pattern.iter().product();
            if gather_len > MAX_PATTERN_UNROLL || scatter_len > MAX_PATTERN_UNROLL {
                refuse(
                    &mut report,
                    &mut seen_refusals,
                    format!(
                        "{edge}: fused pattern too large to unroll \
                         ({gather_len} in, {scatter_len} out)"
                    ),
                );
                continue;
            }
            if p.op.out_len(fused.inner_in_len) != fused.inner_out_len {
                refuse(
                    &mut report,
                    &mut seen_refusals,
                    format!("{edge}: producer op output disagrees with its pattern"),
                );
                continue;
            }

            let name = format!("{p_name}_{c_name}");
            let kernel = ScheduledKernel {
                name: name.clone(),
                repetition: fused.repetition,
                input: p.input,
                in_pattern: fused.gather_pattern,
                in_tiler: spec_of(&fused.gather),
                output: c.output,
                out_pattern: fused.scatter_pattern,
                out_tiler: spec_of(&fused.scatter),
                op: ElementaryOp::Composed {
                    inner: Box::new(p.op.clone()),
                    inner_count: fused.inner_count,
                    inner_in_len: fused.inner_in_len,
                    outer: Box::new(c.op.clone()),
                    outer_gathers: fused.outer_gathers,
                },
            };
            model.kernels[i] = kernel;
            model.kernels.remove(j);
            report.fused.push(name);
            fused_one = true;
            break 'scan;
        }
        if !fused_one {
            break;
        }
    }

    prune_arrays(&mut model);
    (model, report)
}

/// Drop arrays no kernel or model port references any more, renumbering ids.
fn prune_arrays(model: &mut ScheduledModel) {
    let mut used = vec![false; model.arrays.len()];
    for &a in model.inputs.iter().chain(&model.outputs) {
        used[a] = true;
    }
    for k in &model.kernels {
        used[k.input] = true;
        used[k.output] = true;
    }
    if used.iter().all(|&u| u) {
        return;
    }
    let mut remap = vec![usize::MAX; model.arrays.len()];
    let mut kept = Vec::with_capacity(model.arrays.len());
    for (old, array) in model.arrays.drain(..).enumerate() {
        if used[old] {
            remap[old] = kept.len();
            kept.push(array);
        }
    }
    model.arrays = kept;
    for k in &mut model.kernels {
        k.input = remap[k.input];
        k.output = remap[k.output];
    }
    for a in model.inputs.iter_mut().chain(model.outputs.iter_mut()) {
        *a = remap[*a];
    }
}

/// Fuse the model, then generate OpenCL kernels for what remains. The
/// report's events ride along as program notes so batch runs surface them in
/// the profiler.
#[deprecated(
    since = "0.9.0",
    note = "use `generate_opencl` and enable the plan-level `fusion` pass via \
            `simgpu::PlanOptLevel` in `ExecOptions::optimize`"
)]
pub fn generate_opencl_fused(
    sm: &ScheduledModel,
) -> Result<(OpenClProgram, FusionReport), GaspardError> {
    #[allow(deprecated)]
    let (fused, report) = fuse_model(sm);
    let mut prog = generate_opencl(&fused)?;
    prog.notes = report.profiler_notes();
    Ok((prog, report))
}

#[cfg(test)]
#[allow(deprecated)] // the legacy entry points stay pinned until removal
mod tests {
    use super::*;
    use crate::fixtures::mini_two_stage_model;
    use crate::model::Platform;
    use crate::transform::{deploy, schedule, to_arrayol};
    use arrayol::exec::{execute, ExecOptions};
    use mdarray::NdArray;

    fn scheduled() -> ScheduledModel {
        let (model, alloc) = mini_two_stage_model();
        let dep = deploy(model, Platform::cpu_gpu(), alloc).unwrap();
        schedule(&dep).unwrap()
    }

    #[test]
    fn two_stage_chain_fuses_to_one_kernel() {
        let sm = scheduled();
        let (fused, report) = fuse_model(&sm);
        assert_eq!(fused.kernels.len(), 1, "refused: {:?}", report.refused);
        assert_eq!(report.fused, vec!["s1_s2".to_string()]);
        assert!(report.refused.is_empty());
        // The intermediate array is gone; model inputs/outputs survive.
        assert_eq!(fused.arrays.len(), sm.arrays.len() - 1);
        assert_eq!(fused.kernels[0].input, fused.inputs[0]);
        assert_eq!(fused.kernels[0].output, fused.outputs[0]);
    }

    #[test]
    fn fused_model_matches_unfused_on_cpu() {
        let sm = scheduled();
        let (fused, _) = fuse_model(&sm);
        let frame = NdArray::from_fn([4usize, 16], |ix| (ix[0] * 16 + ix[1]) as i64 % 29);
        let run = |m: &ScheduledModel| {
            let g = to_arrayol(m).unwrap();
            let mut inputs = std::collections::HashMap::new();
            inputs.insert(g.external_inputs[0], frame.clone());
            let env = execute(&g, &inputs, &ExecOptions::sequential()).unwrap();
            env[&g.external_outputs[0]].clone()
        };
        let unfused = run(&sm);
        let fused_out = run(&fused);
        assert_eq!(unfused.as_slice(), fused_out.as_slice());
    }

    #[test]
    fn sink_intermediate_refuses() {
        let mut sm = scheduled();
        // Make the intermediate array a model sink as well.
        let mid = sm.kernels[0].output;
        sm.outputs.push(mid);
        let (fused, report) = fuse_model(&sm);
        assert_eq!(fused.kernels.len(), 2);
        assert!(report.fused.is_empty());
        assert_eq!(report.refused.len(), 1);
        assert!(report.refused[0].contains("also a model sink"), "{:?}", report.refused);
        // Notes spell out the fallback for the profiler.
        let notes = report.profiler_notes();
        assert!(notes[0].contains("falling back to unfused"), "{notes:?}");
    }

    #[test]
    fn multi_consumer_intermediate_refuses() {
        let mut sm = scheduled();
        // A second consumer of the intermediate array.
        let mut extra = sm.kernels[1].clone();
        extra.name = "s2b".into();
        let out_shape = sm.arrays[extra.output].shape.clone();
        sm.arrays.push(crate::transform::ScheduledArray { name: "o2".into(), shape: out_shape });
        extra.output = sm.arrays.len() - 1;
        sm.kernels.push(extra);
        sm.outputs.push(sm.arrays.len() - 1);
        let (fused, report) = fuse_model(&sm);
        assert_eq!(fused.kernels.len(), 3);
        assert!(report.fused.is_empty());
        assert!(report.refused[0].contains("feeds 2 consumers"), "{:?}", report.refused);
    }

    #[test]
    fn generate_opencl_fused_attaches_notes() {
        let sm = scheduled();
        let (prog, report) = generate_opencl_fused(&sm).unwrap();
        assert_eq!(prog.kernels.len(), 1);
        assert_eq!(prog.notes, report.profiler_notes());
        assert!(prog.notes[0].contains("fused kernel pair"), "{:?}", prog.notes);
        // Fused source is one kernel with both stages' arithmetic inlined.
        let src = prog.emit_opencl_source();
        assert!(src.contains("__kernel void s1_s2"), "{src}");
    }
}
