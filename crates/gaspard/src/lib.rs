#![warn(missing_docs)]

//! # gaspard — a GASPARD2-style model-driven engineering chain
//!
//! The paper's second route: an image-processing application is *modelled*
//! (in the real project: UML + the MARTE profile in Papyrus) as a component
//! graph whose connectors carry ArrayOL **tilers**; a chain of
//! model-to-model transformations then drives template-based model-to-text
//! generation of OpenCL code. "The front-end will capture and retain the
//! abstractions, while the code-generation phase will help partly addressing
//! the performance issues" — notably, the chain performs *no* optimising
//! transformations (no fusion, no folding): each elementary task becomes
//! exactly one OpenCL kernel. Kernel fusion is available *after* lowering,
//! through `simgpu::planopt`'s tiler-composition pass (Feautrier-style),
//! which merges producer→consumer launch pairs plan-level; the default
//! chain stays faithful.
//!
//! Crate layout, mirroring the tooling it reproduces:
//!
//! * [`model`] — the model elements: components with ports and
//!   `HwResource`/`SwResource` stereotypes, repetitive components with tiler
//!   connectors (MARTE's Repetitive Structure Modelling package), and the
//!   elementary "IPs" tasks link against,
//! * [`marte`] — stereotype validation: tiler/shape consistency checks,
//! * [`transform`] — the transformation chain: *deploy* (allocate components
//!   onto hardware resources) → *schedule* (flatten the hierarchy into an
//!   ordered kernel list) → optional projection onto an
//!   [`arrayol::ApplicationGraph`] for reference execution,
//! * [`codegen`] — model-to-text: one OpenCL kernel per elementary task
//!   (the paper's Figure 11 artefact), plus the host-side plan,
//! * [`exec`] — execution of the generated program on the [`simgpu`] device.

pub mod codegen;
pub mod emit;
pub mod exec;
pub mod fixtures;
pub mod marte;
pub mod model;
pub mod openmp;
pub mod transform;

pub use codegen::{generate_opencl, OpenClProgram};
pub use exec::{
    lower_plan, lower_plan_with, run_opencl, run_opencl_frames, run_opencl_frames_placed,
    ExecOptions, Placement,
};
pub use model::{
    Allocation, Component, ComponentKind, Connection, ElementaryOp, HwKind, Model, PartRef,
    Platform, Port, PortDir, Stereotype, TilerSpec, WindowSpec,
};
pub use transform::{deploy, schedule, to_arrayol, DeployedModel, ScheduledKernel, ScheduledModel};

/// Errors from the MDE chain.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum GaspardError {
    /// A model element referenced something that does not exist.
    UnknownElement { what: &'static str, name: String },
    /// A stereotype/shape/tiler inconsistency.
    Invalid { element: String, msg: String },
    /// A component was not allocated onto any hardware resource.
    Unallocated { component: String },
    /// The scheduler found a cycle.
    Cyclic { involving: String },
    /// Simulator failure during execution.
    Sim(simgpu::SimError),
    /// Execution input mismatch.
    BadInput { msg: String },
    /// Invalid execution options (rejected before touching the device).
    Config(String),
}

impl std::fmt::Display for GaspardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GaspardError::UnknownElement { what, name } => write!(f, "unknown {what} '{name}'"),
            GaspardError::Invalid { element, msg } => write!(f, "invalid '{element}': {msg}"),
            GaspardError::Unallocated { component } => {
                write!(f, "component '{component}' not allocated to a resource")
            }
            GaspardError::Cyclic { involving } => write!(f, "cyclic model at '{involving}'"),
            GaspardError::Sim(e) => write!(f, "simulator: {e}"),
            GaspardError::BadInput { msg } => write!(f, "bad input: {msg}"),
            GaspardError::Config(m) => write!(f, "bad execution options: {m}"),
        }
    }
}

impl std::error::Error for GaspardError {}

impl From<simgpu::SimError> for GaspardError {
    fn from(e: simgpu::SimError) -> Self {
        GaspardError::Sim(e)
    }
}
