//! Model elements: a Rust rendering of the UML/MARTE models GASPARD2 takes
//! as input (Papyrus being the graphical front end in the paper).

pub use arrayol::access::{ElementaryOp, TiledAccess, TilerSpec, WindowSpec};

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDir {
    /// Consumes an array.
    In,
    /// Produces an array.
    Out,
}

/// A typed component port: carries a multidimensional array of fixed shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Array shape flowing through the port.
    pub shape: Vec<usize>,
}

/// MARTE stereotypes relevant to the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stereotype {
    /// Software component (application side).
    SwResource,
    /// Hardware resource (platform side).
    HwResource,
}

/// What a component is.
#[derive(Debug, Clone, PartialEq)]
pub enum ComponentKind {
    /// An elementary task linked to an IP.
    Elementary {
        /// The computation.
        op: ElementaryOp,
    },
    /// A repetitive task: repeats an inner elementary task over a repetition
    /// space, with tilers binding its external ports to pattern ports.
    Repetitive {
        /// The repetition space.
        repetition: Vec<usize>,
        /// Inner component (by name).
        inner: String,
        /// Input pattern shape and tiler, one per inner input port.
        input_tilers: Vec<(Vec<usize>, TilerSpec)>,
        /// Output pattern shape and tiler, one per inner output port.
        output_tilers: Vec<(Vec<usize>, TilerSpec)>,
    },
    /// A composite: parts wired by connections.
    Composite {
        /// Instantiated parts: instance name → component name.
        parts: Vec<(String, String)>,
        /// Connections between part ports and/or external ports.
        connections: Vec<Connection>,
    },
    /// Environment I/O linked to an IP (OpenCV in the paper): a video source.
    FrameSource,
    /// Environment I/O: a video sink.
    FrameSink,
}

/// An endpoint of a connection: either an external port of the enclosing
/// composite or a port of one of its parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartRef {
    /// External port of the composite itself.
    External {
        /// Port name.
        port: String,
    },
    /// A part's port.
    Part {
        /// Part instance name.
        part: String,
        /// Port name on the part's component.
        port: String,
    },
}

/// A dataflow connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    /// Producer endpoint.
    pub from: PartRef,
    /// Consumer endpoint.
    pub to: PartRef,
}

/// A named component.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Component name.
    pub name: String,
    /// Application vs platform side.
    pub stereotype: Stereotype,
    /// Ports.
    pub ports: Vec<Port>,
    /// Structure.
    pub kind: ComponentKind,
}

impl Component {
    /// Find a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Input ports in declaration order.
    pub fn inputs(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.dir == PortDir::In)
    }

    /// Output ports in declaration order.
    pub fn outputs(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.dir == PortDir::Out)
    }
}

/// Kinds of hardware resources in the platform model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwKind {
    /// The host CPU.
    Cpu,
    /// The compute device (GPU).
    Gpu,
}

/// The platform model: named `HwResource` components.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Hardware resources: name → kind.
    pub resources: Vec<(String, HwKind)>,
}

impl Platform {
    /// The usual CPU-plus-GPU platform of the paper's test system.
    pub fn cpu_gpu() -> Self {
        Platform { resources: vec![("i7_930".into(), HwKind::Cpu), ("gtx480".into(), HwKind::Gpu)] }
    }

    /// Look up a resource kind.
    pub fn kind_of(&self, name: &str) -> Option<HwKind> {
        self.resources.iter().find(|(n, _)| n == name).map(|(_, k)| *k)
    }
}

/// The allocation model: which component runs on which resource.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Allocation {
    /// Component name → resource name.
    pub map: Vec<(String, String)>,
}

impl Allocation {
    /// Allocate `component` onto `resource`.
    pub fn allocate(mut self, component: &str, resource: &str) -> Self {
        self.map.push((component.into(), resource.into()));
        self
    }

    /// Resource a component is allocated to.
    pub fn resource_of(&self, component: &str) -> Option<&str> {
        self.map.iter().find(|(c, _)| c == component).map(|(_, r)| r.as_str())
    }
}

/// A complete application model: components plus the designated root.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Model name (the Papyrus project name, as it were).
    pub name: String,
    /// All components.
    pub components: Vec<Component>,
    /// Name of the root composite.
    pub root: String,
}

impl Model {
    /// Find a component by name.
    pub fn component(&self, name: &str) -> Option<&Component> {
        self.components.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiler_spec_converts_to_arrayol() {
        let spec = TilerSpec {
            origin: vec![0, 0],
            fitting: vec![vec![0], vec![1]],
            paving: vec![vec![1, 0], vec![0, 8]],
        };
        let t = spec.to_tiler();
        assert_eq!(t.reference(&[2, 3]), vec![2, 24]);
    }

    #[test]
    fn elementary_ops_reference_semantics() {
        let interp = ElementaryOp::InterpolateWindows {
            windows: vec![WindowSpec { offset: 0, len: 3 }, WindowSpec { offset: 2, len: 3 }],
            divisor: 3,
        };
        // pattern [1,2,3,4,5]: w0 = 6 -> 6/3 - 0 = 2; w1 = 12 -> 4 - 0 = 4.
        assert_eq!(interp.apply(&[1, 2, 3, 4, 5]), vec![2, 4]);
        assert_eq!(interp.out_len(5), 2);

        let aff = ElementaryOp::AffineMap { mul: 2, add: 1 };
        assert_eq!(aff.apply(&[1, 2]), vec![3, 5]);
        assert_eq!(ElementaryOp::SumReduce.apply(&[1, 2, 3]), vec![6]);
        assert_eq!(ElementaryOp::Copy.apply(&[7, 8]), vec![7, 8]);
    }

    #[test]
    fn interpolation_matches_paper_figure5() {
        // tmp0 = sum(in[0..6]); tile[0] = tmp0/6 - tmp0%6.
        let op = ElementaryOp::InterpolateWindows {
            windows: vec![
                WindowSpec { offset: 0, len: 6 },
                WindowSpec { offset: 2, len: 6 },
                WindowSpec { offset: 5, len: 6 },
            ],
            divisor: 6,
        };
        let pattern: Vec<i64> = (0..11).collect();
        let t0: i64 = (0..6).sum(); // 15
        let t1: i64 = (2..8).sum(); // 27
        let t2: i64 = (5..11).sum(); // 45
        assert_eq!(op.apply(&pattern), vec![t0 / 6 - t0 % 6, t1 / 6 - t1 % 6, t2 / 6 - t2 % 6]);
    }

    #[test]
    fn platform_and_allocation() {
        let p = Platform::cpu_gpu();
        assert_eq!(p.kind_of("gtx480"), Some(HwKind::Gpu));
        assert_eq!(p.kind_of("nope"), None);
        let a = Allocation::default().allocate("hf", "gtx480").allocate("fg", "i7_930");
        assert_eq!(a.resource_of("hf"), Some("gtx480"));
        assert_eq!(a.resource_of("xx"), None);
    }

    #[test]
    fn component_port_queries() {
        let c = Component {
            name: "hf".into(),
            stereotype: Stereotype::SwResource,
            ports: vec![
                Port { name: "in".into(), dir: PortDir::In, shape: vec![4, 8] },
                Port { name: "out".into(), dir: PortDir::Out, shape: vec![4, 3] },
            ],
            kind: ComponentKind::Elementary { op: ElementaryOp::Copy },
        };
        assert!(c.port("in").is_some());
        assert_eq!(c.inputs().count(), 1);
        assert_eq!(c.outputs().count(), 1);
    }
}
