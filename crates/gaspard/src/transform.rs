//! The model transformation chain.
//!
//! GASPARD2 compiles by *transforming models*: each phase adds information
//! (deployment, scheduling, memory) until the model is close enough to code
//! for template-based text generation. We reproduce the chain's two
//! load-bearing phases plus a projection used for verification:
//!
//! 1. [`deploy`] — weave the application, platform and allocation models:
//!    every leaf task must be allocated onto a `HwResource`,
//! 2. [`schedule`] — flatten the hierarchical composite structure into an
//!    ordered list of repetitive kernel instances (dataflow topological
//!    order) plus environment I/O bindings,
//! 3. [`to_arrayol`] — project the scheduled model onto an executable
//!    [`arrayol::ApplicationGraph`]; this is the *semantic reference* the
//!    generated OpenCL is tested against.

use crate::marte;
use crate::model::*;
use crate::GaspardError;
use mdarray::Shape;
use std::collections::HashMap;
use std::sync::Arc;

/// The deployed model: application + platform + allocation, validated.
#[derive(Debug, Clone)]
pub struct DeployedModel {
    /// The application model.
    pub model: Model,
    /// The platform model.
    pub platform: Platform,
    /// The allocation (component → resource).
    pub allocation: Allocation,
}

/// Phase 1: validate and weave the three models.
pub fn deploy(
    model: Model,
    platform: Platform,
    allocation: Allocation,
) -> Result<DeployedModel, GaspardError> {
    marte::validate(&model)?;
    for c in &model.components {
        let needs_allocation = matches!(
            c.kind,
            ComponentKind::Repetitive { .. }
                | ComponentKind::FrameSource
                | ComponentKind::FrameSink
        );
        if needs_allocation {
            let res = allocation
                .resource_of(&c.name)
                .ok_or_else(|| GaspardError::Unallocated { component: c.name.clone() })?;
            if platform.kind_of(res).is_none() {
                return Err(GaspardError::UnknownElement { what: "resource", name: res.into() });
            }
            // I/O IPs must sit on the CPU (they talk to OpenCV in the paper).
            if matches!(c.kind, ComponentKind::FrameSource | ComponentKind::FrameSink)
                && platform.kind_of(res) != Some(HwKind::Cpu)
            {
                return Err(GaspardError::Invalid {
                    element: c.name.clone(),
                    msg: "frame I/O must be allocated to the CPU".into(),
                });
            }
        }
    }
    Ok(DeployedModel { model, platform, allocation })
}

/// A scheduled repetitive kernel instance (one per elementary task instance;
/// this becomes exactly one OpenCL kernel).
#[derive(Debug, Clone)]
pub struct ScheduledKernel {
    /// Flattened instance name, e.g. `hf_bhf`.
    pub name: String,
    /// Repetition space.
    pub repetition: Vec<usize>,
    /// Input array id.
    pub input: usize,
    /// Input pattern shape.
    pub in_pattern: Vec<usize>,
    /// Input tiler.
    pub in_tiler: TilerSpec,
    /// Output array id.
    pub output: usize,
    /// Output pattern shape.
    pub out_pattern: Vec<usize>,
    /// Output tiler.
    pub out_tiler: TilerSpec,
    /// The elementary computation.
    pub op: ElementaryOp,
}

/// An array in the scheduled model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledArray {
    /// Diagnostic name.
    pub name: String,
    /// Shape.
    pub shape: Vec<usize>,
}

/// Phase 2 result: flat kernels + I/O arrays in dependence order.
#[derive(Debug, Clone)]
pub struct ScheduledModel {
    /// Arrays (ids index into this).
    pub arrays: Vec<ScheduledArray>,
    /// Kernels in execution order.
    pub kernels: Vec<ScheduledKernel>,
    /// Arrays fed by frame sources (program inputs), in model order.
    pub inputs: Vec<usize>,
    /// Arrays consumed by frame sinks (program outputs), in model order.
    pub outputs: Vec<usize>,
}

/// Phase 2: flatten the hierarchy into scheduled kernels.
pub fn schedule(deployed: &DeployedModel) -> Result<ScheduledModel, GaspardError> {
    let model = &deployed.model;
    let root = model.component(&model.root).expect("validated");
    let mut sm = ScheduledModel {
        arrays: Vec::new(),
        kernels: Vec::new(),
        inputs: Vec::new(),
        outputs: Vec::new(),
    };
    // (instance path, port name) -> array id
    let mut bound: HashMap<(String, String), usize> = HashMap::new();
    elaborate(model, root, "", &mut sm, &mut bound)?;
    Ok(sm)
}

/// Recursively elaborate a composite; `path` is the flattened instance prefix.
fn elaborate(
    model: &Model,
    comp: &Component,
    path: &str,
    sm: &mut ScheduledModel,
    bound: &mut HashMap<(String, String), usize>,
) -> Result<(), GaspardError> {
    let ComponentKind::Composite { parts, connections } = &comp.kind else {
        return Err(GaspardError::Invalid {
            element: comp.name.clone(),
            msg: "elaborate expects a composite".into(),
        });
    };
    let join = |path: &str, inst: &str| {
        if path.is_empty() {
            inst.to_string()
        } else {
            format!("{path}_{inst}")
        }
    };

    // Worklist: schedule parts whose inputs are all bound.
    let mut pending: Vec<&(String, String)> = parts.iter().collect();
    let mut progress = true;
    let mut nested_err: Option<GaspardError> = None;
    while progress && !pending.is_empty() {
        progress = false;
        pending.retain(|(inst, comp_name)| {
            if nested_err.is_some() {
                return true;
            }
            let part = model.component(comp_name).expect("validated");
            let ipath = join(path, inst);

            // Resolve this part's input ports through the connections.
            let mut in_arrays: Vec<Option<usize>> = Vec::new();
            for port in part.inputs() {
                let src = connections.iter().find(|c| {
                    c.to == PartRef::Part { part: inst.clone(), port: port.name.clone() }
                });
                let id = src.and_then(|c| match &c.from {
                    PartRef::External { port } => bound.get(&(path.to_string(), port.clone())),
                    PartRef::Part { part, port } => bound.get(&(join(path, part), port.clone())),
                });
                in_arrays.push(id.copied());
            }
            // Frame sources have no inputs; others need everything bound.
            if in_arrays.iter().any(|a| a.is_none()) {
                return true; // keep pending
            }
            let in_arrays: Vec<usize> = in_arrays.into_iter().flatten().collect();

            // Schedule the part.
            match &part.kind {
                ComponentKind::FrameSource => {
                    for port in part.outputs() {
                        let id = sm.arrays.len();
                        sm.arrays.push(ScheduledArray {
                            name: format!("{ipath}_{}", port.name),
                            shape: port.shape.clone(),
                        });
                        sm.inputs.push(id);
                        bound.insert((ipath.clone(), port.name.clone()), id);
                    }
                }
                ComponentKind::FrameSink => {
                    for (port, id) in part.inputs().zip(&in_arrays) {
                        let _ = port;
                        sm.outputs.push(*id);
                    }
                }
                ComponentKind::Repetitive { repetition, inner, input_tilers, output_tilers } => {
                    let inner_c = model.component(inner).expect("validated");
                    let ComponentKind::Elementary { op } = &inner_c.kind else {
                        unreachable!("validated")
                    };
                    // Single input / single output repetitive tasks.
                    let out_port = part.outputs().next().expect("validated");
                    let out_id = sm.arrays.len();
                    sm.arrays.push(ScheduledArray {
                        name: format!("{ipath}_{}", out_port.name),
                        shape: out_port.shape.clone(),
                    });
                    bound.insert((ipath.clone(), out_port.name.clone()), out_id);
                    sm.kernels.push(ScheduledKernel {
                        name: ipath.clone(),
                        repetition: repetition.clone(),
                        input: in_arrays[0],
                        in_pattern: input_tilers[0].0.clone(),
                        in_tiler: input_tilers[0].1.clone(),
                        output: out_id,
                        out_pattern: output_tilers[0].0.clone(),
                        out_tiler: output_tilers[0].1.clone(),
                        op: op.clone(),
                    });
                }
                ComponentKind::Composite { .. } => {
                    // Bind the sub-composite's external In ports, recurse,
                    // then pull its external Out bindings up.
                    for (port, id) in part.inputs().zip(&in_arrays) {
                        bound.insert((ipath.clone(), port.name.clone()), *id);
                    }
                    // Recursion: inside the child, External ports resolve
                    // against the child's own path.
                    if let Err(e) = elaborate_child(model, part, &ipath, sm, bound) {
                        nested_err = Some(e);
                        return true;
                    }
                }
                ComponentKind::Elementary { .. } => {
                    // A bare elementary part at composite level is a modelling
                    // error caught by validation (it must sit inside a
                    // repetitive component); skip defensively.
                }
            }
            progress = true;
            false // remove from pending
        });
    }
    if let Some(e) = nested_err {
        return Err(e);
    }
    if !pending.is_empty() {
        return Err(GaspardError::Cyclic { involving: pending[0].0.clone() });
    }

    // Bind the composite's external Out ports from internal producers.
    for conn in connections {
        if let PartRef::External { port } = &conn.to {
            if let PartRef::Part { part, port: from_port } = &conn.from {
                if let Some(&id) = bound.get(&(join(path, part), from_port.clone())) {
                    bound.insert((path.to_string(), port.clone()), id);
                }
            }
        }
    }
    Ok(())
}

/// Recurse into a nested composite (separated out to keep borrows simple).
fn elaborate_child(
    model: &Model,
    comp: &Component,
    path: &str,
    sm: &mut ScheduledModel,
    bound: &mut HashMap<(String, String), usize>,
) -> Result<(), GaspardError> {
    elaborate(model, comp, path, sm, bound)
}

/// Phase 3 (verification projection): scheduled model → ArrayOL graph.
pub fn to_arrayol(sm: &ScheduledModel) -> Result<arrayol::ApplicationGraph, GaspardError> {
    let mut g = arrayol::ApplicationGraph::new();
    let ids: Vec<arrayol::ArrayId> = sm
        .arrays
        .iter()
        .map(|a| g.declare_array(a.name.clone(), Shape::new(a.shape.clone())))
        .collect();
    for &i in &sm.inputs {
        g.external_inputs.push(ids[i]);
    }
    for &o in &sm.outputs {
        g.external_outputs.push(ids[o]);
    }
    for k in &sm.kernels {
        let op = k.op.clone();
        let out_pattern = Shape::new(k.out_pattern.clone());
        let f: arrayol::ElementaryFn = Arc::new(move |patterns| {
            let out = op.apply(patterns[0].as_slice());
            vec![mdarray::NdArray::from_vec(out_pattern.clone(), out).expect("length matches")]
        });
        g.add_task(arrayol::RepetitiveTask {
            name: k.name.clone(),
            repetition: Shape::new(k.repetition.clone()),
            inputs: vec![arrayol::Port::new(
                "in",
                ids[k.input],
                Shape::new(k.in_pattern.clone()),
                k.in_tiler.to_tiler(),
            )],
            outputs: vec![arrayol::Port::new(
                "out",
                ids[k.output],
                Shape::new(k.out_pattern.clone()),
                k.out_tiler.to_tiler(),
            )],
            body: arrayol::TaskBody::Elementary { kernel_name: k.name.clone(), f },
        });
    }
    g.validate().map_err(|e| GaspardError::Invalid {
        element: "arrayol projection".into(),
        msg: e.to_string(),
    })?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::mini_two_stage_model;
    use arrayol::exec::{execute, ExecOptions};
    use mdarray::NdArray;
    use std::collections::HashMap as Map;

    fn deployed() -> DeployedModel {
        let (model, alloc) = mini_two_stage_model();
        deploy(model, Platform::cpu_gpu(), alloc).unwrap()
    }

    #[test]
    fn deploy_requires_allocations() {
        let (model, _) = mini_two_stage_model();
        let err = deploy(model, Platform::cpu_gpu(), Allocation::default());
        assert!(matches!(err, Err(GaspardError::Unallocated { .. })));
    }

    #[test]
    fn deploy_rejects_gpu_frame_io() {
        let (model, _) = mini_two_stage_model();
        let alloc = Allocation::default()
            .allocate("source", "gtx480")
            .allocate("sink", "i7_930")
            .allocate("stage1", "gtx480")
            .allocate("stage2", "gtx480");
        assert!(matches!(
            deploy(model, Platform::cpu_gpu(), alloc),
            Err(GaspardError::Invalid { .. })
        ));
    }

    #[test]
    fn schedule_flattens_in_dataflow_order() {
        let sm = schedule(&deployed()).unwrap();
        assert_eq!(sm.kernels.len(), 2);
        assert_eq!(sm.kernels[0].name, "s1");
        assert_eq!(sm.kernels[1].name, "s2");
        // Stage 2 consumes stage 1's output.
        assert_eq!(sm.kernels[1].input, sm.kernels[0].output);
        assert_eq!(sm.inputs.len(), 1);
        assert_eq!(sm.outputs.len(), 1);
    }

    #[test]
    fn arrayol_projection_executes() {
        let sm = schedule(&deployed()).unwrap();
        let g = to_arrayol(&sm).unwrap();
        let input = NdArray::from_fn([4usize, 16], |ix| (ix[0] * 16 + ix[1]) as i64);
        let mut inputs = Map::new();
        inputs.insert(g.external_inputs[0], input);
        let out = execute(&g, &inputs, &ExecOptions::sequential()).unwrap();
        let result = &out[&g.external_outputs[0]];
        assert_eq!(result.shape().dims(), &[4, 4]);
    }
}
