//! Kernel IR: the executable artefact both backends emit.
//!
//! A [`Kernel`] is a straight-line/structured program over an unbounded file of
//! virtual integer registers, executed once per thread of a launch grid. The
//! IR deliberately mirrors what the paper's CUDA and OpenCL backends generate:
//! index arithmetic from thread/block identifiers, bounded `for` loops (the
//! pattern-filling loop of Figure 11), guards, and global-memory loads/stores.
//!
//! The same structure drives three consumers:
//!
//! 1. the simulator's interpreter ([`crate::exec`]) — functional execution,
//! 2. the cost model ([`crate::cost`]) — dynamic instruction and memory counts,
//! 3. source emission — pretty-printing as CUDA C or OpenCL C
//!    ([`Kernel::emit_source`]).

/// A virtual register index.
pub type Reg = u16;

/// Kernel parameter declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Param {
    /// A global-memory buffer argument.
    Buffer {
        /// Name used in emitted source.
        name: String,
        /// Whether the kernel may store through this parameter.
        writable: bool,
    },
    /// An integer scalar argument.
    Scalar {
        /// Name used in emitted source.
        name: String,
    },
}

impl Param {
    /// Parameter name (for emission and diagnostics).
    pub fn name(&self) -> &str {
        match self {
            Param::Buffer { name, .. } | Param::Scalar { name } => name,
        }
    }
}

/// Runtime argument bound to a parameter at launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelArg {
    /// A device buffer (see [`crate::device::BufferId`]).
    Buffer(usize),
    /// An immediate integer.
    Scalar(i64),
}

/// Built-in per-thread values (CUDA names; the OpenCL flavour maps them to
/// `get_global_id` / `get_local_id` expressions when emitting source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Special {
    /// `blockIdx.x * blockDim.x + threadIdx.x` — flattened global x id.
    GlobalIdX,
    /// `blockIdx.y * blockDim.y + threadIdx.y` — flattened global y id.
    GlobalIdY,
    /// `threadIdx.x`.
    ThreadIdxX,
    /// `threadIdx.y`.
    ThreadIdxY,
    /// `blockIdx.x`.
    BlockIdxX,
    /// `blockIdx.y`.
    BlockIdxY,
    /// `blockDim.x`.
    BlockDimX,
    /// `blockDim.y`.
    BlockDimY,
    /// `gridDim.x`.
    GridDimX,
    /// `gridDim.y`.
    GridDimY,
}

/// Integer binary operations. Division and remainder truncate toward zero
/// (C semantics); both backends emit explicit wrap sequences when they need
/// Euclidean behaviour for tiler modulo addressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Truncating division.
    Div,
    /// Truncating remainder.
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Less-than (1/0).
    Lt,
    /// Less-or-equal (1/0).
    Le,
    /// Equality (1/0).
    Eq,
    /// Inequality (1/0).
    Ne,
    /// Logical and of 0/1 values.
    And,
    /// Logical or of 0/1 values.
    Or,
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // operand fields follow the per-variant doc comments
pub enum Instr {
    /// `dst = value`.
    Const { dst: Reg, value: i64 },
    /// `dst = <scalar parameter param>`.
    LoadParam { dst: Reg, param: usize },
    /// `dst = <special thread/block value>`.
    Special { dst: Reg, kind: Special },
    /// `dst = lhs <op> rhs`.
    Bin { op: BinOp, dst: Reg, lhs: Reg, rhs: Reg },
    /// `dst = src`.
    Mov { dst: Reg, src: Reg },
    /// `dst = buffer[param][index]` (global memory load).
    Load { dst: Reg, param: usize, index: Reg },
    /// `buffer[param][index] = src` (global memory store).
    Store { param: usize, index: Reg, src: Reg },
    /// Bounded counting loop: `for (var = start; var < end; var += step) body`.
    /// `step` must evaluate to a positive value.
    For { var: Reg, start: Reg, end: Reg, step: Reg, body: Vec<Instr> },
    /// `if (cond != 0) then else els`.
    If { cond: Reg, then: Vec<Instr>, els: Vec<Instr> },
    /// Early thread exit (used for grid over-provisioning guards).
    Return,
}

/// The surface language a kernel "was generated for". Purely presentational:
/// execution is identical; only emitted source text differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelFlavor {
    /// CUDA C (`__global__`, `threadIdx`, `cudaMalloc` world).
    Cuda,
    /// OpenCL C (`__kernel`, `get_global_id`, command-queue world).
    OpenCl,
}

/// A compiled kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel (function) name; used by the profiler and emitted source.
    pub name: String,
    /// Parameter declarations, bound positionally at launch.
    pub params: Vec<Param>,
    /// The body executed by every thread.
    pub body: Vec<Instr>,
    /// Emission flavour.
    pub flavor: KernelFlavor,
}

impl Kernel {
    /// Highest register index used, plus one (the register file size needed).
    pub fn register_count(&self) -> usize {
        fn bump(max: &mut u16, r: Reg) {
            if r + 1 > *max {
                *max = r + 1;
            }
        }
        fn walk(instrs: &[Instr], max: &mut u16) {
            for i in instrs {
                match i {
                    Instr::Const { dst, .. }
                    | Instr::LoadParam { dst, .. }
                    | Instr::Special { dst, .. } => bump(max, *dst),
                    Instr::Bin { dst, lhs, rhs, .. } => {
                        bump(max, *dst);
                        bump(max, *lhs);
                        bump(max, *rhs);
                    }
                    Instr::Mov { dst, src } => {
                        bump(max, *dst);
                        bump(max, *src);
                    }
                    Instr::Load { dst, index, .. } => {
                        bump(max, *dst);
                        bump(max, *index);
                    }
                    Instr::Store { index, src, .. } => {
                        bump(max, *index);
                        bump(max, *src);
                    }
                    Instr::For { var, start, end, step, body } => {
                        bump(max, *var);
                        bump(max, *start);
                        bump(max, *end);
                        bump(max, *step);
                        walk(body, max);
                    }
                    Instr::If { cond, then, els } => {
                        bump(max, *cond);
                        walk(then, max);
                        walk(els, max);
                    }
                    Instr::Return => {}
                }
            }
        }
        let mut max = 0u16;
        walk(&self.body, &mut max);
        max as usize
    }

    /// Number of static instructions (loop bodies counted once).
    pub fn static_len(&self) -> usize {
        fn walk(instrs: &[Instr]) -> usize {
            instrs
                .iter()
                .map(|i| match i {
                    Instr::For { body, .. } => 1 + walk(body),
                    Instr::If { then, els, .. } => 1 + walk(then) + walk(els),
                    _ => 1,
                })
                .sum()
        }
        walk(&self.body)
    }

    /// Pretty-print the kernel as CUDA C or OpenCL C, depending on its flavour.
    ///
    /// The emitted text is for human inspection (it reproduces the paper's
    /// Figure 11 artefact); the IR itself is what executes.
    pub fn emit_source(&self) -> String {
        crate::emit::emit_kernel(self)
    }
}

/// A small builder for writing kernels by hand and in backends.
///
/// Registers are allocated monotonically; the builder tracks the instruction
/// stream and nesting of structured constructs.
///
/// The builder performs local **value numbering** (common-subexpression
/// elimination): identical constants, specials, pure binary operations and
/// loads within one straight-line region reuse the register that already
/// holds the value — exactly what any real CUDA/OpenCL compiler does, and
/// without it the folded SaC bodies (which syntactically duplicate window
/// sums in `t/6 - t%6`) would be charged twice for every load. The memo is
/// conservatively cleared at every structured-control or register-mutation
/// boundary (`mov`, `begin_for`, `begin_if`, …) and load entries are
/// invalidated by stores to the same parameter.
#[derive(Debug, Default)]
pub struct KernelBuilder {
    name: String,
    params: Vec<Param>,
    flavor: Option<KernelFlavor>,
    next_reg: Reg,
    /// Stack of open instruction sequences: base body plus any open loops/ifs.
    frames: Vec<Vec<Instr>>,
    /// What kind of frame each nested entry is (loop header info etc.).
    pending: Vec<PendingBlock>,
    memo_const: std::collections::HashMap<i64, Reg>,
    memo_special: std::collections::HashMap<u8, Reg>,
    memo_bin: std::collections::HashMap<(u8, Reg, Reg), Reg>,
    memo_load: std::collections::HashMap<(usize, Reg), Reg>,
}

#[derive(Debug)]
enum PendingBlock {
    For { var: Reg, start: Reg, end: Reg, step: Reg },
    IfThen { cond: Reg },
    IfElse { cond: Reg, then: Vec<Instr> },
}

impl KernelBuilder {
    /// Start a kernel with the given name and flavour.
    pub fn new(name: impl Into<String>, flavor: KernelFlavor) -> Self {
        KernelBuilder {
            name: name.into(),
            flavor: Some(flavor),
            frames: vec![Vec::new()],
            ..Default::default()
        }
    }

    /// Declare a buffer parameter; returns its parameter index.
    pub fn buffer_param(&mut self, name: impl Into<String>, writable: bool) -> usize {
        self.params.push(Param::Buffer { name: name.into(), writable });
        self.params.len() - 1
    }

    /// Declare a scalar parameter; returns its parameter index.
    pub fn scalar_param(&mut self, name: impl Into<String>) -> usize {
        self.params.push(Param::Scalar { name: name.into() });
        self.params.len() - 1
    }

    /// Allocate a fresh register.
    pub fn reg(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg = self.next_reg.checked_add(1).expect("register file overflow");
        r
    }

    fn push(&mut self, i: Instr) {
        self.frames.last_mut().expect("builder has no open frame").push(i);
    }

    fn clear_memo(&mut self) {
        self.memo_const.clear();
        self.memo_special.clear();
        self.memo_bin.clear();
        self.memo_load.clear();
    }

    fn special_tag(kind: Special) -> u8 {
        match kind {
            Special::GlobalIdX => 0,
            Special::GlobalIdY => 1,
            Special::ThreadIdxX => 2,
            Special::ThreadIdxY => 3,
            Special::BlockIdxX => 4,
            Special::BlockIdxY => 5,
            Special::BlockDimX => 6,
            Special::BlockDimY => 7,
            Special::GridDimX => 8,
            Special::GridDimY => 9,
        }
    }

    fn bin_tag(op: BinOp) -> u8 {
        match op {
            BinOp::Add => 0,
            BinOp::Sub => 1,
            BinOp::Mul => 2,
            BinOp::Div => 3,
            BinOp::Rem => 4,
            BinOp::Min => 5,
            BinOp::Max => 6,
            BinOp::Lt => 7,
            BinOp::Le => 8,
            BinOp::Eq => 9,
            BinOp::Ne => 10,
            BinOp::And => 11,
            BinOp::Or => 12,
        }
    }

    /// `dst = value`; returns `dst` (value-numbered).
    pub fn constant(&mut self, value: i64) -> Reg {
        if let Some(&r) = self.memo_const.get(&value) {
            return r;
        }
        let dst = self.reg();
        self.push(Instr::Const { dst, value });
        self.memo_const.insert(value, dst);
        dst
    }

    /// Load a scalar parameter into a fresh register.
    pub fn param_value(&mut self, param: usize) -> Reg {
        let dst = self.reg();
        self.push(Instr::LoadParam { dst, param });
        dst
    }

    /// Materialise a special value into a register (value-numbered).
    pub fn special(&mut self, kind: Special) -> Reg {
        let tag = Self::special_tag(kind);
        if let Some(&r) = self.memo_special.get(&tag) {
            return r;
        }
        let dst = self.reg();
        self.push(Instr::Special { dst, kind });
        self.memo_special.insert(tag, dst);
        dst
    }

    /// `dst = lhs <op> rhs` (value-numbered; commutative operands are
    /// canonicalised so `a+b` and `b+a` share a register).
    pub fn bin(&mut self, op: BinOp, lhs: Reg, rhs: Reg) -> Reg {
        let commutative =
            matches!(op, BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max | BinOp::Eq | BinOp::Ne);
        let (a, b) = if commutative && rhs < lhs { (rhs, lhs) } else { (lhs, rhs) };
        let key = (Self::bin_tag(op), a, b);
        if let Some(&r) = self.memo_bin.get(&key) {
            return r;
        }
        let dst = self.reg();
        self.push(Instr::Bin { op, dst, lhs, rhs });
        self.memo_bin.insert(key, dst);
        dst
    }

    /// Binary op against an immediate.
    pub fn bin_imm(&mut self, op: BinOp, lhs: Reg, imm: i64) -> Reg {
        let r = self.constant(imm);
        self.bin(op, lhs, r)
    }

    /// Euclidean (always non-negative) modulo: `((a % n) + n) % n`.
    pub fn wrap_mod(&mut self, a: Reg, n: Reg) -> Reg {
        let r = self.bin(BinOp::Rem, a, n);
        let s = self.bin(BinOp::Add, r, n);
        self.bin(BinOp::Rem, s, n)
    }

    /// Global load into a register (value-numbered until a store to the
    /// same parameter or a control boundary).
    pub fn load(&mut self, param: usize, index: Reg) -> Reg {
        if let Some(&r) = self.memo_load.get(&(param, index)) {
            return r;
        }
        let dst = self.reg();
        self.push(Instr::Load { dst, param, index });
        self.memo_load.insert((param, index), dst);
        dst
    }

    /// Global store. Invalidates load memoisation for the parameter.
    pub fn store(&mut self, param: usize, index: Reg, src: Reg) {
        self.memo_load.retain(|(p, _), _| *p != param);
        self.push(Instr::Store { param, index, src });
    }

    /// Copy a register. Mutation defeats value numbering, so the memo is
    /// cleared.
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.clear_memo();
        self.push(Instr::Mov { dst, src });
    }

    /// Open `for (var = start; var < end; var += step)`; returns the loop var.
    pub fn begin_for(&mut self, start: Reg, end: Reg, step: Reg) -> Reg {
        self.clear_memo();
        let var = self.reg();
        self.pending.push(PendingBlock::For { var, start, end, step });
        self.frames.push(Vec::new());
        var
    }

    /// Close the innermost `for`.
    pub fn end_for(&mut self) {
        self.clear_memo();
        let body = self.frames.pop().expect("end_for without begin_for");
        match self.pending.pop() {
            Some(PendingBlock::For { var, start, end, step }) => {
                self.push(Instr::For { var, start, end, step, body });
            }
            other => panic!("end_for closed a non-for block: {other:?}"),
        }
    }

    /// Open `if (cond)`.
    pub fn begin_if(&mut self, cond: Reg) {
        self.clear_memo();
        self.pending.push(PendingBlock::IfThen { cond });
        self.frames.push(Vec::new());
    }

    /// Switch to the `else` branch of the innermost `if`.
    pub fn begin_else(&mut self) {
        self.clear_memo();
        let then = self.frames.pop().expect("begin_else without begin_if");
        match self.pending.pop() {
            Some(PendingBlock::IfThen { cond }) => {
                self.pending.push(PendingBlock::IfElse { cond, then });
                self.frames.push(Vec::new());
            }
            other => panic!("begin_else on a non-if block: {other:?}"),
        }
    }

    /// Close the innermost `if`.
    pub fn end_if(&mut self) {
        self.clear_memo();
        let last = self.frames.pop().expect("end_if without begin_if");
        match self.pending.pop() {
            Some(PendingBlock::IfThen { cond }) => {
                self.push(Instr::If { cond, then: last, els: Vec::new() });
            }
            Some(PendingBlock::IfElse { cond, then }) => {
                self.push(Instr::If { cond, then, els: last });
            }
            other => panic!("end_if closed a non-if block: {other:?}"),
        }
    }

    /// Early thread exit.
    pub fn ret(&mut self) {
        self.push(Instr::Return);
    }

    /// Finish the kernel. Panics if structured blocks are still open.
    pub fn finish(mut self) -> Kernel {
        assert!(self.pending.is_empty(), "unclosed structured block in kernel builder");
        assert_eq!(self.frames.len(), 1, "unbalanced builder frames");
        Kernel {
            name: std::mem::take(&mut self.name),
            params: std::mem::take(&mut self.params),
            body: self.frames.pop().unwrap(),
            flavor: self.flavor.unwrap_or(KernelFlavor::Cuda),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kernel() -> Kernel {
        let mut b = KernelBuilder::new("axpy", KernelFlavor::Cuda);
        let x = b.buffer_param("x", false);
        let y = b.buffer_param("y", true);
        let n = b.scalar_param("n");
        let gid = b.special(Special::GlobalIdX);
        let nv = b.param_value(n);
        let in_range = b.bin(BinOp::Lt, gid, nv);
        b.begin_if(in_range);
        let v = b.load(x, gid);
        let two = b.constant(2);
        let dv = b.bin(BinOp::Mul, v, two);
        b.store(y, gid, dv);
        b.end_if();
        b.finish()
    }

    #[test]
    fn builder_produces_structured_body() {
        let k = sample_kernel();
        assert_eq!(k.params.len(), 3);
        assert_eq!(k.body.len(), 4); // special, loadparam, lt, if
        assert!(matches!(k.body[3], Instr::If { .. }));
    }

    #[test]
    fn register_count_covers_nested_blocks() {
        let k = sample_kernel();
        // regs: gid, nv, in_range, v, two, dv = 6
        assert_eq!(k.register_count(), 6);
    }

    #[test]
    fn static_len_counts_nested_instructions() {
        let k = sample_kernel();
        // 3 at top + if + 4 inside = 8
        assert_eq!(k.static_len(), 8);
    }

    #[test]
    fn for_builder_roundtrip() {
        let mut b = KernelBuilder::new("loop", KernelFlavor::OpenCl);
        let buf = b.buffer_param("out", true);
        let zero = b.constant(0);
        let ten = b.constant(10);
        let one = b.constant(1);
        let i = b.begin_for(zero, ten, one);
        b.store(buf, i, i);
        b.end_for();
        let k = b.finish();
        assert!(matches!(&k.body[3], Instr::For { body, .. } if body.len() == 1));
    }

    #[test]
    #[should_panic(expected = "unclosed structured block")]
    fn unclosed_block_panics() {
        let mut b = KernelBuilder::new("bad", KernelFlavor::Cuda);
        let c = b.constant(1);
        b.begin_if(c);
        let _ = b.finish();
    }

    #[test]
    fn param_names() {
        let k = sample_kernel();
        let names: Vec<_> = k.params.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["x", "y", "n"]);
    }
}
