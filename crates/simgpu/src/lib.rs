#![warn(missing_docs)]

//! # simgpu — a deterministic functional GPU simulator
//!
//! The paper evaluates its two compilation routes on an Nvidia Fermi GTX480.
//! This workspace has no GPU, so both backends target this simulator instead:
//! kernels are compiled to a small register-based IR ([`kir`]), launched over a
//! CUDA/OpenCL-style grid of thread blocks, executed *functionally* (results
//! are bit-exact and checked against CPU references), and *timed analytically*
//! with a calibrated cost model ([`cost`]) that captures the effects the paper
//! measures:
//!
//! * per-kernel launch overhead (more kernels ⇒ more overhead — the SaC
//!   backend's one-kernel-per-generator policy),
//! * PCIe transfer latency + bandwidth for `host2device` / `device2host`,
//! * intra-kernel data reuse: repeated loads of an address within one launch
//!   hit the (simulated) L1; the cache is **not persistent across launches**,
//!   reproducing the paper's observation that splitting one computation into
//!   many kernels "hinders effective data reuse",
//! * compute throughput proportional to dynamic instruction count.
//!
//! Execution is parallel on the host (blocks are distributed over std::thread
//! scoped threads) yet deterministic: each block's stores are collected in a
//! write log and applied in block order.
//!
//! The [`profiler`] accumulates per-operation records and renders them in the
//! same format as the paper's Tables I and II.

pub mod cost;
pub mod device;
pub mod emit;
pub mod exec;
pub mod fleet;
pub mod kir;
pub mod planopt;
pub mod profiler;
pub mod runtime;
pub mod schedule;
pub mod tiled;

pub use cost::{
    BoxedCostModel, Calibration, CostModel, CostModelSpec, Direction, Engine, LaunchContext,
    WarpTileModel,
};
pub use device::{BufferId, Device, DeviceConfig, EventId, MemPool, StreamId};
pub use exec::{LaunchConfig, LaunchStats};
pub use fleet::Fleet;
pub use kir::{BinOp, Instr, Kernel, KernelArg, KernelFlavor, Param, Reg, Special};
pub use planopt::{optimize, PlanOptLevel, PlanOptReport};
pub use profiler::{AllocStats, OpClass, Profiler, Record, Span};
pub use runtime::GpuRuntime;
pub use schedule::{
    chunks_for, ArrayDecl, BatchOutput, BatchScheduler, ExecOptions, HostOp, LaunchPlan,
    PlanKernel, PlanStep, RunStats, ScheduleError,
};
pub use tiled::{
    generate_tiled_kernel, generate_tiled_kernel_lean, TiledKernel, MAX_PATTERN_UNROLL,
    WORK_GROUP_SIZE,
};

/// Errors raised by the simulator.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum SimError {
    /// A kernel referenced a parameter index that was not supplied.
    BadParam { kernel: String, index: usize },
    /// An argument had the wrong kind (buffer vs scalar).
    ArgKindMismatch { kernel: String, index: usize },
    /// A buffer id was stale or out of range.
    UnknownBuffer { id: usize },
    /// Device-side out-of-bounds access.
    OutOfBounds { kernel: String, buffer: usize, index: i64, len: usize },
    /// A store to a read-only (non-writable) kernel parameter.
    ReadOnlyStore { kernel: String, param: usize },
    /// Division by zero inside a kernel.
    DivByZero { kernel: String },
    /// Device memory exhausted.
    OutOfMemory { requested: usize, available: usize },
    /// An allocation request so large its byte size (or size class) does not
    /// fit the address space — caught before it can wrap and masquerade as a
    /// small allocation.
    AllocTooLarge { len: usize },
    /// Host/device size mismatch on a transfer.
    TransferSize { host: usize, device: usize },
    /// A stream id was never created on this device.
    UnknownStream { id: usize },
    /// An event id was never recorded on this device.
    UnknownEvent { id: usize },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BadParam { kernel, index } => {
                write!(f, "kernel '{kernel}': missing argument {index}")
            }
            SimError::ArgKindMismatch { kernel, index } => {
                write!(f, "kernel '{kernel}': argument {index} has wrong kind")
            }
            SimError::UnknownBuffer { id } => write!(f, "unknown device buffer {id}"),
            SimError::OutOfBounds { kernel, buffer, index, len } => write!(
                f,
                "kernel '{kernel}': buffer {buffer} access at {index} out of bounds (len {len})"
            ),
            SimError::ReadOnlyStore { kernel, param } => {
                write!(f, "kernel '{kernel}': store through read-only parameter {param}")
            }
            SimError::DivByZero { kernel } => write!(f, "kernel '{kernel}': division by zero"),
            SimError::OutOfMemory { requested, available } => {
                write!(f, "device out of memory: requested {requested} B, available {available} B")
            }
            SimError::AllocTooLarge { len } => {
                write!(f, "allocation of {len} elements overflows the address space")
            }
            SimError::TransferSize { host, device } => {
                write!(f, "transfer size mismatch: host {host} elements, device {device}")
            }
            SimError::UnknownStream { id } => write!(f, "unknown device stream {id}"),
            SimError::UnknownEvent { id } => write!(f, "unknown device event {id}"),
        }
    }
}

impl std::error::Error for SimError {}
