//! Kernel execution engine: grid/block interpretation of kernel IR.
//!
//! Semantics mirror a CUDA/OpenCL launch:
//!
//! * the kernel body runs once per thread of `grid × block`,
//! * loads observe the buffer contents *as of launch time*; stores become
//!   visible when the launch completes (blocks cannot communicate — exactly
//!   the discipline data-parallel kernels obey),
//! * if two threads store to the same address the one in the higher
//!   (block-major, then thread-major) rank wins — deterministic, though
//!   well-formed kernels never rely on it.
//!
//! Blocks are distributed over std::thread scoped threads. Each worker keeps a
//! private write log and private access bitsets; the coordinator applies the
//! logs in block order and merges the bitsets, so execution is deterministic
//! and data-race-free while the dynamic counters remain exact.

use crate::kir::{BinOp, Instr, Kernel, KernelArg, Param, Special};
use crate::SimError;

/// Grid/block geometry of a launch (x, y). A missing dimension is 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks along (x, y).
    pub grid: (u32, u32),
    /// Threads per block along (x, y).
    pub block: (u32, u32),
}

impl LaunchConfig {
    /// A 1-D launch covering at least `n` threads with the given block size.
    pub fn cover_1d(n: usize, block: u32) -> Self {
        let blocks = (n as u64).div_ceil(block as u64) as u32;
        LaunchConfig { grid: (blocks.max(1), 1), block: (block, 1) }
    }

    /// A 2-D launch covering at least `(nx, ny)` threads.
    pub fn cover_2d(nx: usize, ny: usize, block: (u32, u32)) -> Self {
        let gx = (nx as u64).div_ceil(block.0 as u64) as u32;
        let gy = (ny as u64).div_ceil(block.1 as u64) as u32;
        LaunchConfig { grid: (gx.max(1), gy.max(1)), block }
    }

    /// Total number of threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid.0 as u64 * self.grid.1 as u64 * self.block.0 as u64 * self.block.1 as u64
    }

    /// Total number of blocks.
    pub fn total_blocks(&self) -> u64 {
        self.grid.0 as u64 * self.grid.1 as u64
    }
}

/// Dynamic counters of one launch; input to the cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaunchStats {
    /// Threads executed.
    pub threads: u64,
    /// Dynamic instructions executed (loop bodies counted per iteration).
    pub instructions: u64,
    /// Global loads executed.
    pub loads: u64,
    /// Global stores executed.
    pub stores: u64,
    /// Distinct (buffer, address) pairs touched — charged as DRAM traffic.
    pub distinct_accesses: u64,
    /// Accesses beyond the first to an address — charged as L1 hits.
    pub l1_hits: u64,
}

/// Resolved view of one kernel argument during execution.
enum Bound<'a> {
    Buf { buf_index: usize, data: &'a [i32], writable: bool },
    Scalar(i64),
}

/// A pending store: (argument slot, address, value).
type WriteLog = Vec<(usize, u32, i32)>;

/// Per-worker dynamic counters plus address bitsets (one per buffer argument).
struct WorkerState {
    instructions: u64,
    loads: u64,
    stores: u64,
    touched: Vec<Vec<u64>>, // bitset per kernel argument (empty for scalars)
    log: WriteLog,
}

impl WorkerState {
    fn new(bound: &[Bound<'_>]) -> Self {
        let touched = bound
            .iter()
            .map(|b| match b {
                Bound::Buf { data, .. } => vec![0u64; data.len().div_ceil(64)],
                Bound::Scalar(_) => Vec::new(),
            })
            .collect();
        WorkerState { instructions: 0, loads: 0, stores: 0, touched, log: Vec::new() }
    }

    #[inline]
    fn touch(&mut self, arg: usize, addr: u32) {
        let w = &mut self.touched[arg][(addr / 64) as usize];
        *w |= 1u64 << (addr % 64);
    }
}

/// Execute `kernel` over `cfg` against the supplied buffers.
///
/// `buffers` are the device buffers indexed by [`KernelArg::Buffer`] ids.
/// On success the stores are applied and the dynamic counters returned.
pub fn run_kernel(
    kernel: &Kernel,
    cfg: LaunchConfig,
    args: &[KernelArg],
    buffers: &mut [Option<Vec<i32>>],
    host_workers: usize,
) -> Result<LaunchStats, SimError> {
    // Bind arguments to parameters.
    if args.len() != kernel.params.len() {
        return Err(SimError::BadParam { kernel: kernel.name.clone(), index: args.len() });
    }
    // Shared view for the read-only sweep; stores go to write logs that are
    // applied through `buffers` only after every borrow of `view` has ended.
    let view: &[Option<Vec<i32>>] = buffers;
    let mut bound: Vec<Bound<'_>> = Vec::with_capacity(args.len());
    for (i, (p, a)) in kernel.params.iter().zip(args).enumerate() {
        match (p, a) {
            (Param::Buffer { writable, .. }, KernelArg::Buffer(id)) => {
                let data = view
                    .get(*id)
                    .and_then(|b| b.as_ref())
                    .ok_or(SimError::UnknownBuffer { id: *id })?;
                bound.push(Bound::Buf { buf_index: *id, data, writable: *writable });
            }
            (Param::Scalar { .. }, KernelArg::Scalar(v)) => bound.push(Bound::Scalar(*v)),
            _ => return Err(SimError::ArgKindMismatch { kernel: kernel.name.clone(), index: i }),
        }
    }

    let total_blocks = cfg.total_blocks();
    // Respect the caller's worker count (clamped only by the block count):
    // the Device defaults it to the host's parallelism, and tests force
    // higher counts to exercise the multi-worker merge even on small hosts.
    let workers = host_workers.max(1).min(total_blocks as usize);
    let chunk = total_blocks.div_ceil(workers as u64);

    let regs_needed = kernel.register_count();

    // Run blocks, either inline or across scoped threads.
    let run_range = |lo: u64, hi: u64| -> Result<WorkerState, SimError> {
        let mut st = WorkerState::new(&bound);
        let mut regs = vec![0i64; regs_needed];
        for blk in lo..hi {
            let bx = (blk % cfg.grid.0 as u64) as i64;
            let by = (blk / cfg.grid.0 as u64) as i64;
            for ty in 0..cfg.block.1 as i64 {
                for tx in 0..cfg.block.0 as i64 {
                    let ctx = ThreadCtx { kernel, bound: &bound, cfg, bx, by, tx, ty };
                    regs.iter_mut().for_each(|r| *r = 0);
                    exec_block(&kernel.body, &ctx, &mut regs, &mut st)?;
                }
            }
        }
        Ok(st)
    };

    let states: Vec<Result<WorkerState, SimError>> = if workers <= 1 {
        vec![run_range(0, total_blocks)]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers as u64)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(total_blocks);
                    let run_range = &run_range;
                    s.spawn(move || run_range(lo, hi))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("kernel worker panicked")).collect()
        })
    };

    // Merge counters and bitsets; apply write logs in block order.
    let mut stats = LaunchStats { threads: cfg.total_threads(), ..Default::default() };
    let mut merged: Vec<Vec<u64>> = bound
        .iter()
        .map(|b| match b {
            Bound::Buf { data, .. } => vec![0u64; data.len().div_ceil(64)],
            Bound::Scalar(_) => Vec::new(),
        })
        .collect();
    let mut logs: Vec<WriteLog> = Vec::with_capacity(states.len());
    for st in states {
        let st = st?;
        stats.instructions += st.instructions;
        stats.loads += st.loads;
        stats.stores += st.stores;
        for (m, t) in merged.iter_mut().zip(&st.touched) {
            for (a, b) in m.iter_mut().zip(t) {
                *a |= *b;
            }
        }
        logs.push(st.log);
    }
    stats.distinct_accesses = merged.iter().flatten().map(|w| w.count_ones() as u64).sum();
    stats.l1_hits = (stats.loads + stats.stores).saturating_sub(stats.distinct_accesses);

    // Apply stores. Workers were assigned increasing block ranges, so applying
    // in worker order preserves block-rank order.
    let slot_of: Vec<Option<usize>> = bound
        .iter()
        .map(|b| match b {
            Bound::Buf { buf_index, .. } => Some(*buf_index),
            Bound::Scalar(_) => None,
        })
        .collect();
    drop(bound);
    for log in logs {
        for (arg, addr, val) in log {
            let id = slot_of[arg].expect("store through scalar argument");
            let buf = buffers[id].as_mut().expect("buffer vanished during launch");
            buf[addr as usize] = val;
        }
    }
    Ok(stats)
}

/// Per-thread execution context.
struct ThreadCtx<'a> {
    kernel: &'a Kernel,
    bound: &'a [Bound<'a>],
    cfg: LaunchConfig,
    bx: i64,
    by: i64,
    tx: i64,
    ty: i64,
}

/// Whether control should keep flowing after an instruction sequence.
enum Flow {
    Continue,
    Return,
}

fn exec_block(
    instrs: &[Instr],
    ctx: &ThreadCtx<'_>,
    regs: &mut [i64],
    st: &mut WorkerState,
) -> Result<Flow, SimError> {
    let mut flow = Flow::Continue;
    for i in instrs {
        st.instructions += 1;
        match i {
            Instr::Const { dst, value } => regs[*dst as usize] = *value,
            Instr::LoadParam { dst, param } => match ctx.bound.get(*param) {
                Some(Bound::Scalar(v)) => regs[*dst as usize] = *v,
                _ => {
                    return Err(SimError::BadParam {
                        kernel: ctx.kernel.name.clone(),
                        index: *param,
                    })
                }
            },
            Instr::Special { dst, kind } => {
                regs[*dst as usize] = match kind {
                    Special::GlobalIdX => ctx.bx * ctx.cfg.block.0 as i64 + ctx.tx,
                    Special::GlobalIdY => ctx.by * ctx.cfg.block.1 as i64 + ctx.ty,
                    Special::ThreadIdxX => ctx.tx,
                    Special::ThreadIdxY => ctx.ty,
                    Special::BlockIdxX => ctx.bx,
                    Special::BlockIdxY => ctx.by,
                    Special::BlockDimX => ctx.cfg.block.0 as i64,
                    Special::BlockDimY => ctx.cfg.block.1 as i64,
                    Special::GridDimX => ctx.cfg.grid.0 as i64,
                    Special::GridDimY => ctx.cfg.grid.1 as i64,
                };
            }
            Instr::Bin { op, dst, lhs, rhs } => {
                let a = regs[*lhs as usize];
                let b = regs[*rhs as usize];
                regs[*dst as usize] = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(SimError::DivByZero { kernel: ctx.kernel.name.clone() });
                        }
                        a.wrapping_div(b)
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return Err(SimError::DivByZero { kernel: ctx.kernel.name.clone() });
                        }
                        a.wrapping_rem(b)
                    }
                    BinOp::Min => a.min(b),
                    BinOp::Max => a.max(b),
                    BinOp::Lt => (a < b) as i64,
                    BinOp::Le => (a <= b) as i64,
                    BinOp::Eq => (a == b) as i64,
                    BinOp::Ne => (a != b) as i64,
                    BinOp::And => ((a != 0) && (b != 0)) as i64,
                    BinOp::Or => ((a != 0) || (b != 0)) as i64,
                };
            }
            Instr::Mov { dst, src } => regs[*dst as usize] = regs[*src as usize],
            Instr::Load { dst, param, index } => {
                let ix = regs[*index as usize];
                match ctx.bound.get(*param) {
                    Some(Bound::Buf { data, .. }) => {
                        if ix < 0 || ix as usize >= data.len() {
                            return Err(SimError::OutOfBounds {
                                kernel: ctx.kernel.name.clone(),
                                buffer: *param,
                                index: ix,
                                len: data.len(),
                            });
                        }
                        regs[*dst as usize] = data[ix as usize] as i64;
                        st.loads += 1;
                        st.touch(*param, ix as u32);
                    }
                    _ => {
                        return Err(SimError::BadParam {
                            kernel: ctx.kernel.name.clone(),
                            index: *param,
                        })
                    }
                }
            }
            Instr::Store { param, index, src } => {
                let ix = regs[*index as usize];
                match ctx.bound.get(*param) {
                    Some(Bound::Buf { data, writable, .. }) => {
                        if !*writable {
                            return Err(SimError::ReadOnlyStore {
                                kernel: ctx.kernel.name.clone(),
                                param: *param,
                            });
                        }
                        if ix < 0 || ix as usize >= data.len() {
                            return Err(SimError::OutOfBounds {
                                kernel: ctx.kernel.name.clone(),
                                buffer: *param,
                                index: ix,
                                len: data.len(),
                            });
                        }
                        st.stores += 1;
                        st.touch(*param, ix as u32);
                        // Device buffers hold 32-bit ints (the paper's frames
                        // are `int` arrays); like real CUDA/OpenCL `int`
                        // stores, values are truncated modulo 2^32. Registers
                        // are 64-bit, so *intermediate* arithmetic is wider
                        // than a real device's — programs relying on i32
                        // wrap-around mid-expression would diverge, which the
                        // studied pixel workloads never do.
                        st.log.push((*param, ix as u32, regs[*src as usize] as i32));
                    }
                    _ => {
                        return Err(SimError::BadParam {
                            kernel: ctx.kernel.name.clone(),
                            index: *param,
                        })
                    }
                }
            }
            Instr::For { var, start, end, step, body } => {
                let mut v = regs[*start as usize];
                let end_v = regs[*end as usize];
                let step_v = regs[*step as usize].max(1);
                while v < end_v {
                    regs[*var as usize] = v;
                    match exec_block(body, ctx, regs, st)? {
                        Flow::Continue => {}
                        Flow::Return => return Ok(Flow::Return),
                    }
                    v += step_v;
                }
            }
            Instr::If { cond, then, els } => {
                let branch = if regs[*cond as usize] != 0 { then } else { els };
                match exec_block(branch, ctx, regs, st)? {
                    Flow::Continue => {}
                    Flow::Return => return Ok(Flow::Return),
                }
            }
            Instr::Return => {
                flow = Flow::Return;
                break;
            }
        }
    }
    Ok(flow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kir::{KernelBuilder, KernelFlavor};

    fn scale_kernel() -> Kernel {
        let mut b = KernelBuilder::new("scale2", KernelFlavor::Cuda);
        let x = b.buffer_param("x", false);
        let y = b.buffer_param("y", true);
        let n = b.scalar_param("n");
        let gid = b.special(Special::GlobalIdX);
        let nv = b.param_value(n);
        let ok = b.bin(BinOp::Lt, gid, nv);
        b.begin_if(ok);
        let v = b.load(x, gid);
        let two = b.constant(2);
        let d = b.bin(BinOp::Mul, v, two);
        b.store(y, gid, d);
        b.end_if();
        b.finish()
    }

    #[test]
    fn launch_config_covers_requested_threads() {
        let c = LaunchConfig::cover_1d(1000, 256);
        assert_eq!(c.grid.0, 4);
        assert_eq!(c.total_threads(), 1024);
        let c2 = LaunchConfig::cover_2d(100, 7, (32, 4));
        assert!(c2.grid.0 * c2.block.0 >= 100);
        assert!(c2.grid.1 * c2.block.1 >= 7);
    }

    #[test]
    fn kernel_computes_and_guards_tail() {
        let k = scale_kernel();
        let mut bufs = vec![Some((0..100).collect::<Vec<_>>()), Some(vec![0i32; 100])];
        let cfg = LaunchConfig::cover_1d(100, 32);
        let args = [KernelArg::Buffer(0), KernelArg::Buffer(1), KernelArg::Scalar(100)];
        let stats = run_kernel(&k, cfg, &args, &mut bufs, 1).unwrap();
        let out = bufs[1].as_ref().unwrap();
        assert_eq!(out[0], 0);
        assert_eq!(out[99], 198);
        assert_eq!(stats.threads, 128);
        assert_eq!(stats.loads, 100);
        assert_eq!(stats.stores, 100);
        assert_eq!(stats.distinct_accesses, 200);
        assert_eq!(stats.l1_hits, 0);
    }

    #[test]
    fn parallel_execution_matches_single_worker() {
        let k = scale_kernel();
        let input: Vec<i32> = (0..4096).map(|v| v * 7 % 101).collect();
        let mut a = vec![Some(input.clone()), Some(vec![0i32; 4096])];
        let mut b = vec![Some(input), Some(vec![0i32; 4096])];
        let cfg = LaunchConfig::cover_1d(4096, 128);
        let args = [KernelArg::Buffer(0), KernelArg::Buffer(1), KernelArg::Scalar(4096)];
        let s1 = run_kernel(&k, cfg, &args, &mut a, 1).unwrap();
        let s8 = run_kernel(&k, cfg, &args, &mut b, 8).unwrap();
        assert_eq!(a[1], b[1]);
        assert_eq!(s1, s8);
    }

    #[test]
    fn repeated_loads_count_as_l1_hits() {
        // Every thread loads x[0].
        let mut b = KernelBuilder::new("bcast", KernelFlavor::Cuda);
        let x = b.buffer_param("x", false);
        let y = b.buffer_param("y", true);
        let gid = b.special(Special::GlobalIdX);
        let zero = b.constant(0);
        let v = b.load(x, zero);
        b.store(y, gid, v);
        let _ = gid;
        let k = b.finish();
        let mut bufs = vec![Some(vec![5i32]), Some(vec![0i32; 64])];
        let cfg = LaunchConfig::cover_1d(64, 64);
        let stats =
            run_kernel(&k, cfg, &[KernelArg::Buffer(0), KernelArg::Buffer(1)], &mut bufs, 2)
                .unwrap();
        assert_eq!(stats.loads, 64);
        // 1 distinct load address + 64 distinct store addresses.
        assert_eq!(stats.distinct_accesses, 65);
        assert_eq!(stats.l1_hits, 63);
        assert!(bufs[1].as_ref().unwrap().iter().all(|&v| v == 5));
    }

    #[test]
    fn oob_access_is_reported() {
        let k = scale_kernel();
        let mut bufs = vec![Some(vec![1i32; 10]), Some(vec![0i32; 10])];
        // Claim n = 64 with only 10 elements: threads 10..64 go out of bounds.
        let cfg = LaunchConfig::cover_1d(64, 64);
        let err = run_kernel(
            &k,
            cfg,
            &[KernelArg::Buffer(0), KernelArg::Buffer(1), KernelArg::Scalar(64)],
            &mut bufs,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::OutOfBounds { .. }));
    }

    #[test]
    fn store_through_readonly_param_is_rejected() {
        let mut b = KernelBuilder::new("bad", KernelFlavor::Cuda);
        let x = b.buffer_param("x", false);
        let gid = b.special(Special::GlobalIdX);
        b.store(x, gid, gid);
        let k = b.finish();
        let mut bufs = vec![Some(vec![0i32; 4])];
        let err =
            run_kernel(&k, LaunchConfig::cover_1d(4, 4), &[KernelArg::Buffer(0)], &mut bufs, 1)
                .unwrap_err();
        assert!(matches!(err, SimError::ReadOnlyStore { .. }));
    }

    #[test]
    fn arg_kind_mismatch_is_rejected() {
        let k = scale_kernel();
        let mut bufs = vec![Some(vec![0i32; 4])];
        let err = run_kernel(
            &k,
            LaunchConfig::cover_1d(4, 4),
            &[KernelArg::Scalar(0), KernelArg::Buffer(0), KernelArg::Scalar(4)],
            &mut bufs,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::ArgKindMismatch { .. }));
    }

    #[test]
    fn for_loop_executes_bounded_iterations() {
        // y[gid] = sum(0..5) = 10, via a for loop.
        let mut b = KernelBuilder::new("sum5", KernelFlavor::Cuda);
        let y = b.buffer_param("y", true);
        let gid = b.special(Special::GlobalIdX);
        let acc = b.constant(0);
        let zero = b.constant(0);
        let five = b.constant(5);
        let one = b.constant(1);
        let i = b.begin_for(zero, five, one);
        let s = b.bin(BinOp::Add, acc, i);
        b.mov(acc, s);
        b.end_for();
        b.store(y, gid, acc);
        let k = b.finish();
        let mut bufs = vec![Some(vec![0i32; 8])];
        run_kernel(&k, LaunchConfig::cover_1d(8, 8), &[KernelArg::Buffer(0)], &mut bufs, 1)
            .unwrap();
        assert!(bufs[0].as_ref().unwrap().iter().all(|&v| v == 10));
    }

    #[test]
    fn return_exits_thread_early() {
        let mut b = KernelBuilder::new("guard", KernelFlavor::Cuda);
        let y = b.buffer_param("y", true);
        let gid = b.special(Special::GlobalIdX);
        let four = b.constant(4);
        let big = b.bin(BinOp::Le, four, gid);
        b.begin_if(big);
        b.ret();
        b.end_if();
        let seven = b.constant(7);
        b.store(y, gid, seven);
        let k = b.finish();
        let mut bufs = vec![Some(vec![0i32; 8])];
        run_kernel(&k, LaunchConfig::cover_1d(8, 8), &[KernelArg::Buffer(0)], &mut bufs, 1)
            .unwrap();
        assert_eq!(bufs[0].as_ref().unwrap().as_slice(), &[7, 7, 7, 7, 0, 0, 0, 0]);
    }

    #[test]
    fn later_block_wins_write_conflicts() {
        // All threads store their gid to y[0]; the highest-ranked thread wins.
        let mut b = KernelBuilder::new("conflict", KernelFlavor::Cuda);
        let y = b.buffer_param("y", true);
        let gid = b.special(Special::GlobalIdX);
        let zero = b.constant(0);
        b.store(y, zero, gid);
        let k = b.finish();
        for workers in [1usize, 4] {
            let mut bufs = vec![Some(vec![-1i32])];
            run_kernel(
                &k,
                LaunchConfig { grid: (4, 1), block: (8, 1) },
                &[KernelArg::Buffer(0)],
                &mut bufs,
                workers,
            )
            .unwrap();
            assert_eq!(bufs[0].as_ref().unwrap()[0], 31);
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::kir::{KernelBuilder, KernelFlavor, Special};
    use proptest::prelude::*;

    /// Build a random straight-line kernel: y[gid] = f(x[gid], gid) for a
    /// random arithmetic expression tree f.
    fn random_kernel(ops: &[(u8, i64)]) -> Kernel {
        let mut b = KernelBuilder::new("rand", KernelFlavor::Cuda);
        let x = b.buffer_param("x", false);
        let y = b.buffer_param("y", true);
        let gid = b.special(Special::GlobalIdX);
        let mut acc = b.load(x, gid);
        for &(op, k) in ops {
            let c = b.constant(k);
            acc = match op % 5 {
                0 => b.bin(BinOp::Add, acc, c),
                1 => b.bin(BinOp::Sub, acc, c),
                2 => b.bin(BinOp::Mul, acc, c),
                3 => b.bin(BinOp::Min, acc, gid),
                _ => b.bin(BinOp::Max, acc, c),
            };
        }
        b.store(y, gid, acc);
        b.finish()
    }

    proptest! {
        /// Worker count never changes results or dynamic counters: the
        /// parallel execution engine is deterministic.
        #[test]
        fn execution_is_worker_count_invariant(
            ops in proptest::collection::vec((0u8..5, -7i64..7), 1..8),
            n in 1usize..300,
            block in prop_oneof![Just(32u32), Just(64), Just(128)],
        ) {
            let kernel = random_kernel(&ops);
            let input: Vec<i32> = (0..n as i32).map(|v| v.wrapping_mul(31) % 1000).collect();
            let cfg = LaunchConfig::cover_1d(n, block);
            // Over-provisioned threads store out of range? The kernel has no
            // guard, so clamp the launch to exactly n via grid covering and
            // expect OOB when padding exists — instead give the buffers the
            // full padded size to keep the property about determinism.
            let padded = cfg.total_threads() as usize;
            let mut base: Vec<Option<Vec<i32>>> = vec![
                Some({ let mut v = input.clone(); v.resize(padded, 0); v }),
                Some(vec![0i32; padded]),
            ];
            let args = [KernelArg::Buffer(0), KernelArg::Buffer(1)];
            let s1 = run_kernel(&kernel, cfg, &args, &mut base, 1).unwrap();
            for workers in [2usize, 5, 9] {
                let mut bufs: Vec<Option<Vec<i32>>> = vec![
                    Some({ let mut v = input.clone(); v.resize(padded, 0); v }),
                    Some(vec![0i32; padded]),
                ];
                let s = run_kernel(&kernel, cfg, &args, &mut bufs, workers).unwrap();
                prop_assert_eq!(&bufs[1], &base[1], "workers = {}", workers);
                prop_assert_eq!(s, s1);
            }
        }
    }
}
