//! Plan-level transfer-elimination passes over [`LaunchPlan`].
//!
//! PRs 1–4 left the HD run transfer-bound: fusion cut kernel launches but
//! every frame still uploads all inputs and downloads all outputs, so the
//! 2-stream time plateaued at the H2D engine's busy time. This module
//! attacks that at the shared launch-plan IR, in the spirit of rewrite-rule
//! optimisers: a small pass manager with named, individually-toggleable
//! passes that rewrite a validated plan into a cheaper equivalent one.
//!
//! The passes, in the order [`optimize`] runs them:
//!
//! 1. **Device-residency propagation** ([`PlanOptLevel::residency`]) — a
//!    forward walk tracking which arrays hold their *current logical value*
//!    on the device (`dev_valid`) and on the host (`host_valid`). An upload
//!    of an already-device-valid array and a download of an already-
//!    host-valid array are redundant and dropped — this is what keeps
//!    producer→consumer intermediates device-resident across steps. For
//!    arrays the route declares content-independent across frames
//!    ([`LaunchPlan::invariant`]), the surviving upload is hoisted into the
//!    plan [`LaunchPlan::prologue`]: uploaded once per lane, reused by every
//!    frame.
//! 2. **Dead upload/download elimination**
//!    ([`PlanOptLevel::dead_transfers`]) — a backward liveness walk from the
//!    declared outputs. A download whose host copy is never read afterwards
//!    (not an output, not a host-op input, not re-uploaded) and an upload
//!    whose device copy is never consumed are dropped. Kernel launches
//!    conservatively count *every* argument as a device read, including
//!    writable ones — a writable parameter may read-modify-write in place —
//!    so a transfer feeding any launch is never dropped.
//! 3. **Step reordering** ([`PlanOptLevel::reorder`]) — uploads bubble
//!    toward the front of the frame and downloads toward the back, past
//!    steps they do not conflict with. This lengthens the H2D / compute /
//!    D2H overlap window under multi-stream pipelining, and it clusters
//!    transfers into adjacent runs the coalescing pass can batch. Transfers
//!    never reorder against same-direction transfers, so each engine's
//!    operation order is stable.
//! 4. **Transfer coalescing** ([`PlanOptLevel::coalesce`]) — two rewrites
//!    that both trade per-transfer latency for nothing: a chunked transfer
//!    (`chunks > 1`) becomes one whole-buffer transfer (same bytes, one
//!    latency), and an adjacent run of uploads (or downloads) becomes one
//!    [`PlanStep::UploadBatch`] / [`PlanStep::DownloadBatch`] charged as a
//!    single transfer of the summed bytes. Kernel launches are *not*
//!    coalesced here: merging launches changes kernel code, which is the
//!    compiler's fusion pass (SaC WITH-loop folding, the Gaspard tiler
//!    composition), not a plan-level rewrite.
//!
//! Every pass re-validates the plan after rewriting ([`LaunchPlan::
//! validate`], which since the residency fixes also tracks stale host/device
//! copies), so an unsound rewrite fails loudly instead of corrupting
//! outputs. What each pass changed is reported as [`PlanOptReport`] notes,
//! which the route wrappers surface as profiler notes next to the timings.
//!
//! The knob rides in [`ExecOptions::optimize`](crate::schedule::ExecOptions)
//! and defaults to [`PlanOptLevel::OFF`] — a strict no-op, so every
//! paper-faithful number is untouched unless an experiment opts in.

use crate::schedule::{LaunchPlan, PlanStep, ScheduleError};

/// Which planopt passes to run. Each pass is independently toggleable so
/// ablations can attribute savings; [`PlanOptLevel::OFF`] (the default) runs
/// nothing and leaves the plan byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOptLevel {
    /// Device-residency propagation: drop re-uploads of device-valid arrays
    /// and re-downloads of host-valid arrays; hoist invariant uploads into
    /// the per-lane prologue.
    pub residency: bool,
    /// Dead transfer elimination: drop uploads/downloads whose produced copy
    /// is never read.
    pub dead_transfers: bool,
    /// Hoist independent uploads ahead of kernel chains and sink downloads
    /// behind them.
    pub reorder: bool,
    /// Merge chunked transfers and batch adjacent same-direction transfers
    /// into single operations.
    pub coalesce: bool,
}

impl PlanOptLevel {
    /// No passes: [`optimize`] is a strict no-op.
    pub const OFF: PlanOptLevel =
        PlanOptLevel { residency: false, dead_transfers: false, reorder: false, coalesce: false };
    /// Every pass.
    pub const ALL: PlanOptLevel =
        PlanOptLevel { residency: true, dead_transfers: true, reorder: true, coalesce: true };
    /// Only the residency-propagation pass.
    pub const RESIDENCY: PlanOptLevel = PlanOptLevel { residency: true, ..Self::OFF };
    /// Only dead-transfer elimination.
    pub const DEAD_TRANSFERS: PlanOptLevel = PlanOptLevel { dead_transfers: true, ..Self::OFF };
    /// Only step reordering.
    pub const REORDER: PlanOptLevel = PlanOptLevel { reorder: true, ..Self::OFF };
    /// Only transfer coalescing.
    pub const COALESCE: PlanOptLevel = PlanOptLevel { coalesce: true, ..Self::OFF };

    /// Whether no pass is enabled.
    pub fn is_off(&self) -> bool {
        *self == Self::OFF
    }
}

impl Default for PlanOptLevel {
    fn default() -> Self {
        Self::OFF
    }
}

/// What [`optimize`] changed: one human-readable note per pass that rewrote
/// something, in pass order. Route wrappers push these into the device
/// profiler's notes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanOptReport {
    /// One note per pass that changed the plan.
    pub notes: Vec<String>,
}

/// Run the enabled passes over `plan`, in the fixed order residency →
/// dead-transfers → reorder → coalesce, re-validating after each.
///
/// With [`PlanOptLevel::OFF`] this is a strict no-op: the plan is not
/// touched (not even validated) and the report is empty, so default-option
/// executions are bit-identical to pre-planopt builds.
pub fn optimize(
    plan: &mut LaunchPlan<'_>,
    level: PlanOptLevel,
) -> Result<PlanOptReport, ScheduleError> {
    let mut report = PlanOptReport::default();
    if level.is_off() {
        return Ok(report);
    }
    // Passes assume they start from a consistent plan.
    plan.validate()?;
    type Pass = fn(&mut LaunchPlan<'_>) -> Option<String>;
    let passes: [(bool, &str, Pass); 4] = [
        (level.residency, "residency", residency_pass),
        (level.dead_transfers, "dead-transfers", dead_transfers_pass),
        (level.reorder, "reorder", reorder_pass),
        (level.coalesce, "coalesce", coalesce_pass),
    ];
    for (enabled, name, pass) in passes {
        if !enabled {
            continue;
        }
        if let Some(note) = pass(plan) {
            plan.validate().map_err(|e| {
                ScheduleError::Plan(format!("planopt {name} produced an invalid plan: {e}"))
            })?;
            report.notes.push(format!("planopt {name}: {note}"));
        }
    }
    Ok(report)
}

/// Array ids a launch may modify (its writable buffer parameters).
fn written_by(plan: &LaunchPlan<'_>, kernel: usize) -> Vec<usize> {
    plan.kernels[kernel].written_args().collect()
}

/// Forward residency propagation; see the module docs. Returns a note when
/// any transfer was dropped or hoisted.
fn residency_pass(plan: &mut LaunchPlan<'_>) -> Option<String> {
    let n = plan.arrays.len();
    let mut dev_valid = vec![false; n];
    let mut host_valid = vec![false; n];
    for &id in &plan.inputs {
        host_valid[id] = true;
    }
    // A pre-existing prologue already established device residency for its
    // uploads (they are invariant, so their value never goes stale).
    for step in &plan.prologue {
        if let PlanStep::Upload { array, .. } = *step {
            dev_valid[array] = true;
        }
    }

    let mut kept = Vec::with_capacity(plan.steps.len());
    let mut dropped_up = 0usize;
    let mut dropped_down = 0usize;
    for step in &plan.steps {
        match *step {
            PlanStep::Upload { array, .. } => {
                if dev_valid[array] {
                    dropped_up += 1;
                    continue;
                }
                dev_valid[array] = true;
            }
            PlanStep::Alloc { .. } => {
                // Allocation says nothing about contents: on a warm frame
                // the reused buffer holds the previous frame's data, so it
                // must not count as holding this frame's value.
            }
            PlanStep::Launch { kernel } => {
                for a in written_by(plan, kernel) {
                    dev_valid[a] = true;
                    host_valid[a] = false;
                }
            }
            PlanStep::Download { array, .. } => {
                if host_valid[array] {
                    dropped_down += 1;
                    continue;
                }
                host_valid[array] = true;
            }
            PlanStep::Host { op } => {
                let h = &plan.host_ops[op];
                host_valid[h.target] = true;
                dev_valid[h.target] = false;
            }
            PlanStep::UploadBatch { batch } => {
                for &a in &plan.batches[batch] {
                    dev_valid[a] = true;
                }
            }
            PlanStep::DownloadBatch { batch } => {
                for &a in &plan.batches[batch] {
                    host_valid[a] = true;
                }
            }
        }
        kept.push(*step);
    }
    plan.steps = kept;

    // Cross-frame half: an invariant array's upload can move to the
    // prologue — uploaded once per lane, device-resident for every frame.
    // (Validation already guarantees invariant arrays are inputs and are
    // never written on the device or re-produced by a host op.)
    let mut hoisted = 0usize;
    for id in plan.invariant.clone() {
        let already = plan
            .prologue
            .iter()
            .any(|s| matches!(*s, PlanStep::Upload { array, .. } if array == id));
        if already {
            continue;
        }
        if let Some(pos) = plan
            .steps
            .iter()
            .position(|s| matches!(*s, PlanStep::Upload { array, .. } if array == id))
        {
            let step = plan.steps.remove(pos);
            plan.prologue.push(step);
            hoisted += 1;
        }
    }

    if dropped_up + dropped_down + hoisted == 0 {
        return None;
    }
    Some(format!(
        "dropped {dropped_up} redundant upload(s) and {dropped_down} redundant download(s), \
         hoisted {hoisted} invariant upload(s) to the per-lane prologue"
    ))
}

/// Backward liveness from the declared outputs; see the module docs.
fn dead_transfers_pass(plan: &mut LaunchPlan<'_>) -> Option<String> {
    let n = plan.arrays.len();
    let mut host_needed = vec![false; n];
    let mut dev_needed = vec![false; n];
    for &id in &plan.outputs {
        host_needed[id] = true;
    }
    // A carried value is read off the host at frame end, exactly like an
    // output: the download producing it must not be eliminated.
    for c in &plan.carries {
        host_needed[c.from] = true;
    }
    let mut kept_rev = Vec::with_capacity(plan.steps.len());
    let mut dropped_up = 0usize;
    let mut dropped_down = 0usize;
    for step in plan.steps.iter().rev() {
        match *step {
            PlanStep::Download { array, .. } => {
                if !host_needed[array] {
                    dropped_down += 1;
                    continue;
                }
                // Defines the host copy, reads the device copy.
                host_needed[array] = false;
                dev_needed[array] = true;
            }
            PlanStep::Upload { array, .. } => {
                if !dev_needed[array] {
                    dropped_up += 1;
                    continue;
                }
                dev_needed[array] = false;
                host_needed[array] = true;
            }
            PlanStep::Launch { kernel } => {
                // Conservative: every argument counts as a device read —
                // a writable parameter may read-modify-write in place.
                for &a in &plan.kernels[kernel].args {
                    dev_needed[a] = true;
                }
            }
            PlanStep::Host { op } => {
                let h = &plan.host_ops[op];
                host_needed[h.target] = false;
                for &a in &h.reads {
                    host_needed[a] = true;
                }
            }
            PlanStep::Alloc { .. } => {}
            // Batched transfers are kept as-is: they only exist after the
            // coalescing pass, which runs last.
            PlanStep::UploadBatch { batch } => {
                for &a in &plan.batches[batch] {
                    host_needed[a] = true;
                }
            }
            PlanStep::DownloadBatch { batch } => {
                for &a in &plan.batches[batch] {
                    dev_needed[a] = true;
                }
            }
        }
        kept_rev.push(*step);
    }
    kept_rev.reverse();
    plan.steps = kept_rev;
    if dropped_up + dropped_down == 0 {
        return None;
    }
    Some(format!("dropped {dropped_up} dead upload(s) and {dropped_down} dead download(s)"))
}

/// Whether `step` reads or writes the host copy of `a`.
fn touches_host(plan: &LaunchPlan<'_>, step: PlanStep, a: usize) -> bool {
    match step {
        PlanStep::Upload { array, .. } => array == a,
        PlanStep::Download { array, .. } => array == a,
        PlanStep::Host { op } => {
            let h = &plan.host_ops[op];
            h.target == a || h.reads.contains(&a)
        }
        PlanStep::UploadBatch { batch } | PlanStep::DownloadBatch { batch } => {
            plan.batches[batch].contains(&a)
        }
        PlanStep::Alloc { .. } | PlanStep::Launch { .. } => false,
    }
}

/// Whether `step` reads or writes the device copy of `a`.
fn touches_device(plan: &LaunchPlan<'_>, step: PlanStep, a: usize) -> bool {
    match step {
        PlanStep::Upload { array, .. } | PlanStep::Alloc { array } => array == a,
        PlanStep::Download { array, .. } => array == a,
        PlanStep::Launch { kernel } => plan.kernels[kernel].args.contains(&a),
        PlanStep::Host { .. } => false,
        PlanStep::UploadBatch { batch } | PlanStep::DownloadBatch { batch } => {
            plan.batches[batch].contains(&a)
        }
    }
}

fn is_h2d(step: PlanStep) -> bool {
    matches!(step, PlanStep::Upload { .. } | PlanStep::UploadBatch { .. })
}

fn is_d2h(step: PlanStep) -> bool {
    matches!(step, PlanStep::Download { .. } | PlanStep::DownloadBatch { .. })
}

/// Bubble uploads left and downloads right past non-conflicting steps; see
/// the module docs. Same-engine transfer order is kept stable.
fn reorder_pass(plan: &mut LaunchPlan<'_>) -> Option<String> {
    let mut moves = 0usize;
    loop {
        let mut moved = false;
        // Uploads drift toward the frame start.
        for i in 1..plan.steps.len() {
            let (prev, cur) = (plan.steps[i - 1], plan.steps[i]);
            let PlanStep::Upload { array, .. } = cur else { continue };
            // Never reorder H2D against H2D (engine order stays stable), and
            // never move past a step that defines this array's host copy or
            // touches its device copy.
            if is_h2d(prev) || touches_host(plan, prev, array) || touches_device(plan, prev, array)
            {
                continue;
            }
            plan.steps.swap(i - 1, i);
            moves += 1;
            moved = true;
        }
        // Downloads drift toward the frame end.
        for i in (0..plan.steps.len().saturating_sub(1)).rev() {
            let (cur, next) = (plan.steps[i], plan.steps[i + 1]);
            let PlanStep::Download { array, .. } = cur else { continue };
            if is_d2h(next) || touches_host(plan, next, array) || touches_device(plan, next, array)
            {
                continue;
            }
            plan.steps.swap(i, i + 1);
            moves += 1;
            moved = true;
        }
        if !moved {
            break;
        }
    }
    if moves == 0 {
        None
    } else {
        Some(format!("moved transfers {moves} step(s) to lengthen the overlap window"))
    }
}

/// Merge chunked transfers into whole-buffer ones and batch adjacent
/// same-direction runs; see the module docs.
fn coalesce_pass(plan: &mut LaunchPlan<'_>) -> Option<String> {
    let mut merged_chunks = 0usize;
    for step in &mut plan.steps {
        match step {
            PlanStep::Upload { chunks, .. } | PlanStep::Download { chunks, .. } if *chunks > 1 => {
                merged_chunks += *chunks - 1;
                *chunks = 1;
            }
            _ => {}
        }
    }

    let mut batched_runs = 0usize;
    let mut out = Vec::with_capacity(plan.steps.len());
    let mut i = 0;
    while i < plan.steps.len() {
        let run_upload = matches!(plan.steps[i], PlanStep::Upload { .. });
        let run_download = matches!(plan.steps[i], PlanStep::Download { .. });
        if !(run_upload || run_download) {
            out.push(plan.steps[i]);
            i += 1;
            continue;
        }
        let mut ids = Vec::new();
        let mut j = i;
        while j < plan.steps.len() {
            match plan.steps[j] {
                PlanStep::Upload { array, .. } if run_upload => ids.push(array),
                PlanStep::Download { array, .. } if run_download => ids.push(array),
                _ => break,
            }
            j += 1;
        }
        // A batch of one is just the transfer it replaces — leave it alone.
        if ids.len() >= 2 {
            plan.batches.push(ids);
            let batch = plan.batches.len() - 1;
            out.push(if run_upload {
                PlanStep::UploadBatch { batch }
            } else {
                PlanStep::DownloadBatch { batch }
            });
            batched_runs += 1;
        } else {
            out.push(plan.steps[i]);
        }
        i = j;
    }
    plan.steps = out;

    if merged_chunks + batched_runs == 0 {
        return None;
    }
    Some(format!(
        "merged {merged_chunks} chunk transfer(s) and batched {batched_runs} adjacent transfer run(s)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::exec::LaunchConfig;
    use crate::kir::{BinOp, Kernel, KernelBuilder, KernelFlavor, Special};
    use crate::schedule::{ArrayDecl, BatchScheduler, ExecOptions, PlanKernel};
    use mdarray::NdArray;

    /// t = 2*src (writes t); o = t + t (writes o). Two kernels so the plan
    /// has a device-resident intermediate.
    fn dbl_kernel() -> Kernel {
        let mut b = KernelBuilder::new("dbl", KernelFlavor::Cuda);
        let src = b.buffer_param("src", false);
        let dst = b.buffer_param("dst", true);
        let gid = b.special(Special::GlobalIdX);
        let v = b.load(src, gid);
        let two = b.constant(2);
        let w = b.bin(BinOp::Mul, v, two);
        b.store(dst, gid, w);
        b.finish()
    }

    /// The paper-shaped naive placement: per kernel, upload the input,
    /// alloc + launch, download the output — the intermediate `t` makes a
    /// full host round trip between the two kernels.
    fn naive_plan(kernel: &Kernel, n: usize) -> LaunchPlan<'_> {
        let config = LaunchConfig::cover_1d(n, n.min(64) as u32);
        LaunchPlan {
            arrays: vec![
                ArrayDecl { name: "src".into(), shape: vec![n] },
                ArrayDecl { name: "t".into(), shape: vec![n] },
                ArrayDecl { name: "o".into(), shape: vec![n] },
            ],
            inputs: vec![0],
            outputs: vec![2],
            kernels: vec![
                PlanKernel { kernel, config, args: vec![0, 1] },
                PlanKernel { kernel, config, args: vec![1, 2] },
            ],
            host_ops: Vec::new(),
            steps: vec![
                PlanStep::Upload { array: 0, chunks: 1 },
                PlanStep::Alloc { array: 1 },
                PlanStep::Launch { kernel: 0 },
                PlanStep::Download { array: 1, chunks: 1 },
                PlanStep::Upload { array: 1, chunks: 1 },
                PlanStep::Alloc { array: 2 },
                PlanStep::Launch { kernel: 1 },
                PlanStep::Download { array: 2, chunks: 1 },
            ],
            prologue: Vec::new(),
            invariant: Vec::new(),
            batches: Vec::new(),
            carries: Vec::new(),
            lane_label: "stream lanes",
        }
    }

    fn run_plan(plan: &LaunchPlan<'_>, n: usize) -> (Vec<Vec<NdArray<i64>>>, crate::RunStats, f64) {
        let frames: Vec<Vec<NdArray<i64>>> =
            (0..3).map(|f| vec![NdArray::from_fn([n], |ix| (f * 50 + ix[0]) as i64)]).collect();
        let mut device = Device::gtx480();
        let (outs, stats) =
            BatchScheduler::new(plan).run(&mut device, &frames, &ExecOptions::default()).unwrap();
        (outs, stats, device.now_us())
    }

    #[test]
    fn off_is_a_strict_noop() {
        let kernel = dbl_kernel();
        let mut plan = naive_plan(&kernel, 16);
        let before = plan.steps.clone();
        let report = optimize(&mut plan, PlanOptLevel::OFF).unwrap();
        assert!(report.notes.is_empty());
        assert_eq!(plan.steps, before);
        assert!(plan.prologue.is_empty() && plan.batches.is_empty());
    }

    #[test]
    fn residency_drops_the_intermediate_reupload() {
        let kernel = dbl_kernel();
        let mut plan = naive_plan(&kernel, 16);
        let report = optimize(&mut plan, PlanOptLevel::RESIDENCY).unwrap();
        assert_eq!(report.notes.len(), 1, "{:?}", report.notes);
        assert!(report.notes[0].contains("dropped 1 redundant upload"), "{:?}", report.notes);
        // The re-upload of `t` is gone; its (now useless) download survives
        // until the dead-transfer pass runs.
        assert!(!plan.steps.iter().any(|s| matches!(*s, PlanStep::Upload { array: 1, .. })));
    }

    #[test]
    fn residency_plus_dead_recover_the_smart_placement() {
        let kernel = dbl_kernel();
        let mut plan = naive_plan(&kernel, 16);
        let level = PlanOptLevel { residency: true, dead_transfers: true, ..PlanOptLevel::OFF };
        optimize(&mut plan, level).unwrap();
        assert_eq!(
            plan.steps,
            vec![
                PlanStep::Upload { array: 0, chunks: 1 },
                PlanStep::Alloc { array: 1 },
                PlanStep::Launch { kernel: 0 },
                PlanStep::Alloc { array: 2 },
                PlanStep::Launch { kernel: 1 },
                PlanStep::Download { array: 2, chunks: 1 },
            ]
        );
    }

    #[test]
    fn every_pass_combination_preserves_outputs_and_moves_fewer_bytes() {
        let kernel = dbl_kernel();
        let n = 256;
        let (base_outs, base_stats, base_us) = run_plan(&naive_plan(&kernel, n), n);
        for bits in 1..16u32 {
            let level = PlanOptLevel {
                residency: bits & 1 != 0,
                dead_transfers: bits & 2 != 0,
                reorder: bits & 4 != 0,
                coalesce: bits & 8 != 0,
            };
            let mut plan = naive_plan(&kernel, n);
            optimize(&mut plan, level).unwrap();
            let (outs, stats, us) = run_plan(&plan, n);
            assert_eq!(outs, base_outs, "{level:?}");
            assert!(
                stats.h2d_bytes <= base_stats.h2d_bytes && stats.d2h_bytes <= base_stats.d2h_bytes,
                "{level:?}"
            );
            assert!(us <= base_us + 1e-9, "{level:?}: {us} > {base_us}");
        }
        // All passes together strictly reduce both bytes and time here.
        let mut plan = naive_plan(&kernel, n);
        optimize(&mut plan, PlanOptLevel::ALL).unwrap();
        let (_, stats, us) = run_plan(&plan, n);
        assert!(stats.h2d_bytes < base_stats.h2d_bytes);
        assert!(stats.d2h_bytes < base_stats.d2h_bytes);
        assert!(us < base_us);
    }

    /// Two independent chains: src0 -> o0, src1 -> o1, interleaved so the
    /// second upload sits behind the first chain's kernel.
    fn two_chain_plan(kernel: &Kernel, n: usize) -> LaunchPlan<'_> {
        let config = LaunchConfig::cover_1d(n, n as u32);
        LaunchPlan {
            arrays: vec![
                ArrayDecl { name: "src0".into(), shape: vec![n] },
                ArrayDecl { name: "o0".into(), shape: vec![n] },
                ArrayDecl { name: "src1".into(), shape: vec![n] },
                ArrayDecl { name: "o1".into(), shape: vec![n] },
            ],
            inputs: vec![0, 2],
            outputs: vec![1, 3],
            kernels: vec![
                PlanKernel { kernel, config, args: vec![0, 1] },
                PlanKernel { kernel, config, args: vec![2, 3] },
            ],
            host_ops: Vec::new(),
            steps: vec![
                PlanStep::Upload { array: 0, chunks: 1 },
                PlanStep::Alloc { array: 1 },
                PlanStep::Launch { kernel: 0 },
                PlanStep::Download { array: 1, chunks: 1 },
                PlanStep::Upload { array: 2, chunks: 1 },
                PlanStep::Alloc { array: 3 },
                PlanStep::Launch { kernel: 1 },
                PlanStep::Download { array: 3, chunks: 1 },
            ],
            prologue: Vec::new(),
            invariant: Vec::new(),
            batches: Vec::new(),
            carries: Vec::new(),
            lane_label: "stream lanes",
        }
    }

    #[test]
    fn reorder_hoists_uploads_and_sinks_downloads() {
        let kernel = dbl_kernel();
        let n = 16;
        let mut plan = two_chain_plan(&kernel, n);
        optimize(&mut plan, PlanOptLevel::REORDER).unwrap();
        // Both uploads lead the frame; both downloads trail it.
        assert!(is_h2d(plan.steps[0]) && is_h2d(plan.steps[1]), "{:?}", plan.steps);
        let len = plan.steps.len();
        assert!(is_d2h(plan.steps[len - 1]) && is_d2h(plan.steps[len - 2]), "{:?}", plan.steps);
        // Engine order stayed stable: src0 before src1, o0 before o1.
        assert!(matches!(plan.steps[0], PlanStep::Upload { array: 0, .. }));
        assert!(matches!(plan.steps[len - 2], PlanStep::Download { array: 1, .. }));
    }

    #[test]
    fn coalesce_merges_chunks_and_batches_adjacent_runs() {
        let kernel = dbl_kernel();
        let n = 16;
        let mut plan = two_chain_plan(&kernel, n);
        plan.steps[0] = PlanStep::Upload { array: 0, chunks: 4 };
        // Reorder first so the transfers cluster into adjacent runs.
        let level = PlanOptLevel { reorder: true, coalesce: true, ..PlanOptLevel::OFF };
        let report = optimize(&mut plan, level).unwrap();
        assert!(report.notes.iter().any(|m| m.contains("coalesce")), "{:?}", report.notes);
        assert!(!plan
            .steps
            .iter()
            .any(|s| matches!(*s, PlanStep::Upload { chunks, .. } if chunks > 1)));
        // The clustered runs became one batched transfer per direction.
        assert_eq!(plan.batches, vec![vec![0, 2], vec![1, 3]], "{:?}", plan.steps);
        assert!(matches!(plan.steps[0], PlanStep::UploadBatch { .. }), "{:?}", plan.steps);
        assert!(
            matches!(plan.steps.last(), Some(PlanStep::DownloadBatch { .. })),
            "{:?}",
            plan.steps
        );
    }

    #[test]
    fn invariant_uploads_hoist_to_the_prologue() {
        // c is declared frame-invariant: residency moves its upload into the
        // prologue, so a 3-frame run uploads it once instead of three times.
        let mut b = KernelBuilder::new("addc", KernelFlavor::Cuda);
        let c = b.buffer_param("c", false);
        let y = b.buffer_param("y", true);
        let gid = b.special(Special::GlobalIdX);
        let cv = b.load(c, gid);
        let yv = b.load(y, gid);
        let sum = b.bin(BinOp::Add, cv, yv);
        b.store(y, gid, sum);
        let kernel = b.finish();
        let n = 16;
        let config = LaunchConfig::cover_1d(n, n as u32);
        let mut plan = LaunchPlan {
            arrays: vec![
                ArrayDecl { name: "c".into(), shape: vec![n] },
                ArrayDecl { name: "a".into(), shape: vec![n] },
            ],
            inputs: vec![0, 1],
            outputs: vec![1],
            kernels: vec![PlanKernel { kernel: &kernel, config, args: vec![0, 1] }],
            host_ops: Vec::new(),
            steps: vec![
                PlanStep::Upload { array: 0, chunks: 1 },
                PlanStep::Upload { array: 1, chunks: 1 },
                PlanStep::Launch { kernel: 0 },
                PlanStep::Download { array: 1, chunks: 1 },
            ],
            prologue: Vec::new(),
            invariant: vec![0],
            batches: Vec::new(),
            carries: Vec::new(),
            lane_label: "stream lanes",
        };
        let report = optimize(&mut plan, PlanOptLevel::RESIDENCY).unwrap();
        assert!(report.notes[0].contains("hoisted 1 invariant upload"), "{:?}", report.notes);
        assert_eq!(plan.prologue, vec![PlanStep::Upload { array: 0, chunks: 1 }]);

        let constants = NdArray::from_fn([n], |ix| (ix[0] * 3) as i64);
        let frames: Vec<Vec<NdArray<i64>>> = (0..3)
            .map(|f| vec![constants.clone(), NdArray::from_fn([n], |ix| (f + ix[0]) as i64)])
            .collect();
        let mut device = Device::gtx480();
        let (outs, stats) =
            BatchScheduler::new(&plan).run(&mut device, &frames, &ExecOptions::default()).unwrap();
        for (f, out) in outs.iter().enumerate() {
            assert_eq!(out[0], NdArray::from_fn([n], |ix| (f + ix[0] * 4) as i64));
        }
        // 1 prologue upload + 1 payload upload per frame, not 2 per frame.
        assert_eq!(stats.h2d, 4);
    }

    #[test]
    fn host_rewrites_block_residency_elision() {
        // Upload a, download it, rewrite it on the host, re-upload: the
        // second upload is NOT redundant (the host op invalidated the device
        // copy) and must survive every pass.
        let kernel = dbl_kernel();
        let n = 16;
        let config = LaunchConfig::cover_1d(n, n as u32);
        let host_op = crate::schedule::HostOp {
            name: "bump(host)".into(),
            target: 0,
            reads: vec![0],
            run: Box::new(|arrs| {
                let out = NdArray::from_fn([arrs[0].as_slice().len()], |ix| {
                    arrs[0].as_slice()[ix[0]] + 1
                });
                Ok((out, 10))
            }),
        };
        let mut plan = LaunchPlan {
            arrays: vec![
                ArrayDecl { name: "a".into(), shape: vec![n] },
                ArrayDecl { name: "o".into(), shape: vec![n] },
            ],
            inputs: vec![0],
            outputs: vec![1],
            kernels: vec![PlanKernel { kernel: &kernel, config, args: vec![0, 1] }],
            host_ops: vec![host_op],
            steps: vec![
                PlanStep::Upload { array: 0, chunks: 1 },
                PlanStep::Host { op: 0 },
                PlanStep::Upload { array: 0, chunks: 1 },
                PlanStep::Alloc { array: 1 },
                PlanStep::Launch { kernel: 0 },
                PlanStep::Download { array: 1, chunks: 1 },
            ],
            prologue: Vec::new(),
            invariant: Vec::new(),
            batches: Vec::new(),
            carries: Vec::new(),
            lane_label: "stream lanes",
        };
        optimize(&mut plan, PlanOptLevel::ALL).unwrap();
        // The first upload is dead (its device copy is clobbered before any
        // launch reads it); the post-rewrite upload must remain.
        let uploads: Vec<_> =
            plan.steps.iter().enumerate().filter(|(_, s)| is_h2d(**s)).map(|(i, _)| i).collect();
        assert_eq!(uploads.len(), 1, "{:?}", plan.steps);
        let host_pos = plan.steps.iter().position(|s| matches!(s, PlanStep::Host { .. })).unwrap();
        assert!(uploads[0] > host_pos, "{:?}", plan.steps);
    }
}
