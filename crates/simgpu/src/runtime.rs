//! A small host-side runtime facade over [`Device`].
//!
//! Backends and examples use this instead of juggling raw buffer ids: it
//! bundles allocate+upload, download+free, and kernel launches with named
//! buffers, mirroring the thin host runtimes that `sac2c`'s CUDA backend and
//! GASPARD2's generated OpenCL host code link against.

use crate::device::{BufferId, Device, EventId, StreamId};
use crate::exec::{LaunchConfig, LaunchStats};
use crate::kir::{Kernel, KernelArg};
use crate::SimError;

/// Host-side GPU runtime: owns a [`Device`] and tracks live buffers.
#[derive(Debug)]
pub struct GpuRuntime {
    device: Device,
}

impl GpuRuntime {
    /// Wrap a device.
    pub fn new(device: Device) -> Self {
        GpuRuntime { device }
    }

    /// The paper's GTX480.
    pub fn gtx480() -> Self {
        GpuRuntime::new(Device::gtx480())
    }

    /// Borrow the device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutably borrow the device.
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// Allocate and upload in one step (`cudaMalloc` + `cudaMemcpyHtoD`).
    pub fn upload(&mut self, data: &[i32]) -> Result<BufferId, SimError> {
        let buf = self.device.malloc(data.len())?;
        self.device.host2device(data, buf)?;
        Ok(buf)
    }

    /// Allocate an uninitialised (zeroed) result buffer.
    pub fn alloc(&mut self, len: usize) -> Result<BufferId, SimError> {
        self.device.malloc(len)
    }

    /// Download a buffer's contents (`cudaMemcpyDtoH`).
    pub fn download(&mut self, buf: BufferId) -> Result<Vec<i32>, SimError> {
        self.device.device2host(buf)
    }

    /// Download then free.
    pub fn download_free(&mut self, buf: BufferId) -> Result<Vec<i32>, SimError> {
        let v = self.device.device2host(buf)?;
        self.device.free(buf)?;
        Ok(v)
    }

    /// Free a buffer.
    pub fn free(&mut self, buf: BufferId) -> Result<(), SimError> {
        self.device.free(buf)
    }

    /// Launch a kernel.
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        cfg: LaunchConfig,
        args: &[KernelArg],
    ) -> Result<LaunchStats, SimError> {
        self.device.launch(kernel, cfg, args)
    }

    /// Simulated time elapsed, µs.
    pub fn elapsed_us(&self) -> f64 {
        self.device.now_us()
    }

    // ------------------------------------------------------------------
    // Stream-aware variants (the multi-queue host runtime)
    // ------------------------------------------------------------------

    /// Create a new command stream.
    pub fn create_stream(&mut self) -> StreamId {
        self.device.create_stream()
    }

    /// Allocate and upload asynchronously on `stream`.
    pub fn upload_on(&mut self, data: &[i32], stream: StreamId) -> Result<BufferId, SimError> {
        let buf = self.device.malloc(data.len())?;
        self.device.host2device_on(data, buf, stream)?;
        Ok(buf)
    }

    /// Download a buffer asynchronously on `stream`.
    pub fn download_on(&mut self, buf: BufferId, stream: StreamId) -> Result<Vec<i32>, SimError> {
        self.device.device2host_on(buf, stream)
    }

    /// Launch a kernel asynchronously on `stream`.
    pub fn launch_on(
        &mut self,
        kernel: &Kernel,
        cfg: LaunchConfig,
        args: &[KernelArg],
        stream: StreamId,
    ) -> Result<LaunchStats, SimError> {
        self.device.launch_on(kernel, cfg, args, stream)
    }

    /// Record an event on `stream`.
    pub fn record_event(&mut self, stream: StreamId) -> Result<EventId, SimError> {
        self.device.record_event(stream)
    }

    /// Make `stream` wait for `event`.
    pub fn wait_event(&mut self, stream: StreamId, event: EventId) -> Result<(), SimError> {
        self.device.wait_event(stream, event)
    }

    /// Drain every stream; returns the makespan in µs.
    pub fn synchronize(&mut self) -> f64 {
        self.device.synchronize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kir::{BinOp, KernelBuilder, KernelFlavor, Special};

    #[test]
    fn upload_download_roundtrip() {
        let mut rt = GpuRuntime::gtx480();
        let data: Vec<i32> = (0..256).map(|v| v * 3).collect();
        let buf = rt.upload(&data).unwrap();
        assert_eq!(rt.download_free(buf).unwrap(), data);
        assert!(rt.elapsed_us() > 0.0);
    }

    #[test]
    fn launch_through_runtime() {
        let mut rt = GpuRuntime::gtx480();
        let mut b = KernelBuilder::new("neg", KernelFlavor::OpenCl);
        let xp = b.buffer_param("x", true);
        let gid = b.special(Special::GlobalIdX);
        let v = b.load(xp, gid);
        let m1 = b.constant(-1);
        let nv = b.bin(BinOp::Mul, v, m1);
        b.store(xp, gid, nv);
        let k = b.finish();

        let buf = rt.upload(&[1, 2, 3, 4]).unwrap();
        rt.launch(&k, LaunchConfig::cover_1d(4, 4), &[KernelArg::Buffer(buf.0)]).unwrap();
        assert_eq!(rt.download_free(buf).unwrap(), vec![-1, -2, -3, -4]);
    }
}
