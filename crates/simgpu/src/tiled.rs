//! Kernel generation from a tiled-access description.
//!
//! This is the route-agnostic successor of the GASPARD2 model-to-text
//! phase: given an [`arrayol::access::TiledAccess`] (repetition space,
//! patterns, tilers, elementary op) it instantiates the same text template
//! over any kernel flavour. Each generated kernel body:
//!
//! 1. derives the repetition index `tlIter` from the work-item global id
//!    (`tlIter[0] = iGID % rep0; tlIter[1] = iGID / rep0` — the paper's
//!    Figure 11 convention, dimension 0 varying fastest),
//! 2. computes the tile's reference point from the paving matrix,
//! 3. loads the input pattern element-by-element through the fitting matrix,
//!    keeping it in private registers,
//! 4. applies the elementary IP's arithmetic,
//! 5. scatters the output pattern through the output tiler.
//!
//! `gaspard::codegen` delegates here (OpenCL flavour), and the planopt
//! `fusion` pass uses it to materialise fused kernels for whichever route
//! lowered the plan — the generated IR is identical either way, which is
//! what makes plan-level fusion bit-compatible with the route-local path.

use crate::exec::LaunchConfig;
use crate::kir::{BinOp, Kernel, KernelBuilder, KernelFlavor, Reg, Special};
use arrayol::access::{ElementaryOp, TiledAccess, TilerSpec};

/// Work-group size used by generated kernels.
pub const WORK_GROUP_SIZE: u32 = 256;

/// Upper bound on pattern elements we are willing to unroll per kernel.
/// Public so fusion passes can refuse compositions whose gathered pattern
/// would blow past it instead of failing at generation time.
pub const MAX_PATTERN_UNROLL: usize = 256;

/// One generated kernel plus launch metadata.
#[derive(Debug, Clone)]
pub struct TiledKernel {
    /// Executable kernel IR.
    pub kernel: Kernel,
    /// Work items required (repetition-space size).
    pub work_items: u64,
    /// Launch configuration covering the repetition space.
    pub config: LaunchConfig,
}

/// Row-major strides.
fn strides(shape: &[usize]) -> Vec<i64> {
    let mut s = vec![1i64; shape.len()];
    for d in (0..shape.len().saturating_sub(1)).rev() {
        s[d] = s[d + 1] * shape[d + 1] as i64;
    }
    s
}

/// Generate the kernel for one tiled access over the given input/output
/// array shapes. Errors (as plain strings, for the caller to wrap) when a
/// pattern exceeds the unroll budget.
///
/// This is the faithful template — every address goes through wrap-around
/// arithmetic and every tiler term is emitted, exactly as the GASPARD2
/// model-to-text phase specifies (its kernel structure is pinned by tests
/// and golden timings).
pub fn generate_tiled_kernel(
    name: &str,
    access: &TiledAccess,
    in_shape: &[usize],
    out_shape: &[usize],
    flavor: KernelFlavor,
) -> Result<TiledKernel, String> {
    generate(name, access, in_shape, out_shape, flavor, false)
}

/// [`generate_tiled_kernel`] with lean addressing: wrap-around arithmetic
/// is elided for dimensions the access provably never takes out of bounds,
/// and identity tiler terms (zero origins, unit coefficients, unit strides)
/// are strength-reduced at emission time.
///
/// Values are identical to the faithful template; only the instruction
/// stream is shorter. The planopt fusion pass uses this for the kernels it
/// materialises, so a fused plan is never slower than the hand-folded
/// (WITH-loop-folding) kernels it competes with.
pub fn generate_tiled_kernel_lean(
    name: &str,
    access: &TiledAccess,
    in_shape: &[usize],
    out_shape: &[usize],
    flavor: KernelFlavor,
) -> Result<TiledKernel, String> {
    generate(name, access, in_shape, out_shape, flavor, true)
}

fn generate(
    name: &str,
    access: &TiledAccess,
    in_shape: &[usize],
    out_shape: &[usize],
    flavor: KernelFlavor,
    lean: bool,
) -> Result<TiledKernel, String> {
    let pattern_len: usize = access.in_pattern.iter().product();
    let out_len: usize = access.out_pattern.iter().product();
    if pattern_len > MAX_PATTERN_UNROLL || out_len > MAX_PATTERN_UNROLL {
        return Err(format!("pattern too large to unroll ({pattern_len} elements)"));
    }

    let mut b = KernelBuilder::new(name, flavor);
    let out_param = b.buffer_param(format!("out_{name}"), true);
    let in_param = b.buffer_param(format!("in_{name}_{name}"), false);

    // Guard against over-provisioned work-items.
    let work_items: u64 = access.repetition.iter().map(|&r| r as u64).product();
    let gid = b.special(Special::GlobalIdX);
    let total = b.constant(work_items as i64);
    let oob = b.bin(BinOp::Le, total, gid);
    b.begin_if(oob);
    b.ret();
    b.end_if();

    // tlIter: Figure 11 convention — dimension 0 varies fastest.
    let mut tl: Vec<Reg> = Vec::with_capacity(access.repetition.len());
    let mut rem = gid;
    for (d, &r) in access.repetition.iter().enumerate() {
        let rc = b.constant(r as i64);
        if d + 1 < access.repetition.len() {
            let t = b.bin(BinOp::Rem, rem, rc);
            let q = b.bin(BinOp::Div, rem, rc);
            tl.push(t);
            rem = q;
        } else {
            tl.push(rem);
        }
    }

    // Reference points of the input and output tiles.
    let ref_in = tiler_reference(&mut b, &access.in_tiler, &tl, lean);
    let ref_out = tiler_reference(&mut b, &access.out_tiler, &tl, lean);

    // Per-dimension wrap requirements: under lean addressing, a dimension
    // the access provably keeps in bounds skips the wrap arithmetic.
    let in_wrap =
        wrap_mask(&access.in_tiler, &access.in_pattern, &access.repetition, in_shape, lean);
    let out_wrap =
        wrap_mask(&access.out_tiler, &access.out_pattern, &access.repetition, out_shape, lean);

    // Gather the pattern into private registers (the Figure 11 fill loop,
    // unrolled by the template).
    let in_strides = strides(in_shape);
    let pattern_ixs = lattice_points(&access.in_pattern);
    let mut pattern_regs: Vec<Reg> = Vec::with_capacity(pattern_len);
    for p in &pattern_ixs {
        let off = tiled_offset(
            &mut b,
            &access.in_tiler,
            &ref_in,
            p,
            in_shape,
            &in_strides,
            &in_wrap,
            lean,
        );
        pattern_regs.push(b.load(in_param, off));
    }

    // Apply the elementary IP.
    let out_regs = apply_op(&mut b, &access.op, &pattern_regs);
    debug_assert_eq!(out_regs.len(), out_len);

    // Scatter through the output tiler.
    let out_strides = strides(out_shape);
    for (p, val) in lattice_points(&access.out_pattern).iter().zip(out_regs) {
        let off = tiled_offset(
            &mut b,
            &access.out_tiler,
            &ref_out,
            p,
            out_shape,
            &out_strides,
            &out_wrap,
            lean,
        );
        b.store(out_param, off, val);
    }

    let kernel = b.finish();
    Ok(TiledKernel {
        kernel,
        work_items,
        config: LaunchConfig::cover_1d(work_items as usize, WORK_GROUP_SIZE),
    })
}

/// All indices of a small pattern shape, row-major.
fn lattice_points(shape: &[usize]) -> Vec<Vec<i64>> {
    let mut out = vec![vec![]];
    for &d in shape {
        let mut next = Vec::with_capacity(out.len() * d);
        for prefix in &out {
            for x in 0..d as i64 {
                let mut p = prefix.clone();
                p.push(x);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

/// Interval analysis over one array dimension: does every reference point the
/// tiler can produce (over the whole repetition space and pattern) stay inside
/// `[0, extent)`?  When it does, lean addressing may drop the wrap arithmetic.
fn dim_stays_in_bounds(
    t: &TilerSpec,
    pattern: &[usize],
    repetition: &[usize],
    d: usize,
    extent: usize,
) -> bool {
    let mut lo = t.origin[d];
    let mut hi = t.origin[d];
    for (&coef, &r) in t.paving[d].iter().zip(repetition) {
        let span = coef * (r as i64 - 1);
        if span >= 0 {
            hi += span;
        } else {
            lo += span;
        }
    }
    for (&coef, &pl) in t.fitting[d].iter().zip(pattern) {
        let span = coef * (pl as i64 - 1);
        if span >= 0 {
            hi += span;
        } else {
            lo += span;
        }
    }
    lo >= 0 && hi < extent as i64
}

/// Per-dimension "needs wrap_mod" flags. The faithful template always wraps;
/// lean addressing wraps only dimensions the interval analysis cannot prove
/// in bounds.
fn wrap_mask(
    t: &TilerSpec,
    pattern: &[usize],
    repetition: &[usize],
    shape: &[usize],
    lean: bool,
) -> Vec<bool> {
    shape
        .iter()
        .enumerate()
        .map(|(d, &extent)| !lean || !dim_stays_in_bounds(t, pattern, repetition, d, extent))
        .collect()
}

/// `ref = origin + paving · tlIter` per array dimension.
fn tiler_reference(b: &mut KernelBuilder, t: &TilerSpec, tl: &[Reg], lean: bool) -> Vec<Reg> {
    t.paving
        .iter()
        .zip(&t.origin)
        .map(|(row, &o)| {
            if lean {
                // Strength-reduced emission: identity coefficients pass the
                // tile iterator through, zero origins vanish.
                let mut acc: Option<Reg> = if o != 0 { Some(b.constant(o)) } else { None };
                for (c, &coef) in row.iter().enumerate() {
                    if coef == 0 {
                        continue;
                    }
                    let term = if coef == 1 {
                        tl[c]
                    } else {
                        let k = b.constant(coef);
                        b.bin(BinOp::Mul, k, tl[c])
                    };
                    acc = Some(match acc {
                        Some(a) => b.bin(BinOp::Add, a, term),
                        None => term,
                    });
                }
                acc.unwrap_or_else(|| b.constant(0))
            } else {
                let mut acc = b.constant(o);
                for (c, &coef) in row.iter().enumerate() {
                    if coef == 0 {
                        continue;
                    }
                    let k = b.constant(coef);
                    let term = b.bin(BinOp::Mul, k, tl[c]);
                    acc = b.bin(BinOp::Add, acc, term);
                }
                acc
            }
        })
        .collect()
}

/// Linearised, wrap-around array offset of pattern point `p` relative to the
/// tile reference: `sum_d ((ref_d + (F·p)_d) mod shape_d) * stride_d`.
#[allow(clippy::too_many_arguments)]
fn tiled_offset(
    b: &mut KernelBuilder,
    t: &TilerSpec,
    refs: &[Reg],
    p: &[i64],
    shape: &[usize],
    strides: &[i64],
    wrap: &[bool],
    lean: bool,
) -> Reg {
    if lean {
        let mut off: Option<Reg> = None;
        for d in 0..shape.len() {
            let fit: i64 = t.fitting[d].iter().zip(p).map(|(&f, &x)| f * x).sum();
            let mut idx = refs[d];
            if fit != 0 {
                let fit_reg = b.constant(fit);
                idx = b.bin(BinOp::Add, idx, fit_reg);
            }
            if wrap[d] {
                let extent = b.constant(shape[d] as i64);
                idx = b.wrap_mod(idx, extent);
            }
            let term = if strides[d] == 1 {
                idx
            } else {
                let sc = b.constant(strides[d]);
                b.bin(BinOp::Mul, idx, sc)
            };
            off = Some(match off {
                Some(a) => b.bin(BinOp::Add, a, term),
                None => term,
            });
        }
        off.unwrap_or_else(|| b.constant(0))
    } else {
        let mut off = b.constant(0);
        for d in 0..shape.len() {
            let fit: i64 = t.fitting[d].iter().zip(p).map(|(&f, &x)| f * x).sum();
            let fit_reg = b.constant(fit);
            let raw = b.bin(BinOp::Add, refs[d], fit_reg);
            let extent = b.constant(shape[d] as i64);
            let wrapped = b.wrap_mod(raw, extent);
            let sc = b.constant(strides[d]);
            let term = b.bin(BinOp::Mul, wrapped, sc);
            off = b.bin(BinOp::Add, off, term);
        }
        off
    }
}

/// Generate the elementary op over gathered pattern registers.
fn apply_op(b: &mut KernelBuilder, op: &ElementaryOp, pattern: &[Reg]) -> Vec<Reg> {
    match op {
        ElementaryOp::InterpolateWindows { windows, divisor } => windows
            .iter()
            .map(|w| {
                let mut acc = pattern[w.offset];
                for &reg in &pattern[w.offset + 1..w.offset + w.len] {
                    acc = b.bin(BinOp::Add, acc, reg);
                }
                let d = b.constant(*divisor);
                let q = b.bin(BinOp::Div, acc, d);
                let r = b.bin(BinOp::Rem, acc, d);
                b.bin(BinOp::Sub, q, r)
            })
            .collect(),
        ElementaryOp::AffineMap { mul, add } => pattern
            .iter()
            .map(|&reg| {
                let m = b.constant(*mul);
                let a = b.constant(*add);
                let t = b.bin(BinOp::Mul, reg, m);
                b.bin(BinOp::Add, t, a)
            })
            .collect(),
        ElementaryOp::SumReduce => {
            let mut acc = pattern[0];
            for &r in &pattern[1..] {
                acc = b.bin(BinOp::Add, acc, r);
            }
            vec![acc]
        }
        ElementaryOp::WeightedSum { weights } => {
            debug_assert_eq!(pattern.len(), weights.len());
            // Σ wᵢ·pᵢ with zero weights skipped and unit weights unfolded:
            // exact integer arithmetic, so the kernel matches the host
            // reference (and the SaC route) bit for bit.
            let mut acc: Option<Reg> = None;
            for (&reg, &w) in pattern.iter().zip(weights) {
                if w == 0 {
                    continue;
                }
                let term = if w == 1 {
                    reg
                } else {
                    let c = b.constant(w);
                    b.bin(BinOp::Mul, reg, c)
                };
                acc = Some(match acc {
                    None => term,
                    Some(a) => b.bin(BinOp::Add, a, term),
                });
            }
            vec![acc.unwrap_or_else(|| b.constant(0))]
        }
        ElementaryOp::Copy => pattern.to_vec(),
        ElementaryOp::Composed { inner, inner_count, inner_in_len, outer, outer_gathers } => {
            // Fused kernel body: the recomputed producer outputs live entirely
            // in private registers — no trip through device memory.
            debug_assert_eq!(pattern.len(), inner_count * inner_in_len);
            let mut mid: Vec<Reg> = Vec::with_capacity(*inner_count);
            for chunk in pattern.chunks(*inner_in_len) {
                mid.extend(apply_op(b, inner, chunk));
            }
            let mut out = Vec::new();
            for row in outer_gathers {
                let gathered: Vec<Reg> = row.iter().map(|&k| mid[k]).collect();
                out.extend(apply_op(b, outer, &gathered));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::kir::KernelArg;
    use arrayol::access::apply_access;
    use mdarray::NdArray;

    fn stencil_access(rows: usize, cols: usize, weights: Vec<i64>) -> TiledAccess {
        let k = weights.len();
        TiledAccess {
            repetition: vec![rows, cols - k + 1],
            in_pattern: vec![k],
            in_tiler: TilerSpec {
                origin: vec![0, 0],
                fitting: vec![vec![0], vec![1]],
                paving: vec![vec![1, 0], vec![0, 1]],
            },
            out_pattern: vec![1],
            out_tiler: TilerSpec {
                origin: vec![0, 0],
                fitting: vec![vec![0], vec![0]],
                paving: vec![vec![1, 0], vec![0, 1]],
            },
            op: ElementaryOp::WeightedSum { weights },
        }
    }

    #[test]
    fn generated_kernel_matches_cpu_reference() {
        let acc = stencil_access(4, 8, vec![1, 2, 1]);
        let tk = generate_tiled_kernel("blur", &acc, &[4, 8], &[4, 6], KernelFlavor::Cuda).unwrap();
        assert_eq!(tk.work_items, 24);
        let input = NdArray::from_fn([4usize, 8], |ix| (ix[0] * 8 + ix[1]) as i64 % 17);
        let mut device = Device::gtx480();
        let inb = device.malloc(32).unwrap();
        device.poke(inb, &input.as_slice().iter().map(|&v| v as i32).collect::<Vec<_>>()).unwrap();
        let outb = device.malloc(24).unwrap();
        device
            .launch(&tk.kernel, tk.config, &[KernelArg::Buffer(outb.0), KernelArg::Buffer(inb.0)])
            .unwrap();
        let got = device.peek(outb).unwrap();
        let expect: Vec<i32> =
            apply_access(&acc, &input, &[4, 6]).as_slice().iter().map(|&v| v as i32).collect();
        assert_eq!(got, expect.as_slice());
    }

    #[test]
    fn oversized_pattern_is_a_string_error() {
        let mut acc = stencil_access(4, 8, vec![1, 2, 1]);
        acc.in_pattern = vec![MAX_PATTERN_UNROLL + 1];
        let err =
            generate_tiled_kernel("big", &acc, &[4, 8], &[4, 6], KernelFlavor::OpenCl).unwrap_err();
        assert!(err.contains("too large to unroll"), "{err}");
    }
}
