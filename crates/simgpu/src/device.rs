//! The simulated device: configuration, memory, launches, simulated clock,
//! and the asynchronous stream/engine timeline.

use crate::cost::{
    BoxedCostModel, Calibration, CostModel, Direction, Engine, LaunchContext, ENGINE_COUNT,
};
use crate::exec::{run_kernel, LaunchConfig, LaunchStats};
use crate::kir::{Kernel, KernelArg};
use crate::profiler::{OpClass, Profiler};
use crate::SimError;
use arrayol::access::TiledAccess;
use std::collections::BTreeMap;

/// Static description of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Marketing name, for reports.
    pub name: String,
    /// Streaming multiprocessors.
    pub sm_count: usize,
    /// Scalar cores ("streaming processors") per SM.
    pub cores_per_sm: usize,
    /// Core clock, GHz.
    pub clock_ghz: f64,
    /// Threads per warp.
    pub warp_size: usize,
    /// Maximum threads per block accepted by a launch.
    pub max_threads_per_block: usize,
    /// Global memory capacity, bytes.
    pub global_mem_bytes: usize,
    /// Host threads used to *execute* simulated launches. Part of the config
    /// (not probed from the machine) so identical runs produce identical
    /// simulated timings everywhere; tune with [`Device::set_host_workers`]
    /// when wall-clock throughput matters more than the default.
    pub host_workers: usize,
}

/// Fixed default for [`DeviceConfig::host_workers`]: enough to exercise the
/// multi-worker merge paths without oversubscribing small CI hosts.
pub const DEFAULT_HOST_WORKERS: usize = 8;

impl DeviceConfig {
    /// The paper's test device: Nvidia Fermi GTX480 — 15 SMs × 32 SPs at
    /// 1.4 GHz with 1.5 GB of device memory on PCIe x16 Gen2.
    pub fn gtx480() -> Self {
        DeviceConfig {
            name: "NVIDIA GeForce GTX 480 (simulated)".into(),
            sm_count: 15,
            cores_per_sm: 32,
            clock_ghz: 1.4,
            warp_size: 32,
            max_threads_per_block: 1024,
            global_mem_bytes: 1536 * 1024 * 1024,
            host_workers: DEFAULT_HOST_WORKERS,
        }
    }

    /// A tiny device for tests that exercise memory exhaustion.
    pub fn toy(mem_bytes: usize) -> Self {
        DeviceConfig { name: "toy".into(), global_mem_bytes: mem_bytes, ..Self::gtx480() }
    }
}

/// Handle to a device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub usize);

/// Handle to a command stream (CUDA stream / OpenCL in-order command queue).
///
/// Operations enqueued on one stream execute in enqueue order; operations on
/// different streams may overlap when they occupy different engines. Stream
/// 0 is the default stream every device starts with — the synchronous
/// [`Device`] API is exactly the 1-stream special case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub usize);

impl StreamId {
    /// The default stream.
    pub const DEFAULT: StreamId = StreamId(0);
}

/// Handle to a recorded timeline event (`cudaEventRecord` / `clEvent`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub usize);

/// Size-class pooling allocator over device memory.
///
/// Freed buffers are cached in bins keyed by their power-of-two size class
/// instead of returning to the (simulated) driver; a later allocation of the
/// same class pops a cached block — a host-side pointer swap that costs no
/// simulated time and skips the Fermi `cudaMalloc` device-sync entirely. The
/// price is internal fragmentation (a request is charged its class size, not
/// its exact size) and a cache that still occupies device memory: under
/// memory pressure the device evicts cached blocks back to the driver,
/// largest class first, before declaring out-of-memory.
///
/// Disabled by default — the naive allocate/free behaviour (and with it,
/// every previously calibrated experiment) is untouched until
/// [`Device::set_pool_enabled`] opts in.
#[derive(Debug, Clone, Default)]
pub struct MemPool {
    enabled: bool,
    /// Cached blocks keyed by size class (elements; always a power of two).
    bins: BTreeMap<usize, Vec<Vec<i32>>>,
    cached_bytes: usize,
}

impl MemPool {
    /// Size class (in elements) serving a request of `len` elements: the next
    /// power of two. `None` when the class overflows `usize`.
    pub fn class_len(len: usize) -> Option<usize> {
        len.max(1).checked_next_power_of_two()
    }

    /// Whether pooling is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Bytes held by cached (freed, not yet evicted) blocks.
    pub fn cached_bytes(&self) -> usize {
        self.cached_bytes
    }

    /// Number of cached blocks across all bins.
    pub fn cached_blocks(&self) -> usize {
        self.bins.values().map(Vec::len).sum()
    }

    /// Pop a cached block of exactly `class_len` elements, if any.
    fn take(&mut self, class_len: usize) -> Option<Vec<i32>> {
        let bin = self.bins.get_mut(&class_len)?;
        let block = bin.pop()?;
        if bin.is_empty() {
            self.bins.remove(&class_len);
        }
        self.cached_bytes -= class_len * 4;
        Some(block)
    }

    /// Cache a freed block under `class_len`.
    fn put(&mut self, class_len: usize, block: Vec<i32>) {
        self.cached_bytes += class_len * 4;
        self.bins.entry(class_len).or_default().push(block);
    }

    /// Evict one cached block, largest class first; returns its byte size.
    fn evict_one(&mut self) -> Option<usize> {
        let &class_len = self.bins.keys().next_back()?;
        self.take(class_len)?;
        Some(class_len * 4)
    }
}

/// A simulated GPU: device memory, a kernel execution engine, a calibrated
/// clock and a profiler.
///
/// Buffer elements are 32-bit integers (the paper's frames are `int` arrays).
/// All timing is *simulated*: [`Device::now_us`] advances by the cost model,
/// never by wall-clock.
///
/// ```
/// use simgpu::device::Device;
/// use simgpu::exec::LaunchConfig;
/// use simgpu::kir::{BinOp, KernelArg, KernelBuilder, KernelFlavor, Special};
///
/// // y[i] = 3 * y[i]
/// let mut b = KernelBuilder::new("scale", KernelFlavor::Cuda);
/// let y = b.buffer_param("y", true);
/// let gid = b.special(Special::GlobalIdX);
/// let v = b.load(y, gid);
/// let three = b.constant(3);
/// let scaled = b.bin(BinOp::Mul, v, three);
/// b.store(y, gid, scaled);
/// let kernel = b.finish();
///
/// let mut device = Device::gtx480();
/// let buf = device.malloc(4).unwrap();
/// device.host2device(&[1, 2, 3, 4], buf).unwrap();
/// device.launch(&kernel, LaunchConfig::cover_1d(4, 4), &[KernelArg::Buffer(buf.0)]).unwrap();
/// assert_eq!(device.device2host(buf).unwrap(), vec![3, 6, 9, 12]);
/// assert!(device.now_us() > 0.0); // simulated time advanced
/// ```
#[derive(Debug, Clone)]
pub struct Device {
    config: DeviceConfig,
    model: BoxedCostModel,
    buffers: Vec<Option<Vec<i32>>>,
    /// Bytes charged against device memory per slot (the size class with
    /// pooling on, the exact size otherwise).
    buffer_bytes: Vec<usize>,
    free_slots: Vec<usize>,
    pool: MemPool,
    allocated_bytes: usize,
    peak_allocated_bytes: usize,
    /// Host-visible simulated clock: advanced by blocking (synchronous)
    /// calls and by stream/device synchronisation, never by async enqueues.
    sim_time_us: f64,
    /// Completion time of the last operation enqueued on each stream.
    stream_tail_us: Vec<f64>,
    /// Time each engine becomes free (engines serialize their operations).
    engine_free_us: [f64; ENGINE_COUNT],
    /// Completion timestamps of recorded events.
    events: Vec<f64>,
    host_workers: usize,
    /// Profiling records for every operation this device executed.
    pub profiler: Profiler,
}

impl Device {
    /// Create a device with explicit configuration and the paper-faithful
    /// calibrated cost model. Equivalent to
    /// [`Device::with_model`]`(config, calib.into())`.
    pub fn new(config: DeviceConfig, calib: Calibration) -> Self {
        Device::with_model(config, calib.into())
    }

    /// Create a device pricing time through an arbitrary [`CostModel`].
    pub fn with_model(config: DeviceConfig, model: BoxedCostModel) -> Self {
        let host_workers = config.host_workers.max(1);
        Device {
            config,
            model,
            buffers: Vec::new(),
            buffer_bytes: Vec::new(),
            free_slots: Vec::new(),
            pool: MemPool::default(),
            allocated_bytes: 0,
            peak_allocated_bytes: 0,
            sim_time_us: 0.0,
            stream_tail_us: vec![0.0],
            engine_free_us: [0.0; ENGINE_COUNT],
            events: Vec::new(),
            host_workers,
            profiler: Profiler::new(),
        }
    }

    /// The paper's GTX480 with its calibration.
    pub fn gtx480() -> Self {
        Device::new(DeviceConfig::gtx480(), Calibration::gtx480())
    }

    /// Device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The cost model pricing this device's simulated time.
    pub fn cost_model(&self) -> &dyn CostModel {
        &*self.model
    }

    /// Replace the cost model.
    pub fn set_cost_model(&mut self, model: BoxedCostModel) {
        self.model = model;
    }

    /// The paper-faithful calibration in use.
    ///
    /// Panics when the device prices through a non-[`Calibration`] model —
    /// calibrated experiments that read raw constants should only run on
    /// calibrated devices. Use [`Device::cost_model`] for the general case.
    pub fn calibration(&self) -> &Calibration {
        self.model.as_calibration().expect("device prices through a non-Calibration cost model")
    }

    /// Replace the calibration (used by ablation benches).
    pub fn set_calibration(&mut self, calib: Calibration) {
        self.model = calib.into();
    }

    /// Number of host threads used to execute launches.
    pub fn set_host_workers(&mut self, workers: usize) {
        self.host_workers = workers.max(1);
    }

    /// The host-visible simulated clock, µs since device creation.
    ///
    /// Blocking calls advance it; asynchronous enqueues do not until the
    /// stream (or device) is synchronised.
    pub fn now_us(&self) -> f64 {
        self.sim_time_us
    }

    // ------------------------------------------------------------------
    // Stream & event management
    // ------------------------------------------------------------------

    /// Create a new stream (`cudaStreamCreate` / `clCreateCommandQueue`).
    pub fn create_stream(&mut self) -> StreamId {
        self.stream_tail_us.push(self.sim_time_us);
        StreamId(self.stream_tail_us.len() - 1)
    }

    /// Number of streams, including the default stream.
    pub fn stream_count(&self) -> usize {
        self.stream_tail_us.len()
    }

    fn stream_tail(&self, stream: StreamId) -> Result<f64, SimError> {
        self.stream_tail_us.get(stream.0).copied().ok_or(SimError::UnknownStream { id: stream.0 })
    }

    /// Record an event capturing the completion of all work enqueued on
    /// `stream` so far (`cudaEventRecord`).
    pub fn record_event(&mut self, stream: StreamId) -> Result<EventId, SimError> {
        let at = self.stream_tail(stream)?;
        self.events.push(at);
        Ok(EventId(self.events.len() - 1))
    }

    /// Make subsequent work on `stream` wait for `event`
    /// (`cudaStreamWaitEvent`): the stream's clock is lifted to the event's
    /// completion time.
    pub fn wait_event(&mut self, stream: StreamId, event: EventId) -> Result<(), SimError> {
        let at = *self.events.get(event.0).ok_or(SimError::UnknownEvent { id: event.0 })?;
        let tail = self.stream_tail(stream)?;
        self.stream_tail_us[stream.0] = tail.max(at);
        Ok(())
    }

    /// Block the host until `stream` drains (`cudaStreamSynchronize`);
    /// returns the new host clock.
    pub fn sync_stream(&mut self, stream: StreamId) -> Result<f64, SimError> {
        let tail = self.stream_tail(stream)?;
        self.sim_time_us = self.sim_time_us.max(tail);
        Ok(self.sim_time_us)
    }

    /// Block the host until every stream drains (`cudaDeviceSynchronize`);
    /// returns the new host clock — the makespan of all enqueued work.
    pub fn synchronize(&mut self) -> f64 {
        for &tail in &self.stream_tail_us {
            if tail > self.sim_time_us {
                self.sim_time_us = tail;
            }
        }
        self.sim_time_us
    }

    /// Schedule one operation of duration `us` on `stream`.
    ///
    /// The operation starts when its stream has drained, its engine is free,
    /// and the host has enqueued it (`start = max(stream tail, engine free,
    /// host clock)`); both the stream and the engine then advance to its
    /// completion. With a single stream every `max` resolves to the stream
    /// tail, so the timeline degenerates to exactly the serial clock the
    /// synchronous API always had.
    fn schedule_on(
        &mut self,
        name: &str,
        class: OpClass,
        stream: StreamId,
        us: f64,
    ) -> Result<f64, SimError> {
        let tail = self.stream_tail(stream)?;
        let engine = Engine::of_class(class) as usize;
        let start = tail.max(self.engine_free_us[engine]).max(self.sim_time_us);
        let end = start + us;
        self.stream_tail_us[stream.0] = end;
        self.engine_free_us[engine] = end;
        self.profiler.record(name, class, us);
        self.profiler.record_span(name, class, stream.0, start, us);
        Ok(end)
    }

    /// Advance the simulated clock by a blocking host-side cost and record it.
    pub fn charge_host(&mut self, name: &str, us: f64) {
        self.charge_host_on(name, us, StreamId::DEFAULT).expect("default stream always exists");
        self.sim_time_us = self.stream_tail_us[StreamId::DEFAULT.0];
    }

    /// Schedule host-side work of duration `us` on a stream's timeline
    /// without blocking the enqueueing host clock (a host step inside a
    /// pipelined frame).
    pub fn charge_host_on(
        &mut self,
        name: &str,
        us: f64,
        stream: StreamId,
    ) -> Result<(), SimError> {
        self.schedule_on(name, OpClass::Host, stream, us)?;
        Ok(())
    }

    /// Bytes of device memory held by live buffers.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated_bytes
    }

    /// Bytes of device memory occupied overall: live buffers plus blocks the
    /// pool has cached for reuse (cached blocks are real device memory — the
    /// driver has not seen them freed).
    pub fn footprint_bytes(&self) -> usize {
        self.allocated_bytes + self.pool.cached_bytes
    }

    /// High-water mark of [`Device::footprint_bytes`] over the device's
    /// lifetime — the footprint measure behind WLF's "renders allocation of
    /// intermediate arrays in memory unnecessary".
    pub fn peak_allocated_bytes(&self) -> usize {
        self.peak_allocated_bytes
    }

    /// The pooling allocator (read-only).
    pub fn pool(&self) -> &MemPool {
        &self.pool
    }

    /// Enable or disable the size-class pooling allocator. Disabling first
    /// trims every cached block back to the driver (charging per-block
    /// `cudaFree` when calibrated), so naive and pooled runs never share
    /// hidden state.
    pub fn set_pool_enabled(&mut self, enabled: bool) {
        if !enabled {
            self.trim_pool();
        }
        self.pool.enabled = enabled;
    }

    /// Release every pool-cached block back to the driver.
    pub fn trim_pool(&mut self) {
        self.trim_pool_to(0);
    }

    /// Evict cached blocks (largest class first) until at most
    /// `target_bytes` remain cached, charging one `cudaFree` per eviction.
    fn trim_pool_to(&mut self, target_bytes: usize) {
        while self.pool.cached_bytes > target_bytes {
            if self.pool.evict_one().is_none() {
                break;
            }
            self.profiler.alloc.evictions += 1;
            self.charge_driver_call("cudaFree", self.model.free_us());
        }
        self.note_footprint();
    }

    /// A synchronizing driver call (Fermi `cudaMalloc`/`cudaFree`): when the
    /// calibrated cost is non-zero, every stream is drained — malloc on Fermi
    /// is an implicit `cudaDeviceSynchronize` — and the call blocks the host
    /// for `us`. At zero cost the call is free *and invisible*: no sync, no
    /// profiler record, so zero-cost calibrations reproduce the pre-costed
    /// timelines bit-for-bit.
    fn charge_driver_call(&mut self, name: &str, us: f64) {
        if us > 0.0 {
            self.synchronize();
            self.charge_host(name, us);
        }
    }

    /// Update footprint watermarks (device + profiler observation window).
    fn note_footprint(&mut self) {
        let footprint = self.footprint_bytes();
        self.peak_allocated_bytes = self.peak_allocated_bytes.max(footprint);
        self.profiler.alloc.current_bytes = footprint;
        self.profiler.alloc.peak_bytes = self.profiler.alloc.peak_bytes.max(footprint);
    }

    /// Place `data` in a buffer slot, charging `bytes` against device memory.
    fn install(&mut self, data: Vec<i32>, bytes: usize) -> BufferId {
        self.allocated_bytes += bytes;
        let id = if let Some(slot) = self.free_slots.pop() {
            self.buffers[slot] = Some(data);
            self.buffer_bytes[slot] = bytes;
            slot
        } else {
            self.buffers.push(Some(data));
            self.buffer_bytes.push(bytes);
            self.buffers.len() - 1
        };
        self.note_footprint();
        BufferId(id)
    }

    /// Allocate a buffer of `len` 32-bit elements (zero-initialised, as a
    /// deterministic stand-in for `cudaMalloc`).
    ///
    /// With pooling enabled the request is rounded up to its power-of-two
    /// size class and served from the cache when a block of that class is
    /// available — a pool hit is a host-side pointer pop that charges no
    /// simulated time. Requests that reach the (simulated) driver charge
    /// [`Calibration::malloc_us`] and device-synchronize all streams first,
    /// as `cudaMalloc` does on Fermi; under memory pressure, pool-cached
    /// blocks are evicted (largest class first) before giving up with
    /// [`SimError::OutOfMemory`].
    pub fn malloc(&mut self, len: usize) -> Result<BufferId, SimError> {
        let bytes = if self.pool.enabled {
            MemPool::class_len(len).and_then(|class| class.checked_mul(4))
        } else {
            len.checked_mul(4)
        }
        .ok_or(SimError::AllocTooLarge { len })?;

        if self.pool.enabled {
            if let Some(mut block) = self.pool.take(bytes / 4) {
                // Recycled blocks come back zeroed, exactly like a fresh
                // malloc, so pooled and naive runs stay bit-identical.
                block.clear();
                block.resize(len, 0);
                self.profiler.alloc.pool_hits += 1;
                return Ok(self.install(block, bytes));
            }
            self.profiler.alloc.pool_misses += 1;
        }

        if self.footprint_bytes() + bytes > self.config.global_mem_bytes {
            let target = self.config.global_mem_bytes.saturating_sub(self.allocated_bytes + bytes);
            self.trim_pool_to(target);
        }
        if self.footprint_bytes() + bytes > self.config.global_mem_bytes {
            return Err(SimError::OutOfMemory {
                requested: bytes,
                available: self.config.global_mem_bytes.saturating_sub(self.footprint_bytes()),
            });
        }
        self.charge_driver_call("cudaMalloc", self.model.malloc_us());
        self.profiler.alloc.mallocs += 1;
        Ok(self.install(vec![0i32; len], bytes))
    }

    /// Release a buffer.
    ///
    /// With pooling enabled the block is cached in its size-class bin for
    /// reuse — no driver call, no simulated time. Otherwise it returns to
    /// the driver, charging [`Calibration::free_us`] (with the Fermi device
    /// sync) when calibrated.
    pub fn free(&mut self, id: BufferId) -> Result<(), SimError> {
        match self.buffers.get_mut(id.0) {
            Some(slot @ Some(_)) => {
                let block = slot.take().expect("matched Some above");
                let bytes = self.buffer_bytes[id.0];
                self.allocated_bytes -= bytes;
                self.free_slots.push(id.0);
                self.profiler.alloc.frees += 1;
                if self.pool.enabled {
                    self.pool.put(bytes / 4, block);
                } else {
                    self.charge_driver_call("cudaFree", self.model.free_us());
                }
                self.note_footprint();
                Ok(())
            }
            _ => Err(SimError::UnknownBuffer { id: id.0 }),
        }
    }

    /// Length (in elements) of a buffer.
    pub fn buffer_len(&self, id: BufferId) -> Result<usize, SimError> {
        self.buffers
            .get(id.0)
            .and_then(|b| b.as_ref())
            .map(|b| b.len())
            .ok_or(SimError::UnknownBuffer { id: id.0 })
    }

    /// Read a buffer without charging time (test/verification escape hatch).
    pub fn peek(&self, id: BufferId) -> Result<&[i32], SimError> {
        self.buffers
            .get(id.0)
            .and_then(|b| b.as_ref())
            .map(|b| b.as_slice())
            .ok_or(SimError::UnknownBuffer { id: id.0 })
    }

    /// Overwrite a buffer without charging time (test escape hatch).
    pub fn poke(&mut self, id: BufferId, data: &[i32]) -> Result<(), SimError> {
        let buf = self
            .buffers
            .get_mut(id.0)
            .and_then(|b| b.as_mut())
            .ok_or(SimError::UnknownBuffer { id: id.0 })?;
        if buf.len() != data.len() {
            return Err(SimError::TransferSize { host: data.len(), device: buf.len() });
        }
        buf.copy_from_slice(data);
        Ok(())
    }

    /// Copy host data into a device buffer — the `host2device` instruction
    /// the SaC backend inserts, or OpenCL's `clEnqueueWriteBuffer`. Blocks
    /// the host clock (the default-stream special case).
    ///
    /// Recorded under `memcpyHtoDasync` like the paper's profiles.
    pub fn host2device(&mut self, host: &[i32], id: BufferId) -> Result<(), SimError> {
        self.host2device_on(host, id, StreamId::DEFAULT)?;
        self.sim_time_us = self.stream_tail_us[StreamId::DEFAULT.0];
        Ok(())
    }

    /// Asynchronous [`Device::host2device`]: enqueue the upload on `stream`
    /// and return without advancing the host clock (`cudaMemcpyAsync`).
    ///
    /// The copy itself is performed eagerly — buffers always hold the result
    /// of every enqueued operation in enqueue order, so correctness of an
    /// overlapped schedule is the *timing* model's concern only, exactly as
    /// when double-buffering keeps real streams race-free.
    pub fn host2device_on(
        &mut self,
        host: &[i32],
        id: BufferId,
        stream: StreamId,
    ) -> Result<(), SimError> {
        self.host2device_chunked_on(host, id, 1, stream)?;
        Ok(())
    }

    /// Like [`Device::host2device`] but performed (and profiled) as `chunks`
    /// back-to-back transfers of equal size — the per-plane streaming a host
    /// runtime does for multi-channel frames (each chunk pays the transfer
    /// latency, and each is one `memcpyHtoDasync` profiler call).
    pub fn host2device_chunked(
        &mut self,
        host: &[i32],
        id: BufferId,
        chunks: usize,
    ) -> Result<(), SimError> {
        self.host2device_chunked_on(host, id, chunks, StreamId::DEFAULT)?;
        self.sim_time_us = self.stream_tail_us[StreamId::DEFAULT.0];
        Ok(())
    }

    /// Asynchronous chunked upload on `stream`. Returns the number of
    /// transfers actually issued (after the chunk-fallback rule), so callers
    /// accounting transfer counts report what the engine saw, not what was
    /// requested.
    ///
    /// Chunking rule: `chunks` is honoured only when it is greater than 1
    /// *and* divides `host.len()` exactly; any other request degrades to a
    /// single chunk. Because that changes the profiled op count, the
    /// downgrade is recorded as a profiler note rather than happening
    /// silently.
    pub fn host2device_chunked_on(
        &mut self,
        host: &[i32],
        id: BufferId,
        chunks: usize,
        stream: StreamId,
    ) -> Result<usize, SimError> {
        self.stream_tail(stream)?;
        let dev_len = self.buffer_len(id)?;
        if dev_len != host.len() {
            return Err(SimError::TransferSize { host: host.len(), device: dev_len });
        }
        let chunks = self.effective_chunks(host.len(), chunks);
        let bytes = host.len() * 4 / chunks;
        for _ in 0..chunks {
            let us = self.model.transfer_time_us(bytes, Direction::HostToDevice);
            self.schedule_on("memcpyHtoDasync", OpClass::H2D, stream, us)?;
        }
        // Commit the functional copy only after every check and schedule
        // succeeded: a failed upload never leaves the buffer contents and the
        // charged timeline disagreeing.
        self.buffers[id.0].as_mut().expect("validated above").copy_from_slice(host);
        Ok(chunks)
    }

    /// Upload several host arrays in one batched transfer (`cudaMemcpy` of a
    /// packed staging area): every part is validated first, then the whole
    /// batch is charged as a *single* H2D operation whose byte count is the
    /// sum of the parts — one transfer latency instead of one per part.
    ///
    /// Recorded under `memcpyHtoDbatched` so batched traffic is separable
    /// from the per-array `memcpyHtoDasync` calls in profiles.
    pub fn host2device_batch_on(
        &mut self,
        parts: &[(&[i32], BufferId)],
        stream: StreamId,
    ) -> Result<(), SimError> {
        self.stream_tail(stream)?;
        let mut total = 0usize;
        for &(host, id) in parts {
            let dev_len = self.buffer_len(id)?;
            if dev_len != host.len() {
                return Err(SimError::TransferSize { host: host.len(), device: dev_len });
            }
            total += host.len();
        }
        if parts.is_empty() {
            return Ok(());
        }
        let us = self.model.transfer_time_us(total * 4, Direction::HostToDevice);
        self.schedule_on("memcpyHtoDbatched", OpClass::H2D, stream, us)?;
        for &(host, id) in parts {
            self.buffers[id.0].as_mut().expect("validated above").copy_from_slice(host);
        }
        Ok(())
    }

    /// Read several device buffers back in one batched transfer — the D2H
    /// counterpart of [`Device::host2device_batch_on`]. One D2H operation is
    /// charged for the summed bytes; the returned vectors are in `ids` order.
    ///
    /// Recorded under `memcpyDtoHbatched`.
    pub fn device2host_batch_on(
        &mut self,
        ids: &[BufferId],
        stream: StreamId,
    ) -> Result<Vec<Vec<i32>>, SimError> {
        self.stream_tail(stream)?;
        let mut total = 0usize;
        for &id in ids {
            total += self.buffer_len(id)?;
        }
        if ids.is_empty() {
            return Ok(Vec::new());
        }
        let us = self.model.transfer_time_us(total * 4, Direction::DeviceToHost);
        self.schedule_on("memcpyDtoHbatched", OpClass::D2H, stream, us)?;
        ids.iter()
            .map(|&id| {
                self.buffers
                    .get(id.0)
                    .and_then(|b| b.as_ref())
                    .cloned()
                    .ok_or(SimError::UnknownBuffer { id: id.0 })
            })
            .collect()
    }

    /// The chunking rule shared by both chunked transfers, with the
    /// `chunks -> 1` downgrade surfaced as a profiler note.
    fn effective_chunks(&mut self, len: usize, chunks: usize) -> usize {
        if chunks <= 1 {
            1
        } else if len.is_multiple_of(chunks) {
            chunks
        } else {
            self.profiler.note(format!(
                "chunked transfer fell back to 1 chunk: length {len} is not divisible by {chunks}"
            ));
            1
        }
    }

    /// Chunked counterpart of [`Device::device2host`].
    pub fn device2host_chunked(
        &mut self,
        id: BufferId,
        chunks: usize,
    ) -> Result<Vec<i32>, SimError> {
        let (out, _) = self.device2host_chunked_on(id, chunks, StreamId::DEFAULT)?;
        self.sim_time_us = self.stream_tail_us[StreamId::DEFAULT.0];
        Ok(out)
    }

    /// Asynchronous chunked readback on `stream`. The returned data is the
    /// buffer contents at enqueue time paired with the number of transfers
    /// actually issued (after the chunk-fallback rule); the host clock is not
    /// advanced — synchronise the stream before *using* the data at a
    /// simulated time.
    ///
    /// Chunking follows the same rule as [`Device::host2device_chunked_on`]:
    /// honoured only when `chunks > 1` divides the length exactly, with the
    /// downgrade to a single chunk recorded as a profiler note.
    pub fn device2host_chunked_on(
        &mut self,
        id: BufferId,
        chunks: usize,
        stream: StreamId,
    ) -> Result<(Vec<i32>, usize), SimError> {
        self.stream_tail(stream)?;
        let len = self.buffer_len(id)?;
        let chunks = self.effective_chunks(len, chunks);
        let out = self
            .buffers
            .get(id.0)
            .and_then(|b| b.as_ref())
            .ok_or(SimError::UnknownBuffer { id: id.0 })?
            .clone();
        let bytes = len * 4 / chunks;
        for _ in 0..chunks {
            let us = self.model.transfer_time_us(bytes, Direction::DeviceToHost);
            self.schedule_on("memcpyDtoHasync", OpClass::D2H, stream, us)?;
        }
        Ok((out, chunks))
    }

    /// Copy a device buffer back to the host — `device2host` /
    /// `clEnqueueReadBuffer`. Recorded under `memcpyDtoHasync`. Blocks the
    /// host clock.
    pub fn device2host(&mut self, id: BufferId) -> Result<Vec<i32>, SimError> {
        self.device2host_chunked(id, 1)
    }

    /// Asynchronous [`Device::device2host`] on `stream`.
    pub fn device2host_on(&mut self, id: BufferId, stream: StreamId) -> Result<Vec<i32>, SimError> {
        let (out, _) = self.device2host_chunked_on(id, 1, stream)?;
        Ok(out)
    }

    /// Launch a kernel. Execution is functional (buffers are updated) and the
    /// simulated clock advances by the cost model applied to the dynamic
    /// counters. Stats are returned for inspection. Blocks the host clock
    /// (the default-stream special case).
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        cfg: LaunchConfig,
        args: &[KernelArg],
    ) -> Result<LaunchStats, SimError> {
        let stats = self.launch_on(kernel, cfg, args, StreamId::DEFAULT)?;
        self.sim_time_us = self.stream_tail_us[StreamId::DEFAULT.0];
        Ok(stats)
    }

    /// Asynchronous kernel launch on `stream` (`kernel<<<grid, block, 0,
    /// stream>>>`): the kernel runs functionally now, its simulated time is
    /// scheduled on the compute engine, and the host clock is not advanced.
    pub fn launch_on(
        &mut self,
        kernel: &Kernel,
        cfg: LaunchConfig,
        args: &[KernelArg],
        stream: StreamId,
    ) -> Result<LaunchStats, SimError> {
        self.launch_with_access(kernel, cfg, args, stream, None)
    }

    /// [`Device::launch_on`] with the launch's tiled-access description,
    /// when the caller (the plan scheduler) knows it. The description is
    /// advisory context for occupancy/coalescing-aware cost models — the
    /// paper-faithful [`Calibration`] ignores it, so passing it is
    /// observationally invisible under the default model.
    pub fn launch_with_access(
        &mut self,
        kernel: &Kernel,
        cfg: LaunchConfig,
        args: &[KernelArg],
        stream: StreamId,
        access: Option<&TiledAccess>,
    ) -> Result<LaunchStats, SimError> {
        self.stream_tail(stream)?;
        let block_threads = (cfg.block.0 as usize) * (cfg.block.1 as usize);
        if block_threads > self.config.max_threads_per_block {
            return Err(SimError::BadParam { kernel: kernel.name.clone(), index: usize::MAX });
        }
        let stats = run_kernel(kernel, cfg, args, &mut self.buffers, self.host_workers)?;
        let ctx = LaunchContext { device: &self.config, config: cfg, access };
        let us = self.model.kernel_time_us(&stats, &ctx);
        self.schedule_on(&kernel.name, OpClass::Kernel, stream, us)?;
        Ok(stats)
    }

    /// Replay a previously measured operation on the timeline without any
    /// functional work: charge `us` of `class` time under `name` on
    /// `stream`. Per-frame costs are content-independent under the cost
    /// model, so executors use this to extend a measured frame schedule to
    /// N-frame runs exactly.
    pub fn replay_on(
        &mut self,
        name: &str,
        class: OpClass,
        us: f64,
        stream: StreamId,
    ) -> Result<(), SimError> {
        self.schedule_on(name, class, stream, us)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kir::{BinOp, KernelBuilder, KernelFlavor, Special};

    fn inc_kernel() -> Kernel {
        let mut b = KernelBuilder::new("inc", KernelFlavor::Cuda);
        let x = b.buffer_param("x", true);
        let n = b.scalar_param("n");
        let gid = b.special(Special::GlobalIdX);
        let nv = b.param_value(n);
        let ok = b.bin(BinOp::Lt, gid, nv);
        b.begin_if(ok);
        let v = b.load(x, gid);
        let one = b.constant(1);
        let w = b.bin(BinOp::Add, v, one);
        b.store(x, gid, w);
        b.end_if();
        b.finish()
    }

    #[test]
    fn malloc_free_tracks_allocation() {
        let mut d = Device::new(DeviceConfig::toy(1024), Calibration::zero());
        let a = d.malloc(100).unwrap(); // 400 bytes
        let b = d.malloc(100).unwrap();
        assert_eq!(d.allocated_bytes(), 800);
        assert!(matches!(d.malloc(100), Err(SimError::OutOfMemory { .. })));
        d.free(a).unwrap();
        assert_eq!(d.allocated_bytes(), 400);
        let c = d.malloc(100).unwrap();
        // Slot is recycled.
        assert_eq!(c, a);
        d.free(b).unwrap();
        d.free(c).unwrap();
        assert!(d.free(c).is_err());
    }

    #[test]
    fn overflowing_malloc_is_rejected_not_wrapped() {
        // len * 4 would wrap in release mode and pass the capacity check; the
        // checked path must reject it before `vec![0; len]` aborts.
        let mut d = Device::new(DeviceConfig::toy(1024), Calibration::zero());
        let err = d.malloc(usize::MAX / 2);
        assert!(matches!(err, Err(SimError::AllocTooLarge { .. })), "{err:?}");
        assert_eq!(d.allocated_bytes(), 0);
        // Same guard with pooling (the size class itself can overflow).
        d.set_pool_enabled(true);
        assert!(matches!(d.malloc(usize::MAX - 1), Err(SimError::AllocTooLarge { .. })));
    }

    #[test]
    fn pool_reuses_freed_blocks() {
        let mut d = Device::new(DeviceConfig::toy(4096), Calibration::zero());
        d.set_pool_enabled(true);
        let a = d.malloc(100).unwrap(); // class 128 -> 512 B charged
        assert_eq!(d.allocated_bytes(), 512);
        d.poke(a, &vec![7; 100]).unwrap();
        d.free(a).unwrap();
        // Freed block is cached, not returned to the driver.
        assert_eq!(d.allocated_bytes(), 0);
        assert_eq!(d.pool().cached_bytes(), 512);
        assert_eq!(d.footprint_bytes(), 512);
        // Same class (even a different length) is a hit and comes back zeroed.
        let b = d.malloc(128).unwrap();
        assert!(d.peek(b).unwrap().iter().all(|&v| v == 0));
        assert_eq!(d.pool().cached_bytes(), 0);
        let st = &d.profiler.alloc;
        assert_eq!((st.mallocs, st.frees, st.pool_hits, st.pool_misses), (1, 1, 1, 1));
    }

    #[test]
    fn pool_evicts_under_pressure_before_oom() {
        let mut d = Device::new(DeviceConfig::toy(2048), Calibration::zero());
        d.set_pool_enabled(true);
        let a = d.malloc(256).unwrap(); // 1024 B
        d.free(a).unwrap(); // cached
        assert_eq!(d.pool().cached_bytes(), 1024);
        // 512 elements = 2048 B: only fits if the cached block is evicted.
        let b = d.malloc(512).unwrap();
        assert_eq!(d.pool().cached_bytes(), 0);
        assert_eq!(d.profiler.alloc.evictions, 1);
        assert_eq!(d.allocated_bytes(), 2048);
        // And a request that cannot fit even after trimming still errors.
        assert!(matches!(d.malloc(1), Err(SimError::OutOfMemory { .. })));
        d.free(b).unwrap();
    }

    #[test]
    fn malloc_charges_calibrated_cost_and_synchronizes() {
        let mut d = Device::new(DeviceConfig::gtx480(), Calibration::gtx480_alloc());
        let malloc_us = d.calibration().malloc_us;
        // Pending async work on a second stream...
        let s = d.create_stream();
        d.charge_host_on("producer", 500.0, s).unwrap();
        assert_eq!(d.now_us(), 0.0);
        // ...is drained by the Fermi-style device-sync in cudaMalloc.
        let buf = d.malloc(16).unwrap();
        assert_eq!(d.now_us(), 500.0 + malloc_us);
        let rec = d.profiler.records().find(|r| r.name == "cudaMalloc").unwrap();
        assert_eq!(rec.calls, 1);
        // cudaFree charges and records too.
        d.free(buf).unwrap();
        assert_eq!(d.now_us(), 500.0 + malloc_us + d.calibration().free_us);
        assert!(d.profiler.records().any(|r| r.name == "cudaFree"));
    }

    #[test]
    fn pool_hits_charge_nothing() {
        let mut d = Device::new(DeviceConfig::gtx480(), Calibration::gtx480_alloc());
        d.set_pool_enabled(true);
        let a = d.malloc(64).unwrap(); // miss: pays cudaMalloc
        let after_miss = d.now_us();
        assert!(after_miss > 0.0);
        d.free(a).unwrap(); // cached: no cudaFree
        assert_eq!(d.now_us(), after_miss);
        let b = d.malloc(64).unwrap(); // hit: free
        assert_eq!(d.now_us(), after_miss);
        assert_eq!(d.profiler.alloc.pool_hits, 1);
        d.free(b).unwrap();
    }

    #[test]
    fn zero_cost_allocation_is_invisible() {
        // The paper calibration charges no allocation: no clock movement, no
        // profiler records, exactly the pre-costed behaviour.
        let mut d = Device::gtx480();
        let buf = d.malloc(100).unwrap();
        d.free(buf).unwrap();
        assert_eq!(d.now_us(), 0.0);
        assert_eq!(d.profiler.records().count(), 0);
        // Events are still counted for observability.
        assert_eq!(d.profiler.alloc.mallocs, 1);
        assert_eq!(d.profiler.alloc.frees, 1);
    }

    #[test]
    fn failed_upload_leaves_buffer_and_timeline_untouched() {
        let mut d = Device::gtx480();
        let buf = d.malloc(4).unwrap();
        d.poke(buf, &[9, 9, 9, 9]).unwrap();
        // Size mismatch and unknown stream both fail before any mutation.
        assert!(d.host2device(&[1, 2, 3], buf).is_err());
        assert!(d.host2device_on(&[1, 2, 3, 4], buf, StreamId(7)).is_err());
        assert_eq!(d.peek(buf).unwrap(), &[9, 9, 9, 9]);
        assert_eq!(d.profiler.records().count(), 0);
        assert_eq!(d.now_us(), 0.0);
    }

    #[test]
    fn chunk_fallback_is_noted_not_silent() {
        let mut d = Device::gtx480();
        let buf = d.malloc(10).unwrap();
        // 10 elements cannot split into 3 equal chunks: one transfer, one note.
        d.host2device_chunked(&[0; 10], buf, 3).unwrap();
        let rec = d.profiler.records().find(|r| r.name == "memcpyHtoDasync").unwrap();
        assert_eq!(rec.calls, 1);
        let notes: Vec<&str> = d.profiler.notes().collect();
        assert_eq!(notes.len(), 1);
        assert!(notes[0].contains("fell back to 1 chunk"), "{notes:?}");
        // The divisible case is honoured without a note.
        d.device2host_chunked(buf, 2).unwrap();
        assert_eq!(d.profiler.notes().count(), 1);
    }

    #[test]
    fn chunked_transfers_report_actual_counts() {
        let mut d = Device::gtx480();
        let buf = d.malloc(12).unwrap();
        // Divisible: honoured.
        assert_eq!(d.host2device_chunked_on(&[1; 12], buf, 3, StreamId::DEFAULT).unwrap(), 3);
        // Not divisible: falls back to one transfer, and says so.
        assert_eq!(d.host2device_chunked_on(&[2; 12], buf, 5, StreamId::DEFAULT).unwrap(), 1);
        let (out, issued) = d.device2host_chunked_on(buf, 5, StreamId::DEFAULT).unwrap();
        assert_eq!(out, vec![2; 12]);
        assert_eq!(issued, 1);
        d.synchronize();
    }

    #[test]
    fn batched_transfers_charge_one_operation_for_summed_bytes() {
        let mut d = Device::gtx480();
        let a = d.malloc(1000).unwrap();
        let b = d.malloc(3000).unwrap();
        let da: Vec<i32> = (0..1000).collect();
        let db: Vec<i32> = (0..3000).collect();
        d.host2device_batch_on(&[(&da, a), (&db, b)], StreamId::DEFAULT).unwrap();
        let rec = d.profiler.records().find(|r| r.name == "memcpyHtoDbatched").unwrap();
        assert_eq!(rec.calls, 1);
        // One latency for the whole batch: cheaper than two separate uploads.
        let calib = d.calibration().clone();
        let separate = calib.transfer_time_us(4000, Direction::HostToDevice)
            + calib.transfer_time_us(12000, Direction::HostToDevice);
        let batched = calib.transfer_time_us(16000, Direction::HostToDevice);
        assert!((rec.total_us - batched).abs() < 1e-9);
        assert!(batched < separate);
        let outs = d.device2host_batch_on(&[a, b], StreamId::DEFAULT).unwrap();
        assert_eq!(outs, vec![da, db]);
        assert_eq!(d.profiler.records().find(|r| r.name == "memcpyDtoHbatched").unwrap().calls, 1);
        d.synchronize();
    }

    #[test]
    fn failed_batch_upload_mutates_nothing() {
        let mut d = Device::gtx480();
        let a = d.malloc(4).unwrap();
        let b = d.malloc(4).unwrap();
        d.poke(a, &[9, 9, 9, 9]).unwrap();
        // Second part has a size mismatch: the whole batch must be rejected
        // before any copy or charge happens.
        let good: Vec<i32> = vec![1, 2, 3, 4];
        let bad: Vec<i32> = vec![1, 2, 3];
        assert!(d.host2device_batch_on(&[(&good, a), (&bad, b)], StreamId::DEFAULT).is_err());
        assert_eq!(d.peek(a).unwrap(), &[9, 9, 9, 9]);
        assert_eq!(d.profiler.records().count(), 0);
        // Empty batch is a no-op, not a zero-byte transfer.
        d.host2device_batch_on(&[], StreamId::DEFAULT).unwrap();
        assert!(d.device2host_batch_on(&[], StreamId::DEFAULT).unwrap().is_empty());
        assert_eq!(d.profiler.records().count(), 0);
    }

    #[test]
    fn transfers_roundtrip_and_charge_time() {
        let mut d = Device::gtx480();
        let buf = d.malloc(1000).unwrap();
        let host: Vec<i32> = (0..1000).collect();
        let t0 = d.now_us();
        d.host2device(&host, buf).unwrap();
        assert!(d.now_us() > t0);
        let back = d.device2host(buf).unwrap();
        assert_eq!(back, host);
        assert_eq!(d.profiler.records().count(), 2);
    }

    #[test]
    fn transfer_size_mismatch_rejected() {
        let mut d = Device::gtx480();
        let buf = d.malloc(10).unwrap();
        assert!(matches!(d.host2device(&[1, 2, 3], buf), Err(SimError::TransferSize { .. })));
    }

    #[test]
    fn launch_executes_and_profiles() {
        let mut d = Device::gtx480();
        let buf = d.malloc(64).unwrap();
        d.poke(buf, &vec![5i32; 64]).unwrap();
        let k = inc_kernel();
        let stats = d
            .launch(
                &k,
                LaunchConfig::cover_1d(64, 32),
                &[KernelArg::Buffer(buf.0), KernelArg::Scalar(64)],
            )
            .unwrap();
        assert_eq!(stats.stores, 64);
        assert!(d.peek(buf).unwrap().iter().all(|&v| v == 6));
        assert!(d.now_us() >= d.calibration().kernel_launch_us);
        let rec: Vec<_> = d.profiler.records().collect();
        assert_eq!(rec[0].name, "inc");
        assert_eq!(rec[0].calls, 1);
    }

    #[test]
    fn oversized_block_rejected() {
        let mut d = Device::gtx480();
        let buf = d.malloc(16).unwrap();
        let k = inc_kernel();
        let err = d.launch(
            &k,
            LaunchConfig { grid: (1, 1), block: (2048, 1) },
            &[KernelArg::Buffer(buf.0), KernelArg::Scalar(16)],
        );
        assert!(err.is_err());
    }

    #[test]
    fn charge_host_advances_clock() {
        let mut d = Device::gtx480();
        d.charge_host("generic_output_tiler(host)", 123.0);
        assert_eq!(d.now_us(), 123.0);
        assert_eq!(d.profiler.class_total_us(OpClass::Host), 123.0);
    }

    #[test]
    fn host_workers_come_from_config_not_machine() {
        let cfg = DeviceConfig::gtx480();
        assert_eq!(cfg.host_workers, super::DEFAULT_HOST_WORKERS);
        let d = Device::gtx480();
        // Two devices created anywhere agree on the execution worker count.
        assert_eq!(d.config().host_workers, DeviceConfig::gtx480().host_workers);
    }

    #[test]
    fn async_enqueue_does_not_advance_host_clock() {
        let mut d = Device::gtx480();
        let buf = d.malloc(1000).unwrap();
        let s = d.create_stream();
        d.host2device_on(&vec![7; 1000], buf, s).unwrap();
        assert_eq!(d.now_us(), 0.0);
        let t = d.sync_stream(s).unwrap();
        assert!(t > 0.0);
        assert_eq!(d.now_us(), t);
    }

    #[test]
    fn different_streams_overlap_on_different_engines() {
        let mut d = Device::gtx480();
        let a = d.malloc(100_000).unwrap();
        let b = d.malloc(100_000).unwrap();
        let up = d.create_stream();
        let down = d.create_stream();
        let data = vec![1; 100_000];
        // Serial baseline: same ops on one stream.
        let mut serial = Device::gtx480();
        let sa = serial.malloc(100_000).unwrap();
        serial.host2device(&data, sa).unwrap();
        serial.device2host(sa).unwrap();
        let serial_total = serial.now_us();
        // Overlapped: upload and download on different streams/engines.
        d.host2device_on(&data, a, up).unwrap();
        d.device2host_on(b, down).unwrap();
        let makespan = d.synchronize();
        assert!(makespan < serial_total, "{makespan} !< {serial_total}");
        // Both engines were busy; makespan is the slower of the two.
        let h2d = d.profiler.class_total_us(OpClass::H2D);
        let d2h = d.profiler.class_total_us(OpClass::D2H);
        assert!((makespan - h2d.max(d2h)).abs() < 1e-9);
    }

    #[test]
    fn same_engine_serializes_across_streams() {
        let mut d = Device::gtx480();
        let a = d.malloc(50_000).unwrap();
        let b = d.malloc(50_000).unwrap();
        let s1 = d.create_stream();
        let s2 = d.create_stream();
        let data = vec![3; 50_000];
        d.host2device_on(&data, a, s1).unwrap();
        d.host2device_on(&data, b, s2).unwrap();
        let makespan = d.synchronize();
        // Two uploads share the H2D engine: no overlap possible.
        assert!((makespan - d.profiler.class_total_us(OpClass::H2D)).abs() < 1e-9);
    }

    #[test]
    fn events_order_cross_stream_work() {
        let mut d = Device::new(DeviceConfig::gtx480(), Calibration::gtx480());
        let s1 = d.create_stream();
        let s2 = d.create_stream();
        d.charge_host_on("producer", 100.0, s1).unwrap();
        let ev = d.record_event(s1).unwrap();
        // Without the wait, s2's op would start at t=0 on its own engine...
        d.wait_event(s2, ev).unwrap();
        let buf = d.malloc(10).unwrap();
        d.host2device_on(&[0; 10], buf, s2).unwrap();
        let spans: Vec<_> = d.profiler.spans().collect();
        // ...but the event forces it to start at the producer's end.
        assert!(spans[1].start_us >= 100.0);
    }

    #[test]
    fn stream_and_event_ids_validated() {
        let mut d = Device::gtx480();
        assert!(matches!(d.record_event(StreamId(9)), Err(SimError::UnknownStream { id: 9 })));
        assert!(matches!(
            d.wait_event(StreamId::DEFAULT, EventId(3)),
            Err(SimError::UnknownEvent { id: 3 })
        ));
        let buf = d.malloc(4).unwrap();
        assert!(matches!(
            d.host2device_on(&[1, 2, 3, 4], buf, StreamId(5)),
            Err(SimError::UnknownStream { id: 5 })
        ));
    }

    #[test]
    fn sync_api_is_one_stream_special_case() {
        // The synchronous calls must produce the exact same clock as the
        // explicit schedule on the default stream.
        let k = inc_kernel();
        let data: Vec<i32> = (0..256).collect();

        let mut sync = Device::gtx480();
        let sb = sync.malloc(256).unwrap();
        sync.host2device(&data, sb).unwrap();
        sync.launch(
            &k,
            LaunchConfig::cover_1d(256, 64),
            &[KernelArg::Buffer(sb.0), KernelArg::Scalar(256)],
        )
        .unwrap();
        let sync_back = sync.device2host(sb).unwrap();

        let mut strm = Device::gtx480();
        let ab = strm.malloc(256).unwrap();
        strm.host2device_on(&data, ab, StreamId::DEFAULT).unwrap();
        strm.launch_on(
            &k,
            LaunchConfig::cover_1d(256, 64),
            &[KernelArg::Buffer(ab.0), KernelArg::Scalar(256)],
            StreamId::DEFAULT,
        )
        .unwrap();
        let strm_back = strm.device2host_on(ab, StreamId::DEFAULT).unwrap();
        strm.synchronize();

        assert_eq!(sync_back, strm_back);
        assert_eq!(sync.now_us(), strm.now_us());
        let a: Vec<_> = sync.profiler.records().collect();
        let b: Vec<_> = strm.profiler.records().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn replay_matches_measured_schedule() {
        let mut real = Device::gtx480();
        let buf = real.malloc(1024).unwrap();
        real.host2device(&vec![1; 1024], buf).unwrap();
        let spans: Vec<(String, OpClass, f64)> =
            real.profiler.spans().map(|s| (s.name.clone(), s.class, s.duration_us())).collect();

        let mut replayed = Device::gtx480();
        for (name, class, us) in &spans {
            replayed.replay_on(name, *class, *us, StreamId::DEFAULT).unwrap();
        }
        assert_eq!(replayed.synchronize(), real.now_us());
    }
}
