//! The simulated device: configuration, memory, launches, simulated clock.

use crate::cost::{Calibration, Direction};
use crate::exec::{run_kernel, LaunchConfig, LaunchStats};
use crate::kir::{Kernel, KernelArg};
use crate::profiler::{OpClass, Profiler};
use crate::SimError;

/// Static description of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Marketing name, for reports.
    pub name: String,
    /// Streaming multiprocessors.
    pub sm_count: usize,
    /// Scalar cores ("streaming processors") per SM.
    pub cores_per_sm: usize,
    /// Core clock, GHz.
    pub clock_ghz: f64,
    /// Threads per warp.
    pub warp_size: usize,
    /// Maximum threads per block accepted by a launch.
    pub max_threads_per_block: usize,
    /// Global memory capacity, bytes.
    pub global_mem_bytes: usize,
}

impl DeviceConfig {
    /// The paper's test device: Nvidia Fermi GTX480 — 15 SMs × 32 SPs at
    /// 1.4 GHz with 1.5 GB of device memory on PCIe x16 Gen2.
    pub fn gtx480() -> Self {
        DeviceConfig {
            name: "NVIDIA GeForce GTX 480 (simulated)".into(),
            sm_count: 15,
            cores_per_sm: 32,
            clock_ghz: 1.4,
            warp_size: 32,
            max_threads_per_block: 1024,
            global_mem_bytes: 1536 * 1024 * 1024,
        }
    }

    /// A tiny device for tests that exercise memory exhaustion.
    pub fn toy(mem_bytes: usize) -> Self {
        DeviceConfig { name: "toy".into(), global_mem_bytes: mem_bytes, ..Self::gtx480() }
    }
}

/// Handle to a device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub usize);

/// A simulated GPU: device memory, a kernel execution engine, a calibrated
/// clock and a profiler.
///
/// Buffer elements are 32-bit integers (the paper's frames are `int` arrays).
/// All timing is *simulated*: [`Device::now_us`] advances by the cost model,
/// never by wall-clock.
///
/// ```
/// use simgpu::device::Device;
/// use simgpu::exec::LaunchConfig;
/// use simgpu::kir::{BinOp, KernelArg, KernelBuilder, KernelFlavor, Special};
///
/// // y[i] = 3 * y[i]
/// let mut b = KernelBuilder::new("scale", KernelFlavor::Cuda);
/// let y = b.buffer_param("y", true);
/// let gid = b.special(Special::GlobalIdX);
/// let v = b.load(y, gid);
/// let three = b.constant(3);
/// let scaled = b.bin(BinOp::Mul, v, three);
/// b.store(y, gid, scaled);
/// let kernel = b.finish();
///
/// let mut device = Device::gtx480();
/// let buf = device.malloc(4).unwrap();
/// device.host2device(&[1, 2, 3, 4], buf).unwrap();
/// device.launch(&kernel, LaunchConfig::cover_1d(4, 4), &[KernelArg::Buffer(buf.0)]).unwrap();
/// assert_eq!(device.device2host(buf).unwrap(), vec![3, 6, 9, 12]);
/// assert!(device.now_us() > 0.0); // simulated time advanced
/// ```
#[derive(Debug, Clone)]
pub struct Device {
    config: DeviceConfig,
    calib: Calibration,
    buffers: Vec<Option<Vec<i32>>>,
    free_slots: Vec<usize>,
    allocated_bytes: usize,
    peak_allocated_bytes: usize,
    sim_time_us: f64,
    host_workers: usize,
    /// Profiling records for every operation this device executed.
    pub profiler: Profiler,
}

impl Device {
    /// Create a device with explicit configuration and calibration.
    pub fn new(config: DeviceConfig, calib: Calibration) -> Self {
        Device {
            config,
            calib,
            buffers: Vec::new(),
            free_slots: Vec::new(),
            allocated_bytes: 0,
            peak_allocated_bytes: 0,
            sim_time_us: 0.0,
            host_workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            profiler: Profiler::new(),
        }
    }

    /// The paper's GTX480 with its calibration.
    pub fn gtx480() -> Self {
        Device::new(DeviceConfig::gtx480(), Calibration::gtx480())
    }

    /// Device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Cost calibration in use.
    pub fn calibration(&self) -> &Calibration {
        &self.calib
    }

    /// Replace the calibration (used by ablation benches).
    pub fn set_calibration(&mut self, calib: Calibration) {
        self.calib = calib;
    }

    /// Number of host threads used to execute launches.
    pub fn set_host_workers(&mut self, workers: usize) {
        self.host_workers = workers.max(1);
    }

    /// The simulated clock, µs since device creation.
    pub fn now_us(&self) -> f64 {
        self.sim_time_us
    }

    /// Advance the simulated clock by a host-side cost and record it.
    pub fn charge_host(&mut self, name: &str, us: f64) {
        self.sim_time_us += us;
        self.profiler.record(name, OpClass::Host, us);
    }

    /// Bytes of device memory currently allocated.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated_bytes
    }

    /// High-water mark of device memory over the device's lifetime — the
    /// footprint measure behind WLF's "renders allocation of intermediate
    /// arrays in memory unnecessary".
    pub fn peak_allocated_bytes(&self) -> usize {
        self.peak_allocated_bytes
    }

    /// Allocate a buffer of `len` 32-bit elements (zero-initialised, as a
    /// deterministic stand-in for `cudaMalloc`).
    pub fn malloc(&mut self, len: usize) -> Result<BufferId, SimError> {
        let bytes = len * 4;
        if self.allocated_bytes + bytes > self.config.global_mem_bytes {
            return Err(SimError::OutOfMemory {
                requested: bytes,
                available: self.config.global_mem_bytes - self.allocated_bytes,
            });
        }
        self.allocated_bytes += bytes;
        self.peak_allocated_bytes = self.peak_allocated_bytes.max(self.allocated_bytes);
        let data = vec![0i32; len];
        let id = if let Some(slot) = self.free_slots.pop() {
            self.buffers[slot] = Some(data);
            slot
        } else {
            self.buffers.push(Some(data));
            self.buffers.len() - 1
        };
        Ok(BufferId(id))
    }

    /// Release a buffer.
    pub fn free(&mut self, id: BufferId) -> Result<(), SimError> {
        match self.buffers.get_mut(id.0) {
            Some(slot @ Some(_)) => {
                self.allocated_bytes -= slot.as_ref().unwrap().len() * 4;
                *slot = None;
                self.free_slots.push(id.0);
                Ok(())
            }
            _ => Err(SimError::UnknownBuffer { id: id.0 }),
        }
    }

    /// Length (in elements) of a buffer.
    pub fn buffer_len(&self, id: BufferId) -> Result<usize, SimError> {
        self.buffers
            .get(id.0)
            .and_then(|b| b.as_ref())
            .map(|b| b.len())
            .ok_or(SimError::UnknownBuffer { id: id.0 })
    }

    /// Read a buffer without charging time (test/verification escape hatch).
    pub fn peek(&self, id: BufferId) -> Result<&[i32], SimError> {
        self.buffers
            .get(id.0)
            .and_then(|b| b.as_ref())
            .map(|b| b.as_slice())
            .ok_or(SimError::UnknownBuffer { id: id.0 })
    }

    /// Overwrite a buffer without charging time (test escape hatch).
    pub fn poke(&mut self, id: BufferId, data: &[i32]) -> Result<(), SimError> {
        let buf = self
            .buffers
            .get_mut(id.0)
            .and_then(|b| b.as_mut())
            .ok_or(SimError::UnknownBuffer { id: id.0 })?;
        if buf.len() != data.len() {
            return Err(SimError::TransferSize { host: data.len(), device: buf.len() });
        }
        buf.copy_from_slice(data);
        Ok(())
    }

    /// Copy host data into a device buffer — the `host2device` instruction
    /// the SaC backend inserts, or OpenCL's `clEnqueueWriteBuffer`.
    ///
    /// Recorded under `memcpyHtoDasync` like the paper's profiles.
    pub fn host2device(&mut self, host: &[i32], id: BufferId) -> Result<(), SimError> {
        let buf = self
            .buffers
            .get_mut(id.0)
            .and_then(|b| b.as_mut())
            .ok_or(SimError::UnknownBuffer { id: id.0 })?;
        if buf.len() != host.len() {
            return Err(SimError::TransferSize { host: host.len(), device: buf.len() });
        }
        buf.copy_from_slice(host);
        let us = self.calib.transfer_time_us(host.len() * 4, Direction::HostToDevice);
        self.sim_time_us += us;
        self.profiler.record("memcpyHtoDasync", OpClass::H2D, us);
        Ok(())
    }

    /// Like [`Device::host2device`] but performed (and profiled) as `chunks`
    /// back-to-back transfers of equal size — the per-plane streaming a host
    /// runtime does for multi-channel frames (each chunk pays the transfer
    /// latency, and each is one `memcpyHtoDasync` profiler call).
    pub fn host2device_chunked(
        &mut self,
        host: &[i32],
        id: BufferId,
        chunks: usize,
    ) -> Result<(), SimError> {
        let chunks = chunks.max(1);
        if chunks == 1 || !host.len().is_multiple_of(chunks) {
            return self.host2device(host, id);
        }
        let buf = self
            .buffers
            .get_mut(id.0)
            .and_then(|b| b.as_mut())
            .ok_or(SimError::UnknownBuffer { id: id.0 })?;
        if buf.len() != host.len() {
            return Err(SimError::TransferSize { host: host.len(), device: buf.len() });
        }
        buf.copy_from_slice(host);
        let bytes = host.len() * 4 / chunks;
        for _ in 0..chunks {
            let us = self.calib.transfer_time_us(bytes, Direction::HostToDevice);
            self.sim_time_us += us;
            self.profiler.record("memcpyHtoDasync", OpClass::H2D, us);
        }
        Ok(())
    }

    /// Chunked counterpart of [`Device::device2host`].
    pub fn device2host_chunked(
        &mut self,
        id: BufferId,
        chunks: usize,
    ) -> Result<Vec<i32>, SimError> {
        let chunks = chunks.max(1);
        let len = self.buffer_len(id)?;
        if chunks == 1 || len % chunks != 0 {
            return self.device2host(id);
        }
        let out = self
            .buffers
            .get(id.0)
            .and_then(|b| b.as_ref())
            .ok_or(SimError::UnknownBuffer { id: id.0 })?
            .clone();
        let bytes = len * 4 / chunks;
        for _ in 0..chunks {
            let us = self.calib.transfer_time_us(bytes, Direction::DeviceToHost);
            self.sim_time_us += us;
            self.profiler.record("memcpyDtoHasync", OpClass::D2H, us);
        }
        Ok(out)
    }

    /// Copy a device buffer back to the host — `device2host` /
    /// `clEnqueueReadBuffer`. Recorded under `memcpyDtoHasync`.
    pub fn device2host(&mut self, id: BufferId) -> Result<Vec<i32>, SimError> {
        let buf = self
            .buffers
            .get(id.0)
            .and_then(|b| b.as_ref())
            .ok_or(SimError::UnknownBuffer { id: id.0 })?;
        let out = buf.clone();
        let us = self.calib.transfer_time_us(out.len() * 4, Direction::DeviceToHost);
        self.sim_time_us += us;
        self.profiler.record("memcpyDtoHasync", OpClass::D2H, us);
        Ok(out)
    }

    /// Launch a kernel. Execution is functional (buffers are updated) and the
    /// simulated clock advances by the cost model applied to the dynamic
    /// counters. Stats are returned for inspection.
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        cfg: LaunchConfig,
        args: &[KernelArg],
    ) -> Result<LaunchStats, SimError> {
        let block_threads = (cfg.block.0 as usize) * (cfg.block.1 as usize);
        if block_threads > self.config.max_threads_per_block {
            return Err(SimError::BadParam { kernel: kernel.name.clone(), index: usize::MAX });
        }
        let stats = run_kernel(kernel, cfg, args, &mut self.buffers, self.host_workers)?;
        let us = self.calib.kernel_time_us(&stats);
        self.sim_time_us += us;
        self.profiler.record(&kernel.name, OpClass::Kernel, us);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kir::{BinOp, KernelBuilder, KernelFlavor, Special};

    fn inc_kernel() -> Kernel {
        let mut b = KernelBuilder::new("inc", KernelFlavor::Cuda);
        let x = b.buffer_param("x", true);
        let n = b.scalar_param("n");
        let gid = b.special(Special::GlobalIdX);
        let nv = b.param_value(n);
        let ok = b.bin(BinOp::Lt, gid, nv);
        b.begin_if(ok);
        let v = b.load(x, gid);
        let one = b.constant(1);
        let w = b.bin(BinOp::Add, v, one);
        b.store(x, gid, w);
        b.end_if();
        b.finish()
    }

    #[test]
    fn malloc_free_tracks_allocation() {
        let mut d = Device::new(DeviceConfig::toy(1024), Calibration::zero());
        let a = d.malloc(100).unwrap(); // 400 bytes
        let b = d.malloc(100).unwrap();
        assert_eq!(d.allocated_bytes(), 800);
        assert!(matches!(d.malloc(100), Err(SimError::OutOfMemory { .. })));
        d.free(a).unwrap();
        assert_eq!(d.allocated_bytes(), 400);
        let c = d.malloc(100).unwrap();
        // Slot is recycled.
        assert_eq!(c, a);
        d.free(b).unwrap();
        d.free(c).unwrap();
        assert!(d.free(c).is_err());
    }

    #[test]
    fn transfers_roundtrip_and_charge_time() {
        let mut d = Device::gtx480();
        let buf = d.malloc(1000).unwrap();
        let host: Vec<i32> = (0..1000).collect();
        let t0 = d.now_us();
        d.host2device(&host, buf).unwrap();
        assert!(d.now_us() > t0);
        let back = d.device2host(buf).unwrap();
        assert_eq!(back, host);
        assert_eq!(d.profiler.records().count(), 2);
    }

    #[test]
    fn transfer_size_mismatch_rejected() {
        let mut d = Device::gtx480();
        let buf = d.malloc(10).unwrap();
        assert!(matches!(
            d.host2device(&[1, 2, 3], buf),
            Err(SimError::TransferSize { .. })
        ));
    }

    #[test]
    fn launch_executes_and_profiles() {
        let mut d = Device::gtx480();
        let buf = d.malloc(64).unwrap();
        d.poke(buf, &vec![5i32; 64]).unwrap();
        let k = inc_kernel();
        let stats = d
            .launch(
                &k,
                LaunchConfig::cover_1d(64, 32),
                &[KernelArg::Buffer(buf.0), KernelArg::Scalar(64)],
            )
            .unwrap();
        assert_eq!(stats.stores, 64);
        assert!(d.peek(buf).unwrap().iter().all(|&v| v == 6));
        assert!(d.now_us() >= d.calibration().kernel_launch_us);
        let rec: Vec<_> = d.profiler.records().collect();
        assert_eq!(rec[0].name, "inc");
        assert_eq!(rec[0].calls, 1);
    }

    #[test]
    fn oversized_block_rejected() {
        let mut d = Device::gtx480();
        let buf = d.malloc(16).unwrap();
        let k = inc_kernel();
        let err = d.launch(
            &k,
            LaunchConfig { grid: (1, 1), block: (2048, 1) },
            &[KernelArg::Buffer(buf.0), KernelArg::Scalar(16)],
        );
        assert!(err.is_err());
    }

    #[test]
    fn charge_host_advances_clock() {
        let mut d = Device::gtx480();
        d.charge_host("generic_output_tiler(host)", 123.0);
        assert_eq!(d.now_us(), 123.0);
        assert_eq!(d.profiler.class_total_us(OpClass::Host), 123.0);
    }
}
