//! Analytic cost model for simulated GPU time.
//!
//! The simulator executes kernels functionally and *charges* time with this
//! model. The constants are not microarchitectural truths — they are
//! device-wide effective costs calibrated so that the paper's own measurements
//! on a GTX480 are reproduced in shape (see `EXPERIMENTS.md` for measured vs
//! paper values). The model deliberately keeps only the terms the paper's
//! analysis turns on:
//!
//! * **launch overhead** per kernel — "each kernel launch incurs context
//!   overheads; the more kernels a program executes, the higher this cost",
//! * **DRAM vs L1 pricing** — the first access to an address within a launch
//!   pays [`Calibration::dram_access_ns`]; repeated accesses pay
//!   [`Calibration::l1_access_ns`]. The cache is not persistent across
//!   launches, so "separating computations of the same data array into
//!   different kernels hinders effective data reuse",
//! * **compute throughput** — dynamic instructions at
//!   [`Calibration::instr_ns`] apiece (device-wide amortised),
//! * **PCIe transfers** — latency plus bytes over effective bandwidth,
//!   asymmetric between host→device and device→host as measured in the paper
//!   (Tables I/II imply ≈5.4 GB/s H2D and ≈6.3 GB/s D2H effective).

use crate::exec::LaunchStats;
use crate::profiler::OpClass;

/// The device resource an operation occupies while it runs.
///
/// A Fermi-class GPU exposes two DMA copy engines (one per PCIe direction)
/// and the SM array; a blocking host step occupies the host CPU. Operations
/// on *different* engines enqueued on *different* streams may overlap;
/// operations on the same engine serialize in enqueue order regardless of
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Engine {
    /// Host→device DMA copy engine.
    H2D = 0,
    /// The SM array executing kernels.
    Compute = 1,
    /// Device→host DMA copy engine.
    D2H = 2,
    /// The host CPU (fallback steps, blocking host work).
    Host = 3,
}

/// Number of distinct engines.
pub const ENGINE_COUNT: usize = 4;

impl Engine {
    /// The engine an operation class occupies.
    pub fn of_class(class: OpClass) -> Engine {
        match class {
            OpClass::H2D => Engine::H2D,
            OpClass::Kernel => Engine::Compute,
            OpClass::D2H => Engine::D2H,
            OpClass::Host => Engine::Host,
        }
    }
}

/// Transfer direction for [`Calibration::transfer_time_us`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Host memory → device memory (`cudaMemcpyHostToDevice`).
    HostToDevice,
    /// Device memory → host memory (`cudaMemcpyDeviceToHost`).
    DeviceToHost,
}

/// Calibrated cost constants for a simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Fixed overhead charged per kernel launch (µs).
    pub kernel_launch_us: f64,
    /// Fixed latency per host→device transfer (µs).
    pub h2d_latency_us: f64,
    /// Effective host→device bandwidth (bytes per µs; 5364 ≈ 5.36 GB/s).
    pub h2d_bytes_per_us: f64,
    /// Fixed latency per device→host transfer (µs).
    pub d2h_latency_us: f64,
    /// Effective device→host bandwidth (bytes per µs).
    pub d2h_bytes_per_us: f64,
    /// Device-wide amortised cost per dynamic instruction (ns).
    pub instr_ns: f64,
    /// Cost per *distinct-address* global memory access in a launch (ns).
    pub dram_access_ns: f64,
    /// Cost per repeated-address access within a launch — an L1 hit (ns).
    pub l1_access_ns: f64,
    /// Cost of a `cudaMalloc`/`clCreateBuffer` that actually reaches the
    /// driver (µs). On Fermi the call also device-synchronizes every stream;
    /// the device models that whenever this is non-zero. Zero disables
    /// allocation charging entirely (no sync, no profiler record), which is
    /// what the paper-calibrated [`Calibration::gtx480`] uses: Tables I/II do
    /// not profile allocation, so charging it would change the reproduced
    /// totals. Enable it with [`Calibration::gtx480_alloc`].
    pub malloc_us: f64,
    /// Cost of a `cudaFree`/`clReleaseMemObject` returning memory to the
    /// driver (µs); like [`Calibration::malloc_us`] it device-synchronizes
    /// when non-zero and is skipped entirely at zero. Pool-cached releases
    /// never pay this — only true driver frees (naive frees and pool
    /// evictions) do.
    pub free_us: f64,
}

impl Calibration {
    /// Constants calibrated against the paper's GTX480 measurements.
    ///
    /// Derivation of the transfer numbers from Table I: 900 H2D transfers of a
    /// 1080×1920 `int` channel plane (8.29 MB) took 1.391 s ⇒ ≈5.4 GB/s;
    /// 900 D2H transfers of a 480×720 plane (1.38 MB) took 0.197 s ⇒
    /// ≈6.3 GB/s. Kernel constants were fit to the per-kernel times implied by
    /// Tables I and II (see DESIGN.md §5, "Cost-model calibration", and EXPERIMENTS.md).
    pub fn gtx480() -> Self {
        Calibration {
            kernel_launch_us: 12.0,
            h2d_latency_us: 15.0,
            h2d_bytes_per_us: 5364.0,
            d2h_latency_us: 15.0,
            d2h_bytes_per_us: 6316.0,
            instr_ns: 0.014,
            dram_access_ns: 0.105,
            l1_access_ns: 0.03,
            malloc_us: 0.0,
            free_us: 0.0,
        }
    }

    /// [`Calibration::gtx480`] plus calibrated Fermi allocation costs.
    ///
    /// On Fermi-generation drivers `cudaMalloc` implies a device
    /// synchronization and costs on the order of 100 µs; `cudaFree` is
    /// cheaper but also synchronizing. The paper's tables never profile
    /// allocation (their host loops allocate once per frame and the cost
    /// hides in "runtime overhead"), so these constants live in a separate
    /// calibration: the memory ablation turns them on to make per-frame
    /// allocation visible, while every paper-facing experiment keeps the
    /// allocation-free [`Calibration::gtx480`] and reproduces bit-exactly.
    pub fn gtx480_alloc() -> Self {
        Calibration { malloc_us: 100.0, free_us: 20.0, ..Self::gtx480() }
    }

    /// A free device: zero-cost everything. Useful in tests that only check
    /// functional results.
    pub fn zero() -> Self {
        Calibration {
            kernel_launch_us: 0.0,
            h2d_latency_us: 0.0,
            h2d_bytes_per_us: f64::INFINITY,
            d2h_latency_us: 0.0,
            d2h_bytes_per_us: f64::INFINITY,
            instr_ns: 0.0,
            dram_access_ns: 0.0,
            l1_access_ns: 0.0,
            malloc_us: 0.0,
            free_us: 0.0,
        }
    }

    /// Simulated duration of a PCIe transfer of `bytes` bytes (µs).
    pub fn transfer_time_us(&self, bytes: usize, dir: Direction) -> f64 {
        let (lat, bw) = match dir {
            Direction::HostToDevice => (self.h2d_latency_us, self.h2d_bytes_per_us),
            Direction::DeviceToHost => (self.d2h_latency_us, self.d2h_bytes_per_us),
        };
        lat + bytes as f64 / bw
    }

    /// Simulated duration of a kernel launch with the given dynamic counts (µs).
    ///
    /// `t = launch + instr·instr_ns + distinct·dram_ns + hits·l1_ns`.
    pub fn kernel_time_us(&self, stats: &LaunchStats) -> f64 {
        let compute_ns = stats.instructions as f64 * self.instr_ns;
        let dram_ns = stats.distinct_accesses as f64 * self.dram_access_ns;
        let l1_ns = stats.l1_hits as f64 * self.l1_access_ns;
        self.kernel_launch_us + (compute_ns + dram_ns + l1_ns) / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(instr: u64, distinct: u64, hits: u64) -> LaunchStats {
        LaunchStats {
            threads: 0,
            instructions: instr,
            loads: 0,
            stores: 0,
            distinct_accesses: distinct,
            l1_hits: hits,
        }
    }

    #[test]
    fn transfer_time_includes_latency_and_bandwidth() {
        let c = Calibration::gtx480();
        let t = c.transfer_time_us(8_294_400, Direction::HostToDevice);
        // 15 µs latency + 8.29 MB at 5364 B/µs ≈ 1561 µs.
        assert!((t - (15.0 + 8_294_400.0 / 5364.0)).abs() < 1e-9);
        // D2H is faster per byte in the paper's measurements.
        let h = c.transfer_time_us(1_000_000, Direction::HostToDevice);
        let d = c.transfer_time_us(1_000_000, Direction::DeviceToHost);
        assert!(d < h);
    }

    #[test]
    fn kernel_time_has_fixed_launch_floor() {
        let c = Calibration::gtx480();
        assert!((c.kernel_time_us(&stats(0, 0, 0)) - c.kernel_launch_us).abs() < 1e-12);
    }

    #[test]
    fn dram_costs_more_than_l1() {
        let c = Calibration::gtx480();
        let all_dram = c.kernel_time_us(&stats(0, 1000, 0));
        let all_l1 = c.kernel_time_us(&stats(0, 0, 1000));
        assert!(all_dram > all_l1);
    }

    #[test]
    fn zero_calibration_charges_nothing() {
        let c = Calibration::zero();
        assert_eq!(c.transfer_time_us(123456, Direction::DeviceToHost), 0.0);
        assert_eq!(c.kernel_time_us(&stats(1000, 1000, 1000)), 0.0);
    }

    #[test]
    fn alloc_costs_are_opt_in() {
        // The paper-calibrated constants must not charge allocation — every
        // previously reported simulated total depends on it.
        let paper = Calibration::gtx480();
        assert_eq!(paper.malloc_us, 0.0);
        assert_eq!(paper.free_us, 0.0);
        let alloc = Calibration::gtx480_alloc();
        assert!(alloc.malloc_us > 0.0 && alloc.free_us > 0.0);
        // Only the allocation terms differ.
        assert_eq!(Calibration { malloc_us: 0.0, free_us: 0.0, ..alloc }, paper);
    }

    #[test]
    fn more_kernels_cost_more_for_same_work() {
        // The paper's launch-overhead observation: splitting the same dynamic
        // work across k launches adds (k-1) launch overheads.
        let c = Calibration::gtx480();
        let fused = c.kernel_time_us(&stats(9000, 900, 0));
        let split: f64 = (0..3).map(|_| c.kernel_time_us(&stats(3000, 300, 0))).sum();
        assert!(split > fused);
        assert!((split - fused - 2.0 * c.kernel_launch_us).abs() < 1e-9);
    }
}
