//! Analytic cost model for simulated GPU time.
//!
//! The simulator executes kernels functionally and *charges* time with this
//! model. The constants are not microarchitectural truths — they are
//! device-wide effective costs calibrated so that the paper's own measurements
//! on a GTX480 are reproduced in shape (see `EXPERIMENTS.md` for measured vs
//! paper values). The model deliberately keeps only the terms the paper's
//! analysis turns on:
//!
//! * **launch overhead** per kernel — "each kernel launch incurs context
//!   overheads; the more kernels a program executes, the higher this cost",
//! * **DRAM vs L1 pricing** — the first access to an address within a launch
//!   pays [`Calibration::dram_access_ns`]; repeated accesses pay
//!   [`Calibration::l1_access_ns`]. The cache is not persistent across
//!   launches, so "separating computations of the same data array into
//!   different kernels hinders effective data reuse",
//! * **compute throughput** — dynamic instructions at
//!   [`Calibration::instr_ns`] apiece (device-wide amortised),
//! * **PCIe transfers** — latency plus bytes over effective bandwidth,
//!   asymmetric between host→device and device→host as measured in the paper
//!   (Tables I/II imply ≈5.4 GB/s H2D and ≈6.3 GB/s D2H effective).

use crate::device::DeviceConfig;
use crate::exec::{LaunchConfig, LaunchStats};
use crate::profiler::OpClass;
use arrayol::access::TiledAccess;

/// The device resource an operation occupies while it runs.
///
/// A Fermi-class GPU exposes two DMA copy engines (one per PCIe direction)
/// and the SM array; a blocking host step occupies the host CPU. Operations
/// on *different* engines enqueued on *different* streams may overlap;
/// operations on the same engine serialize in enqueue order regardless of
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Engine {
    /// Host→device DMA copy engine.
    H2D = 0,
    /// The SM array executing kernels.
    Compute = 1,
    /// Device→host DMA copy engine.
    D2H = 2,
    /// The host CPU (fallback steps, blocking host work).
    Host = 3,
}

/// Number of distinct engines.
pub const ENGINE_COUNT: usize = 4;

impl Engine {
    /// The engine an operation class occupies.
    pub fn of_class(class: OpClass) -> Engine {
        match class {
            OpClass::H2D => Engine::H2D,
            OpClass::Kernel => Engine::Compute,
            OpClass::D2H => Engine::D2H,
            OpClass::Host => Engine::Host,
        }
    }
}

/// Transfer direction for [`Calibration::transfer_time_us`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Host memory → device memory (`cudaMemcpyHostToDevice`).
    HostToDevice,
    /// Device memory → host memory (`cudaMemcpyDeviceToHost`).
    DeviceToHost,
}

/// Calibrated cost constants for a simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Fixed overhead charged per kernel launch (µs).
    pub kernel_launch_us: f64,
    /// Fixed latency per host→device transfer (µs).
    pub h2d_latency_us: f64,
    /// Effective host→device bandwidth (bytes per µs; 5364 ≈ 5.36 GB/s).
    pub h2d_bytes_per_us: f64,
    /// Fixed latency per device→host transfer (µs).
    pub d2h_latency_us: f64,
    /// Effective device→host bandwidth (bytes per µs).
    pub d2h_bytes_per_us: f64,
    /// Device-wide amortised cost per dynamic instruction (ns).
    pub instr_ns: f64,
    /// Cost per *distinct-address* global memory access in a launch (ns).
    pub dram_access_ns: f64,
    /// Cost per repeated-address access within a launch — an L1 hit (ns).
    pub l1_access_ns: f64,
    /// Cost of a `cudaMalloc`/`clCreateBuffer` that actually reaches the
    /// driver (µs). On Fermi the call also device-synchronizes every stream;
    /// the device models that whenever this is non-zero. Zero disables
    /// allocation charging entirely (no sync, no profiler record), which is
    /// what the paper-calibrated [`Calibration::gtx480`] uses: Tables I/II do
    /// not profile allocation, so charging it would change the reproduced
    /// totals. Enable it with [`Calibration::gtx480_alloc`].
    pub malloc_us: f64,
    /// Cost of a `cudaFree`/`clReleaseMemObject` returning memory to the
    /// driver (µs); like [`Calibration::malloc_us`] it device-synchronizes
    /// when non-zero and is skipped entirely at zero. Pool-cached releases
    /// never pay this — only true driver frees (naive frees and pool
    /// evictions) do.
    pub free_us: f64,
}

impl Calibration {
    /// Constants calibrated against the paper's GTX480 measurements.
    ///
    /// Derivation of the transfer numbers from Table I: 900 H2D transfers of a
    /// 1080×1920 `int` channel plane (8.29 MB) took 1.391 s ⇒ ≈5.4 GB/s;
    /// 900 D2H transfers of a 480×720 plane (1.38 MB) took 0.197 s ⇒
    /// ≈6.3 GB/s. Kernel constants were fit to the per-kernel times implied by
    /// Tables I and II (see DESIGN.md §5, "Cost-model calibration", and EXPERIMENTS.md).
    pub fn gtx480() -> Self {
        Calibration {
            kernel_launch_us: 12.0,
            h2d_latency_us: 15.0,
            h2d_bytes_per_us: 5364.0,
            d2h_latency_us: 15.0,
            d2h_bytes_per_us: 6316.0,
            instr_ns: 0.014,
            dram_access_ns: 0.105,
            l1_access_ns: 0.03,
            malloc_us: 0.0,
            free_us: 0.0,
        }
    }

    /// [`Calibration::gtx480`] plus calibrated Fermi allocation costs.
    ///
    /// On Fermi-generation drivers `cudaMalloc` implies a device
    /// synchronization and costs on the order of 100 µs; `cudaFree` is
    /// cheaper but also synchronizing. The paper's tables never profile
    /// allocation (their host loops allocate once per frame and the cost
    /// hides in "runtime overhead"), so these constants live in a separate
    /// calibration: the memory ablation turns them on to make per-frame
    /// allocation visible, while every paper-facing experiment keeps the
    /// allocation-free [`Calibration::gtx480`] and reproduces bit-exactly.
    pub fn gtx480_alloc() -> Self {
        Calibration { malloc_us: 100.0, free_us: 20.0, ..Self::gtx480() }
    }

    /// A free device: zero-cost everything. Useful in tests that only check
    /// functional results.
    pub fn zero() -> Self {
        Calibration {
            kernel_launch_us: 0.0,
            h2d_latency_us: 0.0,
            h2d_bytes_per_us: f64::INFINITY,
            d2h_latency_us: 0.0,
            d2h_bytes_per_us: f64::INFINITY,
            instr_ns: 0.0,
            dram_access_ns: 0.0,
            l1_access_ns: 0.0,
            malloc_us: 0.0,
            free_us: 0.0,
        }
    }

    /// Simulated duration of a PCIe transfer of `bytes` bytes (µs).
    pub fn transfer_time_us(&self, bytes: usize, dir: Direction) -> f64 {
        let (lat, bw) = match dir {
            Direction::HostToDevice => (self.h2d_latency_us, self.h2d_bytes_per_us),
            Direction::DeviceToHost => (self.d2h_latency_us, self.d2h_bytes_per_us),
        };
        lat + bytes as f64 / bw
    }

    /// Simulated duration of a kernel launch with the given dynamic counts (µs).
    ///
    /// `t = launch + instr·instr_ns + distinct·dram_ns + hits·l1_ns`.
    pub fn kernel_time_us(&self, stats: &LaunchStats) -> f64 {
        let compute_ns = stats.instructions as f64 * self.instr_ns;
        let dram_ns = stats.distinct_accesses as f64 * self.dram_access_ns;
        let l1_ns = stats.l1_hits as f64 * self.l1_access_ns;
        self.kernel_launch_us + (compute_ns + dram_ns + l1_ns) / 1000.0
    }
}

impl Calibration {
    /// Bit-exact equality against another calibration.
    ///
    /// The `PartialEq` derive compares the `f64` fields with IEEE `==`,
    /// which is a surprise the moment a constant is `NaN` (never equal,
    /// even to itself) or a signed zero (`0.0 == -0.0` despite different
    /// bits). Model *identity* therefore never goes through `PartialEq`
    /// anymore — [`CostModel::describe`] names models explicitly — and the
    /// one place that still wants "is this exactly that preset"
    /// (the describe impl itself) compares bit patterns.
    pub fn bit_eq(&self, other: &Calibration) -> bool {
        let fields = |c: &Calibration| {
            [
                c.kernel_launch_us,
                c.h2d_latency_us,
                c.h2d_bytes_per_us,
                c.d2h_latency_us,
                c.d2h_bytes_per_us,
                c.instr_ns,
                c.dram_access_ns,
                c.l1_access_ns,
                c.malloc_us,
                c.free_us,
            ]
            .map(f64::to_bits)
        };
        fields(self) == fields(other)
    }
}

/// Static context of a kernel launch, handed to [`CostModel::kernel_time_us`]
/// alongside the dynamic [`LaunchStats`].
///
/// The paper-faithful [`Calibration`] ignores it entirely (its pricing is
/// device-wide and shape-blind, which is what the published numbers were
/// calibrated against); occupancy-aware models like [`WarpTileModel`] read
/// the device geometry, the launch configuration, and — when the launch came
/// through a [`crate::schedule::PlanKernel`] that carries one — the kernel's
/// [`TiledAccess`] description, whose paving/fitting structure determines
/// memory coalescing.
#[derive(Debug, Clone, Copy)]
pub struct LaunchContext<'a> {
    /// Static description of the device the launch runs on.
    pub device: &'a DeviceConfig,
    /// Grid/block geometry of the launch.
    pub config: LaunchConfig,
    /// The launch's tiled-access description, when the plan layer knows it.
    pub access: Option<&'a TiledAccess>,
}

/// A pluggable pricing model for simulated device time.
///
/// The simulator executes kernels functionally and charges time through one
/// of these; [`Calibration`] is the paper-faithful default implementation
/// and every published golden number is produced under it. Implementations
/// must be *pure functions of their inputs* — the same stats and context
/// always price to the same duration — or timing replay and the golden
/// records stop being exact.
pub trait CostModel: std::fmt::Debug + Send + Sync {
    /// Stable human-readable model name, used in profiler notes and bench
    /// JSON records. Models are identified by this name — never by
    /// comparing parameter structs (see [`Calibration::bit_eq`] for why
    /// `PartialEq` on `f64` fields is not an identity test).
    fn describe(&self) -> String;

    /// Simulated duration of a PCIe transfer of `bytes` bytes (µs).
    fn transfer_time_us(&self, bytes: usize, dir: Direction) -> f64;

    /// Simulated duration of a kernel launch (µs) given its dynamic counts
    /// and static context.
    fn kernel_time_us(&self, stats: &LaunchStats, ctx: &LaunchContext<'_>) -> f64;

    /// Cost of an allocation that reaches the driver (µs). Non-zero values
    /// device-synchronize, modelling Fermi's `cudaMalloc`.
    fn malloc_us(&self) -> f64 {
        0.0
    }

    /// Cost of a free that reaches the driver (µs).
    fn free_us(&self) -> f64 {
        0.0
    }

    /// Clone into a box — lets [`crate::device::Device`] stay `Clone`.
    fn clone_model(&self) -> Box<dyn CostModel>;

    /// Downcast to the paper-faithful calibration, when this model is one.
    /// Lets calibrated experiments read the raw constants without assuming
    /// every device prices through a `Calibration`.
    fn as_calibration(&self) -> Option<&Calibration> {
        None
    }
}

impl CostModel for Calibration {
    fn describe(&self) -> String {
        if self.bit_eq(&Calibration::gtx480()) {
            "paper-gtx480".into()
        } else if self.bit_eq(&Calibration::gtx480_alloc()) {
            "paper-gtx480+alloc".into()
        } else if self.bit_eq(&Calibration::zero()) {
            "zero".into()
        } else {
            "calibration(custom)".into()
        }
    }

    fn transfer_time_us(&self, bytes: usize, dir: Direction) -> f64 {
        Calibration::transfer_time_us(self, bytes, dir)
    }

    fn kernel_time_us(&self, stats: &LaunchStats, _ctx: &LaunchContext<'_>) -> f64 {
        Calibration::kernel_time_us(self, stats)
    }

    fn malloc_us(&self) -> f64 {
        self.malloc_us
    }

    fn free_us(&self) -> f64 {
        self.free_us
    }

    fn clone_model(&self) -> Box<dyn CostModel> {
        Box::new(self.clone())
    }

    fn as_calibration(&self) -> Option<&Calibration> {
        Some(self)
    }
}

/// A clonable boxed cost model — the form [`crate::device::Device`] carries.
#[derive(Debug)]
pub struct BoxedCostModel(pub Box<dyn CostModel>);

impl Clone for BoxedCostModel {
    fn clone(&self) -> Self {
        BoxedCostModel(self.0.clone_model())
    }
}

impl std::ops::Deref for BoxedCostModel {
    type Target = dyn CostModel;
    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl<M: CostModel + 'static> From<M> for BoxedCostModel {
    fn from(m: M) -> Self {
        BoxedCostModel(Box::new(m))
    }
}

/// An occupancy/warp-aware launch pricing model (opt-in).
///
/// Where [`Calibration`] charges device-wide amortised per-instruction and
/// per-access costs, this model prices a launch from the machine geometry in
/// the style of Jangda & Guha's model-based warp costing:
///
/// * **Issue throughput.** The launch's dynamic instructions are spread over
///   the device's `sm_count × cores_per_sm` scalar lanes at one instruction
///   per lane-cycle (`1 / clock_ghz` ns each), derated by occupancy.
/// * **Occupancy.** Warps are `ceil(threads / warp_size)`; the device keeps
///   at most `resident_warps_per_sm × sm_count` warps resident (the
///   registers/shared-memory-free proxy). A launch smaller than one full
///   wave leaves lanes idle: occupancy is the filled fraction of the wave
///   slots its warps round up to, so undersized launches price *worse* per
///   instruction, exactly the effect the flat model cannot express.
/// * **Coalescing.** Distinct-address DRAM traffic is multiplied by a replay
///   factor read from the launch's [`TiledAccess`]: a fitting step of ±1 in
///   the innermost array axis means adjacent work-items touch adjacent
///   addresses (one transaction per warp — factor 1); an innermost stride of
///   `s` replays `min(|s|, warp_size)` transactions; any fitting step that
///   walks a *non*-innermost axis serializes the warp entirely
///   (`warp_size`). Launches without an access description get
///   [`WarpTileModel::default_replay`].
/// * **Transfers and launch overhead** keep the paper's calibrated PCIe and
///   launch constants — the model refines kernel pricing only.
///
/// The model is deliberately coarse (no bank conflicts, no dual issue), but
/// it makes fusion and tiling decisions change simulated time for
/// model-grounded reasons: fusing kernels raises per-launch work and thus
/// occupancy, and composed accesses keep their innermost-stride structure
/// visible to the replay term.
#[derive(Debug, Clone)]
pub struct WarpTileModel {
    /// Fixed overhead charged per kernel launch (µs).
    pub kernel_launch_us: f64,
    /// PCIe pricing (kept from the paper's calibration).
    pub transfer: Calibration,
    /// Resident-warp ceiling per SM (Fermi: 48).
    pub resident_warps_per_sm: usize,
    /// DRAM transaction latency per distinct access before replay (ns).
    pub dram_access_ns: f64,
    /// L1-hit latency (ns).
    pub l1_access_ns: f64,
    /// Replay factor used when a launch carries no access description.
    pub default_replay: f64,
}

impl Default for WarpTileModel {
    fn default() -> Self {
        WarpTileModel {
            kernel_launch_us: Calibration::gtx480().kernel_launch_us,
            transfer: Calibration::gtx480(),
            resident_warps_per_sm: 48,
            dram_access_ns: 0.105,
            l1_access_ns: 0.03,
            default_replay: 4.0,
        }
    }
}

impl WarpTileModel {
    /// The coalescing replay factor for an access description: how many
    /// memory transactions a warp's gather of one pattern step costs,
    /// derived from the signs/strides of the input tiler's fitting matrix.
    pub fn replay_factor(&self, access: Option<&TiledAccess>, warp_size: usize) -> f64 {
        let Some(a) = access else { return self.default_replay };
        // The fitting matrix maps pattern steps to array-index steps: one
        // row per array axis, one column per pattern dimension. The
        // innermost (fastest-varying in memory) axis is the last row.
        let rows = a.in_tiler.fitting.len();
        if rows == 0 {
            return self.default_replay;
        }
        let cols = a.in_tiler.fitting.iter().map(|r| r.len()).max().unwrap_or(0);
        if cols == 0 {
            return self.default_replay;
        }
        // Worst fitting column decides: each column is the array-index step
        // between successive pattern elements a warp gathers together.
        let mut worst = 1.0f64;
        for c in 0..cols {
            let mut non_inner = 0i64;
            let mut inner_step = 0i64;
            for (axis, row) in a.in_tiler.fitting.iter().enumerate() {
                let v = row.get(c).copied().unwrap_or(0);
                if axis == rows - 1 {
                    inner_step = v;
                } else {
                    non_inner += v.abs();
                }
            }
            let f = if non_inner != 0 {
                warp_size as f64
            } else {
                (inner_step.unsigned_abs() as f64).clamp(1.0, warp_size as f64)
            };
            worst = worst.max(f);
        }
        worst
    }
}

impl CostModel for WarpTileModel {
    fn describe(&self) -> String {
        "warp-tile".into()
    }

    fn transfer_time_us(&self, bytes: usize, dir: Direction) -> f64 {
        Calibration::transfer_time_us(&self.transfer, bytes, dir)
    }

    fn kernel_time_us(&self, stats: &LaunchStats, ctx: &LaunchContext<'_>) -> f64 {
        let d = ctx.device;
        let warp = d.warp_size.max(1);
        let threads = stats.threads.max(1) as usize;
        let warps = threads.div_ceil(warp);
        let wave_slots = (d.sm_count * self.resident_warps_per_sm).max(1);
        let waves = warps.div_ceil(wave_slots);
        let occupancy = warps as f64 / (waves * wave_slots) as f64;
        let lanes = (d.sm_count * d.cores_per_sm) as f64;
        let cycle_ns = 1.0 / d.clock_ghz;
        let issue_ns = stats.instructions as f64 * cycle_ns / (lanes * occupancy);
        let replay = self.replay_factor(ctx.access, warp);
        let mem_ns = (stats.distinct_accesses as f64 * self.dram_access_ns * replay
            + stats.l1_hits as f64 * self.l1_access_ns)
            / (d.sm_count as f64 * occupancy);
        self.kernel_launch_us + (issue_ns + mem_ns) / 1000.0
    }

    fn clone_model(&self) -> Box<dyn CostModel> {
        Box::new(self.clone())
    }
}

/// A `Copy` selector for the stock cost models, carried by
/// [`crate::schedule::ExecOptions`] (which must stay `Copy + PartialEq`,
/// so it cannot hold a boxed model directly).
///
/// The default, [`CostModelSpec::Inherit`], leaves the device's current
/// model untouched — the refactor is observationally invisible until an
/// experiment or the autotuner opts into a non-default model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModelSpec {
    /// Keep whatever model the device already has (the default).
    #[default]
    Inherit,
    /// The paper-faithful [`Calibration::gtx480`].
    Paper,
    /// [`Calibration::gtx480_alloc`]: paper constants plus Fermi
    /// allocation costs.
    PaperAlloc,
    /// [`Calibration::zero`]: free everything (functional testing).
    Zero,
    /// The occupancy/coalescing-aware [`WarpTileModel`].
    WarpTile,
}

impl CostModelSpec {
    /// Stable name for JSON records and notes (`Inherit` has none).
    pub fn name(self) -> Option<&'static str> {
        match self {
            CostModelSpec::Inherit => None,
            CostModelSpec::Paper => Some("paper-gtx480"),
            CostModelSpec::PaperAlloc => Some("paper-gtx480+alloc"),
            CostModelSpec::Zero => Some("zero"),
            CostModelSpec::WarpTile => Some("warp-tile"),
        }
    }

    /// Build the selected model; `None` for [`CostModelSpec::Inherit`].
    pub fn instantiate(self) -> Option<Box<dyn CostModel>> {
        match self {
            CostModelSpec::Inherit => None,
            CostModelSpec::Paper => Some(Box::new(Calibration::gtx480())),
            CostModelSpec::PaperAlloc => Some(Box::new(Calibration::gtx480_alloc())),
            CostModelSpec::Zero => Some(Box::new(Calibration::zero())),
            CostModelSpec::WarpTile => Some(Box::new(WarpTileModel::default())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(instr: u64, distinct: u64, hits: u64) -> LaunchStats {
        LaunchStats {
            threads: 0,
            instructions: instr,
            loads: 0,
            stores: 0,
            distinct_accesses: distinct,
            l1_hits: hits,
        }
    }

    #[test]
    fn transfer_time_includes_latency_and_bandwidth() {
        let c = Calibration::gtx480();
        let t = c.transfer_time_us(8_294_400, Direction::HostToDevice);
        // 15 µs latency + 8.29 MB at 5364 B/µs ≈ 1561 µs.
        assert!((t - (15.0 + 8_294_400.0 / 5364.0)).abs() < 1e-9);
        // D2H is faster per byte in the paper's measurements.
        let h = c.transfer_time_us(1_000_000, Direction::HostToDevice);
        let d = c.transfer_time_us(1_000_000, Direction::DeviceToHost);
        assert!(d < h);
    }

    #[test]
    fn kernel_time_has_fixed_launch_floor() {
        let c = Calibration::gtx480();
        assert!((c.kernel_time_us(&stats(0, 0, 0)) - c.kernel_launch_us).abs() < 1e-12);
    }

    #[test]
    fn dram_costs_more_than_l1() {
        let c = Calibration::gtx480();
        let all_dram = c.kernel_time_us(&stats(0, 1000, 0));
        let all_l1 = c.kernel_time_us(&stats(0, 0, 1000));
        assert!(all_dram > all_l1);
    }

    #[test]
    fn zero_calibration_charges_nothing() {
        let c = Calibration::zero();
        assert_eq!(c.transfer_time_us(123456, Direction::DeviceToHost), 0.0);
        assert_eq!(c.kernel_time_us(&stats(1000, 1000, 1000)), 0.0);
    }

    #[test]
    fn alloc_costs_are_opt_in() {
        // The paper-calibrated constants must not charge allocation — every
        // previously reported simulated total depends on it.
        let paper = Calibration::gtx480();
        assert_eq!(paper.malloc_us, 0.0);
        assert_eq!(paper.free_us, 0.0);
        let alloc = Calibration::gtx480_alloc();
        assert!(alloc.malloc_us > 0.0 && alloc.free_us > 0.0);
        // Only the allocation terms differ.
        assert_eq!(Calibration { malloc_us: 0.0, free_us: 0.0, ..alloc }, paper);
    }

    #[test]
    fn more_kernels_cost_more_for_same_work() {
        // The paper's launch-overhead observation: splitting the same dynamic
        // work across k launches adds (k-1) launch overheads.
        let c = Calibration::gtx480();
        let fused = c.kernel_time_us(&stats(9000, 900, 0));
        let split: f64 = (0..3).map(|_| c.kernel_time_us(&stats(3000, 300, 0))).sum();
        assert!(split > fused);
        assert!((split - fused - 2.0 * c.kernel_launch_us).abs() < 1e-9);
    }
}
