//! A fleet of independent simulated devices driven from one shared plan.
//!
//! The simulator is deterministic and cheap, so scale-out is simulated the
//! honest way: a [`Fleet`] owns N fully independent [`Device`]s — each with
//! its own clocks, stream set, memory pool, and profiler — and drives a
//! per-device [`BatchScheduler`] from a *shared* [`LaunchPlan`]. Nothing in
//! the plan or the scheduler is device-count aware, which is exactly the
//! point of the route-agnostic launch-plan layer: one lowered plan runs on
//! any number of devices without either compilation route changing.
//!
//! Fleet-level observability is a roll-up, not a shared object:
//! [`Fleet::merged_profiler`] folds every device's records, spans, notes and
//! allocation counters into one [`Profiler`] via [`Profiler::merge`], and
//! batch runs accumulate their per-device [`RunStats`] with
//! [`RunStats::accumulate`]. Each device's clock starts at zero and advances
//! only with its own work, so [`Fleet::makespan_us`] — the slowest device —
//! is the fleet's batch completion time when all devices start together.
//!
//! Job-level scheduling (arrival traces, admission control, tenant
//! fairness) lives above this module in the `serve` crate; this module only
//! provides the device pool and the static frame-sharding primitive
//! [`Fleet::run_round_robin`].

use crate::cost::Calibration;
use crate::device::{Device, DeviceConfig};
use crate::profiler::Profiler;
use crate::schedule::{
    BatchOutput, BatchScheduler, ExecOptions, LaunchPlan, RunStats, ScheduleError,
};
use mdarray::NdArray;

/// A pool of N independent simulated devices.
#[derive(Debug, Clone)]
pub struct Fleet {
    devices: Vec<Device>,
}

impl Fleet {
    /// A fleet of `n` identical devices built from one config/calibration
    /// pair. Rejects `n == 0` with a typed [`ScheduleError::Config`] — an
    /// empty fleet is a configuration mistake, not a degenerate run.
    pub fn homogeneous(
        n: usize,
        config: DeviceConfig,
        calib: Calibration,
    ) -> Result<Fleet, ScheduleError> {
        if n == 0 {
            return Err(ScheduleError::Config(
                "devices must be >= 1 (1 = the single-device baseline)".into(),
            ));
        }
        Ok(Fleet { devices: (0..n).map(|_| Device::new(config.clone(), calib.clone())).collect() })
    }

    /// A fleet of `n` identical devices pricing time through clones of one
    /// [`CostModel`] — the model-generic counterpart of
    /// [`Fleet::homogeneous`].
    pub fn homogeneous_with_model(
        n: usize,
        config: DeviceConfig,
        model: &dyn crate::cost::CostModel,
    ) -> Result<Fleet, ScheduleError> {
        if n == 0 {
            return Err(ScheduleError::Config(
                "devices must be >= 1 (1 = the single-device baseline)".into(),
            ));
        }
        Ok(Fleet {
            devices: (0..n)
                .map(|_| {
                    Device::with_model(
                        config.clone(),
                        crate::cost::BoxedCostModel(model.clone_model()),
                    )
                })
                .collect(),
        })
    }

    /// A fleet of `n` simulated GTX480s at the paper calibration.
    pub fn gtx480(n: usize) -> Result<Fleet, ScheduleError> {
        Fleet::homogeneous(n, DeviceConfig::gtx480(), Calibration::gtx480())
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Always false: construction rejects empty fleets.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Device `i` (panics when out of range, like slice indexing).
    pub fn device(&self, i: usize) -> &Device {
        &self.devices[i]
    }

    /// Mutable device `i`.
    pub fn device_mut(&mut self, i: usize) -> &mut Device {
        &mut self.devices[i]
    }

    /// All devices, in index order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// All devices, mutably.
    pub fn devices_mut(&mut self) -> &mut [Device] {
        &mut self.devices
    }

    /// Enable or disable the size-class memory pool on every device.
    pub fn set_pool_enabled(&mut self, enabled: bool) {
        for d in &mut self.devices {
            d.set_pool_enabled(enabled);
        }
    }

    /// The slowest device's clock, µs — the fleet's batch completion time
    /// when all devices started at zero together.
    pub fn makespan_us(&self) -> f64 {
        self.devices.iter().map(Device::now_us).fold(0.0, f64::max)
    }

    /// Total busy time across the fleet, µs (the sum of device clocks).
    pub fn total_busy_us(&self) -> f64 {
        self.devices.iter().map(Device::now_us).sum()
    }

    /// Fold every device's profiler into one fleet-level [`Profiler`]: the
    /// roll-up the serving layer reports from. See [`Profiler::merge`] for
    /// the merge semantics (record sums, appended spans/notes, added
    /// allocation counters).
    pub fn merged_profiler(&self) -> Profiler {
        let mut merged = Profiler::new();
        for d in &self.devices {
            merged.merge(&d.profiler);
        }
        merged
    }

    /// Shard a batch of frames round-robin across the fleet (frame `f` runs
    /// on device `f % len`), each device executing its subsequence as one
    /// [`BatchScheduler`] batch over the shared `plan`, and reassemble the
    /// outputs in original frame order.
    ///
    /// The frame→lane assignment inside each device's batch is unchanged
    /// (lane = position `% opts.streams`), and frame results never depend on
    /// which device or lane computed them, so the reassembled outputs are
    /// bit-identical to a single-device run at every fleet width.
    /// [`ExecOptions::total_frames`] replay extends each shard the same way
    /// the frames themselves are dealt: replayed frame `f` is charged to
    /// device `f % len`. Per-device stats are folded into one [`RunStats`].
    pub fn run_round_robin(
        &mut self,
        plan: &LaunchPlan<'_>,
        frames: &[Vec<NdArray<i64>>],
        opts: &ExecOptions,
    ) -> Result<BatchOutput, ScheduleError> {
        opts.validate().map_err(ScheduleError::Config)?;
        let n = self.devices.len();
        // Frame sharding assumes frames are independent; a plan with carries
        // chains frame f+1 on frame f's host result, which round-robin
        // dealing across devices would silently break (each device would
        // thread only its own subsequence). Rejected as configuration, not
        // worked around: a temporal workload needs a single device batch.
        if !plan.carries.is_empty() && n > 1 {
            return Err(ScheduleError::Config(format!(
                "plan carries cross-frame state; round-robin frame sharding across {n} devices \
                 would break the carry chain (run temporal plans on one device)"
            )));
        }
        let total = if opts.total_frames == 0 { frames.len() } else { opts.total_frames };
        if total < frames.len() {
            return Err(ScheduleError::Config(format!(
                "total_frames {total} is less than the {} supplied frames",
                frames.len()
            )));
        }
        let mut stats = RunStats::default();
        let mut outputs: Vec<Option<Vec<NdArray<i64>>>> = vec![None; frames.len()];
        let scheduler = BatchScheduler::new(plan);
        for (d, device) in self.devices.iter_mut().enumerate() {
            let indices: Vec<usize> = (d..frames.len()).step_by(n).collect();
            let shard: Vec<Vec<NdArray<i64>>> =
                indices.iter().map(|&f| frames[f].clone()).collect();
            let shard_total = (d..total).step_by(n).count();
            if shard_total == 0 {
                continue;
            }
            let shard_opts = ExecOptions { total_frames: shard_total, ..*opts };
            let (outs, st) = if shard.is_empty() {
                // A device whose shard is pure replay still needs one
                // functional frame to measure: reuse frame `d % frames.len()`
                // as the template and discard its outputs.
                if frames.is_empty() {
                    continue;
                }
                let probe = vec![frames[d % frames.len()].clone()];
                let (_, st) = scheduler.run(device, &probe, &shard_opts)?;
                (Vec::new(), st)
            } else {
                scheduler.run(device, &shard, &shard_opts)?
            };
            for (&f, out) in indices.iter().zip(outs) {
                outputs[f] = Some(out);
            }
            stats.accumulate(&st);
        }
        let outputs: Vec<Vec<NdArray<i64>>> = outputs
            .into_iter()
            .enumerate()
            .map(|(f, o)| {
                o.ok_or_else(|| ScheduleError::Plan(format!("frame {f} was never executed")))
            })
            .collect::<Result<_, _>>()?;
        Ok((outputs, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::LaunchConfig;
    use crate::kir::{BinOp, Kernel, KernelBuilder, KernelFlavor, Special};
    use crate::schedule::{ArrayDecl, PlanKernel, PlanStep};

    /// x[i] = 2 * x[i].
    fn double_kernel(n: usize) -> (Kernel, LaunchConfig) {
        let mut b = KernelBuilder::new("dbl", KernelFlavor::Cuda);
        let x = b.buffer_param("x", true);
        let gid = b.special(Special::GlobalIdX);
        let v = b.load(x, gid);
        let two = b.constant(2);
        let w = b.bin(BinOp::Mul, v, two);
        b.store(x, gid, w);
        (b.finish(), LaunchConfig::cover_1d(n, n.min(64) as u32))
    }

    fn double_plan(kernel: &Kernel, config: LaunchConfig, n: usize) -> LaunchPlan<'_> {
        LaunchPlan {
            arrays: vec![ArrayDecl { name: "a".into(), shape: vec![n] }],
            inputs: vec![0],
            outputs: vec![0],
            kernels: vec![PlanKernel::new(kernel, config, vec![0])],
            host_ops: Vec::new(),
            steps: vec![
                PlanStep::Upload { array: 0, chunks: 1 },
                PlanStep::Launch { kernel: 0 },
                PlanStep::Download { array: 0, chunks: 1 },
            ],
            prologue: Vec::new(),
            invariant: Vec::new(),
            batches: Vec::new(),
            carries: Vec::new(),
            lane_label: "stream lanes",
        }
    }

    fn frames(count: usize, n: usize) -> Vec<Vec<NdArray<i64>>> {
        (0..count).map(|f| vec![NdArray::from_fn([n], |ix| (f * 100 + ix[0]) as i64)]).collect()
    }

    #[test]
    fn empty_fleet_is_a_typed_config_error() {
        let err = Fleet::gtx480(0);
        assert!(
            matches!(&err, Err(ScheduleError::Config(m)) if m.contains("devices must be >= 1")),
            "{err:?}"
        );
    }

    #[test]
    fn round_robin_sharding_is_bit_identical_at_every_width() {
        let n = 16;
        let (kernel, config) = double_kernel(n);
        let plan = double_plan(&kernel, config, n);
        let fr = frames(7, n);

        let mut single = Fleet::gtx480(1).unwrap();
        let (expect, expect_stats) =
            single.run_round_robin(&plan, &fr, &ExecOptions::default()).unwrap();
        for (f, out) in expect.iter().enumerate() {
            assert_eq!(out[0], NdArray::from_fn([n], |ix| 2 * (f * 100 + ix[0]) as i64));
        }

        for width in [2, 3, 4, 8] {
            let mut fleet = Fleet::gtx480(width).unwrap();
            let (outs, stats) = fleet.run_round_robin(&plan, &fr, &ExecOptions::default()).unwrap();
            assert_eq!(outs, expect, "width {width}");
            assert_eq!(stats, expect_stats, "width {width}");
            // Devices split the work, so the slowest device finishes earlier
            // than the single device did (7 frames over >=2 devices).
            assert!(fleet.makespan_us() < single.makespan_us(), "width {width}");
        }
    }

    #[test]
    fn merged_profiler_rolls_up_all_devices() {
        let n = 16;
        let (kernel, config) = double_kernel(n);
        let plan = double_plan(&kernel, config, n);
        let fr = frames(6, n);

        let mut fleet = Fleet::gtx480(3).unwrap();
        fleet.run_round_robin(&plan, &fr, &ExecOptions::default()).unwrap();
        let merged = fleet.merged_profiler();
        // 6 launches fleet-wide even though each device saw only 2.
        assert_eq!(merged.class_calls(crate::profiler::OpClass::Kernel), 6);
        for d in fleet.devices() {
            assert_eq!(d.profiler.class_calls(crate::profiler::OpClass::Kernel), 2);
        }
        // Busy time rolls up: merged engine busy is the sum over devices.
        let merged_busy = merged.engine_busy_us(crate::profiler::OpClass::Kernel);
        let sum: f64 = fleet
            .devices()
            .iter()
            .map(|d| d.profiler.engine_busy_us(crate::profiler::OpClass::Kernel))
            .sum();
        // Same spans, possibly summed in a different order.
        assert!((merged_busy - sum).abs() < 1e-9, "{merged_busy} vs {sum}");
    }

    #[test]
    fn replay_extends_each_shard_in_deal_order() {
        let n = 16;
        let (kernel, config) = double_kernel(n);
        let plan = double_plan(&kernel, config, n);
        let fr = frames(2, n);

        // 2 functional frames, 10 total over 2 devices: each device replays
        // to its 5-frame shard.
        let mut fleet = Fleet::gtx480(2).unwrap();
        let (outs, stats) = fleet
            .run_round_robin(&plan, &fr, &ExecOptions { total_frames: 10, ..Default::default() })
            .unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(stats.launches, 10);
        // Both devices did the same amount of (uniform-cost) work.
        let d0 = fleet.device(0).now_us();
        let d1 = fleet.device(1).now_us();
        assert_eq!(d0, d1);

        // And the replayed fleet matches a replayed single device per shard:
        // a 5-frame single-device run has the same clock as each device.
        let mut single = Device::gtx480();
        BatchScheduler::new(&plan)
            .run(&mut single, &fr[0..1], &ExecOptions { total_frames: 5, ..Default::default() })
            .unwrap();
        assert_eq!(single.now_us(), d0);
    }

    #[test]
    fn replay_only_shards_still_charge_their_devices() {
        let n = 16;
        let (kernel, config) = double_kernel(n);
        let plan = double_plan(&kernel, config, n);
        // 1 functional frame, 6 total, 3 devices: devices 1 and 2 receive no
        // functional frame but still owe 2 replayed frames each.
        let fr = frames(1, n);
        let mut fleet = Fleet::gtx480(3).unwrap();
        let (outs, stats) = fleet
            .run_round_robin(&plan, &fr, &ExecOptions { total_frames: 6, ..Default::default() })
            .unwrap();
        assert_eq!(outs.len(), 1);
        // The probe frame doubles as the shard's first charged frame, so the
        // fleet launches exactly total_frames kernels — no double counting.
        assert_eq!(stats.launches, 6);
        for d in fleet.devices() {
            assert!(d.now_us() > 0.0);
        }
    }

    #[test]
    fn carry_plans_are_rejected_at_fleet_width_above_one() {
        let n = 16;
        let (kernel, config) = double_kernel(n);
        let mut plan = double_plan(&kernel, config, n);
        plan.carries = vec![crate::schedule::Carry { from: 0, to: 0 }];

        // Width 1 is fine: one device threads the whole chain.
        let mut single = Fleet::gtx480(1).unwrap();
        single.run_round_robin(&plan, &frames(3, n), &ExecOptions::default()).unwrap();

        // Width > 1 would silently break the chain — typed rejection.
        let mut fleet = Fleet::gtx480(2).unwrap();
        let err = fleet.run_round_robin(&plan, &frames(3, n), &ExecOptions::default());
        assert!(
            matches!(&err, Err(ScheduleError::Config(m)) if m.contains("carry chain")),
            "{err:?}"
        );
    }

    #[test]
    fn total_frames_below_supplied_frames_is_rejected() {
        let n = 16;
        let (kernel, config) = double_kernel(n);
        let plan = double_plan(&kernel, config, n);
        let mut fleet = Fleet::gtx480(2).unwrap();
        let err = fleet.run_round_robin(
            &plan,
            &frames(4, n),
            &ExecOptions { total_frames: 2, ..Default::default() },
        );
        assert!(matches!(err, Err(ScheduleError::Config(_))), "{err:?}");
    }
}
