//! Per-operation profiling in the style of the paper's Tables I and II.
//!
//! Every device operation (kernel launch, H2D transfer, D2H transfer, host
//! fallback step) is recorded under a name. [`Profiler::table`] renders a
//! grouped report with the exact columns of the paper:
//!
//! ```text
//! Operation            #calls   GPU time(usec)   GPU time(%)
//! H. Filter (3 kernels)   300           844185         29.51
//! ...
//! Total                     -          2.86sec        100.00
//! ```

use std::collections::BTreeMap;

/// What kind of operation a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpClass {
    /// A kernel launch.
    Kernel,
    /// Host-to-device transfer (`memcpyHtoDasync` in the paper's tables).
    H2D,
    /// Device-to-host transfer (`memcpyDtoHasync`).
    D2H,
    /// Work that fell back to the host CPU (e.g. the generic output tiler).
    Host,
}

/// Accumulated measurements for one named operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Operation name (kernel name or transfer label).
    pub name: String,
    /// Operation kind.
    pub class: OpClass,
    /// Number of invocations recorded.
    pub calls: u64,
    /// Total simulated time, µs.
    pub total_us: f64,
}

/// A named aggregation over records, used to render table rows like
/// "H. Filter (3 kernels)".
#[derive(Debug, Clone)]
pub struct Group {
    /// Row label prefix; kernel count is appended automatically for kernels.
    pub label: String,
    /// Records are included when their name starts with any of these prefixes.
    pub prefixes: Vec<String>,
    /// Restrict matching to this class, if set.
    pub class: Option<OpClass>,
}

impl Group {
    /// Group kernels whose names start with `prefix`.
    pub fn kernels(label: impl Into<String>, prefix: impl Into<String>) -> Self {
        Group { label: label.into(), prefixes: vec![prefix.into()], class: Some(OpClass::Kernel) }
    }

    /// Group all operations of a class regardless of name.
    pub fn class(label: impl Into<String>, class: OpClass) -> Self {
        Group { label: label.into(), prefixes: vec![String::new()], class: Some(class) }
    }
}

/// One rendered table row.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// Row label, e.g. `H. Filter (3 kernels)`.
    pub label: String,
    /// Calls per distinct operation in the group (the paper counts a group of
    /// three per-channel kernels launched 300 times each as "300 calls").
    pub calls: u64,
    /// Total simulated time of the group, µs.
    pub time_us: f64,
    /// Percentage of the grand total.
    pub percent: f64,
}

/// One scheduled interval on the device timeline: operation `name` occupied
/// its engine from `start_us` to `end_us`, enqueued on `stream`.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Operation name (kernel name or transfer label).
    pub name: String,
    /// Operation kind, which determines the engine it occupied.
    pub class: OpClass,
    /// Index of the stream the operation was enqueued on.
    pub stream: usize,
    /// Simulated start time, µs.
    pub start_us: f64,
    /// Simulated duration, µs. Stored directly (rather than an end time) so
    /// the exact charged cost survives — `end − start` can differ from the
    /// charge by an ulp, which would make timing replay inexact.
    pub dur_us: f64,
}

impl Span {
    /// Span duration, µs.
    pub fn duration_us(&self) -> f64 {
        self.dur_us
    }

    /// Simulated completion time, µs.
    pub fn end_us(&self) -> f64 {
        self.start_us + self.dur_us
    }
}

/// Device-memory allocation counters for one run.
///
/// The device updates these on every `malloc`/`free`; [`Profiler::reset`]
/// clears them for a fresh run without touching the device's own allocation
/// accounting (memory stays allocated across a stat reset — only the
/// observation window restarts).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AllocStats {
    /// Allocations that reached the (simulated) driver: naive mallocs plus
    /// pool misses. Pool hits are *not* counted here.
    pub mallocs: u64,
    /// Buffer releases: driver frees plus returns to the pool.
    pub frees: u64,
    /// Allocation requests served from the pool cache.
    pub pool_hits: u64,
    /// Allocation requests the pool could not serve (fell through to the
    /// driver). Zero when pooling is disabled — misses only count against an
    /// active pool.
    pub pool_misses: u64,
    /// Pool-cached blocks evicted back to the driver under memory pressure.
    pub evictions: u64,
    /// Device footprint (live + pool-cached bytes) after the last event.
    pub current_bytes: usize,
    /// High-water footprint over the observation window.
    pub peak_bytes: usize,
}

impl AllocStats {
    /// Pool hit rate in percent (0 when no pooled request was seen).
    pub fn hit_rate_percent(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64 * 100.0
        }
    }
}

/// Collects operation records for one experiment run.
///
/// Records are keyed by `(name, class)` so an operation name reused across
/// classes yields two visible entries instead of silently merging into the
/// class of whichever record came first.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    records: BTreeMap<(String, OpClass), Record>,
    spans: Vec<Span>,
    /// Allocation counters for the current run (see [`AllocStats`]).
    pub alloc: AllocStats,
    notes: Vec<String>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one invocation of `name` taking `us` simulated microseconds.
    pub fn record(&mut self, name: &str, class: OpClass, us: f64) {
        let r = self.records.entry((name.to_string(), class)).or_insert_with(|| Record {
            name: name.to_string(),
            class,
            calls: 0,
            total_us: 0.0,
        });
        r.calls += 1;
        r.total_us += us;
    }

    /// Record a scheduled timeline interval (engine occupancy of one op).
    pub fn record_span(
        &mut self,
        name: &str,
        class: OpClass,
        stream: usize,
        start_us: f64,
        dur_us: f64,
    ) {
        self.spans.push(Span { name: name.to_string(), class, stream, start_us, dur_us });
    }

    /// All records, sorted by name (then class, for colliding names).
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.records.values()
    }

    /// All timeline spans in enqueue order (empty unless the device's
    /// stream-aware entry points were used).
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }

    /// Total simulated time across all records, µs.
    pub fn total_us(&self) -> f64 {
        self.records.values().map(|r| r.total_us).sum()
    }

    /// Total time of records matching a class, µs.
    pub fn class_total_us(&self, class: OpClass) -> f64 {
        self.records.values().filter(|r| r.class == class).map(|r| r.total_us).sum()
    }

    /// Total call count of records matching a class — e.g. the number of
    /// kernel launches a run performed, the metric fusion ablations compare.
    pub fn class_calls(&self, class: OpClass) -> u64 {
        self.records.values().filter(|r| r.class == class).map(|r| r.calls).sum()
    }

    /// Attach a free-form observation to the run (a degraded transfer, an
    /// OOM retry). Notes are part of the run's report, not of its timing:
    /// recording one never changes any simulated clock or record.
    pub fn note(&mut self, msg: impl Into<String>) {
        self.notes.push(msg.into());
    }

    /// Notes recorded this run, in order.
    pub fn notes(&self) -> impl Iterator<Item = &str> {
        self.notes.iter().map(String::as_str)
    }

    /// Forget everything (records, spans, allocation stats, notes) — the
    /// per-run stat reset.
    pub fn reset(&mut self) {
        self.records.clear();
        self.spans.clear();
        self.alloc = AllocStats::default();
        self.notes.clear();
    }

    /// Multiply every record's call count and time by `factor` — used to
    /// extrapolate a single simulated frame to an N-frame run (per-frame cost
    /// is content-independent under the cost model, so this is exact for
    /// *serialized* runs). Allocation event counters scale the same way;
    /// byte watermarks do not (the footprint of one frame is the footprint
    /// of N). Timeline spans are left untouched: extrapolating an overlapped
    /// timeline requires rescheduling, not scaling — use the executors'
    /// replay support for that.
    pub fn scale(&mut self, factor: u64) {
        for r in self.records.values_mut() {
            r.calls *= factor;
            r.total_us *= factor as f64;
        }
        self.alloc.mallocs *= factor;
        self.alloc.frees *= factor;
        self.alloc.pool_hits *= factor;
        self.alloc.pool_misses *= factor;
        self.alloc.evictions *= factor;
    }

    /// Fold another profiler's observations into this one — the fleet-level
    /// roll-up: records merge by `(name, class)` (calls and times sum), spans
    /// and notes are appended, and allocation counters add up (byte
    /// watermarks sum too: each device's footprint is independent memory, so
    /// the fleet's peak is the sum of per-device peaks at worst).
    ///
    /// Merged *span* times keep each contributor's own clock (every device
    /// starts at 0), so per-engine busy sums stay meaningful across the
    /// merge while [`Profiler::makespan_us`] of a merged profiler is the
    /// slowest device's makespan, not a wall-clock union.
    pub fn merge(&mut self, other: &Profiler) {
        for r in other.records.values() {
            let e = self.records.entry((r.name.clone(), r.class)).or_insert_with(|| Record {
                name: r.name.clone(),
                class: r.class,
                calls: 0,
                total_us: 0.0,
            });
            e.calls += r.calls;
            e.total_us += r.total_us;
        }
        self.spans.extend(other.spans.iter().cloned());
        self.notes.extend(other.notes.iter().cloned());
        self.alloc.mallocs += other.alloc.mallocs;
        self.alloc.frees += other.alloc.frees;
        self.alloc.pool_hits += other.alloc.pool_hits;
        self.alloc.pool_misses += other.alloc.pool_misses;
        self.alloc.evictions += other.alloc.evictions;
        self.alloc.current_bytes += other.alloc.current_bytes;
        self.alloc.peak_bytes += other.alloc.peak_bytes;
    }

    /// Timeline makespan: the latest span completion time, µs (0 when no
    /// spans were recorded).
    pub fn makespan_us(&self) -> f64 {
        self.spans.iter().map(|s| s.end_us()).fold(0.0, f64::max)
    }

    /// Busy time of the engine serving `class` — the summed duration of its
    /// spans, µs. Engines never run two spans at once, so this is also its
    /// occupied wall-clock.
    pub fn engine_busy_us(&self, class: OpClass) -> f64 {
        // fold from +0.0: `Sum for f64` starts at -0.0, which renders as "-0".
        self.spans
            .iter()
            .filter(|s| s.class == class)
            .map(|s| s.duration_us())
            .fold(0.0, |a, b| a + b)
    }

    /// How much engine busy time the timeline hid by overlapping, percent:
    /// `100·(Σ durations − makespan)/Σ durations`. A fully serialized
    /// timeline scores 0; perfect three-way overlap approaches 66.7.
    pub fn overlap_percent(&self) -> f64 {
        let total: f64 = self.spans.iter().map(|s| s.duration_us()).sum();
        if total <= 0.0 {
            return 0.0;
        }
        ((total - self.makespan_us()) / total * 100.0).max(0.0)
    }

    /// The chain of spans that determines the makespan: starting from the
    /// last span to finish, repeatedly steps to a span finishing exactly when
    /// the current one starts (same stream preferred, then same engine) until
    /// no predecessor abuts. Returned in execution order.
    pub fn critical_path(&self) -> Vec<&Span> {
        const EPS: f64 = 1e-9;
        let mut chain: Vec<&Span> = Vec::new();
        let Some(mut cur) = self.spans.iter().max_by(|a, b| a.end_us().total_cmp(&b.end_us()))
        else {
            return chain;
        };
        chain.push(cur);
        loop {
            let abuts = |s: &&Span| {
                (s.end_us() - cur.start_us).abs() < EPS
                    && s.duration_us() >= 0.0
                    && !std::ptr::eq(*s, cur)
            };
            let pred = self
                .spans
                .iter()
                .filter(abuts)
                .max_by_key(|s| (s.stream == cur.stream, s.class == cur.class));
            match pred {
                Some(p) => {
                    chain.push(p);
                    cur = p;
                }
                None => break,
            }
        }
        chain.reverse();
        chain
    }

    /// Render the timeline summary: per-engine busy time and utilisation,
    /// overlap percentage, and the critical path.
    pub fn timeline_table(&self) -> String {
        let makespan = self.makespan_us();
        let mut out = String::new();
        out.push_str(&format!("{:<10} {:>14} {:>10}\n", "Engine", "busy(usec)", "busy(%)"));
        for (label, class) in [
            ("H2D", OpClass::H2D),
            ("Compute", OpClass::Kernel),
            ("D2H", OpClass::D2H),
            ("Host", OpClass::Host),
        ] {
            let busy = self.engine_busy_us(class);
            let pct = if makespan > 0.0 { busy / makespan * 100.0 } else { 0.0 };
            out.push_str(&format!("{label:<10} {busy:>14.0} {pct:>10.2}\n"));
        }
        out.push_str(&format!(
            "makespan {:.0} usec, overlap {:.2}%\n",
            makespan,
            self.overlap_percent()
        ));
        if self.alloc.mallocs + self.alloc.pool_hits > 0 {
            out.push_str(&format!(
                "alloc: {} mallocs, pool hit {:.1}%, peak {} B\n",
                self.alloc.mallocs,
                self.alloc.hit_rate_percent(),
                self.alloc.peak_bytes
            ));
        }
        let path = self.critical_path();
        if !path.is_empty() {
            out.push_str(&format!("critical path ({} ops): ", path.len()));
            let mut names: Vec<String> =
                path.iter().map(|s| format!("{}@s{}", s.name, s.stream)).collect();
            if names.len() > 8 {
                let tail = names.split_off(names.len() - 3);
                names.truncate(3);
                names.push("...".into());
                names.extend(tail);
            }
            out.push_str(&names.join(" -> "));
            out.push('\n');
        }
        out
    }

    /// Render the allocation report: event counters, pool hit rate,
    /// current/peak footprint, and any notes recorded during the run.
    pub fn memory_table(&self) -> String {
        let a = &self.alloc;
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
            "Alloc", "mallocs", "frees", "hits", "misses", "evicted"
        ));
        out.push_str(&format!(
            "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
            "", a.mallocs, a.frees, a.pool_hits, a.pool_misses, a.evictions
        ));
        out.push_str(&format!(
            "pool hit rate {:.1}%, current {} B, peak {} B\n",
            a.hit_rate_percent(),
            a.current_bytes,
            a.peak_bytes
        ));
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Aggregate records into the given groups.
    ///
    /// Each group row reports `calls` as *launches per distinct operation*
    /// (matching the paper's convention) and its share of the profiler total.
    pub fn rows(&self, groups: &[Group]) -> Vec<TableRow> {
        let total = self.total_us();
        groups
            .iter()
            .map(|g| {
                let members: Vec<&Record> = self
                    .records
                    .values()
                    .filter(|r| {
                        g.class.is_none_or(|c| r.class == c)
                            && g.prefixes.iter().any(|p| r.name.starts_with(p.as_str()))
                    })
                    .collect();
                let time_us: f64 = members.iter().map(|r| r.total_us).sum();
                let calls_total: u64 = members.iter().map(|r| r.calls).sum();
                let distinct = members.len().max(1) as u64;
                let label = if g.class == Some(OpClass::Kernel) && !members.is_empty() {
                    format!("{} ({} kernels)", g.label, members.len())
                } else {
                    g.label.clone()
                };
                TableRow {
                    label,
                    // Round, don't truncate: groups whose members were called
                    // unevenly report the nearest per-op count.
                    calls: (calls_total as f64 / distinct as f64).round() as u64,
                    time_us,
                    percent: if total > 0.0 { time_us / total * 100.0 } else { 0.0 },
                }
            })
            .collect()
    }

    /// Render the grouped report as a formatted table (paper Tables I/II).
    pub fn table(&self, groups: &[Group]) -> String {
        let rows = self.rows(groups);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>8} {:>16} {:>12}\n",
            "Operation", "#calls", "GPU time(usec)", "GPU time(%)"
        ));
        for r in &rows {
            out.push_str(&format!(
                "{:<28} {:>8} {:>16.0} {:>12.2}\n",
                r.label, r.calls, r.time_us, r.percent
            ));
        }
        out.push_str(&format!(
            "{:<28} {:>8} {:>15.2}s {:>12.2}\n",
            "Total",
            "-",
            self.total_us() / 1e6,
            100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profiler {
        let mut p = Profiler::new();
        for _ in 0..300 {
            p.record("hf_r", OpClass::Kernel, 900.0);
            p.record("hf_g", OpClass::Kernel, 900.0);
            p.record("hf_b", OpClass::Kernel, 1000.0);
            for _ in 0..3 {
                p.record("memcpyHtoDasync", OpClass::H2D, 1500.0);
            }
        }
        p
    }

    #[test]
    fn totals_accumulate() {
        let p = sample();
        assert!((p.total_us() - 300.0 * (2800.0 + 4500.0)).abs() < 1e-6);
        assert!((p.class_total_us(OpClass::H2D) - 900.0 * 1500.0).abs() < 1e-6);
    }

    #[test]
    fn class_calls_count_launches() {
        let p = sample();
        assert_eq!(p.class_calls(OpClass::Kernel), 900);
        assert_eq!(p.class_calls(OpClass::H2D), 900);
        assert_eq!(p.class_calls(OpClass::D2H), 0);
    }

    #[test]
    fn kernel_groups_report_per_kernel_calls_and_counts() {
        let p = sample();
        let rows = p.rows(&[
            Group::kernels("H. Filter", "hf_"),
            Group::class("memcpyHtoDasync", OpClass::H2D),
        ]);
        assert_eq!(rows[0].label, "H. Filter (3 kernels)");
        assert_eq!(rows[0].calls, 300);
        assert!((rows[0].time_us - 300.0 * 2800.0).abs() < 1e-6);
        assert_eq!(rows[1].calls, 900);
        let pct_sum = rows[0].percent + rows[1].percent;
        assert!((pct_sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_paper_columns() {
        let p = sample();
        let t = p.table(&[Group::kernels("H. Filter", "hf_")]);
        assert!(t.contains("Operation"), "{t}");
        assert!(t.contains("GPU time(usec)"), "{t}");
        assert!(t.contains("H. Filter (3 kernels)"), "{t}");
        assert!(t.contains("Total"), "{t}");
    }

    #[test]
    fn reset_clears_records() {
        let mut p = sample();
        p.reset();
        assert_eq!(p.total_us(), 0.0);
        assert_eq!(p.records().count(), 0);
    }

    #[test]
    fn empty_profiler_renders_zero_total() {
        let p = Profiler::new();
        let rows = p.rows(&[Group::kernels("X", "x_")]);
        assert_eq!(rows[0].time_us, 0.0);
        assert_eq!(rows[0].percent, 0.0);
    }

    #[test]
    fn name_reused_across_classes_keeps_both_records() {
        let mut p = Profiler::new();
        p.record("tiler", OpClass::Kernel, 10.0);
        p.record("tiler", OpClass::Host, 90.0);
        let recs: Vec<&Record> = p.records().collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(p.class_total_us(OpClass::Kernel), 10.0);
        assert_eq!(p.class_total_us(OpClass::Host), 90.0);
    }

    #[test]
    fn uneven_group_calls_round_to_nearest() {
        // Two kernels called 2 and 3 times: 5/2 = 2.5 rounds to 3 (the old
        // code truncated to 2).
        let mut p = Profiler::new();
        p.record("k_a", OpClass::Kernel, 1.0);
        p.record("k_a", OpClass::Kernel, 1.0);
        for _ in 0..3 {
            p.record("k_b", OpClass::Kernel, 1.0);
        }
        let rows = p.rows(&[Group::kernels("K", "k_")]);
        assert_eq!(rows[0].calls, 3);
    }

    fn timeline() -> Profiler {
        let mut p = Profiler::new();
        // Two-stream double buffer: uploads on the H2D engine back-to-back,
        // kernels overlap the next upload.
        p.record_span("up0", OpClass::H2D, 0, 0.0, 100.0);
        p.record_span("k0", OpClass::Kernel, 0, 100.0, 150.0);
        p.record_span("up1", OpClass::H2D, 1, 100.0, 100.0);
        p.record_span("k1", OpClass::Kernel, 1, 250.0, 150.0);
        p.record_span("down1", OpClass::D2H, 1, 400.0, 80.0);
        p
    }

    #[test]
    fn timeline_metrics_reflect_overlap() {
        let p = timeline();
        assert_eq!(p.makespan_us(), 480.0);
        assert_eq!(p.engine_busy_us(OpClass::H2D), 200.0);
        assert_eq!(p.engine_busy_us(OpClass::Kernel), 300.0);
        // Σ durations = 580, makespan 480 ⇒ 100·100/580 ≈ 17.24 % hidden.
        assert!((p.overlap_percent() - 100.0 * 100.0 / 580.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_follows_abutting_spans() {
        let p = timeline();
        let names: Vec<&str> = p.critical_path().iter().map(|s| s.name.as_str()).collect();
        // down1 starts when k1 ends, k1 when k0 ends, k0 when up0 ends.
        assert_eq!(names, vec!["up0", "k0", "k1", "down1"]);
    }

    #[test]
    fn timeline_table_renders_engines_and_path() {
        let p = timeline();
        let t = p.timeline_table();
        assert!(t.contains("Engine"), "{t}");
        assert!(t.contains("makespan 480 usec"), "{t}");
        assert!(t.contains("critical path (4 ops): up0@s0 -> k0@s0 -> k1@s1 -> down1@s1"), "{t}");
    }

    #[test]
    fn scale_multiplies_records_but_not_spans() {
        let mut p = timeline();
        p.record("k0", OpClass::Kernel, 150.0);
        p.scale(10);
        assert_eq!(p.total_us(), 1500.0);
        assert_eq!(p.spans().count(), 5);
        assert_eq!(p.makespan_us(), 480.0);
    }

    #[test]
    fn alloc_stats_scale_and_reset() {
        let mut p = Profiler::new();
        p.alloc = AllocStats {
            mallocs: 3,
            frees: 3,
            pool_hits: 6,
            pool_misses: 2,
            evictions: 1,
            current_bytes: 4096,
            peak_bytes: 8192,
        };
        assert!((p.alloc.hit_rate_percent() - 75.0).abs() < 1e-12);
        p.scale(10);
        assert_eq!(p.alloc.mallocs, 30);
        assert_eq!(p.alloc.pool_hits, 60);
        // Byte watermarks are footprints, not event counts.
        assert_eq!(p.alloc.peak_bytes, 8192);
        p.note("degraded");
        p.reset();
        assert_eq!(p.alloc, AllocStats::default());
        assert_eq!(p.notes().count(), 0);
    }

    #[test]
    fn memory_table_renders_counters_and_notes() {
        let mut p = Profiler::new();
        p.alloc = AllocStats {
            mallocs: 4,
            pool_hits: 12,
            pool_misses: 4,
            peak_bytes: 1024,
            ..AllocStats::default()
        };
        p.note("chunked transfer fell back to 1 chunk");
        let t = p.memory_table();
        assert!(t.contains("mallocs"), "{t}");
        assert!(t.contains("pool hit rate 75.0%"), "{t}");
        assert!(t.contains("note: chunked transfer fell back"), "{t}");
    }

    #[test]
    fn empty_alloc_stats_have_zero_hit_rate() {
        assert_eq!(AllocStats::default().hit_rate_percent(), 0.0);
    }

    #[test]
    fn merge_folds_records_spans_notes_and_alloc() {
        let mut a = Profiler::new();
        a.record("k", OpClass::Kernel, 10.0);
        a.record_span("k", OpClass::Kernel, 0, 0.0, 10.0);
        a.note("from a");
        a.alloc.mallocs = 2;
        a.alloc.peak_bytes = 100;

        let mut b = Profiler::new();
        b.record("k", OpClass::Kernel, 5.0);
        b.record("up", OpClass::H2D, 7.0);
        b.record_span("up", OpClass::H2D, 0, 0.0, 7.0);
        b.note("from b");
        b.alloc.mallocs = 3;
        b.alloc.peak_bytes = 50;

        a.merge(&b);
        let k = a.records().find(|r| r.name == "k").unwrap();
        assert_eq!((k.calls, k.total_us), (2, 15.0));
        assert_eq!(a.class_total_us(OpClass::H2D), 7.0);
        assert_eq!(a.spans().count(), 2);
        assert_eq!(a.notes().collect::<Vec<_>>(), vec!["from a", "from b"]);
        assert_eq!(a.alloc.mallocs, 5);
        assert_eq!(a.alloc.peak_bytes, 150);
        // The merged-into profiler changed; the source is untouched.
        assert_eq!(b.records().count(), 2);
    }
}
