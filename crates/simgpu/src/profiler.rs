//! Per-operation profiling in the style of the paper's Tables I and II.
//!
//! Every device operation (kernel launch, H2D transfer, D2H transfer, host
//! fallback step) is recorded under a name. [`Profiler::table`] renders a
//! grouped report with the exact columns of the paper:
//!
//! ```text
//! Operation            #calls   GPU time(usec)   GPU time(%)
//! H. Filter (3 kernels)   300           844185         29.51
//! ...
//! Total                     -          2.86sec        100.00
//! ```

use std::collections::BTreeMap;

/// What kind of operation a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpClass {
    /// A kernel launch.
    Kernel,
    /// Host-to-device transfer (`memcpyHtoDasync` in the paper's tables).
    H2D,
    /// Device-to-host transfer (`memcpyDtoHasync`).
    D2H,
    /// Work that fell back to the host CPU (e.g. the generic output tiler).
    Host,
}

/// Accumulated measurements for one named operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Operation name (kernel name or transfer label).
    pub name: String,
    /// Operation kind.
    pub class: OpClass,
    /// Number of invocations recorded.
    pub calls: u64,
    /// Total simulated time, µs.
    pub total_us: f64,
}

/// A named aggregation over records, used to render table rows like
/// "H. Filter (3 kernels)".
#[derive(Debug, Clone)]
pub struct Group {
    /// Row label prefix; kernel count is appended automatically for kernels.
    pub label: String,
    /// Records are included when their name starts with any of these prefixes.
    pub prefixes: Vec<String>,
    /// Restrict matching to this class, if set.
    pub class: Option<OpClass>,
}

impl Group {
    /// Group kernels whose names start with `prefix`.
    pub fn kernels(label: impl Into<String>, prefix: impl Into<String>) -> Self {
        Group { label: label.into(), prefixes: vec![prefix.into()], class: Some(OpClass::Kernel) }
    }

    /// Group all operations of a class regardless of name.
    pub fn class(label: impl Into<String>, class: OpClass) -> Self {
        Group { label: label.into(), prefixes: vec![String::new()], class: Some(class) }
    }
}

/// One rendered table row.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// Row label, e.g. `H. Filter (3 kernels)`.
    pub label: String,
    /// Calls per distinct operation in the group (the paper counts a group of
    /// three per-channel kernels launched 300 times each as "300 calls").
    pub calls: u64,
    /// Total simulated time of the group, µs.
    pub time_us: f64,
    /// Percentage of the grand total.
    pub percent: f64,
}

/// Collects operation records for one experiment run.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    records: BTreeMap<String, Record>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one invocation of `name` taking `us` simulated microseconds.
    pub fn record(&mut self, name: &str, class: OpClass, us: f64) {
        let r = self.records.entry(name.to_string()).or_insert_with(|| Record {
            name: name.to_string(),
            class,
            calls: 0,
            total_us: 0.0,
        });
        debug_assert_eq!(r.class, class, "operation '{name}' recorded under two classes");
        r.calls += 1;
        r.total_us += us;
    }

    /// All records, sorted by name.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.records.values()
    }

    /// Total simulated time across all records, µs.
    pub fn total_us(&self) -> f64 {
        self.records.values().map(|r| r.total_us).sum()
    }

    /// Total time of records matching a class, µs.
    pub fn class_total_us(&self, class: OpClass) -> f64 {
        self.records.values().filter(|r| r.class == class).map(|r| r.total_us).sum()
    }

    /// Forget everything.
    pub fn reset(&mut self) {
        self.records.clear();
    }

    /// Multiply every record's call count and time by `factor` — used to
    /// extrapolate a single simulated frame to an N-frame run (per-frame cost
    /// is content-independent under the cost model, so this is exact).
    pub fn scale(&mut self, factor: u64) {
        for r in self.records.values_mut() {
            r.calls *= factor;
            r.total_us *= factor as f64;
        }
    }

    /// Aggregate records into the given groups.
    ///
    /// Each group row reports `calls` as *launches per distinct operation*
    /// (matching the paper's convention) and its share of the profiler total.
    pub fn rows(&self, groups: &[Group]) -> Vec<TableRow> {
        let total = self.total_us();
        groups
            .iter()
            .map(|g| {
                let members: Vec<&Record> = self
                    .records
                    .values()
                    .filter(|r| {
                        g.class.is_none_or(|c| r.class == c)
                            && g.prefixes.iter().any(|p| r.name.starts_with(p.as_str()))
                    })
                    .collect();
                let time_us: f64 = members.iter().map(|r| r.total_us).sum();
                let calls_total: u64 = members.iter().map(|r| r.calls).sum();
                let distinct = members.len().max(1) as u64;
                let label = if g.class == Some(OpClass::Kernel) && !members.is_empty() {
                    format!("{} ({} kernels)", g.label, members.len())
                } else {
                    g.label.clone()
                };
                TableRow {
                    label,
                    calls: calls_total / distinct,
                    time_us,
                    percent: if total > 0.0 { time_us / total * 100.0 } else { 0.0 },
                }
            })
            .collect()
    }

    /// Render the grouped report as a formatted table (paper Tables I/II).
    pub fn table(&self, groups: &[Group]) -> String {
        let rows = self.rows(groups);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>8} {:>16} {:>12}\n",
            "Operation", "#calls", "GPU time(usec)", "GPU time(%)"
        ));
        for r in &rows {
            out.push_str(&format!(
                "{:<28} {:>8} {:>16.0} {:>12.2}\n",
                r.label, r.calls, r.time_us, r.percent
            ));
        }
        out.push_str(&format!(
            "{:<28} {:>8} {:>15.2}s {:>12.2}\n",
            "Total",
            "-",
            self.total_us() / 1e6,
            100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profiler {
        let mut p = Profiler::new();
        for _ in 0..300 {
            p.record("hf_r", OpClass::Kernel, 900.0);
            p.record("hf_g", OpClass::Kernel, 900.0);
            p.record("hf_b", OpClass::Kernel, 1000.0);
            for _ in 0..3 {
                p.record("memcpyHtoDasync", OpClass::H2D, 1500.0);
            }
        }
        p
    }

    #[test]
    fn totals_accumulate() {
        let p = sample();
        assert!((p.total_us() - 300.0 * (2800.0 + 4500.0)).abs() < 1e-6);
        assert!((p.class_total_us(OpClass::H2D) - 900.0 * 1500.0).abs() < 1e-6);
    }

    #[test]
    fn kernel_groups_report_per_kernel_calls_and_counts() {
        let p = sample();
        let rows = p.rows(&[
            Group::kernels("H. Filter", "hf_"),
            Group::class("memcpyHtoDasync", OpClass::H2D),
        ]);
        assert_eq!(rows[0].label, "H. Filter (3 kernels)");
        assert_eq!(rows[0].calls, 300);
        assert!((rows[0].time_us - 300.0 * 2800.0).abs() < 1e-6);
        assert_eq!(rows[1].calls, 900);
        let pct_sum = rows[0].percent + rows[1].percent;
        assert!((pct_sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_paper_columns() {
        let p = sample();
        let t = p.table(&[Group::kernels("H. Filter", "hf_")]);
        assert!(t.contains("Operation"), "{t}");
        assert!(t.contains("GPU time(usec)"), "{t}");
        assert!(t.contains("H. Filter (3 kernels)"), "{t}");
        assert!(t.contains("Total"), "{t}");
    }

    #[test]
    fn reset_clears_records() {
        let mut p = sample();
        p.reset();
        assert_eq!(p.total_us(), 0.0);
        assert_eq!(p.records().count(), 0);
    }

    #[test]
    fn empty_profiler_renders_zero_total() {
        let p = Profiler::new();
        let rows = p.rows(&[Group::kernels("X", "x_")]);
        assert_eq!(rows[0].time_us, 0.0);
        assert_eq!(rows[0].percent, 0.0);
    }
}
