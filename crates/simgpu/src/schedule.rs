//! Route-agnostic launch plans and the batch scheduler that executes them.
//!
//! Both compilation routes of the study — SaC→CUDA and the GASPARD2 MDE
//! chain → OpenCL — bottom out in the same GPU execution shape: per frame,
//! upload source arrays, launch a fixed kernel sequence, read results back,
//! with occasional host-side fallback steps in between. This module captures
//! that shape once, as data:
//!
//! * [`LaunchPlan`] — the route-agnostic per-frame IR: declared arrays,
//!   which of them are frame inputs/outputs, the kernel table, and an
//!   ordered list of [`PlanStep`]s (`Upload`/`Alloc`/`Launch`/`Download`/
//!   `Host`). Buffer lifetimes are implied by the step order and checked up
//!   front by [`LaunchPlan::validate`].
//! * [`BatchScheduler`] — the single executor both routes lower onto. It
//!   owns everything the routes used to duplicate: multi-stream lane
//!   assignment with double-buffered frame pipelining, per-lane buffer sets,
//!   the out-of-memory degradation ladder (halve lanes, free, note, retry),
//!   chunked transfers, timing replay of measured frames, and
//!   [`RunStats`]/profiler accounting.
//!
//! A route front end builds a `LaunchPlan` from its own program
//! representation (a compiled WITH-loop plan, a scheduled component model)
//! and hands it to the scheduler; everything below the plan is shared, so
//! stream pipelining, pooled allocation and OOM degradation land once and
//! apply to every route.

use crate::device::{BufferId, Device, EventId, StreamId};
use crate::exec::LaunchConfig;
use crate::kir::{Kernel, KernelArg, Param};
use crate::profiler::OpClass;
use crate::SimError;
use mdarray::NdArray;

/// A device array declared by a [`LaunchPlan`], identified by its index in
/// [`LaunchPlan::arrays`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Human-readable name, used in diagnostics.
    pub name: String,
    /// Array shape; the element count is its product.
    pub shape: Vec<usize>,
}

impl ArrayDecl {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    /// Whether the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One ordered step of a [`LaunchPlan`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStep {
    /// Transfer a host-resident array to the device (allocating its buffer
    /// on first use) as `chunks` back-to-back transfers.
    Upload {
        /// Array id.
        array: usize,
        /// Requested transfer chunks (see [`chunks_for`]).
        chunks: usize,
    },
    /// Allocate a device buffer for a kernel output (no-op if it exists).
    Alloc {
        /// Array id.
        array: usize,
    },
    /// Launch a kernel from the plan's kernel table.
    Launch {
        /// Index into [`LaunchPlan::kernels`].
        kernel: usize,
    },
    /// Transfer a device array back to the host as `chunks` transfers.
    Download {
        /// Array id.
        array: usize,
        /// Requested transfer chunks (see [`chunks_for`]).
        chunks: usize,
    },
    /// Run a host-side fallback step from the plan's host-op table.
    Host {
        /// Index into [`LaunchPlan::host_ops`].
        op: usize,
    },
    /// Upload several arrays as one batched transfer (one latency for the
    /// summed bytes). Produced by the planopt coalescing pass; routes do not
    /// emit it directly.
    UploadBatch {
        /// Index into [`LaunchPlan::batches`] naming the arrays, in order.
        batch: usize,
    },
    /// Download several arrays as one batched transfer — the D2H counterpart
    /// of [`PlanStep::UploadBatch`].
    DownloadBatch {
        /// Index into [`LaunchPlan::batches`] naming the arrays, in order.
        batch: usize,
    },
}

/// A kernel the plan can launch: executable IR plus its launch configuration
/// and the array ids bound to its buffer parameters, in parameter order.
#[derive(Debug, Clone)]
pub struct PlanKernel<'a> {
    /// The executable kernel IR — borrowed from the route's compiled program,
    /// or owned when a planopt pass (kernel fusion) synthesised it.
    pub kernel: std::borrow::Cow<'a, Kernel>,
    /// Grid/block configuration.
    pub config: LaunchConfig,
    /// Array ids bound to the kernel's buffer parameters, in order.
    pub args: Vec<usize>,
    /// How the launch touches its arrays in the o/F/P vocabulary, when the
    /// route frontend could describe it (single input, single output,
    /// tiler-addressed). The planopt `fusion` pass composes adjacent
    /// descriptions; launches without one are simply never fused.
    pub access: Option<arrayol::access::TiledAccess>,
}

impl<'a> PlanKernel<'a> {
    /// A plan kernel borrowing route-compiled IR, with no access description.
    pub fn new(kernel: &'a Kernel, config: LaunchConfig, args: Vec<usize>) -> Self {
        PlanKernel { kernel: std::borrow::Cow::Borrowed(kernel), config, args, access: None }
    }

    /// Attach a tiled-access description (builder style).
    pub fn with_access(mut self, access: arrayol::access::TiledAccess) -> Self {
        self.access = Some(access);
        self
    }
}

impl PlanKernel<'_> {
    /// Array ids bound to *writable* buffer parameters — the arrays a launch
    /// of this kernel may modify on the device. Used by the residency walk
    /// (a device write leaves any host copy stale) and by the planopt
    /// passes.
    pub fn written_args(&self) -> impl Iterator<Item = usize> + '_ {
        self.kernel
            .params
            .iter()
            .filter(|p| matches!(p, Param::Buffer { .. }))
            .zip(&self.args)
            .filter_map(|(p, &a)| match p {
                Param::Buffer { writable: true, .. } => Some(a),
                _ => None,
            })
    }
}

/// The signature of a host-side fallback step: given the host arrays named
/// by [`HostOp::reads`] (in that order), produce the result array and the
/// number of abstract host operations consumed (which the scheduler converts
/// to simulated time via [`ExecOptions::host_ns_per_op`]).
pub type HostFn<'a> = Box<dyn Fn(&[NdArray<i64>]) -> Result<(NdArray<i64>, u64), String> + 'a>;

/// A host-side fallback step (e.g. the SaC generic output tiler, which the
/// backend could not lower to a kernel).
pub struct HostOp<'a> {
    /// Name charged to the profiler for the step's simulated time.
    pub name: String,
    /// Array id the step produces (host-resident afterwards).
    pub target: usize,
    /// Array ids the step consumes, in the order `run` expects them.
    pub reads: Vec<usize>,
    /// The step itself.
    pub run: HostFn<'a>,
}

impl std::fmt::Debug for HostOp<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostOp")
            .field("name", &self.name)
            .field("target", &self.target)
            .field("reads", &self.reads)
            .finish_non_exhaustive()
    }
}

/// A cross-frame data dependency: after frame `f` completes, the
/// host-resident value of array [`Carry::from`] becomes frame `f+1`'s
/// binding for the input array [`Carry::to`], replacing whatever the caller
/// supplied for that position (the caller's value seeds frame 0 only).
///
/// Carries express temporal workloads — motion detection, delta encoding —
/// where frame `f` reads a value produced while processing frame `f-1`.
/// They come at a pipelining cost the scheduler models honestly: a frame
/// with an incoming carry cannot start before its predecessor finishes, so
/// the scheduler chains an event from each frame's stream to the next and
/// multi-lane overlap collapses to the serial schedule.
///
/// [`LaunchPlan::validate`] requires `from`/`to` to be declared arrays of
/// equal shape, `to` to be a frame input that is not frame-invariant, at
/// most one carry per target, and `from` to be host-resident at frame end
/// (like an output — the value must exist to be carried).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Carry {
    /// Array id whose end-of-frame host value is carried forward.
    pub from: usize,
    /// Input array id the carried value is bound to on the next frame.
    pub to: usize,
}

/// A route-agnostic per-frame execution plan.
///
/// Executing a frame means: bind the frame's input arrays to
/// [`LaunchPlan::inputs`], walk [`LaunchPlan::steps`] in order, and collect
/// the host-resident [`LaunchPlan::outputs`]. The same plan is executed for
/// every frame of a batch; buffer lifetimes (which step may assume an array
/// is on the device or on the host) follow from the step order and are
/// checked once per batch by [`LaunchPlan::validate`].
#[derive(Debug)]
pub struct LaunchPlan<'a> {
    /// Every array the plan touches, indexed by the ids steps use.
    pub arrays: Vec<ArrayDecl>,
    /// Array ids bound positionally to a frame's input arrays.
    pub inputs: Vec<usize>,
    /// Array ids collected (host-resident) as a frame's results, in order.
    pub outputs: Vec<usize>,
    /// Kernel table referenced by [`PlanStep::Launch`].
    pub kernels: Vec<PlanKernel<'a>>,
    /// Host-op table referenced by [`PlanStep::Host`].
    pub host_ops: Vec<HostOp<'a>>,
    /// The ordered per-frame steps.
    pub steps: Vec<PlanStep>,
    /// Steps run once per lane, before that lane's first frame — uploads of
    /// frame-invariant arrays (and their allocations) hoisted out of the
    /// per-frame loop by the planopt cross-frame residency pass. Restricted
    /// to `Upload`/`Alloc`, and every uploaded array must be listed in
    /// [`LaunchPlan::invariant`]. Timing replay extends the *warm* (post-
    /// prologue) frame schedule, so batches should execute at least one
    /// functional frame per lane when a prologue is present.
    pub prologue: Vec<PlanStep>,
    /// Array ids the route declares content-independent across frames
    /// (filter constants, lookup tables). Only these may be uploaded in the
    /// prologue; they must be frame inputs and must never be written on the
    /// device or re-produced by a host op.
    pub invariant: Vec<usize>,
    /// Array-id groups referenced by [`PlanStep::UploadBatch`] /
    /// [`PlanStep::DownloadBatch`]. A side table keeps [`PlanStep`] `Copy`.
    pub batches: Vec<Vec<usize>>,
    /// Cross-frame dependencies: each frame's end-of-frame host value of
    /// [`Carry::from`] becomes the next frame's binding for the input
    /// [`Carry::to`]. Empty for the ordinary stateless-frame plans; when
    /// non-empty, frames serialize (see [`Carry`]).
    pub carries: Vec<Carry>,
    /// What a pipeline lane is called in this route's vocabulary ("stream
    /// lanes" for CUDA, "command queues" for OpenCL) — used verbatim in the
    /// OOM-degradation profiler note.
    pub lane_label: &'static str,
}

impl LaunchPlan<'_> {
    /// Check the plan's internal consistency and buffer lifetimes without
    /// touching a device: every index in range, and a walk of the steps in
    /// order proving that uploads read host-resident arrays, launches and
    /// downloads see device-resident buffers, host ops see host-resident
    /// inputs, and every declared output is host-resident at frame end.
    ///
    /// [`BatchScheduler::run`] performs this check once per batch, so a
    /// malformed plan fails fast instead of mid-frame with the device
    /// timeline already half-charged.
    pub fn validate(&self) -> Result<(), ScheduleError> {
        let arr = |id: usize, what: &str| {
            if id < self.arrays.len() {
                Ok(())
            } else {
                Err(ScheduleError::Plan(format!("{what} references undeclared array {id}")))
            }
        };
        for (id, a) in self.arrays.iter().enumerate() {
            // `ArrayDecl::len` returns 1 for a rank-0 shape (empty product)
            // and `chunks_for` is undefined for a zero-sized leading
            // dimension, so both degenerate declarations are rejected here
            // instead of reaching the device layer.
            if a.shape.is_empty() || a.shape.contains(&0) {
                return Err(ScheduleError::Plan(format!(
                    "array {id} '{}' declares a zero-element shape {:?}",
                    a.name, a.shape
                )));
            }
        }
        for &id in &self.inputs {
            arr(id, "input list")?;
        }
        for &id in &self.outputs {
            arr(id, "output list")?;
        }
        for k in &self.kernels {
            for &a in &k.args {
                arr(a, &format!("kernel '{}'", k.kernel.name))?;
            }
        }
        for op in &self.host_ops {
            arr(op.target, &format!("host op '{}'", op.name))?;
            for &a in &op.reads {
                arr(a, &format!("host op '{}'", op.name))?;
            }
        }
        for (b, batch) in self.batches.iter().enumerate() {
            if batch.is_empty() {
                return Err(ScheduleError::Plan(format!("transfer batch {b} is empty")));
            }
            for &a in batch {
                arr(a, &format!("transfer batch {b}"))?;
            }
        }

        // The prologue runs once per lane, so its effects must be valid on
        // every subsequent (warm) frame: only uploads of declared
        // frame-invariant inputs and allocations may be hoisted there, and an
        // invariant array must never be written on the device or re-produced
        // by a host op (a warm frame would then see the stale first-frame
        // content).
        for &id in &self.invariant {
            arr(id, "invariant list")?;
            if !self.inputs.contains(&id) {
                return Err(ScheduleError::Plan(format!(
                    "invariant array '{}' is not a frame input",
                    self.arrays[id].name
                )));
            }
            for k in &self.kernels {
                if k.written_args().any(|a| a == id) {
                    return Err(ScheduleError::Plan(format!(
                        "invariant array '{}' is written by kernel '{}'",
                        self.arrays[id].name, k.kernel.name
                    )));
                }
            }
            if let Some(h) = self.host_ops.iter().find(|h| h.target == id) {
                return Err(ScheduleError::Plan(format!(
                    "invariant array '{}' is produced by host op '{}'",
                    self.arrays[id].name, h.name
                )));
            }
        }
        for step in &self.prologue {
            match *step {
                PlanStep::Upload { array, .. } => {
                    arr(array, "prologue upload")?;
                    if !self.invariant.contains(&array) {
                        return Err(ScheduleError::Plan(format!(
                            "prologue uploads array '{}' that is not declared frame-invariant",
                            self.arrays[array].name
                        )));
                    }
                }
                PlanStep::Alloc { array } => arr(array, "prologue alloc")?,
                _ => {
                    return Err(ScheduleError::Plan(
                        "prologue may only contain Upload and Alloc steps".into(),
                    ))
                }
            }
        }

        // Carries rebind an input between frames, so the target must be a
        // non-invariant frame input (an invariant array's prologue upload
        // would go stale the moment the carry rebinds it), shapes must
        // agree (the carried value replaces a declared input verbatim), and
        // two carries must not race for one target.
        for (i, c) in self.carries.iter().enumerate() {
            arr(c.from, "carry source")?;
            arr(c.to, "carry target")?;
            if !self.inputs.contains(&c.to) {
                return Err(ScheduleError::Plan(format!(
                    "carry target '{}' is not a frame input",
                    self.arrays[c.to].name
                )));
            }
            if self.invariant.contains(&c.to) {
                return Err(ScheduleError::Plan(format!(
                    "carry target '{}' is declared frame-invariant",
                    self.arrays[c.to].name
                )));
            }
            if self.arrays[c.from].shape != self.arrays[c.to].shape {
                return Err(ScheduleError::Plan(format!(
                    "carry source '{}' shape {:?} does not match target '{}' shape {:?}",
                    self.arrays[c.from].name,
                    self.arrays[c.from].shape,
                    self.arrays[c.to].name,
                    self.arrays[c.to].shape
                )));
            }
            if self.carries[..i].iter().any(|p| p.to == c.to) {
                return Err(ScheduleError::Plan(format!(
                    "array '{}' is the target of more than one carry",
                    self.arrays[c.to].name
                )));
            }
        }

        // Lifetime walk: which arrays are host-resident / device-resident at
        // each step, starting from the frame inputs and the prologue's
        // effects. Because the prologue only establishes device residency of
        // invariant inputs, one walk covers both the cold (prologue + steps)
        // and warm (steps with prologue residency inherited) frames.
        let mut on_host = vec![false; self.arrays.len()];
        let mut on_device = vec![false; self.arrays.len()];
        for &id in &self.inputs {
            on_host[id] = true;
        }
        let name = |id: usize| self.arrays[id].name.clone();
        for step in self.prologue.iter().chain(&self.steps) {
            match *step {
                PlanStep::Upload { array, .. } => {
                    arr(array, "upload")?;
                    if !on_host[array] {
                        return Err(ScheduleError::Plan(format!(
                            "upload of array '{}' before it is host-resident",
                            name(array)
                        )));
                    }
                    on_device[array] = true;
                }
                PlanStep::Alloc { array } => {
                    arr(array, "alloc")?;
                    on_device[array] = true;
                }
                PlanStep::Launch { kernel } => {
                    let k = self.kernels.get(kernel).ok_or_else(|| {
                        ScheduleError::Plan(format!("launch references unknown kernel {kernel}"))
                    })?;
                    for &a in &k.args {
                        if !on_device[a] {
                            return Err(ScheduleError::Plan(format!(
                                "kernel '{}' argument '{}' is not device-resident",
                                k.kernel.name,
                                name(a)
                            )));
                        }
                    }
                    // A store through a writable parameter leaves the host
                    // copy (if any) stale.
                    for a in k.written_args() {
                        on_host[a] = false;
                    }
                }
                PlanStep::Download { array, .. } => {
                    arr(array, "download")?;
                    if !on_device[array] {
                        return Err(ScheduleError::Plan(format!(
                            "download of array '{}' before it is device-resident",
                            name(array)
                        )));
                    }
                    on_host[array] = true;
                }
                PlanStep::Host { op } => {
                    let h = self.host_ops.get(op).ok_or_else(|| {
                        ScheduleError::Plan(format!("step references unknown host op {op}"))
                    })?;
                    for &a in &h.reads {
                        if !on_host[a] {
                            return Err(ScheduleError::Plan(format!(
                                "host op '{}' input '{}' is not host-resident",
                                h.name,
                                name(a)
                            )));
                        }
                    }
                    on_host[h.target] = true;
                    // The host rewrite invalidates any device copy: a later
                    // launch must re-upload, not read the stale buffer.
                    on_device[h.target] = false;
                }
                PlanStep::UploadBatch { batch } => {
                    let ids = self.batches.get(batch).ok_or_else(|| {
                        ScheduleError::Plan(format!("step references unknown batch {batch}"))
                    })?;
                    for &a in ids {
                        if !on_host[a] {
                            return Err(ScheduleError::Plan(format!(
                                "batched upload of array '{}' before it is host-resident",
                                name(a)
                            )));
                        }
                        on_device[a] = true;
                    }
                }
                PlanStep::DownloadBatch { batch } => {
                    let ids = self.batches.get(batch).ok_or_else(|| {
                        ScheduleError::Plan(format!("step references unknown batch {batch}"))
                    })?;
                    for &a in ids {
                        if !on_device[a] {
                            return Err(ScheduleError::Plan(format!(
                                "batched download of array '{}' before it is device-resident",
                                name(a)
                            )));
                        }
                        on_host[a] = true;
                    }
                }
            }
        }
        for &id in &self.outputs {
            if !on_host[id] {
                return Err(ScheduleError::Plan(format!(
                    "output '{}' is not host-resident at frame end",
                    name(id)
                )));
            }
        }
        // A carried value is read off the host after the frame, exactly
        // like an output.
        for c in &self.carries {
            if !on_host[c.from] {
                return Err(ScheduleError::Plan(format!(
                    "carry source '{}' is not host-resident at frame end",
                    name(c.from)
                )));
            }
        }
        Ok(())
    }
}

/// Errors from plan construction, validation, or execution.
#[derive(Debug)]
pub enum ScheduleError {
    /// Simulator failure (out of memory, bad launch, …).
    Sim(SimError),
    /// A host value did not fit a device `int`.
    Overflow {
        /// The offending value.
        value: i64,
    },
    /// A frame's input arrays did not match the plan's declarations.
    Input(String),
    /// The plan is internally inconsistent (bad index, lifetime violation).
    Plan(String),
    /// A host-side fallback step failed.
    Host(String),
    /// The execution options are invalid (see [`ExecOptions::validate`]).
    Config(String),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Sim(e) => write!(f, "simulator: {e}"),
            ScheduleError::Overflow { value } => {
                write!(f, "value {value} does not fit a device int")
            }
            ScheduleError::Input(m) => write!(f, "bad frame input: {m}"),
            ScheduleError::Plan(m) => write!(f, "inconsistent launch plan: {m}"),
            ScheduleError::Host(m) => write!(f, "host step: {m}"),
            ScheduleError::Config(m) => write!(f, "bad execution options: {m}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<SimError> for ScheduleError {
    fn from(e: SimError) -> Self {
        ScheduleError::Sim(e)
    }
}

/// Counters from one scheduler run (accumulated over every frame, including
/// timing-replayed ones).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Kernel launches performed.
    pub launches: usize,
    /// Host-to-device transfers actually issued (after the chunk-fallback
    /// rule; a batched upload counts as one transfer).
    pub h2d: usize,
    /// Device-to-host transfers actually issued (after the chunk-fallback
    /// rule; a batched download counts as one transfer).
    pub d2h: usize,
    /// Bytes moved host-to-device.
    pub h2d_bytes: usize,
    /// Bytes moved device-to-host.
    pub d2h_bytes: usize,
    /// Host steps interpreted.
    pub host_steps: usize,
    /// Abstract host ops consumed by host steps.
    pub host_ops: u64,
}

impl RunStats {
    /// Fold another run's counters into this one.
    pub fn accumulate(&mut self, other: &RunStats) {
        self.launches += other.launches;
        self.h2d += other.h2d;
        self.d2h += other.d2h;
        self.h2d_bytes += other.h2d_bytes;
        self.d2h_bytes += other.d2h_bytes;
        self.host_steps += other.host_steps;
        self.host_ops += other.host_ops;
    }
}

/// The one options struct shared by every executor and batch driver — the
/// unification of what used to be `sac_cuda::PipelineOptions`,
/// `gaspard::OpenClPipelineOptions`, and `downscaler::BatchOptions`.
///
/// The scheduler itself consumes `streams`, `total_frames`,
/// `host_ns_per_op`, and `degrade_on_oom`; `channel_chunks` is consumed by
/// the route lowerings when they build a [`LaunchPlan`]; `executed` and
/// `pool` are consumed by the scenario batch drivers
/// (`downscaler::pipelines`) before the scheduler is reached. Carrying them
/// in one struct means an option set composed for an experiment (streams ×
/// pool × degradation × replay) is a single value that flows through every
/// layer unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecOptions {
    /// Number of pipeline lanes: streams (CUDA) / command queues (OpenCL) =
    /// number of device buffer sets. `1` runs fully serialized on the
    /// default stream, reproducing the one-frame-at-a-time executors
    /// exactly; `2` double-buffers so frame `f+1`'s upload overlaps frame
    /// `f`'s kernels and frame `f-1`'s download. Must be `>= 1`
    /// ([`ExecOptions::validate`]).
    pub streams: usize,
    /// Batch drivers only: frames executed functionally; the scenario's
    /// remaining frames are timing-replayed. `0` executes every frame.
    pub executed: usize,
    /// When greater than the number of supplied frames, the timing of the
    /// remaining frames is *replayed* from the first frame's measured
    /// per-operation durations instead of executing them functionally.
    /// Exact under the cost model whenever per-frame cost is
    /// content-independent (fixed shapes; host steps whose trip counts do
    /// not depend on data). `0` means "the supplied frames".
    pub total_frames: usize,
    /// Route lowerings only: when non-zero, arrays whose leading dimension
    /// equals this value are transferred as one chunk per leading slice
    /// (per colour channel), the way the paper's runtimes stream frames —
    /// Tables I/II count 900 transfers for 300 three-channel frames. See
    /// [`chunks_for`].
    pub channel_chunks: usize,
    /// Simulated nanoseconds per abstract host-fallback operation (the SaC
    /// generic output tiler's cost model).
    pub host_ns_per_op: f64,
    /// Batch drivers only: enable the device's size-class memory pool for
    /// the batch. Off by default — the naive allocator is what the paper's
    /// profiles were calibrated against.
    pub pool: bool,
    /// When a batch attempt fails with [`SimError::OutOfMemory`], release
    /// that attempt's device buffers, halve the number of lanes and retry
    /// the whole batch instead of failing — the degradation ladder
    /// `streams → streams/2 → … → 1`. Each downgrade is surfaced as a
    /// profiler note, and the failed attempt's simulated time stays charged
    /// (a real runtime pays for the work it abandons). Results are
    /// bit-identical at any lane count, so degradation only trades makespan
    /// for footprint. Off by default.
    pub degrade_on_oom: bool,
    /// Which [`crate::planopt`] passes the route lowerings run over the plan
    /// before scheduling. [`crate::planopt::PlanOptLevel::OFF`] (the
    /// default) leaves the plan exactly as lowered, so every paper-faithful
    /// number is untouched unless an experiment opts in.
    pub optimize: crate::planopt::PlanOptLevel,
    /// Which [`crate::cost::CostModel`] the batch prices time under.
    /// [`crate::cost::CostModelSpec::Inherit`] (the default) keeps the
    /// device's current model — every calibrated experiment is untouched;
    /// any other value replaces the device's model before the batch runs
    /// and surfaces the model name as a profiler note. Cost models change
    /// *only* the simulated clock: outputs, launch counts and transfer
    /// bytes are model-independent by construction.
    pub cost: crate::cost::CostModelSpec,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            streams: 1,
            executed: 0,
            total_frames: 0,
            channel_chunks: 0,
            // Calibrated alongside the sequential cost model (see the bench
            // crate's `calibration` module): one abstract op of the scatter
            // nest corresponds to a fraction of a compiled-C nanosecond.
            host_ns_per_op: 0.12,
            pool: false,
            degrade_on_oom: false,
            optimize: crate::planopt::PlanOptLevel::OFF,
            cost: crate::cost::CostModelSpec::Inherit,
        }
    }
}

impl ExecOptions {
    /// Reject configurations the executors cannot honour. `streams: 0`
    /// previously slipped through one route's entry point and hit a
    /// `max(1)` deep inside the executor, silently meaning something
    /// different from what was asked; both routes now go through this one
    /// check.
    pub fn validate(&self) -> Result<(), String> {
        if self.streams == 0 {
            return Err("streams must be >= 1 (1 = the serialized baseline)".into());
        }
        Ok(())
    }
}

/// Transfers split per leading slice when the leading dimension matches the
/// configured channel count: a rank-≥2 array of shape `[channel_chunks, …]`
/// moves as `channel_chunks` back-to-back transfers (one per colour plane),
/// anything else as a single transfer. With `channel_chunks <= 1` chunking
/// is disabled entirely.
pub fn chunks_for(shape: &[usize], channel_chunks: usize) -> usize {
    if channel_chunks > 1 && shape.len() >= 2 && shape[0] == channel_chunks {
        channel_chunks
    } else {
        1
    }
}

fn to_i32(data: &[i64]) -> Result<Vec<i32>, ScheduleError> {
    data.iter()
        .map(|&v| i32::try_from(v).map_err(|_| ScheduleError::Overflow { value: v }))
        .collect()
}

/// A scheduler run's data result: one output-array vector per functionally
/// executed frame (the plan's outputs, in declared order), plus the step
/// counters for the whole batch.
pub type BatchOutput = (Vec<Vec<NdArray<i64>>>, RunStats);

/// The shared batch executor: drives a [`LaunchPlan`] over a batch of frames
/// with multi-stream double buffering, timing replay, and optional OOM
/// degradation.
///
/// Frame `f` is assigned lane `f % lanes` — a stream plus that stream's
/// private buffer set — so same-buffer reuse is protected by same-stream
/// ordering while adjacent frames overlap their H2D / compute / D2H phases
/// on the device's three engines: the classic CUDA async-stream frame
/// pipeline, which is also exactly what in-order OpenCL command queues give
/// the other route. Buffer sets are allocated on demand and reused across
/// frames (allocation is free in simulated time at the paper calibration,
/// so the 1-lane case still matches the serial executors' clock
/// bit-for-bit).
#[derive(Debug)]
pub struct BatchScheduler<'a> {
    plan: &'a LaunchPlan<'a>,
}

impl<'a> BatchScheduler<'a> {
    /// A scheduler for `plan`.
    pub fn new(plan: &'a LaunchPlan<'a>) -> Self {
        BatchScheduler { plan }
    }

    /// The plan being scheduled.
    pub fn plan(&self) -> &LaunchPlan<'a> {
        self.plan
    }

    /// Execute a batch of frames.
    ///
    /// Returns one result-array vector per *functionally executed* frame
    /// (the plan's outputs, in declared order) plus counters covering all
    /// `total_frames` — timing-replayed frames contribute their counters
    /// and profiler records but no arrays. The device is synchronized on
    /// return, so `device.now_us()` is the batch makespan.
    ///
    /// With [`ExecOptions::degrade_on_oom`] set, an `OutOfMemory` failure
    /// frees the attempt's buffers and restarts the batch at half the lanes
    /// (down to 1) instead of propagating; each downgrade is recorded as a
    /// profiler note using the plan's [`LaunchPlan::lane_label`].
    pub fn run(
        &self,
        device: &mut Device,
        frames: &[Vec<NdArray<i64>>],
        opts: &ExecOptions,
    ) -> Result<BatchOutput, ScheduleError> {
        opts.validate().map_err(ScheduleError::Config)?;
        self.plan.validate()?;
        if let Some(model) = opts.cost.instantiate() {
            device.profiler.note(format!("cost model: {}", model.describe()));
            device.set_cost_model(crate::cost::BoxedCostModel(model));
        }
        if frames.is_empty() {
            return Ok((Vec::new(), RunStats::default()));
        }
        let mut lanes = opts.streams;
        loop {
            match self.attempt(device, frames, opts, lanes) {
                Err(ScheduleError::Sim(SimError::OutOfMemory { .. }))
                    if opts.degrade_on_oom && lanes > 1 =>
                {
                    let next = lanes / 2;
                    device.profiler.note(format!(
                        "degraded: out of device memory at {lanes} {label}, \
                         retrying batch with {next}",
                        label = self.plan.lane_label
                    ));
                    lanes = next;
                }
                other => return other,
            }
        }
    }

    /// One batch attempt at a fixed lane count. Buffer sets are released on
    /// success *and* failure so an aborted attempt never leaks device
    /// memory into a degraded retry.
    fn attempt(
        &self,
        device: &mut Device,
        frames: &[Vec<NdArray<i64>>],
        opts: &ExecOptions,
        lanes: usize,
    ) -> Result<BatchOutput, ScheduleError> {
        let mut streams = vec![StreamId::DEFAULT];
        while streams.len() < lanes {
            streams.push(device.create_stream());
        }
        let mut buffer_sets: Vec<Vec<Option<BufferId>>> =
            vec![vec![None; self.plan.arrays.len()]; lanes];

        let run = self.exec_frames(device, frames, opts, lanes, &streams, &mut buffer_sets);

        for set in buffer_sets {
            for buf in set.into_iter().flatten() {
                let freed = device.free(buf);
                if run.is_ok() {
                    // On the error path the original failure wins; frees of
                    // just-allocated buffers cannot themselves fail.
                    freed?;
                }
            }
        }
        device.synchronize();
        run
    }

    /// The frame loop of one attempt: execute the supplied frames
    /// round-robin over `lanes` buffer sets, then replay frame 0's measured
    /// spans out to `total_frames`.
    fn exec_frames(
        &self,
        device: &mut Device,
        frames: &[Vec<NdArray<i64>>],
        opts: &ExecOptions,
        lanes: usize,
        streams: &[StreamId],
        buffer_sets: &mut [Vec<Option<BufferId>>],
    ) -> Result<BatchOutput, ScheduleError> {
        let mut outputs = Vec::with_capacity(frames.len());
        let mut stats = RunStats::default();
        let mut frame_ops: Vec<(String, OpClass, f64)> = Vec::new();
        let mut frame_stats = RunStats::default();
        // Cross-frame carries: each frame's carried host values override the
        // next frame's carry-target bindings, and an event recorded on each
        // frame's stream gates the next frame's stream — frame `f+1` cannot
        // start before frame `f` finished producing the carried value, so
        // multi-lane overlap honestly collapses to the serial schedule.
        let has_carries = !self.plan.carries.is_empty();
        let mut carried: Vec<Option<NdArray<i64>>> = vec![None; self.plan.carries.len()];
        let mut prev_frame_done: Option<EventId> = None;
        for (f, inputs) in frames.iter().enumerate() {
            let lane = f % lanes;
            if let Some(ev) = prev_frame_done {
                device.wait_event(streams[lane], ev)?;
            }
            // The first frame on each lane is "cold": it runs the plan's
            // prologue (invariant uploads) before the per-frame steps.
            let cold = f < lanes;
            let run = self.exec_frame(
                device,
                inputs,
                opts,
                &mut buffer_sets[lane],
                streams[lane],
                cold,
                &carried,
            )?;
            if has_carries {
                prev_frame_done = Some(device.record_event(streams[lane])?);
                carried = run.carried.into_iter().map(Some).collect();
            }
            if f == 0 {
                // The replay template is the *warm* frame schedule: spans
                // recorded after the prologue finished, and the per-step
                // counters only. The prologue runs once per lane, so a
                // replayed frame never repeats it.
                frame_ops = device
                    .profiler
                    .spans()
                    .skip(run.warm_span_mark)
                    .map(|sp| (sp.name.clone(), sp.class, sp.duration_us()))
                    .collect();
                frame_stats = run.step_stats.clone();
            }
            stats.accumulate(&run.prologue_stats);
            stats.accumulate(&run.step_stats);
            outputs.push(run.outputs);
        }

        let total = if opts.total_frames == 0 { frames.len() } else { opts.total_frames };
        for f in frames.len()..total {
            let lane = f % lanes;
            // Replayed frames keep the carry serialization: the timing of a
            // carried batch must not overlap frames the functional run
            // could not have overlapped.
            if let Some(ev) = prev_frame_done {
                device.wait_event(streams[lane], ev)?;
            }
            for (name, class, us) in &frame_ops {
                device.replay_on(name, *class, *us, streams[lane])?;
            }
            if has_carries {
                prev_frame_done = Some(device.record_event(streams[lane])?);
            }
            stats.accumulate(&frame_stats);
        }
        Ok((outputs, stats))
    }

    /// Execute one frame: bind inputs, run the prologue when the lane is
    /// cold, walk the steps on `stream` against this lane's buffer set,
    /// collect the outputs.
    ///
    /// `buffers` entries that are `Some` are reused in place (a later frame
    /// on the same lane overwrites them); `None` entries are allocated on
    /// demand and left allocated for the caller to free or reuse.
    ///
    /// `carried` holds the previous frame's carry values positionally per
    /// [`LaunchPlan::carries`]; `Some` entries override the caller-supplied
    /// binding of that carry's target (`None` on frame 0 keeps the seed).
    #[allow(clippy::too_many_arguments)]
    fn exec_frame(
        &self,
        device: &mut Device,
        inputs: &[NdArray<i64>],
        opts: &ExecOptions,
        buffers: &mut [Option<BufferId>],
        stream: StreamId,
        cold: bool,
        carried: &[Option<NdArray<i64>>],
    ) -> Result<FrameRun, ScheduleError> {
        let plan = self.plan;
        if inputs.len() != plan.inputs.len() {
            return Err(ScheduleError::Input(format!(
                "expected {} inputs, got {}",
                plan.inputs.len(),
                inputs.len()
            )));
        }
        let mut host: Vec<Option<NdArray<i64>>> = vec![None; plan.arrays.len()];
        for (&id, arr) in plan.inputs.iter().zip(inputs) {
            if arr.shape().dims() != plan.arrays[id].shape.as_slice() {
                return Err(ScheduleError::Input(format!(
                    "input '{}' has shape {:?}, expected {:?}",
                    plan.arrays[id].name,
                    arr.shape().dims(),
                    plan.arrays[id].shape
                )));
            }
            host[id] = Some(arr.clone());
        }
        // Warm frames rebind carry targets to the previous frame's carried
        // values; validate() guarantees the shapes match the declarations.
        for (c, v) in plan.carries.iter().zip(carried) {
            if let Some(v) = v {
                host[c.to] = Some(v.clone());
            }
        }

        let mut prologue_stats = RunStats::default();
        if cold {
            self.run_steps(
                device,
                &plan.prologue,
                &mut host,
                opts,
                buffers,
                stream,
                &mut prologue_stats,
            )?;
        }
        let warm_span_mark = device.profiler.spans().count();

        let mut step_stats = RunStats::default();
        self.run_steps(device, &plan.steps, &mut host, opts, buffers, stream, &mut step_stats)?;

        // Carried values are cloned out before the outputs are moved: a
        // carry source may itself be a declared output.
        let carried_out: Vec<NdArray<i64>> = plan
            .carries
            .iter()
            .map(|c| {
                host[c.from].clone().ok_or_else(|| {
                    ScheduleError::Plan(format!(
                        "carry source '{}' never reached the host",
                        plan.arrays[c.from].name
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        let outputs: Vec<NdArray<i64>> = plan
            .outputs
            .iter()
            .map(|&id| {
                host[id].take().ok_or_else(|| {
                    ScheduleError::Plan(format!(
                        "output '{}' never reached the host",
                        plan.arrays[id].name
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        Ok(FrameRun { outputs, carried: carried_out, prologue_stats, step_stats, warm_span_mark })
    }

    /// Walk one step list against a lane's buffer set, accumulating into
    /// `stats`.
    #[allow(clippy::too_many_arguments)]
    fn run_steps(
        &self,
        device: &mut Device,
        steps: &[PlanStep],
        host: &mut [Option<NdArray<i64>>],
        opts: &ExecOptions,
        buffers: &mut [Option<BufferId>],
        stream: StreamId,
        stats: &mut RunStats,
    ) -> Result<(), ScheduleError> {
        let plan = self.plan;
        for step in steps {
            match *step {
                PlanStep::Upload { array, chunks } => {
                    let arr = host[array].as_ref().ok_or_else(|| {
                        ScheduleError::Plan(format!(
                            "upload of uncomputed array '{}'",
                            plan.arrays[array].name
                        ))
                    })?;
                    let data = to_i32(arr.as_slice())?;
                    let buf = match buffers[array] {
                        Some(b) => b,
                        None => {
                            let b = device.malloc(data.len())?;
                            buffers[array] = Some(b);
                            b
                        }
                    };
                    let issued = device.host2device_chunked_on(&data, buf, chunks, stream)?;
                    stats.h2d += issued;
                    stats.h2d_bytes += data.len() * 4;
                }
                PlanStep::Alloc { array } => {
                    if buffers[array].is_none() {
                        buffers[array] = Some(device.malloc(plan.arrays[array].len())?);
                    }
                }
                PlanStep::Launch { kernel } => {
                    let pk = &plan.kernels[kernel];
                    let args: Vec<KernelArg> = pk
                        .args
                        .iter()
                        .map(|&a| {
                            buffers[a].map(|b| KernelArg::Buffer(b.0)).ok_or_else(|| {
                                ScheduleError::Plan(format!(
                                    "array '{}' not on device for kernel '{}'",
                                    plan.arrays[a].name, pk.kernel.name
                                ))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    device.launch_with_access(
                        &pk.kernel,
                        pk.config,
                        &args,
                        stream,
                        pk.access.as_ref(),
                    )?;
                    stats.launches += 1;
                }
                PlanStep::Download { array, chunks } => {
                    let buf = buffers[array].ok_or_else(|| {
                        ScheduleError::Plan(format!(
                            "array '{}' not on device",
                            plan.arrays[array].name
                        ))
                    })?;
                    let (data, issued) = device.device2host_chunked_on(buf, chunks, stream)?;
                    stats.d2h += issued;
                    stats.d2h_bytes += data.len() * 4;
                    let arr = NdArray::from_vec(
                        plan.arrays[array].shape.clone(),
                        data.into_iter().map(i64::from).collect(),
                    )
                    .map_err(|e| ScheduleError::Plan(e.to_string()))?;
                    host[array] = Some(arr);
                }
                PlanStep::Host { op } => {
                    let h = &plan.host_ops[op];
                    let reads: Vec<NdArray<i64>> = h
                        .reads
                        .iter()
                        .map(|&a| {
                            host[a].clone().ok_or_else(|| {
                                ScheduleError::Plan(format!(
                                    "host step input '{}' missing",
                                    plan.arrays[a].name
                                ))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    let (out, ops) = (h.run)(&reads).map_err(ScheduleError::Host)?;
                    device.charge_host_on(
                        &h.name,
                        ops as f64 * opts.host_ns_per_op / 1000.0,
                        stream,
                    )?;
                    stats.host_ops += ops;
                    stats.host_steps += 1;
                    host[h.target] = Some(out);
                }
                PlanStep::UploadBatch { batch } => {
                    let ids = &plan.batches[batch];
                    let mut parts_data: Vec<(Vec<i32>, BufferId)> = Vec::with_capacity(ids.len());
                    for &array in ids {
                        let arr = host[array].as_ref().ok_or_else(|| {
                            ScheduleError::Plan(format!(
                                "batched upload of uncomputed array '{}'",
                                plan.arrays[array].name
                            ))
                        })?;
                        let data = to_i32(arr.as_slice())?;
                        let buf = match buffers[array] {
                            Some(b) => b,
                            None => {
                                let b = device.malloc(data.len())?;
                                buffers[array] = Some(b);
                                b
                            }
                        };
                        parts_data.push((data, buf));
                    }
                    let parts: Vec<(&[i32], BufferId)> =
                        parts_data.iter().map(|(d, b)| (d.as_slice(), *b)).collect();
                    device.host2device_batch_on(&parts, stream)?;
                    stats.h2d += 1;
                    stats.h2d_bytes += parts_data.iter().map(|(d, _)| d.len() * 4).sum::<usize>();
                }
                PlanStep::DownloadBatch { batch } => {
                    let ids = &plan.batches[batch];
                    let bufs: Vec<BufferId> = ids
                        .iter()
                        .map(|&a| {
                            buffers[a].ok_or_else(|| {
                                ScheduleError::Plan(format!(
                                    "array '{}' not on device",
                                    plan.arrays[a].name
                                ))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    let outs = device.device2host_batch_on(&bufs, stream)?;
                    stats.d2h += 1;
                    for (&array, data) in ids.iter().zip(outs) {
                        stats.d2h_bytes += data.len() * 4;
                        let arr = NdArray::from_vec(
                            plan.arrays[array].shape.clone(),
                            data.into_iter().map(i64::from).collect(),
                        )
                        .map_err(|e| ScheduleError::Plan(e.to_string()))?;
                        host[array] = Some(arr);
                    }
                }
            }
        }
        Ok(())
    }
}

/// One executed frame's results: the collected outputs, the counters split
/// into prologue vs per-frame steps (replay repeats only the latter), and
/// the profiler span count at the start of the warm (post-prologue) step
/// schedule.
struct FrameRun {
    outputs: Vec<NdArray<i64>>,
    /// End-of-frame host values of the plan's carry sources, positionally
    /// per [`LaunchPlan::carries`] — the next frame's carry-target bindings.
    carried: Vec<NdArray<i64>>,
    prologue_stats: RunStats,
    step_stats: RunStats,
    warm_span_mark: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Calibration;
    use crate::device::DeviceConfig;
    use crate::kir::{BinOp, KernelBuilder, KernelFlavor, Special};

    #[test]
    fn chunks_for_splits_only_matching_leading_dimension() {
        // The paper's per-channel streaming: a rank-3 [channels, rows, cols]
        // frame moves as one chunk per channel.
        assert_eq!(chunks_for(&[3, 90, 160], 3), 3);
        // Leading dimension mismatch: one transfer.
        assert_eq!(chunks_for(&[4, 90, 160], 3), 1);
        // Rank-1 arrays never chunk, even with a matching length: a flat
        // vector of `channels` elements is not a per-channel frame.
        assert_eq!(chunks_for(&[3], 3), 1);
        // channel_chunks <= 1 disables chunking entirely.
        assert_eq!(chunks_for(&[3, 90, 160], 1), 1);
        assert_eq!(chunks_for(&[3, 90, 160], 0), 1);
        // Rank-2 boundary: shape[0] == channel_chunks with exactly 2 dims.
        assert_eq!(chunks_for(&[3, 160], 3), 3);
    }

    #[test]
    fn exec_options_default_is_the_serialized_baseline() {
        let o = ExecOptions::default();
        assert_eq!(o.streams, 1);
        assert_eq!((o.executed, o.total_frames, o.channel_chunks), (0, 0, 0));
        assert!(!o.pool && !o.degrade_on_oom);
        assert!(o.validate().is_ok());
    }

    #[test]
    fn zero_streams_rejected_by_validate() {
        let o = ExecOptions { streams: 0, ..Default::default() };
        let msg = o.validate().unwrap_err();
        assert!(msg.contains("streams must be >= 1"), "{msg}");
    }

    /// y[i] = y[i] * 2 over the whole buffer.
    fn double_kernel(n: usize) -> (Kernel, LaunchConfig) {
        let mut b = KernelBuilder::new("dbl", KernelFlavor::Cuda);
        let y = b.buffer_param("y", true);
        let gid = b.special(Special::GlobalIdX);
        let v = b.load(y, gid);
        let two = b.constant(2);
        let w = b.bin(BinOp::Mul, v, two);
        b.store(y, gid, w);
        (b.finish(), LaunchConfig::cover_1d(n, n.min(64) as u32))
    }

    /// A minimal one-kernel plan: upload `a`, double it in place, download.
    fn double_plan(kernel: &Kernel, config: LaunchConfig, n: usize) -> LaunchPlan<'_> {
        LaunchPlan {
            arrays: vec![ArrayDecl { name: "a".into(), shape: vec![n] }],
            inputs: vec![0],
            outputs: vec![0],
            kernels: vec![PlanKernel::new(kernel, config, vec![0])],
            host_ops: Vec::new(),
            steps: vec![
                PlanStep::Upload { array: 0, chunks: 1 },
                PlanStep::Launch { kernel: 0 },
                PlanStep::Download { array: 0, chunks: 1 },
            ],
            prologue: Vec::new(),
            invariant: Vec::new(),
            batches: Vec::new(),
            carries: Vec::new(),
            lane_label: "stream lanes",
        }
    }

    fn frames(n_frames: usize, n: usize) -> Vec<Vec<NdArray<i64>>> {
        (0..n_frames).map(|f| vec![NdArray::from_fn([n], |ix| (f * 100 + ix[0]) as i64)]).collect()
    }

    #[test]
    fn scheduler_runs_a_plan_and_counts_operations() {
        let n = 64;
        let (kernel, config) = double_kernel(n);
        let plan = double_plan(&kernel, config, n);
        let mut device = Device::gtx480();
        let (outs, stats) = BatchScheduler::new(&plan)
            .run(&mut device, &frames(3, n), &ExecOptions::default())
            .unwrap();
        assert_eq!(outs.len(), 3);
        for (f, out) in outs.iter().enumerate() {
            assert_eq!(out[0], NdArray::from_fn([n], |ix| 2 * (f * 100 + ix[0]) as i64));
        }
        assert_eq!(
            stats,
            RunStats {
                launches: 3,
                h2d: 3,
                d2h: 3,
                h2d_bytes: 3 * n * 4,
                d2h_bytes: 3 * n * 4,
                host_steps: 0,
                host_ops: 0
            }
        );
        assert_eq!(device.allocated_bytes(), 0);
        assert!(device.now_us() > 0.0);
    }

    #[test]
    fn two_lanes_overlap_and_preserve_results() {
        let n = 4096;
        let (kernel, config) = double_kernel(n);
        let plan = double_plan(&kernel, config, n);

        let mut serial = Device::gtx480();
        let (expect, _) = BatchScheduler::new(&plan)
            .run(&mut serial, &frames(6, n), &ExecOptions::default())
            .unwrap();

        let mut piped = Device::gtx480();
        let (got, _) = BatchScheduler::new(&plan)
            .run(&mut piped, &frames(6, n), &ExecOptions { streams: 2, ..Default::default() })
            .unwrap();

        assert_eq!(got, expect);
        assert!(piped.now_us() < serial.now_us(), "{} !< {}", piped.now_us(), serial.now_us());
        assert!(piped.profiler.overlap_percent() > 0.0);
    }

    #[test]
    fn replay_extends_timing_without_execution() {
        let n = 256;
        let (kernel, config) = double_kernel(n);
        let plan = double_plan(&kernel, config, n);

        let mut full = Device::gtx480();
        BatchScheduler::new(&plan).run(&mut full, &frames(5, n), &ExecOptions::default()).unwrap();

        let mut replayed = Device::gtx480();
        let (outs, stats) = BatchScheduler::new(&plan)
            .run(
                &mut replayed,
                &frames(1, n),
                &ExecOptions { total_frames: 5, ..Default::default() },
            )
            .unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(stats.launches, 5);
        assert_eq!(replayed.now_us(), full.now_us());
        assert_eq!(replayed.profiler.spans().count(), full.profiler.spans().count());
    }

    #[test]
    fn oom_degradation_halves_lanes_and_notes_with_lane_label() {
        let n = 1024;
        let (kernel, config) = double_kernel(n);
        let mut plan = double_plan(&kernel, config, n);
        plan.lane_label = "command queues";

        let mut probe = Device::gtx480();
        let (expect, _) = BatchScheduler::new(&plan)
            .run(&mut probe, &frames(4, n), &ExecOptions::default())
            .unwrap();
        let per_lane = probe.peak_allocated_bytes();

        let cfg = DeviceConfig::toy(per_lane * 2);
        let four = ExecOptions { streams: 4, ..Default::default() };
        let mut naive = Device::new(cfg.clone(), Calibration::gtx480());
        let err = BatchScheduler::new(&plan).run(&mut naive, &frames(4, n), &four);
        assert!(matches!(err, Err(ScheduleError::Sim(SimError::OutOfMemory { .. }))));

        let mut deg = Device::new(cfg, Calibration::gtx480());
        let (outs, _) = BatchScheduler::new(&plan)
            .run(&mut deg, &frames(4, n), &ExecOptions { degrade_on_oom: true, ..four })
            .unwrap();
        assert_eq!(outs, expect);
        assert_eq!(deg.allocated_bytes(), 0);
        let notes: Vec<&str> = deg.profiler.notes().collect();
        assert!(
            notes.iter().any(|nt| nt.contains("degraded") && nt.contains("command queues")),
            "{notes:?}"
        );
    }

    #[test]
    fn scheduler_rejects_zero_streams_before_touching_the_device() {
        let n = 16;
        let (kernel, config) = double_kernel(n);
        let plan = double_plan(&kernel, config, n);
        let mut device = Device::gtx480();
        let err = BatchScheduler::new(&plan).run(
            &mut device,
            &frames(1, n),
            &ExecOptions { streams: 0, ..Default::default() },
        );
        assert!(matches!(err, Err(ScheduleError::Config(_))), "{err:?}");
        assert_eq!(device.now_us(), 0.0);
        assert_eq!(device.profiler.records().count(), 0);
    }

    #[test]
    fn overflow_is_detected_at_upload() {
        let n = 2;
        let (kernel, config) = double_kernel(n);
        let plan = double_plan(&kernel, config, n);
        let mut device = Device::gtx480();
        let too_big = vec![vec![NdArray::from_vec([2], vec![1, i64::from(i32::MAX) + 1]).unwrap()]];
        let err = BatchScheduler::new(&plan).run(&mut device, &too_big, &ExecOptions::default());
        assert!(
            matches!(err, Err(ScheduleError::Overflow { value }) if value == i64::from(i32::MAX) + 1)
        );
    }

    #[test]
    fn input_mismatches_are_typed_errors() {
        let n = 8;
        let (kernel, config) = double_kernel(n);
        let plan = double_plan(&kernel, config, n);
        let mut device = Device::gtx480();
        let sched = BatchScheduler::new(&plan);
        let err = sched.run(&mut device, &[vec![]], &ExecOptions::default());
        assert!(matches!(err, Err(ScheduleError::Input(_))), "{err:?}");
        let wrong = vec![vec![NdArray::filled([n + 1], 0i64)]];
        let err = sched.run(&mut device, &wrong, &ExecOptions::default());
        assert!(matches!(err, Err(ScheduleError::Input(_))), "{err:?}");
    }

    #[test]
    fn lifetime_validation_catches_malformed_plans() {
        let n = 8;
        let (kernel, config) = double_kernel(n);
        let mut plan = double_plan(&kernel, config, n);
        // Launch before the upload: the argument is not device-resident.
        plan.steps.swap(0, 1);
        let mut device = Device::gtx480();
        let err =
            BatchScheduler::new(&plan).run(&mut device, &frames(1, n), &ExecOptions::default());
        assert!(
            matches!(&err, Err(ScheduleError::Plan(m)) if m.contains("not device-resident")),
            "{err:?}"
        );
        // Rejected before anything touched the device.
        assert_eq!(device.now_us(), 0.0);
        assert_eq!(device.profiler.records().count(), 0);

        // An output that never comes back to the host is caught too. (The
        // input array itself is always host-resident, so use a second,
        // never-computed array as the declared output.)
        let mut plan = double_plan(&kernel, config, n);
        plan.arrays.push(ArrayDecl { name: "b".into(), shape: vec![n] });
        plan.outputs = vec![1];
        let err =
            BatchScheduler::new(&plan).run(&mut device, &frames(1, n), &ExecOptions::default());
        assert!(
            matches!(&err, Err(ScheduleError::Plan(m)) if m.contains("not host-resident")),
            "{err:?}"
        );
    }

    #[test]
    fn host_ops_run_between_device_steps() {
        // Upload -> double on device -> host op adds 1 -> re-upload -> double
        // again -> download: exercises host/device interleaving and the
        // host-op cost charge.
        let n = 16;
        let (kernel, config) = double_kernel(n);
        let host_op = HostOp {
            name: "add_one(host)".into(),
            target: 1,
            reads: vec![0],
            run: Box::new(|arrs| {
                let out = NdArray::from_fn([arrs[0].as_slice().len()], |ix| {
                    arrs[0].as_slice()[ix[0]] + 1
                });
                Ok((out, 1000))
            }),
        };
        let plan = LaunchPlan {
            arrays: vec![
                ArrayDecl { name: "a".into(), shape: vec![n] },
                ArrayDecl { name: "b".into(), shape: vec![n] },
            ],
            inputs: vec![0],
            outputs: vec![1],
            kernels: vec![
                PlanKernel::new(&kernel, config, vec![0]),
                PlanKernel::new(&kernel, config, vec![1]),
            ],
            host_ops: vec![host_op],
            steps: vec![
                PlanStep::Upload { array: 0, chunks: 1 },
                PlanStep::Launch { kernel: 0 },
                PlanStep::Download { array: 0, chunks: 1 },
                PlanStep::Host { op: 0 },
                PlanStep::Upload { array: 1, chunks: 1 },
                PlanStep::Launch { kernel: 1 },
                PlanStep::Download { array: 1, chunks: 1 },
            ],
            prologue: Vec::new(),
            invariant: Vec::new(),
            batches: Vec::new(),
            carries: Vec::new(),
            lane_label: "stream lanes",
        };
        let mut device = Device::gtx480();
        let opts = ExecOptions { host_ns_per_op: 2.0, ..Default::default() };
        let (outs, stats) =
            BatchScheduler::new(&plan).run(&mut device, &frames(1, n), &opts).unwrap();
        // (2a + 1) * 2
        assert_eq!(outs[0][0], NdArray::from_fn([n], |ix| (2 * ix[0] as i64 + 1) * 2));
        assert_eq!((stats.host_steps, stats.host_ops), (1, 1000));
        // 1000 ops at 2 ns/op = 2 us charged under the op's name.
        let rec = device.profiler.records().find(|r| r.name == "add_one(host)").unwrap();
        assert!((rec.total_us - 2.0).abs() < 1e-12, "{}", rec.total_us);
    }

    #[test]
    fn chunked_upload_counts_issued_chunks() {
        let n = 12;
        let (kernel, config) = double_kernel(n);
        let mut plan = double_plan(&kernel, config, n);
        plan.arrays[0].shape = vec![3, 4];
        plan.steps[0] = PlanStep::Upload { array: 0, chunks: 3 };
        plan.steps[2] = PlanStep::Download { array: 0, chunks: 3 };
        let mut device = Device::gtx480();
        let fr = vec![vec![NdArray::from_fn([3, 4], |ix| (ix[0] * 4 + ix[1]) as i64)]];
        let (_, stats) =
            BatchScheduler::new(&plan).run(&mut device, &fr, &ExecOptions::default()).unwrap();
        assert_eq!((stats.h2d, stats.d2h), (3, 3));
        assert_eq!((stats.h2d_bytes, stats.d2h_bytes), (n * 4, n * 4));
        let h2d = device.profiler.records().find(|r| r.name == "memcpyHtoDasync").unwrap();
        assert_eq!(h2d.calls, 3);
    }

    #[test]
    fn host_rewrite_invalidates_the_device_copy() {
        // Regression: a plan that uploads `a`, rewrites it on the host, then
        // launches a kernel reading `a` without re-uploading used to
        // validate cleanly — the kernel would have read the stale device
        // copy. The lifetime walk must clear device residency at the host
        // write.
        let n = 8;
        let (kernel, config) = double_kernel(n);
        let host_op = HostOp {
            name: "rewrite(host)".into(),
            target: 0,
            reads: vec![0],
            run: Box::new(|arrs| Ok((arrs[0].clone(), 1))),
        };
        let plan = LaunchPlan {
            arrays: vec![ArrayDecl { name: "a".into(), shape: vec![n] }],
            inputs: vec![0],
            outputs: vec![0],
            kernels: vec![PlanKernel::new(&kernel, config, vec![0])],
            host_ops: vec![host_op],
            steps: vec![
                PlanStep::Upload { array: 0, chunks: 1 },
                PlanStep::Host { op: 0 },
                PlanStep::Launch { kernel: 0 },
                PlanStep::Download { array: 0, chunks: 1 },
            ],
            prologue: Vec::new(),
            invariant: Vec::new(),
            batches: Vec::new(),
            carries: Vec::new(),
            lane_label: "stream lanes",
        };
        let err = plan.validate();
        assert!(
            matches!(&err, Err(ScheduleError::Plan(m)) if m.contains("not device-resident")),
            "{err:?}"
        );
    }

    #[test]
    fn device_write_invalidates_the_host_copy() {
        // The symmetric direction: after a kernel stores through `a`, the
        // host copy is stale, so collecting `a` as an output without a
        // download must be rejected.
        let n = 8;
        let (kernel, config) = double_kernel(n);
        let mut plan = double_plan(&kernel, config, n);
        plan.steps.pop(); // drop the download
        let err = plan.validate();
        assert!(
            matches!(&err, Err(ScheduleError::Plan(m)) if m.contains("not host-resident")),
            "{err:?}"
        );
    }

    #[test]
    fn zero_element_array_declarations_are_rejected() {
        let n = 8;
        let (kernel, config) = double_kernel(n);
        for bad_shape in [vec![], vec![0], vec![0, 4], vec![4, 0]] {
            let mut plan = double_plan(&kernel, config, n);
            plan.arrays[0].shape = bad_shape.clone();
            let err = plan.validate();
            assert!(
                matches!(&err, Err(ScheduleError::Plan(m)) if m.contains("zero-element")),
                "shape {bad_shape:?}: {err:?}"
            );
        }
    }

    /// y[i] = y[i] + x[i]; x read-only, y writable.
    fn add_kernel(n: usize) -> (Kernel, LaunchConfig) {
        let mut b = KernelBuilder::new("addx", KernelFlavor::Cuda);
        let x = b.buffer_param("x", false);
        let y = b.buffer_param("y", true);
        let gid = b.special(Special::GlobalIdX);
        let xv = b.load(x, gid);
        let yv = b.load(y, gid);
        let sum = b.bin(BinOp::Add, xv, yv);
        b.store(y, gid, sum);
        (b.finish(), LaunchConfig::cover_1d(n, n.min(64) as u32))
    }

    /// c is a frame-invariant input uploaded by the prologue; a is the
    /// per-frame payload.
    fn invariant_plan(kernel: &Kernel, config: LaunchConfig, n: usize) -> LaunchPlan<'_> {
        LaunchPlan {
            arrays: vec![
                ArrayDecl { name: "c".into(), shape: vec![n] },
                ArrayDecl { name: "a".into(), shape: vec![n] },
            ],
            inputs: vec![0, 1],
            outputs: vec![1],
            kernels: vec![PlanKernel::new(kernel, config, vec![0, 1])],
            host_ops: Vec::new(),
            steps: vec![
                PlanStep::Upload { array: 1, chunks: 1 },
                PlanStep::Launch { kernel: 0 },
                PlanStep::Download { array: 1, chunks: 1 },
            ],
            prologue: vec![PlanStep::Upload { array: 0, chunks: 1 }],
            invariant: vec![0],
            batches: Vec::new(),
            carries: Vec::new(),
            lane_label: "stream lanes",
        }
    }

    #[test]
    fn prologue_uploads_invariant_arrays_once_per_lane() {
        let n = 16;
        let (kernel, config) = add_kernel(n);
        let plan = invariant_plan(&kernel, config, n);
        let constants = NdArray::from_fn([n], |ix| ix[0] as i64);
        let fr: Vec<Vec<NdArray<i64>>> = (0..3)
            .map(|f| vec![constants.clone(), NdArray::from_fn([n], |ix| (f * 100 + ix[0]) as i64)])
            .collect();
        let mut device = Device::gtx480();
        let (outs, stats) =
            BatchScheduler::new(&plan).run(&mut device, &fr, &ExecOptions::default()).unwrap();
        for (f, out) in outs.iter().enumerate() {
            assert_eq!(out[0], NdArray::from_fn([n], |ix| (f * 100 + 2 * ix[0]) as i64));
        }
        // One invariant upload for the lane plus one payload upload per
        // frame — not two uploads per frame.
        assert_eq!(stats.h2d, 1 + 3);
        assert_eq!(stats.h2d_bytes, (1 + 3) * n * 4);
        let h2d = device.profiler.records().find(|r| r.name == "memcpyHtoDasync").unwrap();
        assert_eq!(h2d.calls, 4);
    }

    #[test]
    fn replay_repeats_only_the_warm_frame_schedule() {
        let n = 64;
        let (kernel, config) = add_kernel(n);
        let plan = invariant_plan(&kernel, config, n);
        let constants = NdArray::from_fn([n], |ix| ix[0] as i64);
        let fr = |count: usize| -> Vec<Vec<NdArray<i64>>> {
            (0..count)
                .map(|f| {
                    vec![constants.clone(), NdArray::from_fn([n], |ix| (f * 7 + ix[0]) as i64)]
                })
                .collect()
        };
        let mut full = Device::gtx480();
        let (_, full_stats) =
            BatchScheduler::new(&plan).run(&mut full, &fr(5), &ExecOptions::default()).unwrap();

        let mut replayed = Device::gtx480();
        let (_, replay_stats) = BatchScheduler::new(&plan)
            .run(&mut replayed, &fr(1), &ExecOptions { total_frames: 5, ..Default::default() })
            .unwrap();
        // Same clock, same span count, same counters: the prologue ran once
        // and the replayed frames repeated only the warm schedule.
        assert_eq!(replayed.now_us(), full.now_us());
        assert_eq!(replayed.profiler.spans().count(), full.profiler.spans().count());
        assert_eq!(replay_stats, full_stats);
    }

    #[test]
    fn batched_steps_move_all_arrays_in_one_transfer() {
        let n = 32;
        let (kernel, config) = double_kernel(n);
        let plan = LaunchPlan {
            arrays: vec![
                ArrayDecl { name: "a".into(), shape: vec![n] },
                ArrayDecl { name: "b".into(), shape: vec![n] },
            ],
            inputs: vec![0, 1],
            outputs: vec![0, 1],
            kernels: vec![
                PlanKernel::new(&kernel, config, vec![0]),
                PlanKernel::new(&kernel, config, vec![1]),
            ],
            host_ops: Vec::new(),
            steps: vec![
                PlanStep::UploadBatch { batch: 0 },
                PlanStep::Launch { kernel: 0 },
                PlanStep::Launch { kernel: 1 },
                PlanStep::DownloadBatch { batch: 0 },
            ],
            prologue: Vec::new(),
            invariant: Vec::new(),
            batches: vec![vec![0, 1]],
            carries: Vec::new(),
            lane_label: "stream lanes",
        };
        let mut device = Device::gtx480();
        let fr = vec![vec![
            NdArray::from_fn([n], |ix| ix[0] as i64),
            NdArray::from_fn([n], |ix| (ix[0] + 1000) as i64),
        ]];
        let (outs, stats) =
            BatchScheduler::new(&plan).run(&mut device, &fr, &ExecOptions::default()).unwrap();
        assert_eq!(outs[0][0], NdArray::from_fn([n], |ix| 2 * ix[0] as i64));
        assert_eq!(outs[0][1], NdArray::from_fn([n], |ix| 2 * (ix[0] + 1000) as i64));
        // One transfer each way for the whole pair, full byte totals.
        assert_eq!((stats.h2d, stats.d2h), (1, 1));
        assert_eq!((stats.h2d_bytes, stats.d2h_bytes), (2 * n * 4, 2 * n * 4));
        assert_eq!(
            device.profiler.records().find(|r| r.name == "memcpyHtoDbatched").unwrap().calls,
            1
        );
        assert_eq!(
            device.profiler.records().find(|r| r.name == "memcpyDtoHbatched").unwrap().calls,
            1
        );
    }

    #[test]
    fn prologue_and_invariant_misuse_is_rejected() {
        let n = 8;
        let (kernel, config) = add_kernel(n);

        // A prologue step other than Upload/Alloc.
        let mut plan = invariant_plan(&kernel, config, n);
        plan.prologue.push(PlanStep::Launch { kernel: 0 });
        let err = plan.validate();
        assert!(
            matches!(&err, Err(ScheduleError::Plan(m)) if m.contains("prologue may only contain")),
            "{err:?}"
        );

        // A prologue upload of a non-invariant array.
        let mut plan = invariant_plan(&kernel, config, n);
        plan.invariant.clear();
        let err = plan.validate();
        assert!(
            matches!(&err, Err(ScheduleError::Plan(m)) if m.contains("not declared frame-invariant")),
            "{err:?}"
        );

        // An invariant array written on the device (bind it to the writable
        // parameter).
        let mut plan = invariant_plan(&kernel, config, n);
        plan.kernels[0].args = vec![1, 0];
        let err = plan.validate();
        assert!(
            matches!(&err, Err(ScheduleError::Plan(m)) if m.contains("is written by kernel")),
            "{err:?}"
        );

        // An empty transfer batch.
        let mut plan = invariant_plan(&kernel, config, n);
        plan.batches.push(Vec::new());
        let err = plan.validate();
        assert!(
            matches!(&err, Err(ScheduleError::Plan(m)) if m.contains("batch 0 is empty")),
            "{err:?}"
        );
    }

    /// s is the carried state (seeded by frame 0's caller input), a the
    /// per-frame payload: a += s on the device, then a's end-of-frame value
    /// becomes the next frame's s — a running prefix sum across frames.
    fn carry_plan(kernel: &Kernel, config: LaunchConfig, n: usize) -> LaunchPlan<'_> {
        LaunchPlan {
            arrays: vec![
                ArrayDecl { name: "s".into(), shape: vec![n] },
                ArrayDecl { name: "a".into(), shape: vec![n] },
            ],
            inputs: vec![0, 1],
            outputs: vec![1],
            kernels: vec![PlanKernel::new(kernel, config, vec![0, 1])],
            host_ops: Vec::new(),
            steps: vec![
                PlanStep::Upload { array: 0, chunks: 1 },
                PlanStep::Upload { array: 1, chunks: 1 },
                PlanStep::Launch { kernel: 0 },
                PlanStep::Download { array: 1, chunks: 1 },
            ],
            prologue: Vec::new(),
            invariant: Vec::new(),
            batches: Vec::new(),
            carries: vec![Carry { from: 1, to: 0 }],
            lane_label: "stream lanes",
        }
    }

    fn carry_frames(n_frames: usize, n: usize) -> Vec<Vec<NdArray<i64>>> {
        (0..n_frames)
            .map(|f| {
                vec![
                    NdArray::filled([n], 0i64), // state seed; only frame 0's is used
                    NdArray::from_fn([n], |ix| (f * 100 + ix[0]) as i64),
                ]
            })
            .collect()
    }

    #[test]
    fn carry_threads_state_across_frames() {
        let n = 16;
        let (kernel, config) = add_kernel(n);
        let plan = carry_plan(&kernel, config, n);
        let mut device = Device::gtx480();
        let (outs, _) = BatchScheduler::new(&plan)
            .run(&mut device, &carry_frames(4, n), &ExecOptions::default())
            .unwrap();
        // out_f = sum of payloads 0..=f (prefix sum across frames).
        let mut expect = NdArray::filled([n], 0i64);
        for (f, out) in outs.iter().enumerate() {
            let prev = expect.clone();
            expect = NdArray::from_fn([n], |ix| prev.as_slice()[ix[0]] + (f * 100 + ix[0]) as i64);
            assert_eq!(out[0], expect, "frame {f}");
        }
    }

    #[test]
    fn carry_results_are_lane_count_invariant_and_serialize() {
        let n = 2048;
        let (kernel, config) = add_kernel(n);
        let plan = carry_plan(&kernel, config, n);

        let mut serial = Device::gtx480();
        let (expect, _) = BatchScheduler::new(&plan)
            .run(&mut serial, &carry_frames(6, n), &ExecOptions::default())
            .unwrap();

        let mut piped = Device::gtx480();
        let (got, _) = BatchScheduler::new(&plan)
            .run(&mut piped, &carry_frames(6, n), &ExecOptions { streams: 2, ..Default::default() })
            .unwrap();

        // Same values regardless of lane count, and no dishonest overlap:
        // the event chain collapses the 2-lane schedule to the serial clock.
        assert_eq!(got, expect);
        assert_eq!(piped.now_us(), serial.now_us());
    }

    #[test]
    fn carry_replay_keeps_the_serialized_clock() {
        let n = 256;
        let (kernel, config) = add_kernel(n);
        let plan = carry_plan(&kernel, config, n);

        let mut full = Device::gtx480();
        BatchScheduler::new(&plan)
            .run(&mut full, &carry_frames(5, n), &ExecOptions { streams: 2, ..Default::default() })
            .unwrap();

        let mut replayed = Device::gtx480();
        BatchScheduler::new(&plan)
            .run(
                &mut replayed,
                &carry_frames(2, n),
                &ExecOptions { streams: 2, total_frames: 5, ..Default::default() },
            )
            .unwrap();
        assert_eq!(replayed.now_us(), full.now_us());
    }

    #[test]
    fn carry_validation_rejects_malformed_plans() {
        let n = 8;
        let (kernel, config) = add_kernel(n);

        // Target is not a frame input.
        let mut plan = carry_plan(&kernel, config, n);
        plan.arrays.push(ArrayDecl { name: "x".into(), shape: vec![n] });
        plan.carries = vec![Carry { from: 1, to: 2 }];
        let err = plan.validate();
        assert!(
            matches!(&err, Err(ScheduleError::Plan(m)) if m.contains("not a frame input")),
            "{err:?}"
        );

        // Two carries racing for one target.
        let mut plan = carry_plan(&kernel, config, n);
        plan.carries = vec![Carry { from: 1, to: 0 }, Carry { from: 1, to: 0 }];
        let err = plan.validate();
        assert!(
            matches!(&err, Err(ScheduleError::Plan(m)) if m.contains("more than one carry")),
            "{err:?}"
        );

        // Shape mismatch between source and target.
        let mut plan = carry_plan(&kernel, config, n);
        plan.arrays[0].shape = vec![n, 2];
        let err = plan.validate();
        assert!(
            matches!(&err, Err(ScheduleError::Plan(m)) if m.contains("does not match target")),
            "{err:?}"
        );

        // Source never host-resident at frame end (download dropped): the
        // carried value would not exist.
        let mut plan = carry_plan(&kernel, config, n);
        plan.steps.pop();
        plan.outputs = vec![0]; // keep the outputs check satisfied
        let err = plan.validate();
        assert!(
            matches!(&err, Err(ScheduleError::Plan(m))
                if m.contains("carry source") && m.contains("not host-resident")),
            "{err:?}"
        );

        // Target declared frame-invariant.
        let (add, cfg) = add_kernel(n);
        let mut plan = invariant_plan(&add, cfg, n);
        plan.carries = vec![Carry { from: 1, to: 0 }];
        let err = plan.validate();
        assert!(
            matches!(&err, Err(ScheduleError::Plan(m)) if m.contains("frame-invariant")),
            "{err:?}"
        );
    }
}
