//! Source emission: pretty-print kernel IR as CUDA C or OpenCL C.
//!
//! The emitted text reproduces the artefacts the paper shows (e.g. Figure 11's
//! generated tiler code) and is useful for inspecting what a backend produced;
//! the IR itself remains the executable form.

use crate::kir::{BinOp, Instr, Kernel, KernelFlavor, Param, Special};
use std::fmt::Write as _;

/// Render a kernel as CUDA C (`__global__`) or OpenCL C (`__kernel`) source.
pub fn emit_kernel(k: &Kernel) -> String {
    let mut out = String::new();
    emit_signature(k, &mut out);
    out.push_str(" {\n");
    let regs = k.register_count();
    if regs > 0 {
        out.push_str("  long ");
        for r in 0..regs {
            if r > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "r{r}");
        }
        out.push_str(";\n");
    }
    emit_block(&k.body, k, 1, &mut out);
    out.push_str("}\n");
    out
}

fn emit_signature(k: &Kernel, out: &mut String) {
    match k.flavor {
        KernelFlavor::Cuda => {
            let _ = write!(out, "__global__ void {}(", k.name);
        }
        KernelFlavor::OpenCl => {
            let _ = write!(out, "__kernel void {}(", k.name);
        }
    }
    for (i, p) in k.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match (p, k.flavor) {
            (Param::Buffer { name, writable }, KernelFlavor::Cuda) => {
                let c = if *writable { "" } else { "const " };
                let _ = write!(out, "{c}int* {name}");
            }
            (Param::Buffer { name, writable }, KernelFlavor::OpenCl) => {
                let c = if *writable { "" } else { "const " };
                let _ = write!(out, "__global {c}int* {name}");
            }
            (Param::Scalar { name }, _) => {
                let _ = write!(out, "int {name}");
            }
        }
    }
    out.push(')');
}

fn special_expr(kind: Special, flavor: KernelFlavor) -> &'static str {
    match (kind, flavor) {
        (Special::GlobalIdX, KernelFlavor::Cuda) => "blockIdx.x * blockDim.x + threadIdx.x",
        (Special::GlobalIdY, KernelFlavor::Cuda) => "blockIdx.y * blockDim.y + threadIdx.y",
        (Special::ThreadIdxX, KernelFlavor::Cuda) => "threadIdx.x",
        (Special::ThreadIdxY, KernelFlavor::Cuda) => "threadIdx.y",
        (Special::BlockIdxX, KernelFlavor::Cuda) => "blockIdx.x",
        (Special::BlockIdxY, KernelFlavor::Cuda) => "blockIdx.y",
        (Special::BlockDimX, KernelFlavor::Cuda) => "blockDim.x",
        (Special::BlockDimY, KernelFlavor::Cuda) => "blockDim.y",
        (Special::GridDimX, KernelFlavor::Cuda) => "gridDim.x",
        (Special::GridDimY, KernelFlavor::Cuda) => "gridDim.y",
        (Special::GlobalIdX, KernelFlavor::OpenCl) => "get_global_id(0)",
        (Special::GlobalIdY, KernelFlavor::OpenCl) => "get_global_id(1)",
        (Special::ThreadIdxX, KernelFlavor::OpenCl) => "get_local_id(0)",
        (Special::ThreadIdxY, KernelFlavor::OpenCl) => "get_local_id(1)",
        (Special::BlockIdxX, KernelFlavor::OpenCl) => "get_group_id(0)",
        (Special::BlockIdxY, KernelFlavor::OpenCl) => "get_group_id(1)",
        (Special::BlockDimX, KernelFlavor::OpenCl) => "get_local_size(0)",
        (Special::BlockDimY, KernelFlavor::OpenCl) => "get_local_size(1)",
        (Special::GridDimX, KernelFlavor::OpenCl) => "get_num_groups(0)",
        (Special::GridDimY, KernelFlavor::OpenCl) => "get_num_groups(1)",
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
        // min/max have no single C operator; handled separately.
        BinOp::Min | BinOp::Max => unreachable!("min/max emitted as calls"),
    }
}

fn emit_block(instrs: &[Instr], k: &Kernel, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    for i in instrs {
        match i {
            Instr::Const { dst, value } => {
                let _ = writeln!(out, "{pad}r{dst} = {value};");
            }
            Instr::LoadParam { dst, param } => {
                let _ = writeln!(out, "{pad}r{dst} = {};", k.params[*param].name());
            }
            Instr::Special { dst, kind } => {
                let _ = writeln!(out, "{pad}r{dst} = {};", special_expr(*kind, k.flavor));
            }
            Instr::Bin { op: BinOp::Min, dst, lhs, rhs } => {
                let _ = writeln!(out, "{pad}r{dst} = min(r{lhs}, r{rhs});");
            }
            Instr::Bin { op: BinOp::Max, dst, lhs, rhs } => {
                let _ = writeln!(out, "{pad}r{dst} = max(r{lhs}, r{rhs});");
            }
            Instr::Bin { op, dst, lhs, rhs } => {
                let _ = writeln!(out, "{pad}r{dst} = r{lhs} {} r{rhs};", binop_str(*op));
            }
            Instr::Mov { dst, src } => {
                let _ = writeln!(out, "{pad}r{dst} = r{src};");
            }
            Instr::Load { dst, param, index } => {
                let _ = writeln!(out, "{pad}r{dst} = {}[r{index}];", k.params[*param].name());
            }
            Instr::Store { param, index, src } => {
                let _ = writeln!(out, "{pad}{}[r{index}] = r{src};", k.params[*param].name());
            }
            Instr::For { var, start, end, step, body } => {
                let _ = writeln!(
                    out,
                    "{pad}for (r{var} = r{start}; r{var} < r{end}; r{var} += r{step}) {{"
                );
                emit_block(body, k, depth + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
            Instr::If { cond, then, els } => {
                let _ = writeln!(out, "{pad}if (r{cond}) {{");
                emit_block(then, k, depth + 1, out);
                if els.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    emit_block(els, k, depth + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            Instr::Return => {
                let _ = writeln!(out, "{pad}return;");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::kir::{KernelBuilder, KernelFlavor, Special};

    #[test]
    fn cuda_emission_uses_cuda_builtins() {
        let mut b = KernelBuilder::new("k", KernelFlavor::Cuda);
        let buf = b.buffer_param("out", true);
        let gid = b.special(Special::GlobalIdX);
        b.store(buf, gid, gid);
        let src = b.finish().emit_source();
        assert!(src.contains("__global__ void k(int* out)"), "{src}");
        assert!(src.contains("blockIdx.x * blockDim.x + threadIdx.x"), "{src}");
        assert!(src.contains("out[r0] = r0;"), "{src}");
    }

    #[test]
    fn opencl_emission_uses_opencl_builtins() {
        let mut b = KernelBuilder::new("k", KernelFlavor::OpenCl);
        let buf = b.buffer_param("in", false);
        let gid = b.special(Special::GlobalIdX);
        let _v = b.load(buf, gid);
        let src = b.finish().emit_source();
        assert!(src.contains("__kernel void k(__global const int* in)"), "{src}");
        assert!(src.contains("get_global_id(0)"), "{src}");
    }

    #[test]
    fn structured_blocks_emit_braces() {
        let mut b = KernelBuilder::new("loopy", KernelFlavor::Cuda);
        let buf = b.buffer_param("o", true);
        let z = b.constant(0);
        let n = b.constant(4);
        let one = b.constant(1);
        let i = b.begin_for(z, n, one);
        b.store(buf, i, i);
        b.end_for();
        let src = b.finish().emit_source();
        assert!(src.contains("for (r3 = r0; r3 < r1; r3 += r2) {"), "{src}");
    }
}

#[cfg(test)]
mod minmax_tests {
    use crate::kir::{BinOp, KernelBuilder, KernelFlavor};

    #[test]
    fn min_max_emit_as_calls() {
        let mut b = KernelBuilder::new("mm", KernelFlavor::Cuda);
        let buf = b.buffer_param("o", true);
        let a = b.constant(1);
        let c = b.constant(2);
        let mn = b.bin(BinOp::Min, a, c);
        let mx = b.bin(BinOp::Max, a, c);
        let zero = b.constant(0);
        b.store(buf, zero, mn);
        let one_again = b.constant(1);
        b.store(buf, one_again, mx);
        let src = b.finish().emit_source();
        assert!(src.contains("min(r0, r1)"), "{src}");
        assert!(src.contains("max(r0, r1)"), "{src}");
    }
}
