#![warn(missing_docs)]

//! # sac-cuda — the SaC → CUDA backend
//!
//! Implements the transformation described in §VII of the paper ("Compiling
//! SAC to CUDA") against the flat WIR produced by `sac-lang`'s optimiser:
//!
//! 1. **Identifying CUDA-WITH-loops** ([`identify`]) — data-parallel `With`
//!    steps are eligible; host steps (and anything that failed to lower) stay
//!    on the CPU. Function invocations have been eliminated by inlining, so
//!    the paper's "outermost WITH-loops containing no function invocations"
//!    criterion is met by construction.
//! 2. **Inserting data transfers** ([`exec`]) — `host2device` for external
//!    inputs and for arrays a GPU step needs after a host step;
//!    `device2host` for results and for arrays a host step consumes. The
//!    generic output tiler's host fallback therefore forces the mid-pipeline
//!    device-to-host copy the paper blames for the generic variant's 3–4.5×
//!    slowdown.
//! 3. **Creating kernels** ([`codegen`]) — *one kernel per generator*, with
//!    the launch configuration derived from the generator bounds. This is
//!    the design decision that gives the SaC route its 5 (horizontal) and 7
//!    (vertical) kernels versus GASPARD2's 3 + 3.
//!
//! The emitted artefact is executable kernel IR for the [`simgpu`] simulator
//! plus human-readable CUDA C ([`CudaProgram::emit_cuda_source`]).

pub mod access;
pub mod codegen;
pub mod emit;
pub mod exec;
pub mod identify;

pub use codegen::{compile_flat_program, CompiledKernel, CudaProgram, PlanOp};
pub use exec::{
    lower_plan, run_frames_pipelined, run_on_device, run_on_device_opts, ExecOptions, HostCost,
    RunStats,
};

/// Errors from the CUDA backend.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum CudaError {
    /// The flat program references an array with an empty shape product.
    EmptyArray { name: String },
    /// Simulator failure.
    Sim(simgpu::SimError),
    /// Host-step interpretation failure.
    Host(String),
    /// Value did not fit device `int`.
    Overflow { value: i64 },
    /// Invalid execution options (rejected before touching the device).
    Config(String),
}

impl std::fmt::Display for CudaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CudaError::EmptyArray { name } => write!(f, "array '{name}' has no elements"),
            CudaError::Sim(e) => write!(f, "simulator: {e}"),
            CudaError::Host(m) => write!(f, "host step: {m}"),
            CudaError::Overflow { value } => {
                write!(f, "value {value} does not fit a device int")
            }
            CudaError::Config(m) => write!(f, "bad execution options: {m}"),
        }
    }
}

impl std::error::Error for CudaError {}

impl From<simgpu::SimError> for CudaError {
    fn from(e: simgpu::SimError) -> Self {
        CudaError::Sim(e)
    }
}
