//! Recovering tiled-access descriptions from compiled SaC kernels.
//!
//! The plan-level fusion pass (`simgpu::planopt`) composes *tiled-access
//! descriptions* — the repetition/pattern/tiler structure of the ArrayOL
//! model. The GASPARD2 route carries them for free (its scheduled model *is*
//! that structure); the SaC route has already lowered everything to flat
//! WITH-loops, so this module recovers the description after the fact by
//! pattern-matching the generator: a dense single-generator `genarray` whose
//! body is a linear combination of loads from one source array at affine
//! indices is exactly a tiler gather.
//!
//! Anything else — multi-generator loops, `modarray` seeds, non-affine
//! indexing, multi-source bodies, loads whose offsets vary along more than
//! one axis — is left undescribed. The fusion pass then refuses the edge and
//! the plan runs unfused, which is the safe fallback; WITH-loop folding
//! upstream remains the general mechanism for those shapes.

use arrayol::access::{ElementaryOp, TiledAccess, TilerSpec};
use sac_lang::ast::BinKind;
use sac_lang::wir::{FlatProgram, FlatWith, Step, SymExpr};

/// One gathered load: `weight · src[A·iv + offset]`.
struct LoadTerm {
    weight: i64,
    matrix: Vec<Vec<i64>>,
    offset: Vec<i64>,
}

/// Parse `e` as `Σ coeffs[d]·iv[d] + constant`.
fn affine(e: &SymExpr, rank: usize) -> Option<(Vec<i64>, i64)> {
    match e {
        SymExpr::Const(v) => Some((vec![0; rank], *v)),
        SymExpr::Idx(d) => {
            let mut c = vec![0; rank];
            *c.get_mut(*d)? = 1;
            Some((c, 0))
        }
        SymExpr::Bin(op, l, r) => match op {
            BinKind::Add | BinKind::Sub => {
                let (lc, lk) = affine(l, rank)?;
                let (rc, rk) = affine(r, rank)?;
                let sign = if *op == BinKind::Add { 1 } else { -1 };
                Some((lc.iter().zip(&rc).map(|(a, b)| a + sign * b).collect(), lk + sign * rk))
            }
            BinKind::Mul => {
                let (lc, lk) = affine(l, rank)?;
                let (rc, rk) = affine(r, rank)?;
                if lc.iter().all(|&x| x == 0) {
                    Some((rc.iter().map(|x| x * lk).collect(), rk * lk))
                } else if rc.iter().all(|&x| x == 0) {
                    Some((lc.iter().map(|x| x * rk).collect(), lk * rk))
                } else {
                    None
                }
            }
            _ => None,
        },
        SymExpr::Load { .. } => None,
    }
}

/// Parse `e` as `Σ weight·Load(src, affine-index) + constant` over a single
/// source array. Returns `(source, load terms, constant)`; the source is
/// `None` for a pure constant subtree.
fn linear_comb(e: &SymExpr, rank: usize) -> Option<(Option<usize>, Vec<LoadTerm>, i64)> {
    match e {
        SymExpr::Const(v) => Some((None, Vec::new(), *v)),
        // A bare index variable in the body is output-position arithmetic,
        // not a gather — no tiler describes it.
        SymExpr::Idx(_) => None,
        SymExpr::Load { array, index } => {
            let parsed: Option<Vec<(Vec<i64>, i64)>> =
                index.iter().map(|ix| affine(ix, rank)).collect();
            let parsed = parsed?;
            let matrix: Vec<Vec<i64>> = parsed.iter().map(|(c, _)| c.clone()).collect();
            let offset: Vec<i64> = parsed.iter().map(|(_, k)| *k).collect();
            Some((Some(*array), vec![LoadTerm { weight: 1, matrix, offset }], 0))
        }
        SymExpr::Bin(op, l, r) => match op {
            BinKind::Add | BinKind::Sub => {
                let (ls, mut lt, lk) = linear_comb(l, rank)?;
                let (rs, rt, rk) = linear_comb(r, rank)?;
                let src = match (ls, rs) {
                    (Some(a), Some(b)) if a != b => return None,
                    (Some(a), _) => Some(a),
                    (None, b) => b,
                };
                let sign = if *op == BinKind::Add { 1 } else { -1 };
                lt.extend(rt.into_iter().map(|t| LoadTerm { weight: sign * t.weight, ..t }));
                Some((src, lt, lk + sign * rk))
            }
            BinKind::Mul => {
                let (ls, lt, lk) = linear_comb(l, rank)?;
                let (rs, rt, rk) = linear_comb(r, rank)?;
                match (ls, rs) {
                    (None, src) => Some((
                        src,
                        rt.into_iter().map(|t| LoadTerm { weight: lk * t.weight, ..t }).collect(),
                        lk * rk,
                    )),
                    (src, None) => Some((
                        src,
                        lt.into_iter().map(|t| LoadTerm { weight: rk * t.weight, ..t }).collect(),
                        lk * rk,
                    )),
                    _ => None, // load × load is not linear
                }
            }
            _ => None,
        },
    }
}

/// Recover the tiled-access description of one compiled kernel's generator,
/// if it is a dense single-source affine gather. Returns the source array id
/// and the access (out-pattern `[1]`, identity output tiler).
pub fn recognize(
    flat: &FlatProgram,
    step_index: usize,
    gen_index: usize,
) -> Option<(usize, TiledAccess)> {
    let Step::With { with, .. } = flat.steps.get(step_index)? else {
        return None;
    };
    recognize_with(flat, with, gen_index)
}

fn recognize_with(
    flat: &FlatProgram,
    with: &FlatWith,
    gen_index: usize,
) -> Option<(usize, TiledAccess)> {
    // One dense generator covering the whole result: the kernel *is* the
    // repetition space. Seeded (`modarray`) or partial loops would need the
    // default/seed values modelled too, which a tiler pair cannot express.
    if with.modarray_src.is_some() || with.generators.len() != 1 || gen_index != 0 {
        return None;
    }
    let g = &with.generators[0];
    let rank = g.rank();
    if rank == 0
        || with.shape.len() != rank
        || g.lower.iter().any(|&l| l != 0)
        || g.step.iter().any(|&s| s != 1)
        || g.width.iter().any(|&w| w != 1)
        || g.upper.iter().zip(&with.shape).any(|(&u, &s)| u != s as i64)
    {
        return None;
    }

    let (src, terms, konst) = linear_comb(&g.body, rank)?;
    let src = src?;
    let in_rank = flat.arrays.get(src)?.shape.len();
    if in_rank == 0 || terms.iter().any(|t| t.matrix.len() != in_rank) {
        return None;
    }

    // All loads must share one coefficient matrix, with offsets varying
    // along at most a single input axis — a rank-1 pattern.
    let matrix = terms[0].matrix.clone();
    if terms.iter().any(|t| t.matrix != matrix) {
        return None;
    }
    let base = &terms[0].offset;
    let mut axis: Option<usize> = None;
    for t in &terms {
        for (d, &b) in base.iter().enumerate() {
            if t.offset[d] != b {
                match axis {
                    None => axis = Some(d),
                    Some(a) if a == d => {}
                    Some(_) => return None,
                }
            }
        }
    }

    let (origin, weights) = match axis {
        None => {
            // Every load hits the same cell: fold the weights together.
            (base.clone(), vec![terms.iter().map(|t| t.weight).sum::<i64>()])
        }
        Some(ax) => {
            let lo = terms.iter().map(|t| t.offset[ax]).min()?;
            let hi = terms.iter().map(|t| t.offset[ax]).max()?;
            let len = usize::try_from(hi - lo).ok()? + 1;
            if len > simgpu::tiled::MAX_PATTERN_UNROLL {
                return None;
            }
            let mut w = vec![0i64; len];
            for t in &terms {
                w[(t.offset[ax] - lo) as usize] += t.weight;
            }
            let mut origin = base.clone();
            origin[ax] = lo;
            (origin, w)
        }
    };

    let op = if weights.len() == 1 {
        if konst == 0 && weights[0] == 1 {
            ElementaryOp::Copy
        } else {
            ElementaryOp::AffineMap { mul: weights[0], add: konst }
        }
    } else if konst == 0 {
        ElementaryOp::WeightedSum { weights: weights.clone() }
    } else {
        // `Σ wᵢ·xᵢ + c` has no elementary-op encoding; leave undescribed.
        return None;
    };

    let mut fitting = vec![vec![0i64]; in_rank];
    if let Some(ax) = axis {
        fitting[ax][0] = 1;
    }
    let access = TiledAccess {
        repetition: with.shape.clone(),
        in_pattern: vec![weights.len()],
        in_tiler: TilerSpec { origin, fitting, paving: matrix },
        out_pattern: vec![1],
        out_tiler: TilerSpec {
            origin: vec![0; rank],
            fitting: vec![vec![0]; rank],
            paving: (0..rank).map(|d| (0..rank).map(|k| i64::from(k == d)).collect()).collect(),
        },
        op,
    };
    Some((src, access))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayol::access::{apply_access, lattice_points};
    use mdarray::NdArray;
    use sac_lang::wir::FlatGen;

    fn load(array: usize, index: Vec<SymExpr>) -> SymExpr {
        SymExpr::Load { array, index }
    }

    fn prog_with_body(in_shape: Vec<usize>, out_shape: Vec<usize>, body: SymExpr) -> FlatProgram {
        let mut p = FlatProgram::default();
        let a = p.declare("frame", in_shape);
        let out = p.declare("out", out_shape.clone());
        p.inputs.push(a);
        p.result = out;
        p.steps.push(Step::With {
            target: out,
            with: FlatWith {
                shape: out_shape,
                default: 0,
                modarray_src: None,
                generators: vec![FlatGen::dense(&p.arrays[out].shape.clone(), body)],
            },
        });
        p
    }

    /// `b[i,j] = f[i,j] + 2f[i,j+1] + f[i,j+2]` — the imagepipe blur stage.
    fn blur_body() -> SymExpr {
        let ij = |k: i64| {
            vec![SymExpr::Idx(0), SymExpr::bin(BinKind::Add, SymExpr::Idx(1), SymExpr::Const(k))]
        };
        SymExpr::bin(
            BinKind::Add,
            SymExpr::bin(
                BinKind::Add,
                load(0, ij(0)),
                SymExpr::bin(BinKind::Mul, SymExpr::Const(2), load(0, ij(1))),
            ),
            load(0, ij(2)),
        )
    }

    #[test]
    fn recognizes_a_column_stencil() {
        let p = prog_with_body(vec![4, 8], vec![4, 6], blur_body());
        let (src, access) = recognize(&p, 0, 0).expect("stencil should be recognized");
        assert_eq!(src, 0);
        assert_eq!(access.repetition, vec![4, 6]);
        assert_eq!(access.in_pattern, vec![3]);
        assert_eq!(access.in_tiler.origin, vec![0, 0]);
        assert_eq!(access.in_tiler.fitting, vec![vec![0], vec![1]]);
        assert_eq!(access.in_tiler.paving, vec![vec![1, 0], vec![0, 1]]);
        assert_eq!(access.out_pattern, vec![1]);
        assert!(
            matches!(&access.op, ElementaryOp::WeightedSum { weights } if weights == &vec![1, 2, 1])
        );
    }

    #[test]
    fn recovered_access_replays_the_flat_program() {
        // The CPU reference applied to the recognized access must equal the
        // flat evaluator — the description really is the kernel's semantics.
        let p = prog_with_body(vec![4, 8], vec![4, 6], blur_body());
        let (_, access) = recognize(&p, 0, 0).unwrap();
        let frame = NdArray::from_fn([4usize, 8], |ix| (ix[0] * 13 + ix[1] * 7) as i64 % 31);
        let expect = p.run(std::slice::from_ref(&frame), &mut 0).unwrap();
        let got = apply_access(&access, &frame, &[4, 6]);
        assert_eq!(got, expect);
        // And the repetition lattice covers every output cell exactly once.
        assert_eq!(lattice_points(&access.repetition).len(), 24);
    }

    #[test]
    fn affine_single_load_becomes_affine_map() {
        // out[i] = 2 * f[i] + 10
        let body = SymExpr::bin(
            BinKind::Add,
            SymExpr::bin(BinKind::Mul, SymExpr::Const(2), load(0, vec![SymExpr::Idx(0)])),
            SymExpr::Const(10),
        );
        let p = prog_with_body(vec![8], vec![8], body);
        let (_, access) = recognize(&p, 0, 0).unwrap();
        assert!(matches!(access.op, ElementaryOp::AffineMap { mul: 2, add: 10 }));
        assert_eq!(access.in_pattern, vec![1]);
    }

    #[test]
    fn plain_copy_is_copy() {
        let body = load(0, vec![SymExpr::Idx(0)]);
        let p = prog_with_body(vec![8], vec![8], body);
        let (_, access) = recognize(&p, 0, 0).unwrap();
        assert!(matches!(access.op, ElementaryOp::Copy));
    }

    #[test]
    fn plane_difference_gathers_along_the_leading_axis() {
        // delta: out[i,j] = f[0,i,j] - f[1,i,j] over a stacked [2,R,C] input.
        let plane = |k: i64| vec![SymExpr::Const(k), SymExpr::Idx(0), SymExpr::Idx(1)];
        let body = SymExpr::bin(BinKind::Sub, load(0, plane(0)), load(0, plane(1)));
        let p = prog_with_body(vec![2, 3, 5], vec![3, 5], body);
        let (_, access) = recognize(&p, 0, 0).unwrap();
        assert_eq!(access.in_pattern, vec![2]);
        assert_eq!(access.in_tiler.fitting, vec![vec![1], vec![0], vec![0]]);
        assert_eq!(access.in_tiler.paving, vec![vec![0, 0], vec![1, 0], vec![0, 1]]);
        assert!(
            matches!(&access.op, ElementaryOp::WeightedSum { weights } if weights == &vec![1, -1])
        );
    }

    #[test]
    fn refuses_what_tilers_cannot_express() {
        // Two source arrays.
        let two_src = SymExpr::bin(
            BinKind::Add,
            load(0, vec![SymExpr::Idx(0)]),
            load(1, vec![SymExpr::Idx(0)]),
        );
        let mut p = prog_with_body(vec![8], vec![8], two_src);
        p.declare("other", vec![8]);
        assert!(recognize(&p, 0, 0).is_none());

        // Non-affine index (iv*iv).
        let sq = load(0, vec![SymExpr::bin(BinKind::Mul, SymExpr::Idx(0), SymExpr::Idx(0))]);
        let p = prog_with_body(vec![64], vec![8], sq);
        assert!(recognize(&p, 0, 0).is_none());

        // Offsets varying along two axes.
        let diag = SymExpr::bin(
            BinKind::Add,
            load(0, vec![SymExpr::Idx(0), SymExpr::Idx(1)]),
            load(
                0,
                vec![
                    SymExpr::bin(BinKind::Add, SymExpr::Idx(0), SymExpr::Const(1)),
                    SymExpr::bin(BinKind::Add, SymExpr::Idx(1), SymExpr::Const(1)),
                ],
            ),
        );
        let p = prog_with_body(vec![4, 8], vec![3, 7], diag);
        assert!(recognize(&p, 0, 0).is_none());

        // Weighted sum with an additive constant has no elementary op.
        let with_const = SymExpr::bin(BinKind::Add, blur_body(), SymExpr::Const(1));
        let p = prog_with_body(vec![4, 8], vec![4, 6], with_const);
        assert!(recognize(&p, 0, 0).is_none());

        // Seeded loops would need the seed modelled too.
        let mut p = prog_with_body(vec![8], vec![8], load(0, vec![SymExpr::Idx(0)]));
        if let Step::With { with, .. } = &mut p.steps[0] {
            with.modarray_src = Some(0);
        }
        assert!(recognize(&p, 0, 0).is_none());
    }
}
