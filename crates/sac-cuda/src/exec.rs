//! Execution of compiled SaC→CUDA programs on the simulated device.

use crate::codegen::{CudaProgram, PlanOp};
use crate::CudaError;
use mdarray::NdArray;
use sac_lang::ast::Program;
use sac_lang::eval::Interp;
use sac_lang::value::Value;
use sac_lang::wir::{HostBinding, Step};
use simgpu::device::{BufferId, Device, StreamId};
use simgpu::kir::KernelArg;
use simgpu::profiler::OpClass;

/// Cost model for work that stays on the host CPU (the generic output
/// tiler). Charged as simulated time so Figure 9's generic-variant numbers
/// include the host scatter the paper describes.
#[derive(Debug, Clone, Copy)]
pub struct HostCost {
    /// Simulated nanoseconds per abstract interpreter operation.
    pub ns_per_op: f64,
}

impl Default for HostCost {
    fn default() -> Self {
        // Calibrated alongside the sequential cost model (see the bench
        // crate's `calibration` module): one abstract op of the scatter nest
        // corresponds to a fraction of a compiled-C nanosecond.
        HostCost { ns_per_op: 0.12 }
    }
}

/// Counters from one program execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Kernel launches performed.
    pub launches: usize,
    /// Host-to-device transfers.
    pub h2d: usize,
    /// Device-to-host transfers.
    pub d2h: usize,
    /// Host steps interpreted.
    pub host_steps: usize,
    /// Abstract host ops consumed by host steps.
    pub host_ops: u64,
}

impl RunStats {
    /// Fold another run's counters into this one.
    pub fn accumulate(&mut self, other: &RunStats) {
        self.launches += other.launches;
        self.h2d += other.h2d;
        self.d2h += other.d2h;
        self.host_steps += other.host_steps;
        self.host_ops += other.host_ops;
    }
}

/// Execution options beyond the defaults of [`run_on_device`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Host-fallback cost model.
    pub host_cost: HostCost,
    /// When non-zero: arrays whose leading dimension equals this value are
    /// transferred as one chunk per leading slice (per colour channel), the
    /// way the paper's runtimes stream frames — Tables I/II count 900
    /// transfers for 300 three-channel frames.
    pub channel_chunks: usize,
}

/// Execute `prog` once on `device` with the given input arrays.
///
/// All timing is simulated and recorded in the device's profiler; the
/// returned array is the program result (bit-exact with the interpreter).
pub fn run_on_device(
    prog: &CudaProgram,
    device: &mut Device,
    inputs: &[NdArray<i64>],
    host_cost: HostCost,
) -> Result<(NdArray<i64>, RunStats), CudaError> {
    run_on_device_opts(prog, device, inputs, ExecOptions { host_cost, channel_chunks: 0 })
}

/// [`run_on_device`] with explicit [`ExecOptions`].
pub fn run_on_device_opts(
    prog: &CudaProgram,
    device: &mut Device,
    inputs: &[NdArray<i64>],
    opts: ExecOptions,
) -> Result<(NdArray<i64>, RunStats), CudaError> {
    let mut dev: Vec<Option<BufferId>> = vec![None; prog.flat.arrays.len()];
    let out = exec_plan_on(prog, device, inputs, opts, &mut dev, StreamId::DEFAULT);
    device.sync_stream(StreamId::DEFAULT).expect("default stream always exists");

    // Free device buffers (frames are processed one at a time; the paper's
    // runtime also releases per-frame buffers).
    for buf in dev.into_iter().flatten() {
        device.free(buf)?;
    }
    out
}

/// Walk the execution plan once, enqueuing every operation on `stream`.
///
/// Device buffers live in `dev`, indexed by flat-program array id; entries
/// that are `Some` are reused (a later frame on the same buffer set
/// overwrites in place), entries that are `None` are allocated on demand and
/// left allocated for the caller to free or reuse.
fn exec_plan_on(
    prog: &CudaProgram,
    device: &mut Device,
    inputs: &[NdArray<i64>],
    opts: ExecOptions,
    dev: &mut [Option<BufferId>],
    stream: StreamId,
) -> Result<(NdArray<i64>, RunStats), CudaError> {
    let host_cost = opts.host_cost;
    let flat = &prog.flat;
    if inputs.len() != flat.inputs.len() {
        return Err(CudaError::Host(format!(
            "expected {} inputs, got {}",
            flat.inputs.len(),
            inputs.len()
        )));
    }
    let mut host: Vec<Option<NdArray<i64>>> = vec![None; flat.arrays.len()];
    for (&id, arr) in flat.inputs.iter().zip(inputs) {
        if arr.shape().dims() != flat.arrays[id].shape.as_slice() {
            return Err(CudaError::Host(format!(
                "input '{}' has wrong shape",
                flat.arrays[id].name
            )));
        }
        host[id] = Some(arr.clone());
    }
    let mut stats = RunStats::default();

    for op in &prog.plan {
        match op {
            PlanOp::Upload { array } => {
                let arr = host[*array].as_ref().ok_or_else(|| {
                    CudaError::Host(format!("upload of uncomputed array {array}"))
                })?;
                let data = to_i32(arr.as_slice())?;
                let buf = match dev[*array] {
                    Some(b) => b,
                    None => {
                        let b = device.malloc(data.len())?;
                        dev[*array] = Some(b);
                        b
                    }
                };
                let chunks = chunks_for(&flat.arrays[*array].shape, opts.channel_chunks);
                device.host2device_chunked_on(&data, buf, chunks, stream)?;
                stats.h2d += chunks;
            }
            PlanOp::Alloc { array } => {
                if dev[*array].is_none() {
                    let len: usize = flat.arrays[*array].shape.iter().product();
                    dev[*array] = Some(device.malloc(len)?);
                }
            }
            PlanOp::SeedCopy { kernel } | PlanOp::Launch { kernel } => {
                let ck = &prog.kernels[*kernel];
                let args: Vec<KernelArg> = ck
                    .buffers
                    .iter()
                    .map(|&a| {
                        dev[a]
                            .map(|b| KernelArg::Buffer(b.0))
                            .ok_or_else(|| CudaError::Host(format!("array {a} not on device")))
                    })
                    .collect::<Result<_, _>>()?;
                device.launch_on(&ck.kernel, ck.config, &args, stream)?;
                stats.launches += 1;
            }
            PlanOp::Download { array } => {
                let buf = dev[*array]
                    .ok_or_else(|| CudaError::Host(format!("array {array} not on device")))?;
                let chunks = chunks_for(&flat.arrays[*array].shape, opts.channel_chunks);
                let data = device.device2host_chunked_on(buf, chunks, stream)?;
                let arr = NdArray::from_vec(
                    flat.arrays[*array].shape.clone(),
                    data.into_iter().map(i64::from).collect(),
                )
                .map_err(|e| CudaError::Host(e.to_string()))?;
                host[*array] = Some(arr);
                stats.d2h += chunks;
            }
            PlanOp::HostStep { step } => {
                let Step::Host { target, fun, bindings, .. } = &flat.steps[*step] else {
                    return Err(CudaError::Host("plan points at a non-host step".into()));
                };
                let wrapper = Program { funs: vec![fun.clone()] };
                let mut interp = Interp::new(&wrapper);
                let args: Result<Vec<Value>, CudaError> = bindings
                    .iter()
                    .map(|b| match b {
                        HostBinding::Array(a) => host[*a]
                            .as_ref()
                            .map(|arr| Value::Arr(arr.clone()))
                            .ok_or_else(|| CudaError::Host(format!("host step input {a} missing"))),
                        HostBinding::Const(v) => Ok(v.clone()),
                    })
                    .collect();
                let out =
                    interp.call(&fun.name, args?).map_err(|e| CudaError::Host(e.to_string()))?;
                let out = out.as_array().map_err(|e| CudaError::Host(e.to_string()))?.clone();
                device.charge_host_on(
                    &fun.name,
                    interp.ops as f64 * host_cost.ns_per_op / 1000.0,
                    stream,
                )?;
                stats.host_ops += interp.ops;
                stats.host_steps += 1;
                host[*target] = Some(out);
            }
        }
    }

    let result = host[flat.result]
        .take()
        .ok_or_else(|| CudaError::Host("result never reached the host".into()))?;
    Ok((result, stats))
}

/// Options for [`run_frames_pipelined`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineOptions {
    /// Per-frame execution options (host cost model, channel chunking).
    pub exec: ExecOptions,
    /// Number of streams = number of device buffer sets. `0` or `1` runs
    /// fully serialized on the default stream (and then reproduces the
    /// one-frame-at-a-time schedule of [`run_on_device_opts`] exactly);
    /// `2` double-buffers so frame `f+1`'s upload overlaps frame `f`'s
    /// kernels and frame `f-1`'s download.
    pub streams: usize,
    /// When greater than the number of supplied frames, the timing of the
    /// remaining frames is *replayed* from the first frame's measured
    /// per-operation durations instead of executing them functionally. Exact
    /// under the cost model whenever per-frame cost is content-independent
    /// (fixed shapes; host steps whose trip counts do not depend on data),
    /// which holds for every pipeline in this workspace. `0` means
    /// `frames.len()`.
    pub total_frames: usize,
    /// When a batch attempt fails with [`simgpu::SimError::OutOfMemory`],
    /// release that attempt's device buffers, halve the number of stream
    /// lanes and retry the whole batch instead of failing — the degradation
    /// ladder `streams → streams/2 → … → 1`. Each downgrade is surfaced as a
    /// profiler note, and the failed attempt's simulated time stays charged
    /// (a real runtime pays for the work it abandons). Results are
    /// bit-identical at any lane count, so degradation only trades makespan
    /// for footprint. Off by default.
    pub degrade_on_oom: bool,
}

/// Execute a batch of frames with multi-stream double buffering.
///
/// Frame `f` is assigned stream `f % streams` and that stream's private
/// buffer set, so same-buffer reuse is protected by same-stream ordering
/// while adjacent frames overlap their H2D / compute / D2H phases on the
/// device's three engines — the classic CUDA async-stream frame pipeline.
/// Buffer sets are allocated once and reused across frames (allocation is
/// free in simulated time, so the `streams = 1` case still matches the
/// serial executor's clock bit-for-bit).
///
/// Returns one result array per *functionally executed* frame plus counters
/// covering all `total_frames` (replayed frames contribute their counters
/// and profiler records but no arrays). The device is synchronized on
/// return, so `device.now_us()` is the batch makespan.
///
/// With [`PipelineOptions::degrade_on_oom`] set, an `OutOfMemory` failure
/// restarts the batch at half the stream lanes (down to 1) instead of
/// propagating; the downgrade is recorded as a profiler note.
pub fn run_frames_pipelined(
    prog: &CudaProgram,
    device: &mut Device,
    frames: &[Vec<NdArray<i64>>],
    opts: PipelineOptions,
) -> Result<(Vec<NdArray<i64>>, RunStats), CudaError> {
    if frames.is_empty() {
        return Ok((Vec::new(), RunStats::default()));
    }
    let mut lanes = opts.streams.max(1);
    loop {
        match run_frames_attempt(prog, device, frames, opts, lanes) {
            Err(CudaError::Sim(simgpu::SimError::OutOfMemory { .. }))
                if opts.degrade_on_oom && lanes > 1 =>
            {
                let next = lanes / 2;
                device.profiler.note(format!(
                    "degraded: out of device memory at {lanes} stream lanes, \
                     retrying batch with {next}"
                ));
                lanes = next;
            }
            other => return other,
        }
    }
}

/// One batch attempt at a fixed lane count. Buffer sets are released on
/// success *and* failure so an aborted attempt never leaks device memory
/// into a degraded retry.
fn run_frames_attempt(
    prog: &CudaProgram,
    device: &mut Device,
    frames: &[Vec<NdArray<i64>>],
    opts: PipelineOptions,
    lanes: usize,
) -> Result<(Vec<NdArray<i64>>, RunStats), CudaError> {
    let mut streams = vec![StreamId::DEFAULT];
    while streams.len() < lanes {
        streams.push(device.create_stream());
    }
    let mut buffer_sets: Vec<Vec<Option<BufferId>>> =
        vec![vec![None; prog.flat.arrays.len()]; lanes];

    let run = exec_frames_on_lanes(prog, device, frames, opts, lanes, &streams, &mut buffer_sets);

    for set in buffer_sets {
        for buf in set.into_iter().flatten() {
            let freed = device.free(buf);
            if run.is_ok() {
                // On the error path the original failure wins; frees of
                // just-allocated buffers cannot themselves fail.
                freed?;
            }
        }
    }
    device.synchronize();
    run
}

/// The frame loop of one attempt: execute the supplied frames round-robin
/// over `lanes` buffer sets, then replay frame 0's measured spans out to
/// `total_frames`.
fn exec_frames_on_lanes(
    prog: &CudaProgram,
    device: &mut Device,
    frames: &[Vec<NdArray<i64>>],
    opts: PipelineOptions,
    lanes: usize,
    streams: &[StreamId],
    buffer_sets: &mut [Vec<Option<BufferId>>],
) -> Result<(Vec<NdArray<i64>>, RunStats), CudaError> {
    let mut outputs = Vec::with_capacity(frames.len());
    let mut stats = RunStats::default();
    let mut frame_ops: Vec<(String, OpClass, f64)> = Vec::new();
    let mut frame_stats = RunStats::default();
    for (f, inputs) in frames.iter().enumerate() {
        let lane = f % lanes;
        let span_mark = device.profiler.spans().count();
        let (out, st) =
            exec_plan_on(prog, device, inputs, opts.exec, &mut buffer_sets[lane], streams[lane])?;
        if f == 0 {
            frame_ops = device
                .profiler
                .spans()
                .skip(span_mark)
                .map(|sp| (sp.name.clone(), sp.class, sp.duration_us()))
                .collect();
            frame_stats = st.clone();
        }
        stats.accumulate(&st);
        outputs.push(out);
    }

    let total = if opts.total_frames == 0 { frames.len() } else { opts.total_frames };
    for f in frames.len()..total {
        let lane = f % lanes;
        for (name, class, us) in &frame_ops {
            device.replay_on(name, *class, *us, streams[lane])?;
        }
        stats.accumulate(&frame_stats);
    }
    Ok((outputs, stats))
}

/// Transfers split per leading slice when the leading dimension matches the
/// configured channel count.
fn chunks_for(shape: &[usize], channel_chunks: usize) -> usize {
    if channel_chunks > 1 && shape.len() >= 2 && shape[0] == channel_chunks {
        channel_chunks
    } else {
        1
    }
}

fn to_i32(data: &[i64]) -> Result<Vec<i32>, CudaError> {
    data.iter().map(|&v| i32::try_from(v).map_err(|_| CudaError::Overflow { value: v })).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile_flat_program;
    use sac_lang::opt::{optimize, ArgDesc, OptConfig};
    use sac_lang::parser::parse_program;

    /// End-to-end: SaC source -> optimiser -> CUDA backend -> simulator,
    /// checked against the AST interpreter.
    fn run_src(
        src: &str,
        inputs: &[NdArray<i64>],
        cfg: &OptConfig,
    ) -> (NdArray<i64>, RunStats, CudaProgram) {
        let prog = parse_program(src).unwrap();
        let args: Vec<ArgDesc> = inputs
            .iter()
            .enumerate()
            .map(|(i, a)| ArgDesc::Array {
                name: format!("in{i}"),
                shape: a.shape().dims().to_vec(),
            })
            .collect();
        let (flat, _) = optimize(&prog, "main", &args, cfg).unwrap();
        let cuda = compile_flat_program(&flat).unwrap();
        let mut device = Device::gtx480();
        let (out, stats) = run_on_device(&cuda, &mut device, inputs, HostCost::default()).unwrap();
        assert!(device.now_us() > 0.0);
        (out, stats, cuda)
    }

    fn interp_result(src: &str, inputs: &[NdArray<i64>]) -> NdArray<i64> {
        let prog = parse_program(src).unwrap();
        let mut i = Interp::new(&prog);
        let args = inputs.iter().map(|a| Value::Arr(a.clone())).collect();
        i.call("main", args).unwrap().as_array().unwrap().clone()
    }

    #[test]
    fn gpu_matches_interpreter_for_with_loop() {
        let src = r#"
int[*] main(int[8,16] a)
{
    out = with {
        ([0,0] <= iv < [8,16] step [1,2]) : a[iv] * 2;
        ([0,1] <= iv < [8,16] step [1,2]) : a[iv] + 1000;
    } : genarray( [8,16], 0);
    return( out);
}
"#;
        let a = NdArray::from_fn([8usize, 16], |ix| (ix[0] * 16 + ix[1]) as i64);
        let (out, stats, prog) = run_src(src, std::slice::from_ref(&a), &OptConfig::default());
        assert_eq!(out, interp_result(src, &[a]));
        assert_eq!(stats.launches, 2);
        assert_eq!(stats.h2d, 1);
        assert_eq!(stats.d2h, 1);
        assert_eq!(prog.host_steps_per_run(), 0);
    }

    #[test]
    fn host_fallback_roundtrips_through_device() {
        // GPU step, then a host for-loop, matching the generic output tiler
        // flow: H2D, kernel, D2H (forced), host scatter.
        let src = r#"
int[*] main(int[16] a)
{
    doubled = with { (. <= iv <= .) : a[iv] * 2; } : genarray( [16], 0);
    out = with { (. <= iv <= .) : 0; } : genarray( [16]);
    for( i=0; i< 16; i++) {
        out[[i]] = doubled[[i]] + 1;
    }
    return( out);
}
"#;
        let a = NdArray::from_fn([16usize], |ix| ix[0] as i64);
        let (out, stats, _) = run_src(src, std::slice::from_ref(&a), &OptConfig::default());
        assert_eq!(out, interp_result(src, &[a]));
        assert_eq!(stats.host_steps, 1);
        // The intermediate AND the zero seed came back for the host step.
        assert!(stats.d2h >= 2);
        assert!(stats.host_ops > 0);
    }

    #[test]
    fn folded_pipeline_runs_fewer_kernels() {
        let src = r#"
int[*] gather(int[4,16] f)
{
    out = with {
        (. <= rep <= .) {
            tile = with {
                (. <= pat <= .) : f[[rep[0], (rep[1] * 4 + pat[0]) % 16]];
            } : genarray( [6], 0);
        } : tile;
    } : genarray( [4,4]);
    return( out);
}
int[*] main(int[4,16] frame)
{
    inter = gather(frame);
    out = with {
        (. <= rep <= .) : inter[[rep[0], rep[1], 0]] + inter[[rep[0], rep[1], 1]];
    } : genarray( [4,4]);
    return( out);
}
"#;
        let frame = NdArray::from_fn([4usize, 16], |ix| (ix[0] * 16 + ix[1]) as i64);
        let expect = interp_result(src, std::slice::from_ref(&frame));

        let (out_folded, stats_folded, _) =
            run_src(src, std::slice::from_ref(&frame), &OptConfig::default());
        let (out_raw, stats_raw, _) =
            run_src(src, &[frame], &OptConfig { with_loop_folding: false, resolve_modulo: false });
        assert_eq!(out_folded, expect);
        assert_eq!(out_raw, expect);
        assert!(stats_folded.launches < stats_raw.launches);
    }

    #[test]
    fn overflow_is_detected() {
        let src = r#"
int[*] main(int[2] a)
{
    out = with { (. <= iv <= .) : a[iv]; } : genarray( [2], 0);
    return( out);
}
"#;
        let prog = parse_program(src).unwrap();
        let (flat, _) = optimize(
            &prog,
            "main",
            &[ArgDesc::Array { name: "a".into(), shape: vec![2] }],
            &OptConfig::default(),
        )
        .unwrap();
        let cuda = compile_flat_program(&flat).unwrap();
        let mut device = Device::gtx480();
        let too_big = NdArray::from_vec([2usize], vec![1, i64::from(i32::MAX) + 1]).unwrap();
        let err = run_on_device(&cuda, &mut device, &[too_big], HostCost::default());
        assert!(matches!(err, Err(CudaError::Overflow { .. })));
    }

    fn compile(src: &str, shapes: &[Vec<usize>]) -> CudaProgram {
        let prog = parse_program(src).unwrap();
        let args: Vec<ArgDesc> = shapes
            .iter()
            .enumerate()
            .map(|(i, s)| ArgDesc::Array { name: format!("in{i}"), shape: s.clone() })
            .collect();
        let (flat, _) = optimize(&prog, "main", &args, &OptConfig::default()).unwrap();
        compile_flat_program(&flat).unwrap()
    }

    const PIPE_SRC: &str = r#"
int[*] main(int[8,16] a)
{
    out = with {
        ([0,0] <= iv < [8,16]) : a[iv] * 3 + 7;
    } : genarray( [8,16], 0);
    return( out);
}
"#;

    fn pipe_frames(n: usize) -> Vec<Vec<NdArray<i64>>> {
        (0..n)
            .map(|f| {
                vec![NdArray::from_fn([8usize, 16], |ix| (f * 1000 + ix[0] * 16 + ix[1]) as i64)]
            })
            .collect()
    }

    #[test]
    fn one_stream_pipeline_matches_serial_executor_exactly() {
        let prog = compile(PIPE_SRC, &[vec![8, 16]]);
        let frames = pipe_frames(4);

        let mut serial = Device::gtx480();
        let mut serial_outs = Vec::new();
        for f in &frames {
            let (out, _) =
                run_on_device_opts(&prog, &mut serial, f, ExecOptions::default()).unwrap();
            serial_outs.push(out);
        }

        let mut piped = Device::gtx480();
        let (outs, _) = run_frames_pipelined(
            &prog,
            &mut piped,
            &frames,
            PipelineOptions { streams: 1, ..Default::default() },
        )
        .unwrap();

        assert_eq!(outs, serial_outs);
        // Bit-identical simulated clock and profiler records.
        assert_eq!(piped.now_us(), serial.now_us());
        let a: Vec<_> = serial.profiler.records().collect();
        let b: Vec<_> = piped.profiler.records().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn two_streams_overlap_and_preserve_results() {
        let prog = compile(PIPE_SRC, &[vec![8, 16]]);
        let frames = pipe_frames(6);

        let mut sync = Device::gtx480();
        let (expect, _) = run_frames_pipelined(
            &prog,
            &mut sync,
            &frames,
            PipelineOptions { streams: 1, ..Default::default() },
        )
        .unwrap();

        let mut db = Device::gtx480();
        let (got, stats) = run_frames_pipelined(
            &prog,
            &mut db,
            &frames,
            PipelineOptions { streams: 2, ..Default::default() },
        )
        .unwrap();

        assert_eq!(got, expect);
        assert_eq!(stats.launches, 6);
        assert!(db.now_us() < sync.now_us(), "{} !< {}", db.now_us(), sync.now_us());
        assert!(db.profiler.overlap_percent() > 0.0);
        // All buffer sets were released.
        assert_eq!(db.allocated_bytes(), 0);
    }

    #[test]
    fn replayed_frames_extend_timing_without_execution() {
        let prog = compile(PIPE_SRC, &[vec![8, 16]]);

        // Full functional run of 6 frames...
        let mut full = Device::gtx480();
        run_frames_pipelined(
            &prog,
            &mut full,
            &pipe_frames(6),
            PipelineOptions { streams: 2, ..Default::default() },
        )
        .unwrap();

        // ...vs 2 functional frames replayed out to 6.
        let mut replay = Device::gtx480();
        let (outs, stats) = run_frames_pipelined(
            &prog,
            &mut replay,
            &pipe_frames(2),
            PipelineOptions { streams: 2, total_frames: 6, ..Default::default() },
        )
        .unwrap();

        assert_eq!(outs.len(), 2);
        assert_eq!(stats.launches, 6);
        assert_eq!(replay.now_us(), full.now_us());
        assert_eq!(replay.profiler.spans().count(), full.profiler.spans().count());
    }

    #[test]
    fn oom_batch_degrades_lanes_and_completes() {
        let prog = compile(PIPE_SRC, &[vec![8, 16]]);
        let frames = pipe_frames(6);

        // Measure the per-lane device footprint on an unconstrained device.
        let mut probe = Device::gtx480();
        let (expect, _) = run_frames_pipelined(
            &prog,
            &mut probe,
            &frames,
            PipelineOptions { streams: 1, ..Default::default() },
        )
        .unwrap();
        let per_lane = probe.peak_allocated_bytes();
        assert!(per_lane > 0);

        // A device with room for two lanes but not four: the naive 4-stream
        // batch dies with OutOfMemory...
        let cfg = simgpu::DeviceConfig::toy(per_lane * 2);
        let mut naive = Device::new(cfg.clone(), simgpu::Calibration::gtx480());
        let err = run_frames_pipelined(
            &prog,
            &mut naive,
            &frames,
            PipelineOptions { streams: 4, ..Default::default() },
        );
        assert!(
            matches!(err, Err(CudaError::Sim(simgpu::SimError::OutOfMemory { .. }))),
            "{err:?}"
        );

        // ...while the degrading batch completes at reduced lanes with
        // bit-identical outputs, and reports the downgrade.
        let mut degraded = Device::new(cfg, simgpu::Calibration::gtx480());
        let (outs, _) = run_frames_pipelined(
            &prog,
            &mut degraded,
            &frames,
            PipelineOptions { streams: 4, degrade_on_oom: true, ..Default::default() },
        )
        .unwrap();
        assert_eq!(outs, expect);
        assert_eq!(degraded.allocated_bytes(), 0);
        let notes: Vec<&str> = degraded.profiler.notes().collect();
        assert!(notes.iter().any(|n| n.contains("degraded")), "{notes:?}");
    }

    #[test]
    fn profiler_records_kernels_and_transfers() {
        let src = r#"
int[*] main(int[32] a)
{
    out = with { (. <= iv <= .) : a[iv] * a[iv]; } : genarray( [32], 0);
    return( out);
}
"#;
        let prog = parse_program(src).unwrap();
        let (flat, _) = optimize(
            &prog,
            "main",
            &[ArgDesc::Array { name: "a".into(), shape: vec![32] }],
            &OptConfig::default(),
        )
        .unwrap();
        let cuda = compile_flat_program(&flat).unwrap();
        let mut device = Device::gtx480();
        let a = NdArray::from_fn([32usize], |ix| ix[0] as i64);
        run_on_device(&cuda, &mut device, &[a], HostCost::default()).unwrap();
        let names: Vec<String> = device.profiler.records().map(|r| r.name.clone()).collect();
        assert!(names.iter().any(|n| n == "memcpyHtoDasync"), "{names:?}");
        assert!(names.iter().any(|n| n == "memcpyDtoHasync"), "{names:?}");
        assert!(names.iter().any(|n| n.contains("_k0")), "{names:?}");
    }
}
