//! Execution of compiled SaC→CUDA programs on the simulated device.
//!
//! Since the launch-plan refactor this module contains no executor of its
//! own: [`lower_plan`] flattens a [`CudaProgram`] into the route-agnostic
//! [`simgpu::schedule::LaunchPlan`] IR (uploads and downloads chunked per
//! colour channel, one `Launch` per compiled kernel, host-fallback steps
//! wrapped as interpreter closures), and every entry point is a thin wrapper
//! over [`simgpu::schedule::BatchScheduler`] — the shared engine that owns
//! stream pipelining, buffer sets, OOM degradation and replay for both
//! compilation routes.

use crate::codegen::{CudaProgram, PlanOp};
use crate::CudaError;
use mdarray::NdArray;
use sac_lang::ast::Program;
use sac_lang::eval::Interp;
use sac_lang::value::Value;
use sac_lang::wir::{HostBinding, Step};
use simgpu::schedule::{
    chunks_for, ArrayDecl, BatchScheduler, HostOp, LaunchPlan, PlanKernel, PlanStep, ScheduleError,
};
use simgpu::Device;

pub use simgpu::schedule::{ExecOptions, RunStats};

/// Cost model for work that stays on the host CPU (the generic output
/// tiler). Charged as simulated time so Figure 9's generic-variant numbers
/// include the host scatter the paper describes.
#[derive(Debug, Clone, Copy)]
pub struct HostCost {
    /// Simulated nanoseconds per abstract interpreter operation.
    pub ns_per_op: f64,
}

impl Default for HostCost {
    fn default() -> Self {
        // Calibrated alongside the sequential cost model (see the bench
        // crate's `calibration` module): one abstract op of the scatter nest
        // corresponds to a fraction of a compiled-C nanosecond.
        HostCost { ns_per_op: 0.12 }
    }
}

/// Map a scheduler error back onto this route's error type.
fn from_schedule(e: ScheduleError) -> CudaError {
    match e {
        ScheduleError::Sim(e) => CudaError::Sim(e),
        ScheduleError::Overflow { value } => CudaError::Overflow { value },
        ScheduleError::Input(m) | ScheduleError::Plan(m) | ScheduleError::Host(m) => {
            CudaError::Host(m)
        }
        ScheduleError::Config(m) => CudaError::Config(m),
    }
}

/// Lower a compiled CUDA program to the route-agnostic launch-plan IR.
///
/// The lowering is 1:1 with the program's transfer-annotated plan: `Upload`
/// and `Download` steps carry the per-channel chunking decision (see
/// [`chunks_for`]) resolved against each array's shape, `SeedCopy` and
/// `Launch` both become plan launches (a seed copy *is* a kernel launch in
/// this backend), and each `HostStep` becomes a [`HostOp`] closure that runs
/// the step's function in a fresh `sac-lang` interpreter and reports the
/// abstract op count for host-time accounting.
pub fn lower_plan(prog: &CudaProgram, channel_chunks: usize) -> Result<LaunchPlan<'_>, CudaError> {
    let flat = &prog.flat;
    let arrays: Vec<ArrayDecl> = flat
        .arrays
        .iter()
        .map(|a| ArrayDecl { name: a.name.clone(), shape: a.shape.clone() })
        .collect();
    // Where a kernel is a recognisable single-source affine gather, attach
    // its tiled-access description so `simgpu::planopt`'s fusion pass can
    // compose launches even on this route, where WITH-loop folding has
    // already erased the model-level structure.
    let kernels: Vec<PlanKernel<'_>> = prog
        .kernels
        .iter()
        .map(|ck| {
            let pk = PlanKernel::new(&ck.kernel, ck.config, ck.buffers.clone());
            if ck.gen_index != usize::MAX {
                if let Some((src, access)) =
                    crate::access::recognize(flat, ck.step_index, ck.gen_index)
                {
                    if ck.buffers.len() == 2 && ck.buffers[0] == ck.target && ck.buffers[1] == src {
                        return pk.with_access(access);
                    }
                }
            }
            pk
        })
        .collect();
    let mut host_ops: Vec<HostOp<'_>> = Vec::new();
    let mut steps = Vec::with_capacity(prog.plan.len());
    for op in &prog.plan {
        match op {
            PlanOp::Upload { array } => steps.push(PlanStep::Upload {
                array: *array,
                chunks: chunks_for(&flat.arrays[*array].shape, channel_chunks),
            }),
            PlanOp::Alloc { array } => steps.push(PlanStep::Alloc { array: *array }),
            PlanOp::SeedCopy { kernel } | PlanOp::Launch { kernel } => {
                steps.push(PlanStep::Launch { kernel: *kernel })
            }
            PlanOp::Download { array } => steps.push(PlanStep::Download {
                array: *array,
                chunks: chunks_for(&flat.arrays[*array].shape, channel_chunks),
            }),
            PlanOp::HostStep { step } => {
                let Step::Host { target, fun, bindings, .. } = &flat.steps[*step] else {
                    return Err(CudaError::Host("plan points at a non-host step".into()));
                };
                let reads: Vec<usize> = bindings
                    .iter()
                    .filter_map(|b| match b {
                        HostBinding::Array(a) => Some(*a),
                        HostBinding::Const(_) => None,
                    })
                    .collect();
                let run = Box::new(move |arrs: &[NdArray<i64>]| {
                    let wrapper = Program { funs: vec![fun.clone()] };
                    let mut interp = Interp::new(&wrapper);
                    let mut supplied = arrs.iter();
                    let args: Vec<Value> = bindings
                        .iter()
                        .map(|b| match b {
                            HostBinding::Array(_) => Value::Arr(
                                supplied
                                    .next()
                                    .expect("scheduler supplies one array per declared read")
                                    .clone(),
                            ),
                            HostBinding::Const(v) => v.clone(),
                        })
                        .collect();
                    let out = interp.call(&fun.name, args).map_err(|e| e.to_string())?;
                    let out = out.as_array().map_err(|e| e.to_string())?.clone();
                    Ok((out, interp.ops))
                });
                host_ops.push(HostOp { name: fun.name.clone(), target: *target, reads, run });
                steps.push(PlanStep::Host { op: host_ops.len() - 1 });
            }
        }
    }
    Ok(LaunchPlan {
        arrays,
        inputs: flat.inputs.clone(),
        outputs: vec![flat.result],
        kernels,
        host_ops,
        steps,
        prologue: Vec::new(),
        invariant: Vec::new(),
        batches: Vec::new(),
        carries: Vec::new(),
        lane_label: "stream lanes",
    })
}

/// Run the `opts.optimize` planopt passes over a freshly lowered plan,
/// surfacing each pass's change note in the device profiler.
fn optimize_plan(
    plan: &mut LaunchPlan<'_>,
    device: &mut Device,
    opts: &ExecOptions,
) -> Result<(), CudaError> {
    let report = simgpu::planopt::optimize(plan, opts.optimize).map_err(from_schedule)?;
    for note in report.notes {
        device.profiler.note(note);
    }
    Ok(())
}

/// Execute `prog` once on `device` with the given input arrays.
///
/// All timing is simulated and recorded in the device's profiler; the
/// returned array is the program result (bit-exact with the interpreter).
pub fn run_on_device(
    prog: &CudaProgram,
    device: &mut Device,
    inputs: &[NdArray<i64>],
    host_cost: HostCost,
) -> Result<(NdArray<i64>, RunStats), CudaError> {
    run_on_device_opts(
        prog,
        device,
        inputs,
        ExecOptions { host_ns_per_op: host_cost.ns_per_op, ..Default::default() },
    )
}

/// [`run_on_device`] with explicit [`ExecOptions`].
///
/// Executes exactly once, serially, on the default stream (only
/// [`ExecOptions::host_ns_per_op`] and [`ExecOptions::channel_chunks`] are
/// honoured; batch fields are overridden). The paper's per-frame runtime
/// also releases its buffers after each frame, which the scheduler does on
/// return.
pub fn run_on_device_opts(
    prog: &CudaProgram,
    device: &mut Device,
    inputs: &[NdArray<i64>],
    opts: ExecOptions,
) -> Result<(NdArray<i64>, RunStats), CudaError> {
    let mut plan = lower_plan(prog, opts.channel_chunks)?;
    optimize_plan(&mut plan, device, &opts)?;
    let frames = [inputs.to_vec()];
    let serial = ExecOptions { streams: 1, total_frames: 0, ..opts };
    let (mut outs, stats) =
        BatchScheduler::new(&plan).run(device, &frames, &serial).map_err(from_schedule)?;
    let mut frame = outs.pop().expect("one frame in, one frame out");
    let result = frame.pop().expect("sac plans have exactly one output");
    Ok((result, stats))
}

/// Execute a batch of frames with multi-stream double buffering.
///
/// A thin wrapper: lowers `prog` with [`lower_plan`] and hands the batch to
/// [`BatchScheduler`], which assigns frame `f` to stream lane `f % streams`
/// with a private buffer set, replays timing out to
/// [`ExecOptions::total_frames`], and (with [`ExecOptions::degrade_on_oom`])
/// walks the lane-halving degradation ladder on `OutOfMemory`. See the
/// scheduler docs for the full contract; results, simulated clock and
/// profiler records are identical to the pre-refactor route-local executor.
pub fn run_frames_pipelined(
    prog: &CudaProgram,
    device: &mut Device,
    frames: &[Vec<NdArray<i64>>],
    opts: ExecOptions,
) -> Result<(Vec<NdArray<i64>>, RunStats), CudaError> {
    if frames.is_empty() {
        return Ok((Vec::new(), RunStats::default()));
    }
    let mut plan = lower_plan(prog, opts.channel_chunks)?;
    optimize_plan(&mut plan, device, &opts)?;
    let (outs, stats) =
        BatchScheduler::new(&plan).run(device, frames, &opts).map_err(from_schedule)?;
    let outs = outs
        .into_iter()
        .map(|mut frame| frame.pop().expect("sac plans have exactly one output"))
        .collect();
    Ok((outs, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile_flat_program;
    use sac_lang::opt::{optimize, ArgDesc, OptConfig};
    use sac_lang::parser::parse_program;

    /// End-to-end: SaC source -> optimiser -> CUDA backend -> simulator,
    /// checked against the AST interpreter.
    fn run_src(
        src: &str,
        inputs: &[NdArray<i64>],
        cfg: &OptConfig,
    ) -> (NdArray<i64>, RunStats, CudaProgram) {
        let prog = parse_program(src).unwrap();
        let args: Vec<ArgDesc> = inputs
            .iter()
            .enumerate()
            .map(|(i, a)| ArgDesc::Array {
                name: format!("in{i}"),
                shape: a.shape().dims().to_vec(),
            })
            .collect();
        let (flat, _) = optimize(&prog, "main", &args, cfg).unwrap();
        let cuda = compile_flat_program(&flat).unwrap();
        let mut device = Device::gtx480();
        let (out, stats) = run_on_device(&cuda, &mut device, inputs, HostCost::default()).unwrap();
        assert!(device.now_us() > 0.0);
        (out, stats, cuda)
    }

    fn interp_result(src: &str, inputs: &[NdArray<i64>]) -> NdArray<i64> {
        let prog = parse_program(src).unwrap();
        let mut i = Interp::new(&prog);
        let args = inputs.iter().map(|a| Value::Arr(a.clone())).collect();
        i.call("main", args).unwrap().as_array().unwrap().clone()
    }

    #[test]
    fn gpu_matches_interpreter_for_with_loop() {
        let src = r#"
int[*] main(int[8,16] a)
{
    out = with {
        ([0,0] <= iv < [8,16] step [1,2]) : a[iv] * 2;
        ([0,1] <= iv < [8,16] step [1,2]) : a[iv] + 1000;
    } : genarray( [8,16], 0);
    return( out);
}
"#;
        let a = NdArray::from_fn([8usize, 16], |ix| (ix[0] * 16 + ix[1]) as i64);
        let (out, stats, prog) = run_src(src, std::slice::from_ref(&a), &OptConfig::default());
        assert_eq!(out, interp_result(src, &[a]));
        assert_eq!(stats.launches, 2);
        assert_eq!(stats.h2d, 1);
        assert_eq!(stats.d2h, 1);
        assert_eq!(prog.host_steps_per_run(), 0);
    }

    #[test]
    fn host_fallback_roundtrips_through_device() {
        // GPU step, then a host for-loop, matching the generic output tiler
        // flow: H2D, kernel, D2H (forced), host scatter.
        let src = r#"
int[*] main(int[16] a)
{
    doubled = with { (. <= iv <= .) : a[iv] * 2; } : genarray( [16], 0);
    out = with { (. <= iv <= .) : 0; } : genarray( [16]);
    for( i=0; i< 16; i++) {
        out[[i]] = doubled[[i]] + 1;
    }
    return( out);
}
"#;
        let a = NdArray::from_fn([16usize], |ix| ix[0] as i64);
        let (out, stats, _) = run_src(src, std::slice::from_ref(&a), &OptConfig::default());
        assert_eq!(out, interp_result(src, &[a]));
        assert_eq!(stats.host_steps, 1);
        // The intermediate AND the zero seed came back for the host step.
        assert!(stats.d2h >= 2);
        assert!(stats.host_ops > 0);
    }

    #[test]
    fn folded_pipeline_runs_fewer_kernels() {
        let src = r#"
int[*] gather(int[4,16] f)
{
    out = with {
        (. <= rep <= .) {
            tile = with {
                (. <= pat <= .) : f[[rep[0], (rep[1] * 4 + pat[0]) % 16]];
            } : genarray( [6], 0);
        } : tile;
    } : genarray( [4,4]);
    return( out);
}
int[*] main(int[4,16] frame)
{
    inter = gather(frame);
    out = with {
        (. <= rep <= .) : inter[[rep[0], rep[1], 0]] + inter[[rep[0], rep[1], 1]];
    } : genarray( [4,4]);
    return( out);
}
"#;
        let frame = NdArray::from_fn([4usize, 16], |ix| (ix[0] * 16 + ix[1]) as i64);
        let expect = interp_result(src, std::slice::from_ref(&frame));

        let (out_folded, stats_folded, _) =
            run_src(src, std::slice::from_ref(&frame), &OptConfig::default());
        let (out_raw, stats_raw, _) =
            run_src(src, &[frame], &OptConfig { with_loop_folding: false, resolve_modulo: false });
        assert_eq!(out_folded, expect);
        assert_eq!(out_raw, expect);
        assert!(stats_folded.launches < stats_raw.launches);
    }

    #[test]
    fn overflow_is_detected() {
        let src = r#"
int[*] main(int[2] a)
{
    out = with { (. <= iv <= .) : a[iv]; } : genarray( [2], 0);
    return( out);
}
"#;
        let prog = parse_program(src).unwrap();
        let (flat, _) = optimize(
            &prog,
            "main",
            &[ArgDesc::Array { name: "a".into(), shape: vec![2] }],
            &OptConfig::default(),
        )
        .unwrap();
        let cuda = compile_flat_program(&flat).unwrap();
        let mut device = Device::gtx480();
        let too_big = NdArray::from_vec([2usize], vec![1, i64::from(i32::MAX) + 1]).unwrap();
        let err = run_on_device(&cuda, &mut device, &[too_big], HostCost::default());
        assert!(matches!(err, Err(CudaError::Overflow { .. })));
    }

    fn compile(src: &str, shapes: &[Vec<usize>]) -> CudaProgram {
        let prog = parse_program(src).unwrap();
        let args: Vec<ArgDesc> = shapes
            .iter()
            .enumerate()
            .map(|(i, s)| ArgDesc::Array { name: format!("in{i}"), shape: s.clone() })
            .collect();
        let (flat, _) = optimize(&prog, "main", &args, &OptConfig::default()).unwrap();
        compile_flat_program(&flat).unwrap()
    }

    const PIPE_SRC: &str = r#"
int[*] main(int[8,16] a)
{
    out = with {
        ([0,0] <= iv < [8,16]) : a[iv] * 3 + 7;
    } : genarray( [8,16], 0);
    return( out);
}
"#;

    fn pipe_frames(n: usize) -> Vec<Vec<NdArray<i64>>> {
        (0..n)
            .map(|f| {
                vec![NdArray::from_fn([8usize, 16], |ix| (f * 1000 + ix[0] * 16 + ix[1]) as i64)]
            })
            .collect()
    }

    #[test]
    fn one_stream_pipeline_matches_serial_executor_exactly() {
        let prog = compile(PIPE_SRC, &[vec![8, 16]]);
        let frames = pipe_frames(4);

        let mut serial = Device::gtx480();
        let mut serial_outs = Vec::new();
        for f in &frames {
            let (out, _) =
                run_on_device_opts(&prog, &mut serial, f, ExecOptions::default()).unwrap();
            serial_outs.push(out);
        }

        let mut piped = Device::gtx480();
        let (outs, _) = run_frames_pipelined(
            &prog,
            &mut piped,
            &frames,
            ExecOptions { streams: 1, ..Default::default() },
        )
        .unwrap();

        assert_eq!(outs, serial_outs);
        // Bit-identical simulated clock and profiler records.
        assert_eq!(piped.now_us(), serial.now_us());
        let a: Vec<_> = serial.profiler.records().collect();
        let b: Vec<_> = piped.profiler.records().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn two_streams_overlap_and_preserve_results() {
        let prog = compile(PIPE_SRC, &[vec![8, 16]]);
        let frames = pipe_frames(6);

        let mut sync = Device::gtx480();
        let (expect, _) = run_frames_pipelined(
            &prog,
            &mut sync,
            &frames,
            ExecOptions { streams: 1, ..Default::default() },
        )
        .unwrap();

        let mut db = Device::gtx480();
        let (got, stats) = run_frames_pipelined(
            &prog,
            &mut db,
            &frames,
            ExecOptions { streams: 2, ..Default::default() },
        )
        .unwrap();

        assert_eq!(got, expect);
        assert_eq!(stats.launches, 6);
        assert!(db.now_us() < sync.now_us(), "{} !< {}", db.now_us(), sync.now_us());
        assert!(db.profiler.overlap_percent() > 0.0);
        // All buffer sets were released.
        assert_eq!(db.allocated_bytes(), 0);
    }

    #[test]
    fn planopt_coalesces_chunked_transfers_without_changing_results() {
        let prog = compile(PIPE_SRC, &[vec![8, 16]]);
        let frames = pipe_frames(4);
        let opts = ExecOptions { streams: 2, channel_chunks: 8, ..Default::default() };

        let mut base = Device::gtx480();
        let (expect, base_stats) = run_frames_pipelined(&prog, &mut base, &frames, opts).unwrap();
        assert_eq!(base_stats.h2d, 4 * 8, "per-channel chunking baseline");

        let mut opt = Device::gtx480();
        let (got, stats) = run_frames_pipelined(
            &prog,
            &mut opt,
            &frames,
            ExecOptions { optimize: simgpu::PlanOptLevel::COALESCE, ..opts },
        )
        .unwrap();

        assert_eq!(got, expect);
        // Same bytes in one transfer per frame per direction, minus the
        // per-chunk latencies.
        assert_eq!(stats.h2d, 4);
        assert_eq!(stats.h2d_bytes, base_stats.h2d_bytes);
        assert_eq!(stats.d2h_bytes, base_stats.d2h_bytes);
        assert!(opt.now_us() < base.now_us(), "{} !< {}", opt.now_us(), base.now_us());
        assert!(opt.profiler.notes().any(|n| n.contains("planopt coalesce")));
    }

    #[test]
    fn replayed_frames_extend_timing_without_execution() {
        let prog = compile(PIPE_SRC, &[vec![8, 16]]);

        // Full functional run of 6 frames...
        let mut full = Device::gtx480();
        run_frames_pipelined(
            &prog,
            &mut full,
            &pipe_frames(6),
            ExecOptions { streams: 2, ..Default::default() },
        )
        .unwrap();

        // ...vs 2 functional frames replayed out to 6.
        let mut replay = Device::gtx480();
        let (outs, stats) = run_frames_pipelined(
            &prog,
            &mut replay,
            &pipe_frames(2),
            ExecOptions { streams: 2, total_frames: 6, ..Default::default() },
        )
        .unwrap();

        assert_eq!(outs.len(), 2);
        assert_eq!(stats.launches, 6);
        assert_eq!(replay.now_us(), full.now_us());
        assert_eq!(replay.profiler.spans().count(), full.profiler.spans().count());
    }

    #[test]
    fn oom_batch_degrades_lanes_and_completes() {
        let prog = compile(PIPE_SRC, &[vec![8, 16]]);
        let frames = pipe_frames(6);

        // Measure the per-lane device footprint on an unconstrained device.
        let mut probe = Device::gtx480();
        let (expect, _) = run_frames_pipelined(
            &prog,
            &mut probe,
            &frames,
            ExecOptions { streams: 1, ..Default::default() },
        )
        .unwrap();
        let per_lane = probe.peak_allocated_bytes();
        assert!(per_lane > 0);

        // A device with room for two lanes but not four: the naive 4-stream
        // batch dies with OutOfMemory...
        let cfg = simgpu::DeviceConfig::toy(per_lane * 2);
        let mut naive = Device::new(cfg.clone(), simgpu::Calibration::gtx480());
        let err = run_frames_pipelined(
            &prog,
            &mut naive,
            &frames,
            ExecOptions { streams: 4, ..Default::default() },
        );
        assert!(
            matches!(err, Err(CudaError::Sim(simgpu::SimError::OutOfMemory { .. }))),
            "{err:?}"
        );

        // ...while the degrading batch completes at reduced lanes with
        // bit-identical outputs, and reports the downgrade.
        let mut degraded = Device::new(cfg, simgpu::Calibration::gtx480());
        let (outs, _) = run_frames_pipelined(
            &prog,
            &mut degraded,
            &frames,
            ExecOptions { streams: 4, degrade_on_oom: true, ..Default::default() },
        )
        .unwrap();
        assert_eq!(outs, expect);
        assert_eq!(degraded.allocated_bytes(), 0);
        let notes: Vec<&str> = degraded.profiler.notes().collect();
        assert!(
            notes.iter().any(|n| n.contains("degraded") && n.contains("stream lanes")),
            "{notes:?}"
        );
    }

    #[test]
    fn zero_streams_is_rejected_by_the_unified_validation() {
        let prog = compile(PIPE_SRC, &[vec![8, 16]]);
        let mut device = Device::gtx480();
        let err = run_frames_pipelined(
            &prog,
            &mut device,
            &pipe_frames(2),
            ExecOptions { streams: 0, ..Default::default() },
        );
        assert!(matches!(err, Err(CudaError::Config(_))), "{err:?}");
        assert_eq!(device.now_us(), 0.0);
    }

    #[test]
    fn profiler_records_kernels_and_transfers() {
        let src = r#"
int[*] main(int[32] a)
{
    out = with { (. <= iv <= .) : a[iv] * a[iv]; } : genarray( [32], 0);
    return( out);
}
"#;
        let prog = parse_program(src).unwrap();
        let (flat, _) = optimize(
            &prog,
            "main",
            &[ArgDesc::Array { name: "a".into(), shape: vec![32] }],
            &OptConfig::default(),
        )
        .unwrap();
        let cuda = compile_flat_program(&flat).unwrap();
        let mut device = Device::gtx480();
        let a = NdArray::from_fn([32usize], |ix| ix[0] as i64);
        run_on_device(&cuda, &mut device, &[a], HostCost::default()).unwrap();
        let names: Vec<String> = device.profiler.records().map(|r| r.name.clone()).collect();
        assert!(names.iter().any(|n| n == "memcpyHtoDasync"), "{names:?}");
        assert!(names.iter().any(|n| n == "memcpyDtoHasync"), "{names:?}");
        assert!(names.iter().any(|n| n.contains("_k0")), "{names:?}");
    }
}
