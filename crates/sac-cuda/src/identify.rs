//! CUDA-WITH-loop identification.
//!
//! The paper: "Inherent limitations of the CUDA architecture and the
//! programming model […] render certain WITH-loops un-parallelisable. The
//! CUDA backend therefore only parallelises the outermost WITH-loops
//! containing no function invocations."
//!
//! In the flat WIR those criteria are structural: every [`Step::With`] is an
//! outermost, invocation-free, data-parallel loop (nesting was scalarised and
//! calls were inlined by the optimiser); every [`Step::Host`] is exactly a
//! construct that failed those criteria. This module classifies steps and
//! reports why, which the reproduction harness prints alongside Figure 9.

use sac_lang::wir::{FlatProgram, Step};

/// Classification of one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepClass {
    /// Eligible: becomes `generators` CUDA kernels.
    CudaWithLoop {
        /// Number of kernels this step will produce (one per generator).
        generators: usize,
        /// Total threads across those kernels.
        threads: u64,
    },
    /// Stays on the host.
    Host {
        /// The lowering-time reason.
        reason: String,
    },
}

/// Classify every step of a flat program, in execution order.
pub fn classify(p: &FlatProgram) -> Vec<(String, StepClass)> {
    p.steps
        .iter()
        .map(|s| match s {
            Step::With { target, with } => (
                p.arrays[*target].name.clone(),
                StepClass::CudaWithLoop {
                    generators: with.generators.len(),
                    threads: with.generators.iter().map(|g| g.points()).sum(),
                },
            ),
            Step::Host { target, reason, .. } => {
                (p.arrays[*target].name.clone(), StepClass::Host { reason: reason.clone() })
            }
        })
        .collect()
}

/// Total kernel launches one execution of the program will perform.
pub fn kernel_count(p: &FlatProgram) -> usize {
    p.generator_count()
}

/// Does the program run entirely on the GPU (no host fallbacks)?
pub fn fully_offloaded(p: &FlatProgram) -> bool {
    p.steps.iter().all(|s| matches!(s, Step::With { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_lang::wir::{FlatGen, FlatWith, HostBinding, SymExpr};

    fn sample() -> FlatProgram {
        let mut p = FlatProgram::default();
        let a = p.declare("a", vec![8]);
        let b = p.declare("b", vec![8]);
        let c = p.declare("c", vec![8]);
        p.inputs.push(a);
        p.result = c;
        p.steps.push(Step::With {
            target: b,
            with: FlatWith {
                shape: vec![8],
                default: 0,
                modarray_src: None,
                generators: vec![
                    FlatGen::dense(&[8], SymExpr::Const(1)),
                    FlatGen {
                        lower: vec![0],
                        upper: vec![4],
                        step: vec![1],
                        width: vec![1],
                        body: SymExpr::Const(2),
                    },
                ],
            },
        });
        p.steps.push(Step::Host {
            target: c,
            fun: sac_lang::ast::FunDef {
                name: "h".into(),
                ret: sac_lang::ast::TypeAnn::ArrAnyRank,
                params: vec![],
                body: vec![],
            },
            bindings: vec![HostBinding::Array(b)],
            reason: "for-loop nest".into(),
        });
        p
    }

    #[test]
    fn classifies_with_and_host_steps() {
        let p = sample();
        let classes = classify(&p);
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].1, StepClass::CudaWithLoop { generators: 2, threads: 12 });
        assert!(matches!(classes[1].1, StepClass::Host { .. }));
    }

    #[test]
    fn kernel_count_is_generator_count() {
        let p = sample();
        assert_eq!(kernel_count(&p), 2);
        assert!(!fully_offloaded(&p));
    }
}
