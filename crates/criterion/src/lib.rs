//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the real crates.io
//! `criterion` cannot be fetched. This shim keeps the workspace's
//! `[[bench]]` targets compiling and running: it implements `Criterion`,
//! `BenchmarkGroup`, `Bencher`, `BenchmarkId`, `criterion_group!` and
//! `criterion_main!` with simple wall-clock measurement (median over a small
//! number of samples, one warm-up iteration) and plain-text reporting. It
//! produces no statistical analysis, plots, or saved baselines.

use std::time::{Duration, Instant};

/// Benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Default driver (5 samples per benchmark).
    pub fn new() -> Self {
        Criterion { sample_size: 5 }
    }

    /// Begin a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size.max(2), _parent: self }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench("", name, self.sample_size.max(2), f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measure `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_bench(&self.name, &id.into().label, self.sample_size, f);
        self
    }

    /// Measure `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&self.name, &id.label, self.sample_size, |b| f(b, input));
        self
    }

    /// End the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Identifier combining a function name and a parameter display value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    /// A bare parameter id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing harness passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Time one execution of `routine` (the sampling loop lives in the
    /// caller, so expensive routines still get only `sample_size` runs).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed = Some(start.elapsed());
        drop(out);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(group: &str, name: &str, samples: usize, mut f: F) {
    let full = if group.is_empty() { name.to_string() } else { format!("{group}/{name}") };
    // Warm-up run, not recorded.
    let mut b = Bencher::default();
    f(&mut b);
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher::default();
        f(&mut b);
        times.push(b.elapsed.unwrap_or_default());
    }
    times.sort();
    let median = times[times.len() / 2];
    let best = times[0];
    println!("{full:<48} median {median:>12.3?}   best {best:>12.3?}   ({samples} samples)");
}

/// Convert `Duration` to fractional seconds (used by some reporters).
pub fn duration_to_secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Declare a benchmark group function list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut calls = 0u32;
        group.bench_function("counting", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &v| b.iter(|| v * 2));
        group.finish();
        // Warm-up + 2 samples.
        assert_eq!(calls, 3);
    }
}
