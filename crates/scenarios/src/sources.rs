//! SaC program sources for the registry's non-downscaler pipelines.
//!
//! Each source is a `main` over a single input array, written in the same
//! WITH-loop style as the paper's downscaler (gathers with computed
//! indices, `genarray` result shapes baked in), so the existing
//! `sac-lang` → `sac-cuda` chain lowers every stage to a kernel with no
//! host fallbacks.

/// Halide-style three-stage column-stencil chain:
/// blur `[1,2,1]` → gradient `[-1,0,1]` → sharpen `[-1,3,-1]`.
///
/// Each stage slides a width-3 window along columns, so the frame narrows
/// by two columns per stage: `[R,C] → [R,C-2] → [R,C-4] → [R,C-6]`.
pub fn imagepipe_src(rows: usize, cols: usize) -> String {
    format!(
        r#"
int[*] main(int[{r},{c}] frame)
{{
    b = with {{
        (. <= [i,j] <= .) : frame[[i,j]] + 2*frame[[i,j+1]] + frame[[i,j+2]];
    }} : genarray( [{r},{c2}]);
    g = with {{
        (. <= [i,j] <= .) : b[[i,j+2]] - b[[i,j]];
    }} : genarray( [{r},{c4}]);
    s = with {{
        (. <= [i,j] <= .) : 3*g[[i,j+1]] - g[[i,j]] - g[[i,j+2]];
    }} : genarray( [{r},{c6}]);
    return( s);
}}
"#,
        r = rows,
        c = cols,
        c2 = cols - 2,
        c4 = cols - 4,
        c6 = cols - 6,
    )
}

/// Delta encoding over a stacked `[2,R,C]` input: plane 0 is the current
/// frame, plane 1 the previous one, and the output is their difference.
///
/// The program itself is stateless — the cross-frame threading (frame `N`
/// reads frame `N-1`) is added after lowering by
/// [`crate::temporal::temporalize`], which is route-agnostic plan surgery.
pub fn delta_src(rows: usize, cols: usize) -> String {
    format!(
        r#"
int[*] main(int[2,{r},{c}] frame)
{{
    d = with {{
        (. <= [i,j] <= .) : frame[[0,i,j]] - frame[[1,i,j]];
    }} : genarray( [{r},{c}]);
    return( d);
}}
"#,
        r = rows,
        c = cols,
    )
}

/// Block reduction + affine remap: sum each horizontal 4-pixel block, then
/// map `x ↦ 2x + 10`. Integer-exact (no division), so the cross-route
/// bit-identity check is meaningful. `[R,C] → [R,C/4]`.
pub fn blockmean_src(rows: usize, cols: usize) -> String {
    format!(
        r#"
int[*] main(int[{r},{c}] frame)
{{
    s = with {{
        (. <= [i,j] <= .) : frame[[i,4*j]] + frame[[i,4*j+1]] + frame[[i,4*j+2]] + frame[[i,4*j+3]];
    }} : genarray( [{r},{cb}]);
    m = with {{
        (. <= [i,j] <= .) : 2*s[[i,j]] + 10;
    }} : genarray( [{r},{cb}]);
    return( m);
}}
"#,
        r = rows,
        c = cols,
        cb = cols / 4,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_parse_and_typecheck() {
        for src in [imagepipe_src(8, 16), delta_src(6, 10), blockmean_src(6, 16)] {
            let prog = sac_lang::parse_program(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
            sac_lang::types::check_program(&prog).unwrap_or_else(|e| panic!("{e}\n{src}"));
        }
    }
}
