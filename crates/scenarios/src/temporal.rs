//! Route-agnostic plan surgery that turns the stateless stacked-delta plan
//! into a temporal workload.
//!
//! Both routes lower the delta pipeline as a stateless program over one
//! stacked `[2, rows, cols]` input (plane 0 = current frame, plane 1 =
//! previous frame). [`temporalize`] rewires the *lowered*
//! [`LaunchPlan`] — the IR both routes share — so the plan instead takes
//! two `[rows, cols]` inputs (`cur`, `prev`), stacks them with a host op,
//! and carries each frame's `cur` forward as the next frame's `prev` via a
//! [`Carry`]. Because the surgery happens after lowering, the SaC→CUDA and
//! Gaspard→OpenCL plans get bit-identical temporal semantics from the same
//! transform.

use mdarray::NdArray;
use simgpu::schedule::{ArrayDecl, Carry, HostOp, LaunchPlan, PlanStep};

/// Rewire a stateless stacked-input plan into a temporal one.
///
/// Expects exactly one frame input of shape `[2, rows, cols]`; returns the
/// plan with inputs `[cur, prev]` (each `[rows, cols]`), a prepended host
/// op that stacks them into the original input, and a
/// `Carry { from: cur, to: prev }` so frame `N`'s `prev` binding is frame
/// `N-1`'s `cur`. The caller's `prev` array seeds frame 0 only.
pub fn temporalize(mut plan: LaunchPlan<'_>) -> Result<LaunchPlan<'_>, String> {
    let &[stacked] = plan.inputs.as_slice() else {
        return Err(format!(
            "temporalize expects exactly one frame input, the plan has {}",
            plan.inputs.len()
        ));
    };
    let stack_shape = plan.arrays[stacked].shape.clone();
    if stack_shape.len() != 3 || stack_shape[0] != 2 {
        return Err(format!(
            "temporalize expects a stacked [2, rows, cols] input, got {stack_shape:?}"
        ));
    }
    let plane_shape = stack_shape[1..].to_vec();
    let plane_len: usize = plane_shape.iter().product();

    let cur = plan.arrays.len();
    plan.arrays.push(ArrayDecl { name: "cur".into(), shape: plane_shape.clone() });
    let prev = plan.arrays.len();
    plan.arrays.push(ArrayDecl { name: "prev".into(), shape: plane_shape });

    let op = plan.host_ops.len();
    plan.host_ops.push(HostOp {
        name: "stack_cur_prev".into(),
        target: stacked,
        reads: vec![cur, prev],
        run: Box::new(move |arrs: &[NdArray<i64>]| {
            let mut data = Vec::with_capacity(2 * plane_len);
            data.extend_from_slice(arrs[0].as_slice());
            data.extend_from_slice(arrs[1].as_slice());
            let out = NdArray::from_vec(stack_shape.clone(), data).map_err(|e| e.to_string())?;
            // One abstract host op per copied element.
            Ok((out, 2 * plane_len as u64))
        }),
    });

    plan.inputs = vec![cur, prev];
    plan.steps.insert(0, PlanStep::Host { op });
    plan.carries.push(Carry { from: cur, to: prev });
    plan.validate().map_err(|e| format!("temporalized plan is inconsistent: {e}"))?;
    Ok(plan)
}
