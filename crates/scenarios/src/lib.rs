//! Multi-pipeline workload registry.
//!
//! The paper's comparison (SaC vs ArrayOL/GASPARD2) is about expressing
//! *families* of array pipelines without losing abstraction, yet every
//! number in the reproduction so far measures the one H.263 downscaler.
//! This crate grows the scenario layer into a registry of genuinely
//! different pipelines, each expressed on **both** compilation routes and
//! bit-checked cross-route:
//!
//! * **imagepipe** — a Halide-style blur → gradient → sharpen multi-stage
//!   column-stencil chain,
//! * **delta** — a temporal delta-encoding workload where frame `N` reads
//!   frame `N-1` through a [`simgpu::schedule::Carry`], breaking free
//!   frame-parallelism (the scheduler serializes lanes honestly),
//! * **blockmean** — block reduction + affine remap (`SumReduce` /
//!   `AffineMap` elementary ops), integer-exact,
//! * **downscale-{thumb,hd1080,uhd}** — the paper's downscaler swept from
//!   thumbnail to 4K.
//!
//! A [`Workload`] is the shape-level description (name, sizes, default
//!   serving job mix); [`Workload::build`] compiles both routes and returns
//! a [`BuiltWorkload`] that can lower a [`LaunchPlan`] per route, generate
//! per-route frame payloads, run batches, and produce the CPU reference —
//! so the bench `reproduce scenarios` ablation and the serve layer
//! enumerate entries uniformly. All construction is panic-free: bad sizes
//! surface as the scenario layer's typed
//! [`PipelineError`](downscaler::pipelines::PipelineError).

#![warn(missing_docs)]

pub mod models;
pub mod sources;
pub mod temporal;

use downscaler::frames::FrameGenerator;
use downscaler::pipelines::{build_gaspard, build_sac, PipelineError};
use downscaler::sac_src::{Part, Variant};
use downscaler::Scenario;
use gaspard::codegen::{generate_opencl, OpenClProgram};
use gaspard::transform::{deploy, schedule};
use gaspard::Platform;
use mdarray::NdArray;
use sac_cuda::codegen::{compile_flat_program, CudaProgram};
use sac_lang::opt::{optimize as sac_optimize, ArgDesc, OptConfig};
use simgpu::schedule::{BatchScheduler, ExecOptions, LaunchPlan, RunStats, ScheduleError};
use simgpu::Device;

/// Which pipeline family a registry entry instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Blur → gradient → sharpen column-stencil chain.
    ImagePipe,
    /// Temporal delta encoding (frame `N` reads frame `N-1` via a carry).
    Delta,
    /// Horizontal 4-pixel block sum + affine remap.
    BlockMean,
    /// The paper's H.263 downscaler at this entry's size.
    Downscale,
}

/// Which compilation route to lower/run a workload on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// SaC → CUDA.
    Sac,
    /// GASPARD2 → OpenCL.
    Gaspard,
}

impl Route {
    /// Both routes, in report order.
    pub const BOTH: [Route; 2] = [Route::Sac, Route::Gaspard];

    /// Short stable name used in reports and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            Route::Sac => "sac",
            Route::Gaspard => "gaspard",
        }
    }
}

/// Default serving job mix for one workload: how the serve layer should
/// turn the entry into an open-loop arrival trace.
#[derive(Debug, Clone, Copy)]
pub struct JobMix {
    /// Jobs in the trace.
    pub jobs: usize,
    /// Mean inter-arrival gap, µs.
    pub mean_gap_us: f64,
    /// Tenants sharing the trace.
    pub tenants: usize,
    /// Frames charged per job (functional + timing-replayed).
    pub frames_per_job: usize,
}

/// One registry entry: the shape-level description plus builders for both
/// routes (via [`Workload::build`]).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Registry-unique name, used in reports, JSON and job labels.
    pub name: &'static str,
    /// One-line description for docs and `reproduce scenarios` output.
    pub summary: &'static str,
    /// Pipeline family.
    pub kind: Kind,
    /// Frame rows.
    pub rows: usize,
    /// Frame columns.
    pub cols: usize,
    /// Default batch length (frames per run).
    pub frames: usize,
    /// Frame-content seed (distinct per entry so workloads do not share
    /// pixel streams).
    pub seed: u64,
    /// Default serving job mix.
    pub mix: JobMix,
}

/// Errors from registry construction or execution.
#[derive(Debug)]
pub enum ScenarioError {
    /// Route construction failed (front end, backend, or config).
    Build(PipelineError),
    /// Plan surgery produced an inconsistent plan.
    Plan(String),
    /// The batch scheduler rejected or failed the run.
    Schedule(ScheduleError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Build(e) => write!(f, "build: {e}"),
            ScenarioError::Plan(msg) => write!(f, "plan: {msg}"),
            ScenarioError::Schedule(e) => write!(f, "schedule: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<PipelineError> for ScenarioError {
    fn from(e: PipelineError) -> Self {
        ScenarioError::Build(e)
    }
}
impl From<ScheduleError> for ScenarioError {
    fn from(e: ScheduleError) -> Self {
        ScenarioError::Schedule(e)
    }
}

/// The full registry: three new pipelines plus the downscaler size sweep
/// (thumbnail → 1080p → 4K).
pub fn registry() -> Vec<Workload> {
    let mut all = registry_small();
    all.extend([
        Workload {
            name: "downscale-hd1080",
            summary: "the paper's H.263 downscaler at 1080p",
            kind: Kind::Downscale,
            rows: 1080,
            cols: 1920,
            frames: 4,
            seed: 0x5CE4,
            mix: JobMix { jobs: 12, mean_gap_us: 5_000.0, tenants: 4, frames_per_job: 2 },
        },
        Workload {
            name: "downscale-uhd",
            summary: "the paper's H.263 downscaler at 4K",
            kind: Kind::Downscale,
            rows: 2160,
            cols: 3840,
            frames: 2,
            seed: 0x5CE5,
            mix: JobMix { jobs: 8, mean_gap_us: 20_000.0, tenants: 2, frames_per_job: 1 },
        },
    ]);
    all
}

/// [`registry`] plus the extreme-size entries used only by static
/// (plan-metric) sweeps — kept out of [`registry`] so existing ablations
/// and their golden files are unaffected.
pub fn registry_extended() -> Vec<Workload> {
    let mut all = registry();
    all.push(Workload {
        name: "downscale-8k",
        summary: "the paper's H.263 downscaler at 8K (static plan metrics only)",
        kind: Kind::Downscale,
        rows: 4320,
        cols: 7680,
        frames: 1,
        seed: 0x5CE6,
        mix: JobMix { jobs: 4, mean_gap_us: 80_000.0, tenants: 1, frames_per_job: 1 },
    });
    all
}

/// The registry restricted to cheap entries (everything but the large
/// downscaler sizes) — what tests and CI smoke runs enumerate.
pub fn registry_small() -> Vec<Workload> {
    vec![
        Workload {
            name: "imagepipe",
            summary: "blur -> gradient -> sharpen column-stencil chain",
            kind: Kind::ImagePipe,
            rows: 40,
            cols: 64,
            frames: 6,
            seed: 0x5CE0,
            mix: JobMix { jobs: 24, mean_gap_us: 800.0, tenants: 3, frames_per_job: 2 },
        },
        Workload {
            name: "delta",
            summary: "temporal delta encoding: frame N reads frame N-1 via a carry",
            kind: Kind::Delta,
            rows: 32,
            cols: 48,
            frames: 8,
            seed: 0x5CE1,
            mix: JobMix { jobs: 16, mean_gap_us: 1_200.0, tenants: 2, frames_per_job: 4 },
        },
        Workload {
            name: "blockmean",
            summary: "4-pixel block sum + affine remap (integer-exact)",
            kind: Kind::BlockMean,
            rows: 36,
            cols: 64,
            frames: 6,
            seed: 0x5CE2,
            mix: JobMix { jobs: 24, mean_gap_us: 600.0, tenants: 3, frames_per_job: 2 },
        },
        Workload {
            name: "downscale-thumb",
            summary: "the paper's H.263 downscaler at thumbnail size",
            kind: Kind::Downscale,
            rows: 72,
            cols: 128,
            frames: 8,
            seed: 0x5CE3,
            mix: JobMix { jobs: 20, mean_gap_us: 900.0, tenants: 4, frames_per_job: 2 },
        },
    ]
}

impl Workload {
    /// Whether this entry threads state across frames (and therefore
    /// serializes pipeline lanes).
    pub fn temporal(&self) -> bool {
        self.kind == Kind::Delta
    }

    /// Compile both routes.
    ///
    /// Size constraints surface as typed errors, never panics: the
    /// downscaler's divisibility rules come back as the scenario layer's
    /// `PipelineError::Config`, and this crate enforces its own pipelines'
    /// constraints the same way.
    pub fn build(&self) -> Result<BuiltWorkload, ScenarioError> {
        self.build_with_sac_config(&OptConfig::default())
    }

    /// [`Workload::build`] with an explicit SaC optimiser configuration.
    ///
    /// This is the WLF ablation knob at registry level: building with
    /// `with_loop_folding: false` leaves the SaC route's per-stage kernels
    /// unfused, which the plan-level fusion pass
    /// (`simgpu::PlanOptLevel::FUSION`) must then recover. The GASPARD2
    /// route is unaffected.
    pub fn build_with_sac_config(
        &self,
        sac_cfg: &OptConfig,
    ) -> Result<BuiltWorkload, ScenarioError> {
        let cfg = |msg: String| ScenarioError::Build(PipelineError::Config(msg));
        let (cuda, opencl, scenario) = match self.kind {
            Kind::Downscale => {
                let s = Scenario::new(self.name, 3, self.rows, self.cols, self.frames)?;
                let sac = build_sac(&s, Variant::NonGeneric, Part::Full, sac_cfg)?;
                let gasp = build_gaspard(&s)?;
                (sac.cuda, gasp.opencl, Some(s))
            }
            Kind::ImagePipe => {
                if self.cols < 7 || self.rows == 0 {
                    return Err(cfg(format!(
                        "imagepipe needs at least 7 columns (three width-3 stencils), got {}x{}",
                        self.rows, self.cols
                    )));
                }
                let cuda = build_sac_prog(
                    &sources::imagepipe_src(self.rows, self.cols),
                    vec![self.rows, self.cols],
                    sac_cfg,
                )?;
                let opencl = build_opencl(models::imagepipe_model(self.rows, self.cols))?;
                (cuda, opencl, None)
            }
            Kind::Delta => {
                if self.rows == 0 || self.cols == 0 {
                    return Err(cfg("delta needs a non-empty frame".into()));
                }
                let cuda = build_sac_prog(
                    &sources::delta_src(self.rows, self.cols),
                    vec![2, self.rows, self.cols],
                    sac_cfg,
                )?;
                let opencl = build_opencl(models::delta_model(self.rows, self.cols))?;
                (cuda, opencl, None)
            }
            Kind::BlockMean => {
                if self.cols == 0 || !self.cols.is_multiple_of(4) {
                    return Err(cfg(format!(
                        "blockmean needs cols divisible by 4, got {}",
                        self.cols
                    )));
                }
                let cuda = build_sac_prog(
                    &sources::blockmean_src(self.rows, self.cols),
                    vec![self.rows, self.cols],
                    sac_cfg,
                )?;
                let opencl = build_opencl(models::blockmean_model(self.rows, self.cols))?;
                (cuda, opencl, None)
            }
        };
        Ok(BuiltWorkload { spec: self.clone(), cuda, opencl, scenario })
    }
}

/// Parse, optimise and compile one of this crate's SaC sources.
fn build_sac_prog(
    src: &str,
    in_shape: Vec<usize>,
    cfg: &OptConfig,
) -> Result<CudaProgram, ScenarioError> {
    let prog = sac_lang::parse_program(src).map_err(PipelineError::from)?;
    let args = [ArgDesc::Array { name: "frame".into(), shape: in_shape }];
    let (flat, _) = sac_optimize(&prog, "main", &args, cfg).map_err(PipelineError::from)?;
    Ok(compile_flat_program(&flat).map_err(PipelineError::from)?)
}

/// Run the MDE chain over one of this crate's models.
fn build_opencl(
    (model, alloc): (gaspard::model::Model, gaspard::model::Allocation),
) -> Result<OpenClProgram, ScenarioError> {
    let deployed = deploy(model, Platform::cpu_gpu(), alloc).map_err(PipelineError::from)?;
    let scheduled = schedule(&deployed).map_err(PipelineError::from)?;
    Ok(generate_opencl(&scheduled).map_err(PipelineError::from)?)
}

/// A workload compiled on both routes, ready to lower plans, generate
/// frames and run batches.
pub struct BuiltWorkload {
    /// The shape-level entry this was built from.
    pub spec: Workload,
    /// The compiled SaC→CUDA program.
    pub cuda: CudaProgram,
    /// The generated GASPARD2→OpenCL program (unfused; downscaler entries
    /// fuse plan-level in [`BuiltWorkload::plan`]).
    pub opencl: OpenClProgram,
    /// The downscaler scenario, for `Kind::Downscale` entries.
    scenario: Option<Scenario>,
}

impl BuiltWorkload {
    /// Colour channels of this workload's frames (3 for the downscaler,
    /// 1 otherwise).
    pub fn channels(&self) -> usize {
        if self.spec.kind == Kind::Downscale {
            3
        } else {
            1
        }
    }

    /// Lower the launch plan for `route` (temporalized for the delta
    /// entry — identical plan surgery on both routes).
    pub fn plan(&self, route: Route) -> Result<LaunchPlan<'_>, ScenarioError> {
        self.plan_placed(route, self.channels(), gaspard::Placement::Resident)
    }

    /// [`BuiltWorkload::plan`] with the lowering knobs the autotuner
    /// searches made explicit: `channel_chunks` controls transfer chunking
    /// on the SaC route (the Gaspard lowering always moves whole buffers),
    /// and `placement` decides whether the Gaspard route keeps
    /// intermediates device-resident or round-trips them per kernel (the
    /// SaC lowering is always resident).
    pub fn plan_placed(
        &self,
        route: Route,
        channel_chunks: usize,
        placement: gaspard::Placement,
    ) -> Result<LaunchPlan<'_>, ScenarioError> {
        let plan = match route {
            Route::Sac => sac_cuda::exec::lower_plan(&self.cuda, channel_chunks)
                .map_err(PipelineError::from)?,
            Route::Gaspard => {
                let mut plan = gaspard::exec::lower_plan_with(&self.opencl, placement);
                // The downscaler entries ship the fused GASPARD2 route (one
                // kernel per channel): the model-level fusion pass is gone,
                // so fuse the lowered plan with the faithful codegen — the
                // resulting schedule is bit-identical to the old route's.
                // Under round-trip placement the pass refuses (transfers
                // touch the intermediates) and leaves the plan unfused.
                if self.spec.kind == Kind::Downscale {
                    simgpu::planopt::optimize(&mut plan, simgpu::PlanOptLevel::FUSION_FAITHFUL)
                        .map_err(|e| ScenarioError::Build(PipelineError::Config(e.to_string())))?;
                }
                plan
            }
        };
        if self.spec.temporal() {
            temporal::temporalize(plan).map_err(ScenarioError::Plan)
        } else {
            Ok(plan)
        }
    }

    /// The frame generator for this workload's pixel content.
    fn gen(&self) -> FrameGenerator {
        FrameGenerator::new(self.channels(), self.spec.rows, self.spec.cols, self.spec.seed)
    }

    /// The single-plane content of frame `f` (non-downscaler workloads).
    fn plane(&self, f: usize) -> NdArray<i64> {
        self.gen().frame_channels(f).pop().expect("one channel")
    }

    /// Input payloads for frames `start .. start + n`, packaged for
    /// `route`'s plan. For the temporal delta entry each frame supplies
    /// `[cur, prev-seed]`; the zero `prev` seed only matters on the
    /// batch's first frame (the carry rebinds it afterwards).
    pub fn frames_from(&self, route: Route, start: usize, n: usize) -> Vec<Vec<NdArray<i64>>> {
        match self.spec.kind {
            Kind::Downscale => {
                let gen = self.gen();
                (start..start + n)
                    .map(|f| match route {
                        Route::Sac => vec![gen.frame_rank3(f)],
                        Route::Gaspard => gen.frame_channels(f),
                    })
                    .collect()
            }
            Kind::Delta => {
                let zero = NdArray::filled(vec![self.spec.rows, self.spec.cols], 0i64);
                (start..start + n).map(|f| vec![self.plane(f), zero.clone()]).collect()
            }
            Kind::ImagePipe | Kind::BlockMean => {
                (start..start + n).map(|f| vec![self.plane(f)]).collect()
            }
        }
    }

    /// [`BuiltWorkload::frames_from`] starting at frame 0.
    pub fn frames(&self, route: Route, n: usize) -> Vec<Vec<NdArray<i64>>> {
        self.frames_from(route, 0, n)
    }

    /// The golden-model (CPU) result of frame `f`, in canonical layout.
    /// For the delta entry the reference assumes a zero-seeded batch
    /// starting at frame 0 (frame 0's `prev` is all zeros).
    pub fn reference(&self, f: usize) -> NdArray<i64> {
        match self.spec.kind {
            Kind::ImagePipe => {
                let b = col_stencil(&self.plane(f), &[1, 2, 1]);
                let g = col_stencil(&b, &[-1, 0, 1]);
                col_stencil(&g, &[-1, 3, -1])
            }
            Kind::Delta => {
                let cur = self.plane(f);
                if f == 0 {
                    cur
                } else {
                    let prev = self.plane(f - 1);
                    NdArray::from_fn(self.plane_shape(), |ix| {
                        cur.get(ix).unwrap() - prev.get(ix).unwrap()
                    })
                }
            }
            Kind::BlockMean => {
                let p = self.plane(f);
                NdArray::from_fn(vec![self.spec.rows, self.spec.cols / 4], |ix| {
                    let s: i64 = (0..4).map(|k| *p.get(&[ix[0], 4 * ix[1] + k]).unwrap()).sum();
                    2 * s + 10
                })
            }
            Kind::Downscale => {
                let s = self.scenario.as_ref().expect("downscale entries carry a scenario");
                downscaler::pipelines::reference_downscale(s, &self.gen().frame_rank3(f))
            }
        }
    }

    fn plane_shape(&self) -> Vec<usize> {
        vec![self.spec.rows, self.spec.cols]
    }

    /// Collapse one frame's plan outputs into the canonical layout: the
    /// single output array, or (downscaler Gaspard route) the channel
    /// planes stacked rank-3.
    pub fn canon(&self, mut outs: Vec<NdArray<i64>>) -> NdArray<i64> {
        if outs.len() == 1 {
            outs.pop().expect("checked")
        } else {
            FrameGenerator::stack(&outs)
        }
    }

    /// Run a batch of the workload's frames on `device` over `route`.
    ///
    /// `opts.executed` bounds the functionally executed frames (0 = all of
    /// [`Workload::frames`]); the rest are timing-replayed. Planopt passes
    /// run per `opts.optimize` before scheduling, with pass notes surfaced
    /// in the device profiler. Returns the canonical per-frame outputs of
    /// the functional frames plus the run counters.
    pub fn run(
        &self,
        route: Route,
        device: &mut Device,
        opts: &ExecOptions,
    ) -> Result<(Vec<NdArray<i64>>, RunStats), ScenarioError> {
        self.run_placed(route, device, opts, self.channels(), gaspard::Placement::Resident)
    }

    /// [`BuiltWorkload::run`] over a plan lowered with explicit
    /// `channel_chunks` / `placement` knobs ([`BuiltWorkload::plan_placed`])
    /// — the autotuner's oracle entry point.
    pub fn run_placed(
        &self,
        route: Route,
        device: &mut Device,
        opts: &ExecOptions,
        channel_chunks: usize,
        placement: gaspard::Placement,
    ) -> Result<(Vec<NdArray<i64>>, RunStats), ScenarioError> {
        let mut plan = self.plan_placed(route, channel_chunks, placement)?;
        let report = simgpu::planopt::optimize(&mut plan, opts.optimize)?;
        for note in report.notes {
            device.profiler.note(note);
        }
        device.set_pool_enabled(opts.pool);
        let executed =
            if opts.executed == 0 { self.spec.frames } else { opts.executed.min(self.spec.frames) };
        let frames = self.frames(route, executed);
        let run_opts = ExecOptions { total_frames: self.spec.frames, ..*opts };
        let (outs, stats) = BatchScheduler::new(&plan).run(device, &frames, &run_opts)?;
        Ok((outs.into_iter().map(|o| self.canon(o)).collect(), stats))
    }
}

/// Slide a width-`w.len()` weighted window along columns (step 1).
fn col_stencil(plane: &NdArray<i64>, w: &[i64]) -> NdArray<i64> {
    let rows = plane.shape().dim(0);
    let cols = plane.shape().dim(1);
    NdArray::from_fn(vec![rows, cols - (w.len() - 1)], |ix| {
        w.iter().enumerate().map(|(p, &wp)| wp * plane.get(&[ix[0], ix[1] + p]).unwrap()).sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_without_panicking() {
        // Full registry (including 1080p and 4K): building compiles both
        // routes and lowers valid plans, with no panic reachable from
        // enumeration.
        for w in registry() {
            let built = w.build().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            for route in Route::BOTH {
                let plan = built.plan(route).unwrap_or_else(|e| panic!("{}: {e}", w.name));
                plan.validate().unwrap_or_else(|e| panic!("{} ({}): {e}", w.name, route.name()));
            }
        }
    }

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<&str> = registry().iter().map(|w| w.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
    }

    #[test]
    fn small_registry_matches_reference_on_both_routes() {
        for w in registry_small() {
            let built = w.build().unwrap();
            for route in Route::BOTH {
                let mut device = Device::gtx480();
                let (outs, _) = built
                    .run(route, &mut device, &ExecOptions::default())
                    .unwrap_or_else(|e| panic!("{} ({}): {e}", w.name, route.name()));
                assert_eq!(outs.len(), w.frames);
                for (f, out) in outs.iter().enumerate() {
                    assert_eq!(
                        out,
                        &built.reference(f),
                        "{} ({}) frame {f} diverges from the CPU reference",
                        w.name,
                        route.name()
                    );
                }
            }
        }
    }

    #[test]
    fn delta_threads_state_across_frames() {
        let w = registry_small().into_iter().find(|w| w.kind == Kind::Delta).unwrap();
        let built = w.build().unwrap();
        // Frame 2's reference really does read frame 1 (not the zero seed).
        let r2 = built.reference(2);
        let p2 = built.plane(2);
        assert_ne!(r2, p2, "reference must subtract the carried previous frame");
        let (outs, _) =
            built.run(Route::Sac, &mut Device::gtx480(), &ExecOptions::default()).unwrap();
        assert_eq!(outs[2], r2);
    }

    #[test]
    fn temporal_plans_serialize_lanes() {
        let w = registry_small().into_iter().find(|w| w.temporal()).unwrap();
        let built = w.build().unwrap();
        let mut serial = Device::gtx480();
        let (a, _) = built.run(Route::Gaspard, &mut serial, &ExecOptions::default()).unwrap();
        let mut piped = Device::gtx480();
        let (b, _) = built
            .run(Route::Gaspard, &mut piped, &ExecOptions { streams: 2, ..Default::default() })
            .unwrap();
        assert_eq!(a, b);
        // The carry chain collapses two lanes back to the serial clock.
        assert_eq!(piped.now_us(), serial.now_us());
    }

    #[test]
    fn bad_sizes_are_typed_errors_not_panics() {
        let mut w = registry_small().into_iter().find(|w| w.kind == Kind::BlockMean).unwrap();
        w.cols = 30; // not divisible by 4
        let err = w.build().map(|_| ()).unwrap_err();
        assert!(
            matches!(&err, ScenarioError::Build(PipelineError::Config(m)) if m.contains("divisible")),
            "{err}"
        );
        // And the downscaler's own divisibility rules surface the same way
        // (the 17x33 hardening fix, reached through registry enumeration).
        let mut d = registry_small().into_iter().find(|w| w.kind == Kind::Downscale).unwrap();
        d.rows = 17;
        d.cols = 33;
        assert!(matches!(d.build(), Err(ScenarioError::Build(PipelineError::Config(_)))));
    }
}
