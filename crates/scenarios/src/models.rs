//! GASPARD2 models for the registry's non-downscaler pipelines.
//!
//! Every pipeline is modelled with the same vocabulary as the paper's
//! downscaler: `Elementary` tasks over rank-1 patterns, `Repetitive` stages
//! whose tilers gather/scatter the patterns, frame source/sink on the CPU
//! and stages on the GPU.

use gaspard::model::{
    Allocation, Component, ComponentKind, Connection, ElementaryOp, Model, PartRef, Port, PortDir,
    Stereotype, TilerSpec,
};

/// An elementary task component: rank-1 `pin`/`pout` ports around one op.
fn task(name: &str, in_len: usize, out_len: usize, op: ElementaryOp) -> Component {
    Component {
        name: name.into(),
        stereotype: Stereotype::SwResource,
        ports: vec![
            Port { name: "pin".into(), dir: PortDir::In, shape: vec![in_len] },
            Port { name: "pout".into(), dir: PortDir::Out, shape: vec![out_len] },
        ],
        kind: ComponentKind::Elementary { op },
    }
}

/// A repetitive stage sliding a width-`k` column window (step 1) over a
/// rank-2 frame: `[rows, in_cols] → [rows, in_cols - k + 1]`.
fn sliding_stage(name: &str, inner: &str, rows: usize, in_cols: usize, k: usize) -> Component {
    let out_cols = in_cols - k + 1;
    Component {
        name: name.into(),
        stereotype: Stereotype::SwResource,
        ports: vec![
            Port { name: "fin".into(), dir: PortDir::In, shape: vec![rows, in_cols] },
            Port { name: "fout".into(), dir: PortDir::Out, shape: vec![rows, out_cols] },
        ],
        kind: ComponentKind::Repetitive {
            repetition: vec![rows, out_cols],
            inner: inner.into(),
            input_tilers: vec![(
                vec![k],
                TilerSpec {
                    origin: vec![0, 0],
                    fitting: vec![vec![0], vec![1]],
                    paving: vec![vec![1, 0], vec![0, 1]],
                },
            )],
            output_tilers: vec![(
                vec![1],
                TilerSpec {
                    origin: vec![0, 0],
                    fitting: vec![vec![0], vec![0]],
                    paving: vec![vec![1, 0], vec![0, 1]],
                },
            )],
        },
    }
}

/// Frame source component with the given port shape.
fn source(shape: Vec<usize>) -> Component {
    Component {
        name: "source".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![Port { name: "frame".into(), dir: PortDir::Out, shape }],
        kind: ComponentKind::FrameSource,
    }
}

/// Frame sink component with the given port shape.
fn sink(shape: Vec<usize>) -> Component {
    Component {
        name: "sink".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![Port { name: "frame".into(), dir: PortDir::In, shape }],
        kind: ComponentKind::FrameSink,
    }
}

/// Composite root chaining `source → stages… → sink` through each stage's
/// `fin`/`fout` ports.
fn chain_root(stages: &[&str]) -> Component {
    let mut parts = vec![("src".into(), "source".into())];
    for (i, s) in stages.iter().enumerate() {
        parts.push((format!("p{i}"), (*s).into()));
    }
    parts.push(("snk".into(), "sink".into()));
    let mut connections = Vec::new();
    let mut from = PartRef::Part { part: "src".into(), port: "frame".into() };
    for i in 0..stages.len() {
        connections.push(Connection {
            from,
            to: PartRef::Part { part: format!("p{i}"), port: "fin".into() },
        });
        from = PartRef::Part { part: format!("p{i}"), port: "fout".into() };
    }
    connections
        .push(Connection { from, to: PartRef::Part { part: "snk".into(), port: "frame".into() } });
    Component {
        name: "app".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![],
        kind: ComponentKind::Composite { parts, connections },
    }
}

/// CPU source/sink, GPU stages.
fn alloc(stages: &[&str]) -> Allocation {
    let mut a = Allocation::default().allocate("source", "i7_930").allocate("sink", "i7_930");
    for s in stages {
        a = a.allocate(s, "gtx480");
    }
    a
}

/// Blur `[1,2,1]` → gradient `[-1,0,1]` → sharpen `[-1,3,-1]` as three
/// repetitive WeightedSum stages.
pub fn imagepipe_model(rows: usize, cols: usize) -> (Model, Allocation) {
    let weights: [(&str, [i64; 3]); 3] =
        [("blur", [1, 2, 1]), ("grad", [-1, 0, 1]), ("sharp", [-1, 3, -1])];
    let mut components = Vec::new();
    let mut stage_names = Vec::new();
    let mut c = cols;
    for (n, w) in weights {
        components.push(task(
            &format!("{n}_task"),
            3,
            1,
            ElementaryOp::WeightedSum { weights: w.to_vec() },
        ));
        components.push(sliding_stage(&format!("{n}_stage"), &format!("{n}_task"), rows, c, 3));
        stage_names.push(format!("{n}_stage"));
        c -= 2;
    }
    let stages: Vec<&str> = stage_names.iter().map(String::as_str).collect();
    components.push(source(vec![rows, cols]));
    components.push(sink(vec![rows, c]));
    components.push(chain_root(&stages));
    let model = Model { name: "imagepipe".into(), components, root: "app".into() };
    (model, alloc(&stages))
}

/// Delta encoding over a stacked `[2,R,C]` input: one WeightedSum `[1,-1]`
/// stage whose pattern gathers the two planes of each pixel.
pub fn delta_model(rows: usize, cols: usize) -> (Model, Allocation) {
    let stage = Component {
        name: "delta_stage".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![
            Port { name: "fin".into(), dir: PortDir::In, shape: vec![2, rows, cols] },
            Port { name: "fout".into(), dir: PortDir::Out, shape: vec![rows, cols] },
        ],
        kind: ComponentKind::Repetitive {
            repetition: vec![rows, cols],
            inner: "delta_task".into(),
            input_tilers: vec![(
                vec![2],
                TilerSpec {
                    origin: vec![0, 0, 0],
                    fitting: vec![vec![1], vec![0], vec![0]],
                    paving: vec![vec![0, 0], vec![1, 0], vec![0, 1]],
                },
            )],
            output_tilers: vec![(
                vec![1],
                TilerSpec {
                    origin: vec![0, 0],
                    fitting: vec![vec![0], vec![0]],
                    paving: vec![vec![1, 0], vec![0, 1]],
                },
            )],
        },
    };
    let components = vec![
        task("delta_task", 2, 1, ElementaryOp::WeightedSum { weights: vec![1, -1] }),
        stage,
        source(vec![2, rows, cols]),
        sink(vec![rows, cols]),
        chain_root(&["delta_stage"]),
    ];
    let model = Model { name: "delta".into(), components, root: "app".into() };
    (model, alloc(&["delta_stage"]))
}

/// Horizontal 4-pixel block sum (`SumReduce`) followed by an `AffineMap`
/// `x ↦ 2x + 10`: `[R,C] → [R,C/4]`.
pub fn blockmean_model(rows: usize, cols: usize) -> (Model, Allocation) {
    let bc = cols / 4;
    let sum_stage = Component {
        name: "sum_stage".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![
            Port { name: "fin".into(), dir: PortDir::In, shape: vec![rows, cols] },
            Port { name: "fout".into(), dir: PortDir::Out, shape: vec![rows, bc] },
        ],
        kind: ComponentKind::Repetitive {
            repetition: vec![rows, bc],
            inner: "sum_task".into(),
            input_tilers: vec![(
                vec![4],
                TilerSpec {
                    origin: vec![0, 0],
                    fitting: vec![vec![0], vec![1]],
                    paving: vec![vec![1, 0], vec![0, 4]],
                },
            )],
            output_tilers: vec![(
                vec![1],
                TilerSpec {
                    origin: vec![0, 0],
                    fitting: vec![vec![0], vec![0]],
                    paving: vec![vec![1, 0], vec![0, 1]],
                },
            )],
        },
    };
    let affine_stage = Component {
        name: "affine_stage".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![
            Port { name: "fin".into(), dir: PortDir::In, shape: vec![rows, bc] },
            Port { name: "fout".into(), dir: PortDir::Out, shape: vec![rows, bc] },
        ],
        kind: ComponentKind::Repetitive {
            repetition: vec![rows, bc],
            inner: "affine_task".into(),
            input_tilers: vec![(
                vec![1],
                TilerSpec {
                    origin: vec![0, 0],
                    fitting: vec![vec![0], vec![0]],
                    paving: vec![vec![1, 0], vec![0, 1]],
                },
            )],
            output_tilers: vec![(
                vec![1],
                TilerSpec {
                    origin: vec![0, 0],
                    fitting: vec![vec![0], vec![0]],
                    paving: vec![vec![1, 0], vec![0, 1]],
                },
            )],
        },
    };
    let components = vec![
        task("sum_task", 4, 1, ElementaryOp::SumReduce),
        task("affine_task", 1, 1, ElementaryOp::AffineMap { mul: 2, add: 10 }),
        sum_stage,
        affine_stage,
        source(vec![rows, cols]),
        sink(vec![rows, bc]),
        chain_root(&["sum_stage", "affine_stage"]),
    ];
    let model = Model { name: "blockmean".into(), components, root: "app".into() };
    (model, alloc(&["sum_stage", "affine_stage"]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaspard::marte::validate;

    #[test]
    fn registry_models_validate() {
        for (model, _) in [imagepipe_model(8, 16), delta_model(6, 10), blockmean_model(6, 16)] {
            validate(&model).unwrap_or_else(|e| panic!("{}: {e}", model.name));
        }
    }
}
