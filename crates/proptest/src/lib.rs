//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the real crates.io
//! `proptest` cannot be fetched. This shim implements the subset of its API
//! that the workspace's property tests use — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_oneof!`, `Just`, `any`, integer-range and tuple
//! strategies, and `collection::vec` — over a deterministic splitmix64
//! generator. Each test function runs a fixed number of cases (256, like
//! proptest's default) with a seed derived from the test name, so failures
//! are reproducible run-to-run and machine-to-machine.
//!
//! Shrinking is intentionally not implemented: on failure the offending
//! inputs are reported via the panic message of the failing assertion.

/// Deterministic pseudo-random generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator (splitmix64).
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Hash a test name into a stable seed (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Something that can produce values for a property test case.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy producing one fixed value, like proptest's `Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Uniform `f64` ranges, quantized to a 2³²-point grid — ample resolution
/// for property sampling, and the draw stays a single deterministic
/// `below` call so cases replay identically across platforms.
impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let t = rng.below(1 << 32) as f64 / (1u64 << 32) as f64;
        self.start + t * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Full-range strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}
impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        rng.next_u64() as u16
    }
}
impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}
impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}
impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}
impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`, like proptest's `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice between boxed alternatives (backs `prop_oneof!`).
pub struct OneOf<T> {
    /// The alternatives to draw from.
    pub options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! needs at least one option");
        let ix = rng.below(self.options.len() as u64) as usize;
        self.options[ix].generate(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Lengths accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draw a concrete length.
        fn sample(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    /// Strategy for vectors of `element` values with a length drawn from
    /// `size`.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }
}

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, Just, OneOf, Strategy, TestRng,
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running 256 deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for case in 0..256u32 {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // Render the inputs up front: the body may consume them.
                    let mut inputs = String::new();
                    $(inputs.push_str(&format!("  {} = {:?}\n", stringify!($arg), $arg));)+
                    let run = || -> () { $body };
                    let guard = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                    if let Err(payload) = guard {
                        eprintln!(
                            "proptest case {case} of {} failed with inputs:\n{inputs}",
                            stringify!($name)
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Assert within a property body; panics (no shrinking) with the location.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Uniform choice among strategies. Unlike real proptest, all alternatives
/// must be the *same strategy type* (e.g. all `Just<T>`), which is what lets
/// integer literal defaulting unify across the arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($opt:expr),+ $(,)?) => {{
        let opts = vec![$($opt),+];
        $crate::OneOf {
            options: opts
                .into_iter()
                .map(|o| Box::new(o) as Box<dyn $crate::Strategy<Value = _>>)
                .collect(),
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -50i64..50, y in 3usize..9, z in 0u8..=4) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((3..9).contains(&y));
            prop_assert!(z <= 4);
        }

        #[test]
        fn vec_and_oneof_compose(
            v in collection::vec((0u8..5, -7i64..7), 1..8),
            w in collection::vec(-9i64..9, 4),
            pick in prop_oneof![Just(32u32), Just(64), Just(128)],
            seed in any::<u64>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert_eq!(w.len(), 4);
            prop_assert!([32u32, 64, 128].contains(&pick));
            let _ = seed;
        }
    }
}
