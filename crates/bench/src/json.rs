//! Minimal hand-rolled JSON rendering for `reproduce --json` — the workspace
//! deliberately carries no serde dependency, and the benchmark records are
//! small flat tables, so a tiny value tree with an escaping writer is enough.

use crate::experiments::{
    DegradationDemo, FusionAblation, FusionParityAblation, MemoryRow, PlanoptAblation,
    ScenariosAblation, ServeAblation, StreamsRow,
};
use downscaler::Scenario;

/// A JSON value. Construct with the variant constructors and render with
/// [`Json::render`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept apart from [`Json::Num`] so counts render exactly).
    Int(i64),
    /// A float; non-finite values render as `null` since JSON has no NaN.
    Num(f64),
    /// A string, escaped on render.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Render to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(n) if n.is_finite() => out.push_str(&n.to_string()),
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn scenario_json(s: &Scenario) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(s.name.clone())),
        ("channels".into(), Json::Int(s.channels as i64)),
        ("rows".into(), Json::Int(s.rows as i64)),
        ("cols".into(), Json::Int(s.cols as i64)),
        ("frames".into(), Json::Int(s.frames as i64)),
    ])
}

/// The machine-readable record `reproduce fusion --json <path>` writes:
/// scenario, then one row per (configuration × option set) with the simulated
/// makespan, launch count and peak device residency.
pub fn fusion_json(s: &Scenario, a: &FusionAblation) -> String {
    let rows = a
        .rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("config".into(), Json::Str(r.config.clone())),
                (
                    "route".into(),
                    Json::Str(if r.config.starts_with("SaC") { "sac" } else { "gaspard" }.into()),
                ),
                ("fused".into(), Json::Bool(r.fused)),
                (
                    "options".into(),
                    Json::Obj(vec![
                        ("streams".into(), Json::Int(r.streams as i64)),
                        ("pool".into(), Json::Bool(r.pool)),
                    ]),
                ),
                ("simulated_s".into(), Json::Num(r.total_s)),
                ("launches_per_frame".into(), Json::Int(r.launches_per_frame as i64)),
                ("peak_bytes".into(), Json::Int(r.peak_bytes as i64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("experiment".into(), Json::Str("fusion".into())),
        ("scenario".into(), scenario_json(s)),
        ("fused_outputs_match".into(), Json::Bool(a.fused_outputs_match)),
        ("rows".into(), Json::Arr(rows)),
    ])
    .render()
}

/// The machine-readable record `reproduce fusion-parity --json <path>`
/// writes: scenario, the parity verdicts, one row per fusion strategy with
/// per-plan launch counts and kernel-class calls, and the static downscaler
/// size sweep.
pub fn fusion_parity_json(s: &Scenario, a: &FusionParityAblation) -> String {
    let rows = a
        .rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("config".into(), Json::Str(r.config.clone())),
                ("route".into(), Json::Str(r.route.clone())),
                ("plan_fusion".into(), Json::Bool(r.plan_fusion)),
                ("launches_per_frame".into(), Json::Int(r.launches_per_frame as i64)),
                ("kernel_calls".into(), Json::Int(r.kernel_calls as i64)),
                ("simulated_s".into(), Json::Num(r.total_s)),
                ("outputs_match".into(), Json::Bool(r.outputs_match)),
            ])
        })
        .collect();
    let sweep = a
        .sweep
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("scenario".into(), Json::Str(r.scenario.clone())),
                ("rows".into(), Json::Int(r.rows_px as i64)),
                ("cols".into(), Json::Int(r.cols_px as i64)),
                ("route".into(), Json::Str(r.route.clone())),
                ("launches_unfused".into(), Json::Int(r.launches_unfused as i64)),
                ("launches_fused".into(), Json::Int(r.launches_fused as i64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("experiment".into(), Json::Str("fusion-parity".into())),
        ("scenario".into(), scenario_json(s)),
        ("wlf_recovered".into(), Json::Bool(a.wlf_recovered)),
        ("stencil_single_kernel".into(), Json::Bool(a.stencil_single_kernel)),
        ("outputs_match".into(), Json::Bool(a.outputs_match)),
        ("rows".into(), Json::Arr(rows)),
        ("sweep".into(), Json::Arr(sweep)),
    ])
    .render()
}

/// The machine-readable record `reproduce planopt --json <path>` writes:
/// scenario, then one row per (configuration × pass setting × option set)
/// with the simulated makespan and the transfers/bytes actually moved.
pub fn planopt_json(s: &Scenario, a: &PlanoptAblation) -> String {
    let rows = a
        .rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("config".into(), Json::Str(r.config.clone())),
                ("passes".into(), Json::Str(r.passes.clone())),
                (
                    "options".into(),
                    Json::Obj(vec![
                        ("streams".into(), Json::Int(r.streams as i64)),
                        ("pool".into(), Json::Bool(r.pool)),
                    ]),
                ),
                ("simulated_s".into(), Json::Num(r.total_s)),
                ("h2d_per_frame".into(), Json::Num(r.h2d_per_frame)),
                ("d2h_per_frame".into(), Json::Num(r.d2h_per_frame)),
                ("h2d_mb".into(), Json::Num(r.h2d_mb)),
                ("d2h_mb".into(), Json::Num(r.d2h_mb)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("experiment".into(), Json::Str("planopt".into())),
        ("scenario".into(), scenario_json(s)),
        ("outputs_match".into(), Json::Bool(a.outputs_match)),
        ("rows".into(), Json::Arr(rows)),
    ])
    .render()
}

/// The machine-readable record `reproduce streams --json <path>` writes:
/// scenario, then one row per stream count with both routes' makespans and
/// overlap percentages.
pub fn streams_json(s: &Scenario, rows: &[StreamsRow]) -> String {
    let rows = rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("streams".into(), Json::Int(r.streams as i64)),
                ("sac_s".into(), Json::Num(r.sac_s)),
                ("gaspard_s".into(), Json::Num(r.gaspard_s)),
                ("sac_overlap_pct".into(), Json::Num(r.sac_overlap_pct)),
                ("gaspard_overlap_pct".into(), Json::Num(r.gaspard_overlap_pct)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("experiment".into(), Json::Str("streams".into())),
        ("scenario".into(), scenario_json(s)),
        ("rows".into(), Json::Arr(rows)),
    ])
    .render()
}

/// The machine-readable record `reproduce memory --json <path>` writes:
/// scenario, the naive/pooled allocator rows, and the OOM degradation demo.
pub fn memory_json(s: &Scenario, rows: &[MemoryRow], demo: &DegradationDemo) -> String {
    let rows = rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("config".into(), Json::Str(r.config.clone())),
                ("sac_s".into(), Json::Num(r.sac_s)),
                ("gaspard_s".into(), Json::Num(r.gaspard_s)),
                ("sac_driver_mallocs".into(), Json::Int(r.sac_driver_mallocs as i64)),
                ("gaspard_driver_mallocs".into(), Json::Int(r.gaspard_driver_mallocs as i64)),
                ("sac_hit_rate".into(), Json::Num(r.sac_hit_rate)),
                ("gaspard_hit_rate".into(), Json::Num(r.gaspard_hit_rate)),
            ])
        })
        .collect();
    let demo = Json::Obj(vec![
        ("capacity_bytes".into(), Json::Int(demo.capacity_bytes as i64)),
        ("streams".into(), Json::Int(demo.streams as i64)),
        ("naive_error".into(), Json::Str(demo.naive_error.clone())),
        ("degraded_s".into(), Json::Num(demo.degraded_s)),
        ("notes".into(), Json::Arr(demo.notes.iter().map(|n| Json::Str(n.clone())).collect())),
        ("outputs_match_baseline".into(), Json::Bool(demo.outputs_match_baseline)),
    ]);
    Json::Obj(vec![
        ("experiment".into(), Json::Str("memory".into())),
        ("scenario".into(), scenario_json(s)),
        ("rows".into(), Json::Arr(rows)),
        ("degradation".into(), demo),
    ])
    .render()
}

/// The machine-readable record `reproduce serve --json <path>` writes:
/// scenario, trace shape, the width/policy scaling table, the arrival-rate
/// sweep, and the overload/shedding demonstration.
pub fn serve_json(s: &Scenario, a: &ServeAblation) -> String {
    let scaling = a
        .scaling
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("devices".into(), Json::Int(r.devices as i64)),
                ("policy".into(), Json::Str(r.policy.clone())),
                ("jobs".into(), Json::Int(r.jobs as i64)),
                ("completed".into(), Json::Int(r.completed as i64)),
                ("shed".into(), Json::Int(r.shed as i64)),
                ("frames".into(), Json::Int(r.frames as i64)),
                ("frames_per_s".into(), Json::Num(r.fps)),
                ("p50_ms".into(), Json::Num(r.p50_ms)),
                ("p99_ms".into(), Json::Num(r.p99_ms)),
                ("makespan_s".into(), Json::Num(r.makespan_s)),
            ])
        })
        .collect();
    let rates = a
        .rates
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("load_factor".into(), Json::Num(r.load_factor)),
                ("offered_jobs_per_s".into(), Json::Num(r.offered_jobs_per_s)),
                ("devices".into(), Json::Int(r.devices as i64)),
                ("jobs".into(), Json::Int(r.jobs as i64)),
                ("completed".into(), Json::Int(r.completed as i64)),
                ("shed".into(), Json::Int(r.shed as i64)),
                ("frames_per_s".into(), Json::Num(r.fps)),
                ("p50_ms".into(), Json::Num(r.p50_ms)),
                ("p99_ms".into(), Json::Num(r.p99_ms)),
            ])
        })
        .collect();
    let d = &a.shed;
    let shed = Json::Obj(vec![
        ("devices".into(), Json::Int(d.devices as i64)),
        ("capacity_bytes".into(), Json::Int(d.capacity_bytes as i64)),
        ("jobs".into(), Json::Int(d.jobs as i64)),
        ("completed".into(), Json::Int(d.completed as i64)),
        ("shed".into(), Json::Int(d.shed as i64)),
        ("degradation_notes".into(), Json::Int(d.degradation_notes as i64)),
        ("shed_notes".into(), Json::Int(d.shed_notes as i64)),
        ("outputs_ok".into(), Json::Bool(d.outputs_ok)),
    ]);
    Json::Obj(vec![
        ("experiment".into(), Json::Str("serve".into())),
        ("scenario".into(), scenario_json(s)),
        ("frames_per_job".into(), Json::Int(a.frames_per_job as i64)),
        ("job_ms".into(), Json::Num(a.job_ms)),
        ("speedup_1_to_4".into(), Json::Num(a.speedup_1_to_4)),
        ("outputs_match_across_widths".into(), Json::Bool(a.outputs_match_across_widths)),
        ("scaling".into(), Json::Arr(scaling)),
        ("rates".into(), Json::Arr(rates)),
        ("overload".into(), shed),
    ])
    .render()
}

/// The machine-readable record `reproduce scenarios --json <path>` writes:
/// scenario selection, the per-entry execution rows (route × scheduler
/// configuration), the per-entry serving rows, and the cross-route /
/// temporal-serialization flags.
pub fn scenarios_json(s: &Scenario, a: &ScenariosAblation) -> String {
    let rows = a
        .rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("scenario".into(), Json::Str(r.scenario.clone())),
                ("route".into(), Json::Str(r.route.clone())),
                ("config".into(), Json::Str(r.config.clone())),
                ("frames".into(), Json::Int(r.frames as i64)),
                ("simulated_s".into(), Json::Num(r.total_s)),
                ("launches".into(), Json::Int(r.launches as i64)),
                ("outputs_ok".into(), Json::Bool(r.outputs_ok)),
            ])
        })
        .collect();
    let serve = a
        .serve
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("scenario".into(), Json::Str(r.scenario.clone())),
                ("jobs".into(), Json::Int(r.jobs as i64)),
                ("frames_per_job".into(), Json::Int(r.frames_per_job as i64)),
                ("completed".into(), Json::Int(r.completed as i64)),
                ("shed".into(), Json::Int(r.shed as i64)),
                ("frames_per_s".into(), Json::Num(r.fps)),
                ("p50_ms".into(), Json::Num(r.p50_ms)),
                ("p99_ms".into(), Json::Num(r.p99_ms)),
                ("outputs_ok".into(), Json::Bool(r.outputs_ok)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("experiment".into(), Json::Str("scenarios".into())),
        ("scenario".into(), scenario_json(s)),
        ("cross_route_match".into(), Json::Bool(a.cross_route_match)),
        ("temporal_serialized".into(), Json::Bool(a.temporal_serialized)),
        ("rows".into(), Json::Arr(rows)),
        ("serve".into(), Json::Arr(serve)),
    ])
    .render()
}

/// The `tune` record: the autotuner's best configuration per registry
/// entry, the cost model it optimised under, and the warp-tile re-pricing.
pub fn tune_json(s: &Scenario, a: &crate::tune::TuneAblation) -> String {
    let rows = a
        .rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("scenario".into(), Json::Str(r.scenario.clone())),
                ("search".into(), Json::Str(r.search.clone())),
                ("evals".into(), Json::Int(r.evals as i64)),
                ("route".into(), Json::Str(r.config.route.clone())),
                ("streams".into(), Json::Int(r.config.streams as i64)),
                ("pool".into(), Json::Bool(r.config.pool)),
                ("optimize".into(), Json::Str(r.config.optimize.clone())),
                ("placement".into(), Json::Str(r.config.placement.clone())),
                ("channel_chunks".into(), Json::Int(r.config.channel_chunks as i64)),
                ("tuned_s".into(), Json::Num(r.best_s)),
                ("default_s".into(), Json::Num(r.default_s)),
                ("speedup".into(), Json::Num(r.speedup)),
                ("warp_tile_s".into(), Json::Num(r.warp_tile_s)),
                ("launches".into(), Json::Int(r.launches as i64)),
                ("outputs_ok".into(), Json::Bool(r.outputs_ok)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("experiment".into(), Json::Str("tune".into())),
        ("scenario".into(), scenario_json(s)),
        ("cost_model".into(), Json::Str(a.model.clone())),
        ("rows".into(), Json::Arr(rows)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::FusionRow;

    #[test]
    fn values_render_as_json() {
        let v = Json::Obj(vec![
            ("s".into(), Json::Str("a\"b\\c\nd".into())),
            ("i".into(), Json::Int(-3)),
            ("f".into(), Json::Num(2.5)),
            ("nan".into(), Json::Num(f64::NAN)),
            ("a".into(), Json::Arr(vec![Json::Bool(true), Json::Bool(false)])),
        ]);
        assert_eq!(v.render(), r#"{"s":"a\"b\\c\nd","i":-3,"f":2.5,"nan":null,"a":[true,false]}"#);
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn streams_record_has_all_fields() {
        let s = Scenario::tiny();
        let rows = vec![StreamsRow {
            streams: 2,
            sac_s: 2.001,
            gaspard_s: 1.41,
            sac_overlap_pct: 44.5,
            gaspard_overlap_pct: 49.2,
        }];
        let text = streams_json(&s, &rows);
        for needle in [
            r#""experiment":"streams""#,
            r#""scenario":{"name":"#,
            r#""streams":2"#,
            r#""sac_s":2.001"#,
            r#""gaspard_s":1.41"#,
            r#""sac_overlap_pct":44.5"#,
            r#""gaspard_overlap_pct":49.2"#,
        ] {
            assert!(text.contains(needle), "{needle} missing from {text}");
        }
    }

    #[test]
    fn memory_record_has_all_fields() {
        let s = Scenario::tiny();
        let rows = vec![MemoryRow {
            config: "pooled".into(),
            sac_s: 3.612,
            gaspard_s: 2.781,
            sac_driver_mallocs: 3,
            gaspard_driver_mallocs: 9,
            sac_hit_rate: 99.7,
            gaspard_hit_rate: 99.7,
        }];
        let demo = DegradationDemo {
            capacity_bytes: 1024,
            streams: 4,
            naive_error: "simulator: out of device memory".into(),
            degraded_s: 2.02,
            notes: vec!["degraded: out of device memory at 4 stream lanes".into()],
            outputs_match_baseline: true,
        };
        let text = memory_json(&s, &rows, &demo);
        for needle in [
            r#""experiment":"memory""#,
            r#""config":"pooled""#,
            r#""sac_driver_mallocs":3"#,
            r#""gaspard_hit_rate":99.7"#,
            r#""degradation":{"capacity_bytes":1024"#,
            r#""naive_error":"simulator: out of device memory""#,
            r#""notes":["degraded: out of device memory at 4 stream lanes"]"#,
            r#""outputs_match_baseline":true"#,
        ] {
            assert!(text.contains(needle), "{needle} missing from {text}");
        }
    }

    #[test]
    fn planopt_record_has_all_fields() {
        use crate::experiments::PlanoptRow;
        let s = Scenario::tiny();
        let a = PlanoptAblation {
            rows: vec![PlanoptRow {
                config: "Gaspard2 naive placement".into(),
                passes: "residency".into(),
                streams: 2,
                pool: true,
                total_s: 1.399,
                h2d_per_frame: 3.0,
                d2h_per_frame: 6.0,
                h2d_mb: 512.5,
                d2h_mb: 1024.25,
            }],
            outputs_match: true,
        };
        let text = planopt_json(&s, &a);
        for needle in [
            r#""experiment":"planopt""#,
            r#""scenario":{"name":"#,
            r#""config":"Gaspard2 naive placement""#,
            r#""passes":"residency""#,
            r#""options":{"streams":2,"pool":true}"#,
            r#""simulated_s":1.399"#,
            r#""h2d_per_frame":3"#,
            r#""d2h_per_frame":6"#,
            r#""h2d_mb":512.5"#,
            r#""d2h_mb":1024.25"#,
            r#""outputs_match":true"#,
        ] {
            assert!(text.contains(needle), "{needle} missing from {text}");
        }
    }

    #[test]
    fn fusion_record_has_all_fields() {
        let s = Scenario::tiny();
        let a = FusionAblation {
            rows: vec![FusionRow {
                config: "Gaspard2 fused".into(),
                fused: true,
                streams: 2,
                pool: true,
                total_s: 1.25,
                launches_per_frame: 3,
                peak_bytes: 4096,
            }],
            fused_outputs_match: true,
        };
        let text = fusion_json(&s, &a);
        for needle in [
            r#""experiment":"fusion""#,
            r#""scenario":{"name":"#,
            r#""route":"gaspard""#,
            r#""options":{"streams":2,"pool":true}"#,
            r#""simulated_s":1.25"#,
            r#""launches_per_frame":3"#,
            r#""peak_bytes":4096"#,
            r#""fused_outputs_match":true"#,
        ] {
            assert!(text.contains(needle), "{needle} missing from {text}");
        }
    }

    #[test]
    fn fusion_parity_record_has_all_fields() {
        use crate::experiments::{FusionParityRow, FusionParitySweepRow};
        let s = Scenario::tiny();
        let a = FusionParityAblation {
            rows: vec![FusionParityRow {
                config: "SaC WLF off + plan fusion".into(),
                route: "sac".into(),
                plan_fusion: true,
                launches_per_frame: 1,
                kernel_calls: 300,
                total_s: 1.684,
                outputs_match: true,
            }],
            sweep: vec![FusionParitySweepRow {
                scenario: "downscale-8k".into(),
                rows_px: 4320,
                cols_px: 7680,
                route: "gaspard".into(),
                launches_unfused: 3,
                launches_fused: 3,
            }],
            wlf_recovered: true,
            stencil_single_kernel: true,
            outputs_match: true,
        };
        let text = fusion_parity_json(&s, &a);
        for needle in [
            r#""experiment":"fusion-parity""#,
            r#""scenario":{"name":"#,
            r#""wlf_recovered":true"#,
            r#""stencil_single_kernel":true"#,
            r#""outputs_match":true"#,
            r#""config":"SaC WLF off + plan fusion""#,
            r#""plan_fusion":true"#,
            r#""launches_per_frame":1"#,
            r#""kernel_calls":300"#,
            r#""simulated_s":1.684"#,
            r#""scenario":"downscale-8k""#,
            r#""rows":4320"#,
            r#""cols":7680"#,
            r#""launches_unfused":3"#,
            r#""launches_fused":3"#,
        ] {
            assert!(text.contains(needle), "{needle} missing from {text}");
        }
    }

    #[test]
    fn scenarios_record_has_all_fields() {
        use crate::experiments::{ScenarioRow, ScenarioServeRow};
        let s = Scenario::tiny();
        let a = ScenariosAblation {
            rows: vec![ScenarioRow {
                scenario: "delta".into(),
                route: "gaspard".into(),
                config: "pipelined".into(),
                frames: 3,
                total_s: 0.012,
                launches: 3,
                outputs_ok: true,
            }],
            serve: vec![ScenarioServeRow {
                scenario: "delta".into(),
                jobs: 16,
                frames_per_job: 4,
                completed: 16,
                shed: 0,
                fps: 812.5,
                p50_ms: 4.25,
                p99_ms: 9.5,
                outputs_ok: true,
            }],
            cross_route_match: true,
            temporal_serialized: true,
        };
        let text = scenarios_json(&s, &a);
        for needle in [
            r#""experiment":"scenarios""#,
            r#""scenario":{"name":"#,
            r#""cross_route_match":true"#,
            r#""temporal_serialized":true"#,
            r#""scenario":"delta""#,
            r#""route":"gaspard""#,
            r#""config":"pipelined""#,
            r#""simulated_s":0.012"#,
            r#""launches":3"#,
            r#""frames_per_job":4"#,
            r#""frames_per_s":812.5"#,
            r#""outputs_ok":true"#,
        ] {
            assert!(text.contains(needle), "{needle} missing from {text}");
        }
    }

    #[test]
    fn tune_record_has_all_fields() {
        use crate::tune::{TuneAblation, TuneConfig, TuneRow};
        let s = Scenario::tiny();
        let a = TuneAblation {
            model: "paper-gtx480".into(),
            rows: vec![TuneRow {
                scenario: "downscale-hd1080".into(),
                search: "beam".into(),
                evals: 42,
                config: TuneConfig {
                    route: "gaspard".into(),
                    streams: 2,
                    pool: true,
                    optimize: "fusion+transfers".into(),
                    placement: "resident".into(),
                    channel_chunks: 0,
                },
                best_s: 1.398,
                default_s: 1.408,
                speedup: 1.007,
                warp_tile_s: 1.52,
                launches: 3,
                outputs_ok: true,
            }],
        };
        let text = tune_json(&s, &a);
        for needle in [
            r#""experiment":"tune""#,
            r#""scenario":{"name":"#,
            r#""cost_model":"paper-gtx480""#,
            r#""scenario":"downscale-hd1080""#,
            r#""search":"beam""#,
            r#""evals":42"#,
            r#""route":"gaspard""#,
            r#""streams":2"#,
            r#""pool":true"#,
            r#""optimize":"fusion+transfers""#,
            r#""placement":"resident""#,
            r#""channel_chunks":0"#,
            r#""tuned_s":1.398"#,
            r#""default_s":1.408"#,
            r#""speedup":1.007"#,
            r#""warp_tile_s":1.52"#,
            r#""launches":3"#,
            r#""outputs_ok":true"#,
        ] {
            assert!(text.contains(needle), "{needle} missing from {text}");
        }
    }

    #[test]
    fn serve_record_has_all_fields() {
        use crate::experiments::{ServeRateRow, ServeRow, ServeShedDemo};
        let s = Scenario::tiny();
        let a = ServeAblation {
            frames_per_job: 5,
            job_ms: 26.2,
            scaling: vec![ServeRow {
                devices: 4,
                policy: "round-robin".into(),
                jobs: 60,
                completed: 60,
                shed: 0,
                frames: 300,
                fps: 754.1,
                p50_ms: 27.5,
                p99_ms: 41.0,
                makespan_s: 0.398,
            }],
            rates: vec![ServeRateRow {
                load_factor: 3.0,
                offered_jobs_per_s: 457.0,
                devices: 4,
                jobs: 360,
                completed: 153,
                shed: 207,
                fps: 605.0,
                p50_ms: 391.0,
                p99_ms: 760.0,
            }],
            shed: ServeShedDemo {
                devices: 2,
                capacity_bytes: 65536,
                jobs: 6,
                completed: 4,
                shed: 2,
                degradation_notes: 4,
                shed_notes: 2,
                outputs_ok: true,
            },
            outputs_match_across_widths: true,
            speedup_1_to_4: 3.96,
        };
        let text = serve_json(&s, &a);
        for needle in [
            r#""experiment":"serve""#,
            r#""scenario":{"name":"#,
            r#""frames_per_job":5"#,
            r#""speedup_1_to_4":3.96"#,
            r#""outputs_match_across_widths":true"#,
            r#""policy":"round-robin""#,
            r#""frames_per_s":754.1"#,
            r#""load_factor":3"#,
            r#""offered_jobs_per_s":457"#,
            r#""overload":{"devices":2,"capacity_bytes":65536"#,
            r#""degradation_notes":4"#,
            r#""shed_notes":2"#,
            r#""outputs_ok":true"#,
        ] {
            assert!(text.contains(needle), "{needle} missing from {text}");
        }
    }
}
