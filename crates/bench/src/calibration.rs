//! Sequential/host cost constants.
//!
//! The GPU side's calibration lives in [`simgpu::Calibration`]; the two
//! constants here model the CPU:
//!
//! * [`SEQ_CPU_NS_PER_OP`] — sequential execution of compiler-generated C
//!   (the paper's *SAC-Seq* bars): one abstract flat-program operation (a
//!   node of the lowered data-parallel code) costs well under a nanosecond
//!   on the paper's 2.8 GHz i7-930, because several abstract ops map to one
//!   machine instruction stream. Fit so that SAC-Seq horizontal ≈ 4.4 s for
//!   300 HD frames (Figure 9's tallest bars).
//! * [`HOST_NS_PER_OP`] — the host half of the *CUDA generic* variant: the
//!   generic output tiler's scatter nest runs on the host with generic index
//!   arithmetic (`MV`/`CAT` on materialised vectors), costing several ns per
//!   abstract op. Fit so the generic CUDA variant lands at the paper's
//!   3–4.5× slowdown over the non-generic one.

/// Modelled nanoseconds per abstract flat-program op for SAC-Seq runs.
pub const SEQ_CPU_NS_PER_OP: f64 = 0.055;

/// Modelled nanoseconds per abstract interpreter op for host fallback steps.
pub const HOST_NS_PER_OP: f64 = 0.12;
