#![warn(missing_docs)]

//! # bench — regenerating the paper's evaluation
//!
//! Every table and figure of §VIII has a function here that reruns the
//! corresponding experiment on the simulator and renders it in the paper's
//! format. The `reproduce` binary drives them; `cargo bench` adds wall-clock
//! Criterion measurements of the underlying machinery.
//!
//! Timing methodology: kernels execute functionally on the simulator and the
//! reported "GPU time" is simulated time from [`simgpu::Calibration`]
//! (constants derived from the paper's own measurements — see
//! `crates/simgpu/src/cost.rs`). Per-frame cost is content-independent under
//! that model, so experiments simulate one frame and scale to the scenario's
//! frame count exactly.

pub mod arrivals;
pub mod calibration;
pub mod experiments;
pub mod json;
pub mod report;
pub mod tune;

pub use experiments::*;
