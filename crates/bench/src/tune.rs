//! Simulator-as-oracle autotuner over the workload registry.
//!
//! The ablation infrastructure measures hand-picked configurations; this
//! module turns it into an optimizer. For every registry entry the tuner
//! searches the scheduler/lowering configuration space —
//!
//! * compilation route (SaC → CUDA vs GASPARD2 → OpenCL),
//! * pipeline lanes (`streams` ∈ {1, 2, 4}),
//! * the size-class memory pool (on/off),
//! * the [`simgpu::PlanOptLevel`] pass subset (off / kernel fusion /
//!   transfer passes / both),
//! * transfer chunking on the SaC route (per-channel vs whole-buffer),
//! * intermediate placement on the Gaspard route (device-resident vs
//!   per-kernel round trip),
//!
//! — with the simulator itself as the oracle: each candidate runs one
//! functional frame (three for the temporal entry, so the carry chain is
//! real) under the device's calibrated cost model and is scored by the
//! simulated makespan of the full default batch. Small entries are searched
//! exhaustively; the large downscaler sizes use a deterministic
//! coordinate-descent beam (sweep one dimension at a time, keep strict
//! improvements, repeat to a fixed point). Ties keep the earlier candidate,
//! so the result is bit-stable run to run.
//!
//! Every winner is re-checked functionally against the entry's CPU
//! reference, re-priced under the opt-in [`simgpu::cost::WarpTileModel`]
//! (so the table shows how a warp/occupancy-aware model re-ranks the same
//! schedule), and compared against the hand-picked "pipelined" default the
//! scenario ablation has always reported.

use downscaler::pipelines::PipelineError;
use downscaler::Scenario;
use gaspard::Placement;
use scenarios::{BuiltWorkload, JobMix, Kind, Route, Workload};
use simgpu::cost::CostModelSpec;
use simgpu::schedule::ExecOptions;
use simgpu::Device;

use crate::calibration::HOST_NS_PER_OP;

/// Named [`simgpu::PlanOptLevel`] subsets the tuner searches.
fn presets() -> [(&'static str, simgpu::PlanOptLevel); 4] {
    [
        ("off", simgpu::PlanOptLevel::OFF),
        ("fusion", simgpu::PlanOptLevel::FUSION),
        ("transfers", simgpu::PlanOptLevel::ALL),
        ("fusion+transfers", simgpu::PlanOptLevel { fusion: true, ..simgpu::PlanOptLevel::ALL }),
    ]
}

const STREAMS: [usize; 3] = [1, 2, 4];
const POOLS: [bool; 2] = [false, true];
const PLACEMENTS: [Placement; 2] = [Placement::Resident, Placement::PerKernelRoundTrip];

fn placement_name(p: Placement) -> &'static str {
    match p {
        Placement::Resident => "resident",
        Placement::PerKernelRoundTrip => "roundtrip",
    }
}

/// One point of the search space, in display form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneConfig {
    /// Compilation route (`sac` / `gaspard`).
    pub route: String,
    /// Pipeline lanes.
    pub streams: usize,
    /// Size-class memory pool enabled.
    pub pool: bool,
    /// Planopt preset name (`off` / `fusion` / `transfers` /
    /// `fusion+transfers`).
    pub optimize: String,
    /// Gaspard intermediate placement (`resident` / `roundtrip`; the SaC
    /// lowering is always resident).
    pub placement: String,
    /// SaC transfer chunking (leading-dimension chunk count; 0 =
    /// whole-buffer, the Gaspard lowering always moves whole buffers).
    pub channel_chunks: usize,
}

/// Interior candidate: indices into the fixed dimension domains, so it can
/// key a memo table deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Cand {
    route_ix: usize,
    streams_ix: usize,
    pool_ix: usize,
    opt_ix: usize,
    /// Placement index (Gaspard) — always 0 on the SaC route.
    place_ix: usize,
    /// Chunk-domain index (SaC) — always 0 on the Gaspard route.
    chunk_ix: usize,
}

impl Cand {
    fn config(self, chunk_domain: &[usize]) -> TuneConfig {
        TuneConfig {
            route: Route::BOTH[self.route_ix].name().into(),
            streams: STREAMS[self.streams_ix],
            pool: POOLS[self.pool_ix],
            optimize: presets()[self.opt_ix].0.into(),
            placement: placement_name(PLACEMENTS[self.place_ix]).into(),
            channel_chunks: chunk_domain[self.chunk_ix],
        }
    }
}

/// One tuned registry entry.
#[derive(Debug, Clone)]
pub struct TuneRow {
    /// Registry entry name.
    pub scenario: String,
    /// Search strategy used (`exhaustive` / `beam`).
    pub search: String,
    /// Oracle evaluations spent under the calibrated model.
    pub evals: usize,
    /// The winning configuration.
    pub config: TuneConfig,
    /// Simulated full-batch makespan of the winner, seconds.
    pub best_s: f64,
    /// Makespan of the hand-picked default (gaspard, 2 streams, pool,
    /// planopt off) the scenario ablation reports, seconds.
    pub default_s: f64,
    /// `default_s / best_s`.
    pub speedup: f64,
    /// The winner re-priced under the warp/occupancy-aware
    /// [`simgpu::cost::WarpTileModel`], seconds.
    pub warp_tile_s: f64,
    /// Kernel launches over the winner's executed frames.
    pub launches: usize,
    /// Whether the winner's functional outputs matched the CPU reference
    /// bit-exactly.
    pub outputs_ok: bool,
}

/// Result of [`tune_ablation`].
#[derive(Debug, Clone)]
pub struct TuneAblation {
    /// The oracle cost model's name (`CostModel::describe`).
    pub model: String,
    /// One row per registry entry.
    pub rows: Vec<TuneRow>,
}

/// Entries whose frames are at least this many pixels use the
/// coordinate-descent beam instead of the exhaustive sweep.
const BEAM_PIXELS: usize = 1 << 20;

struct Tuner<'a> {
    built: &'a BuiltWorkload,
    chunk_domains: [Vec<usize>; 2],
    memo: std::collections::BTreeMap<Cand, f64>,
    evals: usize,
}

impl<'a> Tuner<'a> {
    fn new(built: &'a BuiltWorkload) -> Tuner<'a> {
        // Chunking only exists on the SaC lowering, and only bites when the
        // rank-3 frame has a multi-channel leading dimension to split.
        let channels = built.channels();
        let sac_chunks = if channels > 1 { vec![channels, 0] } else { vec![0] };
        Tuner {
            built,
            chunk_domains: [sac_chunks, vec![0]],
            memo: std::collections::BTreeMap::new(),
            evals: 0,
        }
    }

    fn executed(&self) -> usize {
        if self.built.spec.temporal() {
            3.min(self.built.spec.frames)
        } else {
            1
        }
    }

    fn opts(&self, cand: Cand, cost: CostModelSpec) -> ExecOptions {
        ExecOptions {
            streams: STREAMS[cand.streams_ix],
            executed: self.executed(),
            channel_chunks: self.chunk_domains[cand.route_ix][cand.chunk_ix],
            host_ns_per_op: HOST_NS_PER_OP,
            pool: POOLS[cand.pool_ix],
            optimize: presets()[cand.opt_ix].1,
            cost,
            ..Default::default()
        }
    }

    /// One oracle run: simulated full-batch makespan in seconds, plus the
    /// run counters and a reference bit-check of the functional frames.
    fn run(
        &self,
        cand: Cand,
        cost: CostModelSpec,
    ) -> Result<(f64, usize, bool), scenarios::ScenarioError> {
        let route = Route::BOTH[cand.route_ix];
        let opts = self.opts(cand, cost);
        let mut device = Device::gtx480();
        let (outs, stats) = self.built.run_placed(
            route,
            &mut device,
            &opts,
            opts.channel_chunks,
            PLACEMENTS[cand.place_ix],
        )?;
        let ok = outs.iter().enumerate().all(|(f, o)| *o == self.built.reference(f));
        Ok((device.now_us() / 1e6, stats.launches, ok))
    }

    /// Memoized oracle score under the calibrated model.
    fn score(&mut self, cand: Cand) -> Result<f64, scenarios::ScenarioError> {
        if let Some(&s) = self.memo.get(&cand) {
            return Ok(s);
        }
        let (s, _, _) = self.run(cand, CostModelSpec::Inherit)?;
        self.evals += 1;
        self.memo.insert(cand, s);
        Ok(s)
    }

    fn domain_len(&self, route_ix: usize, dim: usize) -> usize {
        match dim {
            0 => presets().len(),
            1 => STREAMS.len(),
            2 => POOLS.len(),
            3 => PLACEMENTS.len().min(if route_ix == 0 { 1 } else { 2 }),
            _ => self.chunk_domains[route_ix].len(),
        }
    }

    fn with_dim(cand: Cand, dim: usize, ix: usize) -> Cand {
        let mut c = cand;
        match dim {
            0 => c.opt_ix = ix,
            1 => c.streams_ix = ix,
            2 => c.pool_ix = ix,
            3 => c.place_ix = ix,
            _ => c.chunk_ix = ix,
        }
        c
    }

    /// Exhaustive sweep of one route's full cross product.
    fn exhaustive(&mut self, route_ix: usize) -> Result<(Cand, f64), scenarios::ScenarioError> {
        let mut best: Option<(Cand, f64)> = None;
        for opt_ix in 0..presets().len() {
            for streams_ix in 0..STREAMS.len() {
                for pool_ix in 0..POOLS.len() {
                    for place_ix in 0..self.domain_len(route_ix, 3) {
                        for chunk_ix in 0..self.chunk_domains[route_ix].len() {
                            let cand =
                                Cand { route_ix, streams_ix, pool_ix, opt_ix, place_ix, chunk_ix };
                            let s = self.score(cand)?;
                            if best.as_ref().is_none_or(|&(_, b)| s < b) {
                                best = Some((cand, s));
                            }
                        }
                    }
                }
            }
        }
        Ok(best.expect("non-empty search space"))
    }

    /// Deterministic coordinate descent: sweep one dimension at a time in a
    /// fixed order, keep strict improvements, repeat until a full pass
    /// changes nothing (at most four passes).
    fn beam(&mut self, route_ix: usize) -> Result<(Cand, f64), scenarios::ScenarioError> {
        let mut cand =
            Cand { route_ix, streams_ix: 0, pool_ix: 0, opt_ix: 0, place_ix: 0, chunk_ix: 0 };
        let mut best = self.score(cand)?;
        for _pass in 0..4 {
            let before = cand;
            for dim in 0..5 {
                for ix in 0..self.domain_len(route_ix, dim) {
                    let probe = Self::with_dim(cand, dim, ix);
                    let s = self.score(probe)?;
                    if s < best {
                        best = s;
                        cand = probe;
                    }
                }
            }
            if cand == before {
                break;
            }
        }
        Ok((cand, best))
    }
}

/// The bench scenario's own full-length downscaler batch as a registry-style
/// entry, so the tuner also optimises the paper's headline number (300 HD
/// frames for `hd1080`) and not just the registry's short serving batches.
fn headline(s: &Scenario) -> Workload {
    Workload {
        name: "downscale-headline",
        summary: "the bench scenario's full-length downscaler batch",
        kind: Kind::Downscale,
        rows: s.rows,
        cols: s.cols,
        frames: s.frames,
        seed: 0x5CE4,
        mix: JobMix { jobs: 1, mean_gap_us: 0.0, tenants: 1, frames_per_job: 1 },
    }
}

/// Tune the bench scenario's headline downscaler batch plus every registry
/// entry (`hd1080` runs the full registry including the 1080p and 4K
/// downscaler sizes; other scenario selections use the small registry,
/// which is what CI smoke-tests) and report each entry's best
/// configuration under the calibrated paper model.
pub fn tune_ablation(s: &Scenario) -> Result<TuneAblation, PipelineError> {
    let mut entries = vec![headline(s)];
    entries.extend(if s.name == "hd1080" {
        scenarios::registry()
    } else {
        scenarios::registry_small()
    });
    let cfg_err = |e: scenarios::ScenarioError| PipelineError::Config(e.to_string());
    let model = Device::gtx480().cost_model().describe();

    let mut rows = Vec::new();
    for w in &entries {
        let built = w.build().map_err(cfg_err)?;
        let mut tuner = Tuner::new(&built);
        let beam = w.rows * w.cols >= BEAM_PIXELS;
        let search = if beam { "beam" } else { "exhaustive" };

        // Search each route independently, then take the overall winner
        // (ties keep the earlier route in report order).
        let mut best: Option<(Cand, f64)> = None;
        for route_ix in 0..Route::BOTH.len() {
            let (cand, s) = if beam { tuner.beam(route_ix) } else { tuner.exhaustive(route_ix) }
                .map_err(cfg_err)?;
            if best.as_ref().is_none_or(|&(_, b)| s < b) {
                best = Some((cand, s));
            }
        }
        let (cand, best_s) = best.expect("two routes searched");

        // The hand-picked default the scenario ablation has always led
        // with: gaspard route, 2 streams, pool on, planopt off.
        let default_cand =
            Cand { route_ix: 1, streams_ix: 1, pool_ix: 1, opt_ix: 0, place_ix: 0, chunk_ix: 0 };
        let default_s = tuner.score(default_cand).map_err(cfg_err)?;
        let evals = tuner.evals;

        // Re-run the winner for its counters and reference bit-check, and
        // re-price the same schedule under the warp/occupancy model.
        let (_, launches, outputs_ok) = tuner.run(cand, CostModelSpec::Inherit).map_err(cfg_err)?;
        let (warp_tile_s, _, warp_ok) =
            tuner.run(cand, CostModelSpec::WarpTile).map_err(cfg_err)?;

        let chunk_domain = tuner.chunk_domains[cand.route_ix].clone();
        rows.push(TuneRow {
            scenario: w.name.into(),
            search: search.into(),
            evals,
            config: cand.config(&chunk_domain),
            best_s,
            default_s,
            speedup: default_s / best_s,
            warp_tile_s,
            launches,
            outputs_ok: outputs_ok && warp_ok,
        });
    }

    Ok(TuneAblation { model, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scenario_tunes_the_small_registry() {
        let a = tune_ablation(&Scenario::tiny()).unwrap();
        assert_eq!(a.model, "paper-gtx480");
        let names: Vec<&str> = a.rows.iter().map(|r| r.scenario.as_str()).collect();
        assert_eq!(
            names,
            ["downscale-headline", "imagepipe", "delta", "blockmean", "downscale-thumb"]
        );
        for r in &a.rows {
            assert!(r.outputs_ok, "{}: tuned winner diverged from reference", r.scenario);
            assert_eq!(r.search, "exhaustive");
            assert!(r.evals > 0);
            assert!(r.best_s > 0.0);
            // The tuned config can never lose to the hand-picked default:
            // the default is in the search space.
            assert!(
                r.best_s <= r.default_s + 1e-12,
                "{}: best {} > default {}",
                r.scenario,
                r.best_s,
                r.default_s
            );
            assert!(r.warp_tile_s > 0.0);
        }
        // The temporal carry entry cannot profit from extra lanes.
        let delta = a.rows.iter().find(|r| r.scenario == "delta").unwrap();
        assert_eq!(delta.config.streams, 1, "{:?}", delta.config);
    }

    #[test]
    fn beam_and_exhaustive_agree_on_a_small_entry() {
        let w = scenarios::registry_small().remove(0);
        let built = w.build().unwrap();
        let mut ex = Tuner::new(&built);
        let mut bm = Tuner::new(&built);
        for route_ix in 0..2 {
            let (_, best_ex) = ex.exhaustive(route_ix).unwrap();
            let (_, best_bm) = bm.beam(route_ix).unwrap();
            assert_eq!(best_ex, best_bm, "route {route_ix}");
        }
        assert!(bm.evals <= ex.evals, "beam must not out-spend exhaustive");
    }
}
