//! Deterministic open-loop arrival traces for the serving ablation.
//!
//! Serving numbers must be machine-independent and golden-able like every
//! other ablation, so arrival times come from a seeded LCG — no wall clock,
//! no external `rand` — and the jitter math is plain f64 rational
//! arithmetic (no `ln`/`exp`: libm implementations are not bit-stable
//! across platforms, exact rationals are).

/// Minimal multiplicative-congruential generator (Knuth's MMIX constants).
/// Deterministic, seedable, and good enough to jitter arrival gaps; not a
/// statistical RNG and not meant to be one.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// A generator seeded with `seed` (any value; 0 is remapped so the
    /// stream never sticks at zero).
    pub fn new(seed: u64) -> Lcg {
        Lcg { state: seed.wrapping_mul(2).wrapping_add(1) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.state
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        // High bits are the good bits of an LCG.
        (self.next_u64() >> 16) % n
    }
}

/// One arrival in an open-loop trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Submission time, µs from trace start.
    pub submit_us: f64,
    /// Owning tenant id, in `0..tenants`.
    pub tenant: usize,
}

/// An open-loop arrival trace: `jobs` arrivals with a mean inter-arrival
/// gap of `mean_gap_us`, jittered uniformly over `[0.5, 1.5)` of the mean
/// (in 1/1000 steps — exact f64 rationals, so the trace is bit-identical
/// on every platform), tenants assigned round-robin-with-jitter over
/// `0..tenants`. The trace is open-loop: arrivals do not react to service
/// times, which is what makes p99 latency honest under overload.
pub fn arrival_trace(seed: u64, jobs: usize, mean_gap_us: f64, tenants: usize) -> Vec<Arrival> {
    assert!(tenants > 0, "need at least one tenant");
    let mut lcg = Lcg::new(seed);
    let mut t = 0.0f64;
    (0..jobs)
        .map(|_| {
            let jitter = 0.5 + lcg.next_below(1001) as f64 / 1000.0;
            t += mean_gap_us * jitter;
            Arrival { submit_us: t, tenant: lcg.next_below(tenants as u64) as usize }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = arrival_trace(42, 100, 1000.0, 3);
        let b = arrival_trace(42, 100, 1000.0, 3);
        let c = arrival_trace(43, 100, 1000.0, 3);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gaps_stay_within_the_jitter_band_and_times_increase() {
        let tr = arrival_trace(7, 500, 200.0, 2);
        let mut prev = 0.0;
        for a in &tr {
            let gap = a.submit_us - prev;
            assert!((0.5 * 200.0..=1.5 * 200.0 + 1e-9).contains(&gap), "gap {gap}");
            assert!(a.tenant < 2);
            prev = a.submit_us;
        }
        // Mean gap lands near the nominal mean.
        let mean = tr.last().unwrap().submit_us / 500.0;
        assert!((mean - 200.0).abs() < 20.0, "mean {mean}");
    }

    #[test]
    fn every_tenant_appears() {
        let tr = arrival_trace(1, 200, 50.0, 4);
        for t in 0..4 {
            assert!(tr.iter().any(|a| a.tenant == t), "tenant {t} missing");
        }
    }
}
