//! Deterministic open-loop arrival traces for the serving ablation.
//!
//! Serving numbers must be machine-independent and golden-able like every
//! other ablation, so arrival times come from a seeded LCG — no wall clock,
//! no external `rand` — and the jitter math is plain f64 rational
//! arithmetic (no `ln`/`exp`: libm implementations are not bit-stable
//! across platforms, exact rationals are).

/// Minimal multiplicative-congruential generator (Knuth's MMIX constants).
/// Deterministic, seedable, and good enough to jitter arrival gaps; not a
/// statistical RNG and not meant to be one.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// A generator seeded with `seed` (any value, including 0).
    ///
    /// The seed is scrambled with the splitmix64 finalizer, a *bijection*
    /// on `u64`: distinct seeds always map to distinct initial states. The
    /// previous remap (`seed * 2 + 1`) dropped bit 63, so `s` and
    /// `s + 2^63` silently produced identical arrival traces — exactly the
    /// collision a registry sweeping seeds would hit.
    pub fn new(seed: u64) -> Lcg {
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        Lcg { state: z ^ (z >> 31) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.state
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    ///
    /// Implemented as `(next_u64() >> 16) % n` (the high bits are the good
    /// bits of an LCG). The modulo introduces bias: values below
    /// `2^48 mod n` are favoured by at most a factor `(⌊2^48/n⌋ + 1) /
    /// ⌊2^48/n⌋`, i.e. a relative bias bounded by `n / 2^48`. Every caller
    /// in this crate uses `n ≤ ~10^4` (jitter steps, tenant counts), where
    /// the bias is below 4·10^-11 — far beneath anything the serving
    /// ablation's percentile statistics could resolve — so the cheap,
    /// platform-stable modulo is kept deliberately. Callers needing
    /// `n > 2^32` should not use this generator.
    pub fn next_below(&mut self, n: u64) -> u64 {
        (self.next_u64() >> 16) % n
    }
}

/// One arrival in an open-loop trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Submission time, µs from trace start.
    pub submit_us: f64,
    /// Owning tenant id, in `0..tenants`.
    pub tenant: usize,
}

/// An open-loop arrival trace: `jobs` arrivals with a mean inter-arrival
/// gap of `mean_gap_us`, jittered uniformly over `[0.5, 1.5)` of the mean
/// (in 1/1000 steps — exact f64 rationals, so the trace is bit-identical
/// on every platform), tenants assigned round-robin-with-jitter over
/// `0..tenants`. The trace is open-loop: arrivals do not react to service
/// times, which is what makes p99 latency honest under overload.
pub fn arrival_trace(seed: u64, jobs: usize, mean_gap_us: f64, tenants: usize) -> Vec<Arrival> {
    assert!(tenants > 0, "need at least one tenant");
    let mut lcg = Lcg::new(seed);
    let mut t = 0.0f64;
    (0..jobs)
        .map(|_| {
            let jitter = 0.5 + lcg.next_below(1001) as f64 / 1000.0;
            t += mean_gap_us * jitter;
            Arrival { submit_us: t, tenant: lcg.next_below(tenants as u64) as usize }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = arrival_trace(42, 100, 1000.0, 3);
        let b = arrival_trace(42, 100, 1000.0, 3);
        let c = arrival_trace(43, 100, 1000.0, 3);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gaps_stay_within_the_jitter_band_and_times_increase() {
        let tr = arrival_trace(7, 500, 200.0, 2);
        let mut prev = 0.0;
        for a in &tr {
            let gap = a.submit_us - prev;
            assert!((0.5 * 200.0..=1.5 * 200.0 + 1e-9).contains(&gap), "gap {gap}");
            assert!(a.tenant < 2);
            prev = a.submit_us;
        }
        // Mean gap lands near the nominal mean.
        let mean = tr.last().unwrap().submit_us / 500.0;
        assert!((mean - 200.0).abs() < 20.0, "mean {mean}");
    }

    /// The seed-collapse regression: the old `seed * 2 + 1` remap discarded
    /// bit 63, so `s` and `s + 2^63` seeded identical generators. The
    /// splitmix64 scramble is injective, so high-bit-differing seeds (and a
    /// spread of nearby seeds) must all yield distinct states and traces.
    #[test]
    fn distinct_seeds_give_distinct_streams() {
        for s in [0u64, 1, 42, 0xD05C, u64::MAX / 2] {
            let a = arrival_trace(s, 50, 1000.0, 3);
            let b = arrival_trace(s ^ (1 << 63), 50, 1000.0, 3);
            assert_ne!(a, b, "seed {s} collides with its high-bit sibling");
        }
        // A batch of consecutive seeds produces pairwise-distinct first draws
        // of the raw stream (injectivity of the scramble + LCG step).
        let firsts: Vec<u64> = (0..256u64).map(|s| Lcg::new(s).next_u64()).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), firsts.len(), "consecutive seeds collided");
    }

    /// Pins the documented `next_below` contract: the value is
    /// `(raw >> 16) % n`, the bias bound `n / 2^48` holds for every `n` the
    /// crate uses, and small-`n` draws stay in range and hit every residue.
    #[test]
    fn next_below_matches_documented_shift_mod_form() {
        let mut a = Lcg::new(7);
        let mut b = Lcg::new(7);
        for _ in 0..100 {
            let n = 1001;
            let expect = (b.next_u64() >> 16) % n;
            assert_eq!(a.next_below(n), expect);
        }
        // Documented negligibility bound for the largest in-crate modulus.
        let worst_n = 10_000u64;
        let relative_bias = worst_n as f64 / 2f64.powi(48);
        assert!(relative_bias < 1e-10, "bias bound {relative_bias}");
        // All residues of a small modulus are reachable.
        let mut seen = [false; 7];
        let mut g = Lcg::new(3);
        for _ in 0..1000 {
            let v = g.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn every_tenant_appears() {
        let tr = arrival_trace(1, 200, 50.0, 4);
        for t in 0..4 {
            assert!(tr.iter().any(|a| a.tenant == t), "tenant {t} missing");
        }
    }
}
