//! The experiments behind each table and figure.

use crate::calibration::{HOST_NS_PER_OP, SEQ_CPU_NS_PER_OP};
use downscaler::frames::FrameGenerator;
use downscaler::pipelines::{
    build_gaspard, build_sac, reference_downscale, run_gaspard_batch, run_gaspard_batch_placed,
    run_sac_batch, ExecOptions, PipelineError, SacRoute,
};
use downscaler::sac_src::{Part, Variant};
use downscaler::Scenario;
use mdarray::NdArray;
use sac_cuda::exec::run_on_device_opts;
use sac_cuda::PlanOp;
use simgpu::cost::Direction;
use simgpu::device::Device;
use simgpu::profiler::{Group, OpClass, TableRow};

/// One bar pair of Figure 9.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Configuration label, e.g. `SAC-CUDA Non-Generic`.
    pub config: String,
    /// Horizontal-filter execution time for the whole run, seconds.
    pub horizontal_s: f64,
    /// Vertical-filter execution time, seconds.
    pub vertical_s: f64,
}

/// A rendered profile table (Tables I / II).
#[derive(Debug, Clone)]
pub struct ProfileTable {
    /// Rows in paper order.
    pub rows: Vec<TableRow>,
    /// Total simulated seconds.
    pub total_s: f64,
}

/// Figure 12's four operation groups for both routes, seconds.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// (SAC, Gaspard2) per group.
    pub horizontal: (f64, f64),
    /// Vertical filter kernels.
    pub vertical: (f64, f64),
    /// Host-to-device transfers.
    pub h2d: (f64, f64),
    /// Device-to-host transfers.
    pub d2h: (f64, f64),
}

fn default_exec(s: &Scenario) -> ExecOptions {
    ExecOptions { host_ns_per_op: HOST_NS_PER_OP, channel_chunks: s.channels, ..Default::default() }
}

fn test_frame(s: &Scenario) -> NdArray<i64> {
    FrameGenerator::new(s.channels, s.rows, s.cols, 0xD05C).frame_rank3(0)
}

/// Simulated seconds to transfer `route`'s result back, if the plan does.
fn result_download_us(s: &Scenario, route: &SacRoute, device: &Device) -> f64 {
    let downloads_result =
        route.plan_last_download().map(|arr| arr == route.flat.result).unwrap_or(false);
    if !downloads_result {
        return 0.0;
    }
    let shape = &route.flat.arrays[route.flat.result].shape;
    let len: usize = shape.iter().product();
    let chunks = if shape.first() == Some(&s.channels) && s.channels > 1 { s.channels } else { 1 };
    let calib = device.calibration();
    chunks as f64 * calib.transfer_time_us(len * 4 / chunks, Direction::DeviceToHost)
}

/// Helper on [`SacRoute`]: the array id of a trailing download, if any.
trait PlanExt {
    fn plan_last_download(&self) -> Option<usize>;
}

impl PlanExt for SacRoute {
    fn plan_last_download(&self) -> Option<usize> {
        match self.cuda.plan.last() {
            Some(PlanOp::Download { array }) => Some(*array),
            _ => None,
        }
    }
}

/// Per-filter *execution* time of a CUDA route over the full run, seconds:
/// kernel + host-fallback + *forced mid-pipeline* transfer time. The frame
/// upload and (when present) final result download are excluded — they are
/// common to every configuration and reported separately in Tables I/II.
fn cuda_filter_time_s(s: &Scenario, variant: Variant, part: Part) -> Result<f64, PipelineError> {
    let route = build_sac(s, variant, part, &Default::default())?;
    let mut device = Device::gtx480();
    let input = match part {
        Part::Vertical => downscaler::pipelines::reference_horizontal(s, &test_frame(s)),
        _ => test_frame(s),
    };
    run_on_device_opts(&route.cuda, &mut device, &[input], default_exec(s))?;
    let total = device.now_us();
    let h2d = device.profiler.class_total_us(OpClass::H2D);
    let result_d2h = result_download_us(s, &route, &device);
    let per_frame_us = total - h2d - result_d2h;
    Ok(per_frame_us * s.frames as f64 / 1e6)
}

/// Sequential (SAC-Seq) per-filter time over the full run, seconds.
fn seq_filter_time_s(s: &Scenario, variant: Variant, part: Part) -> Result<f64, PipelineError> {
    let route = build_sac(s, variant, part, &Default::default())?;
    let input = match part {
        Part::Vertical => downscaler::pipelines::reference_horizontal(s, &test_frame(s)),
        _ => test_frame(s),
    };
    let mut ops = 0u64;
    route.flat.run(&[input], &mut ops).map_err(PipelineError::Sac)?;
    Ok(ops as f64 * SEQ_CPU_NS_PER_OP * s.frames as f64 / 1e9)
}

/// Figure 9: filter execution times of the four SaC configurations.
pub fn figure9(s: &Scenario) -> Result<Vec<Fig9Row>, PipelineError> {
    let mut rows = Vec::new();
    for (label, variant, cuda) in [
        ("SAC-Seq Generic", Variant::Generic, false),
        ("SAC-Seq Non-Generic", Variant::NonGeneric, false),
        ("SAC-CUDA Generic", Variant::Generic, true),
        ("SAC-CUDA Non-Generic", Variant::NonGeneric, true),
    ] {
        let (h, v) = if cuda {
            (
                cuda_filter_time_s(s, variant, Part::Horizontal)?,
                cuda_filter_time_s(s, variant, Part::Vertical)?,
            )
        } else {
            (
                seq_filter_time_s(s, variant, Part::Horizontal)?,
                seq_filter_time_s(s, variant, Part::Vertical)?,
            )
        };
        rows.push(Fig9Row { config: label.into(), horizontal_s: h, vertical_s: v });
    }
    Ok(rows)
}

/// The paper's table groups.
fn paper_groups() -> Vec<Group> {
    vec![
        Group::kernels("H. Filter", "hf_"),
        Group::kernels("V. Filter", "vf_"),
        Group::class("memcpyHtoDasync", OpClass::H2D),
        Group::class("memcpyDtoHasync", OpClass::D2H),
    ]
}

/// Table I: the GASPARD2 implementation's profile over the full run.
pub fn table1(s: &Scenario) -> Result<ProfileTable, PipelineError> {
    let route = build_gaspard(s)?;
    let mut device = Device::gtx480();
    let channels = FrameGenerator::new(s.channels, s.rows, s.cols, 0xD05C).frame_channels(0);
    gaspard::run_opencl(&route.opencl, &mut device, &channels)?;
    device.profiler.scale(s.frames as u64);
    Ok(ProfileTable {
        rows: device.profiler.rows(&paper_groups()),
        total_s: device.profiler.total_us() / 1e6,
    })
}

/// Table II: the non-generic SaC implementation's profile over the full run.
pub fn table2(s: &Scenario) -> Result<ProfileTable, PipelineError> {
    let route = build_sac(s, Variant::NonGeneric, Part::Full, &Default::default())?;
    let mut device = Device::gtx480();
    run_on_device_opts(&route.cuda, &mut device, &[test_frame(s)], default_exec(s))?;
    device.profiler.scale(s.frames as u64);
    Ok(ProfileTable {
        rows: device.profiler.rows(&paper_groups()),
        total_s: device.profiler.total_us() / 1e6,
    })
}

/// Figure 12: SAC vs GASPARD2 per operation group.
pub fn figure12(s: &Scenario) -> Result<Fig12, PipelineError> {
    let t1 = table1(s)?; // Gaspard
    let t2 = table2(s)?; // SaC
    let pick = |t: &ProfileTable, i: usize| t.rows[i].time_us / 1e6;
    Ok(Fig12 {
        horizontal: (pick(&t2, 0), pick(&t1, 0)),
        vertical: (pick(&t2, 1), pick(&t1, 1)),
        h2d: (pick(&t2, 2), pick(&t1, 2)),
        d2h: (pick(&t2, 3), pick(&t1, 3)),
    })
}

/// Figure 3 artefact: the downscaler overview as a Graphviz DOT graph.
pub fn figure3_dot(s: &Scenario) -> Result<String, PipelineError> {
    let route = build_gaspard(s)?;
    let g = gaspard::transform::to_arrayol(&route.scheduled).map_err(PipelineError::Gaspard)?;
    Ok(arrayol::dot::to_dot(&g, "Downscaler"))
}

/// Figure 8 artefact: the folded horizontal filter, rendered as SaC text.
pub fn figure8_text(s: &Scenario) -> Result<String, PipelineError> {
    let route = build_sac(s, Variant::NonGeneric, Part::Horizontal, &Default::default())?;
    Ok(format!(
        "// WITH-loop folding fused the 3-step horizontal filter into one\n\
         // {}-generator WITH-loop (paper Figure 8 reports 5 generators):\n\n{}",
        route.report.generators_after_split, route.flat
    ))
}

/// Figure 11 artefact: a generated GASPARD2 OpenCL tiler kernel.
pub fn figure11_text(s: &Scenario) -> Result<String, PipelineError> {
    let route = build_gaspard(s)?;
    let bhf = route
        .opencl
        .kernels
        .iter()
        .find(|k| k.kernel.name.contains("bhf"))
        .unwrap_or(&route.opencl.kernels[0]);
    Ok(bhf.kernel.emit_source())
}

/// Generated CUDA source for the folded SaC program (companion artefact).
pub fn cuda_source_text(s: &Scenario) -> Result<String, PipelineError> {
    let route = build_sac(s, Variant::NonGeneric, Part::Full, &Default::default())?;
    Ok(route.cuda.emit_cuda_source())
}

/// Kernel-count summary (paper: 3+3 Gaspard vs 5+7 SaC).
#[derive(Debug, Clone)]
pub struct KernelCounts {
    /// (horizontal, vertical) kernels of the GASPARD2 route.
    pub gaspard: (usize, usize),
    /// (horizontal, vertical) kernels of the folded SaC route.
    pub sac: (usize, usize),
}

/// Count kernels per filter for both routes.
pub fn kernel_counts(s: &Scenario) -> Result<KernelCounts, PipelineError> {
    let g = build_gaspard(s)?;
    let gh = g.opencl.kernels.iter().filter(|k| k.kernel.name.starts_with("hf_")).count();
    let gv = g.opencl.kernels.iter().filter(|k| k.kernel.name.starts_with("vf_")).count();
    let h = build_sac(s, Variant::NonGeneric, Part::Horizontal, &Default::default())?;
    let v = build_sac(s, Variant::NonGeneric, Part::Vertical, &Default::default())?;
    Ok(KernelCounts {
        gaspard: (gh, gv),
        sac: (h.report.generators_after_split, v.report.generators_after_split),
    })
}

/// One row of the frame-size sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Scenario rows × cols.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Sequential (SAC-Seq, non-generic) per-frame time, µs.
    pub seq_us: f64,
    /// GPU kernel-only per-frame time (non-generic), µs.
    pub gpu_kernels_us: f64,
    /// GPU per-frame time including transfers, µs.
    pub gpu_total_us: f64,
}

/// Frame-size sweep: where does the GPU overtake sequential execution?
///
/// The paper evaluates a single (HD) size; this sweep locates the crossover
/// the launch-overhead story implies — at small frames the 12 kernel launches
/// and PCIe latency dominate and the CPU wins; the GPU overtakes as frames
/// grow.
pub fn sweep(scales: &[usize]) -> Result<Vec<SweepRow>, PipelineError> {
    let mut out = Vec::new();
    for &k in scales {
        let (rows, cols) = (9 * k, 16 * k);
        let mut s = Scenario::new(&format!("sweep{k}"), 3, rows, cols, 1)?;
        s.frames = 1;
        let route = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default())?;
        let frame = test_frame(&s);

        let mut ops = 0u64;
        route.flat.run(std::slice::from_ref(&frame), &mut ops).map_err(PipelineError::Sac)?;
        let seq_us = ops as f64 * SEQ_CPU_NS_PER_OP / 1e3;

        let mut device = Device::gtx480();
        run_on_device_opts(
            &route.cuda,
            &mut device,
            std::slice::from_ref(&frame),
            default_exec(&s),
        )?;
        let gpu_total_us = device.now_us();
        let gpu_kernels_us = device.profiler.class_total_us(OpClass::Kernel);
        out.push(SweepRow { rows, cols, seq_us, gpu_kernels_us, gpu_total_us });
    }
    Ok(out)
}

/// One row of the stream-count ablation.
#[derive(Debug, Clone)]
pub struct StreamsRow {
    /// Streams (SaC) / command queues (GASPARD2) used.
    pub streams: usize,
    /// SaC route makespan for the whole run, seconds.
    pub sac_s: f64,
    /// GASPARD2 route makespan for the whole run, seconds.
    pub gaspard_s: f64,
    /// Engine busy time hidden by overlap, percent (SaC route).
    pub sac_overlap_pct: f64,
    /// Engine busy time hidden by overlap, percent (GASPARD2 route).
    pub gaspard_overlap_pct: f64,
}

/// Stream-count ablation: the whole scenario driven through both routes'
/// frame pipelines at each stream count.
///
/// One frame per configuration is executed functionally (results stay
/// bit-exact by construction — the executors are exercised against golden
/// references in their own tests); the remaining `s.frames − 1` frames are
/// timing-replayed, which is exact because per-frame cost is
/// content-independent under the cost model. `streams = 1` is the serialized
/// baseline: it reproduces the one-frame-at-a-time executors' simulated time
/// bit-for-bit.
pub fn streams_ablation(
    s: &Scenario,
    stream_counts: &[usize],
) -> Result<Vec<StreamsRow>, PipelineError> {
    let sac = build_sac(s, Variant::NonGeneric, Part::Full, &Default::default())?;
    let gasp = build_gaspard(s)?;
    let mut rows = Vec::new();
    for &streams in stream_counts {
        let opts = ExecOptions {
            streams,
            executed: 1,
            host_ns_per_op: HOST_NS_PER_OP,
            ..Default::default()
        };
        let mut sac_dev = Device::gtx480();
        run_sac_batch(s, &sac, &mut sac_dev, 0xD05C, opts)?;
        let mut gasp_dev = Device::gtx480();
        run_gaspard_batch(s, &gasp, &mut gasp_dev, 0xD05C, opts)?;
        rows.push(StreamsRow {
            streams,
            sac_s: sac_dev.now_us() / 1e6,
            gaspard_s: gasp_dev.now_us() / 1e6,
            sac_overlap_pct: sac_dev.profiler.overlap_percent(),
            gaspard_overlap_pct: gasp_dev.profiler.overlap_percent(),
        });
    }
    Ok(rows)
}

/// One row of the memory-allocator ablation.
#[derive(Debug, Clone)]
pub struct MemoryRow {
    /// Allocator configuration: `naive` or `pooled`.
    pub config: String,
    /// SaC route total for the whole run, seconds.
    pub sac_s: f64,
    /// GASPARD2 route total for the whole run, seconds.
    pub gaspard_s: f64,
    /// Allocations that reached the (simulated) driver over the whole run.
    pub sac_driver_mallocs: u64,
    /// Same for the GASPARD2 route.
    pub gaspard_driver_mallocs: u64,
    /// Pool hit rate over the whole run, percent (0 for naive).
    pub sac_hit_rate: f64,
    /// Same for the GASPARD2 route.
    pub gaspard_hit_rate: f64,
}

/// `cold + (frames − 1) · steady`: frame 0 pays cold-start allocation, every
/// later frame the steady-state cost. Exact under the cost model because
/// per-frame cost is content-independent and, for the pool, frame 1 is
/// already in steady state (every class was populated by frame 0's frees).
fn extrapolate(cold: f64, steady: f64, frames: usize) -> f64 {
    cold + frames.saturating_sub(1) as f64 * steady
}

/// Time + allocator counters of a two-frame serial run, extrapolated to the
/// scenario's full frame count.
struct MemoryMeasurement {
    total_us: f64,
    driver_mallocs: u64,
    hit_rate: f64,
}

fn measure_memory<E>(
    s: &Scenario,
    device: &mut Device,
    mut run_frame: impl FnMut(&mut Device, usize) -> Result<(), E>,
) -> Result<MemoryMeasurement, E> {
    run_frame(device, 0)?;
    let t1 = device.now_us();
    let a1 = device.profiler.alloc.clone();
    run_frame(device, 1)?;
    let t2 = device.now_us();
    let a2 = device.profiler.alloc.clone();

    let ex = |cold: u64, after: u64| extrapolate(cold as f64, (after - cold) as f64, s.frames);
    let hits = ex(a1.pool_hits, a2.pool_hits);
    let misses = ex(a1.pool_misses, a2.pool_misses);
    Ok(MemoryMeasurement {
        total_us: extrapolate(t1, t2 - t1, s.frames),
        driver_mallocs: ex(a1.mallocs, a2.mallocs) as u64,
        hit_rate: if hits + misses > 0.0 { 100.0 * hits / (hits + misses) } else { 0.0 },
    })
}

/// Memory-allocator ablation: naive vs pooled allocation under the
/// allocation-costed calibration ([`simgpu::Calibration::gtx480_alloc`]).
///
/// Uses the *serial per-frame* executors, which — like the paper's generated
/// host loops — allocate and free every device buffer each frame, so the
/// allocator is actually exercised once per frame: naive runs pay a
/// device-synchronizing `cudaMalloc`/`cudaFree` per buffer per frame, pooled
/// runs pay them only on frame 0 and recycle thereafter. Two frames are
/// executed functionally and the whole-run totals extrapolated (frame 0 =
/// cold start, frame 1 = steady state).
pub fn memory_ablation(s: &Scenario) -> Result<Vec<MemoryRow>, PipelineError> {
    let sac = build_sac(s, Variant::NonGeneric, Part::Full, &Default::default())?;
    let gasp = build_gaspard(s)?;
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 0xD05C);

    let mut rows = Vec::new();
    for (label, pool) in [("naive", false), ("pooled", true)] {
        let mut sac_dev = Device::gtx480();
        sac_dev.set_calibration(simgpu::Calibration::gtx480_alloc());
        sac_dev.set_pool_enabled(pool);
        let sm = measure_memory(s, &mut sac_dev, |d, f| {
            run_on_device_opts(&sac.cuda, d, &[gen.frame_rank3(f)], default_exec(s)).map(|_| ())
        })?;

        let mut gasp_dev = Device::gtx480();
        gasp_dev.set_calibration(simgpu::Calibration::gtx480_alloc());
        gasp_dev.set_pool_enabled(pool);
        let gm = measure_memory(s, &mut gasp_dev, |d, f| {
            gaspard::run_opencl(&gasp.opencl, d, &gen.frame_channels(f)).map(|_| ())
        })
        .map_err(PipelineError::Gaspard)?;

        rows.push(MemoryRow {
            config: label.into(),
            sac_s: sm.total_us / 1e6,
            gaspard_s: gm.total_us / 1e6,
            sac_driver_mallocs: sm.driver_mallocs,
            gaspard_driver_mallocs: gm.driver_mallocs,
            sac_hit_rate: sm.hit_rate,
            gaspard_hit_rate: gm.hit_rate,
        });
    }
    Ok(rows)
}

/// Outcome of the OOM graceful-degradation demonstration.
#[derive(Debug, Clone)]
pub struct DegradationDemo {
    /// Constrained device capacity, bytes (sized to fit 2 lanes, not 4).
    pub capacity_bytes: usize,
    /// Stream count requested by both runs.
    pub streams: usize,
    /// The error the naive (non-degrading) batch dies with.
    pub naive_error: String,
    /// Makespan of the degrading batch, seconds.
    pub degraded_s: f64,
    /// Downgrade notes the degrading run surfaced.
    pub notes: Vec<String>,
    /// Whether the degraded outputs are bit-identical to the 1-stream run.
    pub outputs_match_baseline: bool,
}

/// Demonstrate graceful OOM degradation on the SaC route: on a device sized
/// for two stream lanes, a 4-stream batch dies with `OutOfMemory` unless
/// degradation is enabled, in which case it completes at reduced lanes with
/// bit-identical outputs.
pub fn oom_degradation_demo(s: &Scenario) -> Result<DegradationDemo, PipelineError> {
    let sac = build_sac(s, Variant::NonGeneric, Part::Full, &Default::default())?;
    let streams = 4;
    // Each lane allocates its buffer set only when a frame executes on it
    // functionally (replay charges time without touching memory), so run one
    // functional frame per requested lane to actually exercise the capacity.
    // Scenarios with fewer frames than lanes exercise fewer lanes.
    let exercised = streams.min(s.frames);
    let opts =
        ExecOptions { executed: exercised, host_ns_per_op: HOST_NS_PER_OP, ..Default::default() };

    // Baseline 1-stream run doubles as the per-lane footprint probe.
    let mut probe = Device::gtx480();
    let baseline = run_sac_batch(s, &sac, &mut probe, 0xD05C, opts)?;
    // Capacity for half the exercised lanes: the naive run must OOM, the
    // degradation ladder must bottom out at a count that fits.
    let capacity = probe.peak_allocated_bytes() * (exercised / 2).max(1);

    let cfg = simgpu::DeviceConfig::toy(capacity);
    let mut naive = Device::new(cfg.clone(), simgpu::Calibration::gtx480());
    let naive_error =
        match run_sac_batch(s, &sac, &mut naive, 0xD05C, ExecOptions { streams, ..opts }) {
            Err(e) => e.to_string(),
            Ok(_) => "unexpectedly succeeded".into(),
        };

    let mut degraded = Device::new(cfg, simgpu::Calibration::gtx480());
    let outs = run_sac_batch(
        s,
        &sac,
        &mut degraded,
        0xD05C,
        ExecOptions { streams, degrade_on_oom: true, ..opts },
    )?;

    Ok(DegradationDemo {
        capacity_bytes: capacity,
        streams,
        naive_error,
        degraded_s: degraded.now_us() / 1e6,
        notes: degraded.profiler.notes().map(String::from).collect(),
        outputs_match_baseline: outs == baseline,
    })
}

/// One row of the cross-route kernel-fusion ablation.
#[derive(Debug, Clone)]
pub struct FusionRow {
    /// Configuration label, e.g. `Gaspard2 fused`.
    pub config: String,
    /// Whether the tiler-composition fusion pass ran for this row.
    pub fused: bool,
    /// Streams / command queues this row was driven with.
    pub streams: usize,
    /// Whether the device memory pool was enabled.
    pub pool: bool,
    /// Whole-run makespan, simulated seconds.
    pub total_s: f64,
    /// Kernel launches per frame (profiler `OpClass::Kernel` calls / frames).
    pub launches_per_frame: u64,
    /// Peak device bytes resident at any point of the run.
    pub peak_bytes: usize,
}

/// Result of [`fusion_ablation`].
#[derive(Debug, Clone)]
pub struct FusionAblation {
    /// 4 configurations × 2 option sets, in nested order.
    pub rows: Vec<FusionRow>,
    /// Whether fused Gaspard2 outputs were bit-identical to unfused under
    /// every option set.
    pub fused_outputs_match: bool,
}

/// Cross-route kernel-fusion ablation: what each toolchain's fusion stage is
/// worth, measured on the same scenario with the same batch driver.
///
/// SaC's fusion knob is WITH-loop folding (paper §VI); GASPARD2's is the
/// plan-level tiler-composition pass (`simgpu::planopt`, faithful codegen —
/// this reproduction's extension: the paper's GASPARD2 has no inter-task
/// fusion, which is exactly why it pays 6 launches per frame to SaC's
/// folded 12-step chain).
/// Each configuration also runs under the composed option set from the
/// earlier ablations (2 streams + pooled allocator) to show fusion stacks
/// with pipelining and pooling rather than replacing them.
pub fn fusion_ablation(s: &Scenario) -> Result<FusionAblation, PipelineError> {
    let wlf_on = build_sac(s, Variant::NonGeneric, Part::Full, &Default::default())?;
    let wlf_off = build_sac(
        s,
        Variant::NonGeneric,
        Part::Full,
        &sac_lang::opt::OptConfig { with_loop_folding: false, resolve_modulo: true },
    )?;
    let unfused = build_gaspard(s)?;

    let row = |config: &str, fused: bool, streams: usize, pool: bool, dev: &Device| FusionRow {
        config: config.into(),
        fused,
        streams,
        pool,
        total_s: dev.now_us() / 1e6,
        launches_per_frame: dev.profiler.class_calls(OpClass::Kernel) / s.frames as u64,
        peak_bytes: dev.peak_allocated_bytes(),
    };

    let mut rows = Vec::new();
    let mut fused_outputs_match = true;
    for (streams, pool) in [(1usize, false), (2, true)] {
        let opts = ExecOptions {
            streams,
            pool,
            executed: 1,
            host_ns_per_op: HOST_NS_PER_OP,
            ..Default::default()
        };
        for (label, route, is_fused) in
            [("SaC (WLF off)", &wlf_off, false), ("SaC (WLF on)", &wlf_on, true)]
        {
            let mut dev = Device::gtx480();
            run_sac_batch(s, route, &mut dev, 0xD05C, opts)?;
            rows.push(row(label, is_fused, streams, pool, &dev));
        }
        let mut unf_dev = Device::gtx480();
        let unf_out = run_gaspard_batch(s, &unfused, &mut unf_dev, 0xD05C, opts)?;
        rows.push(row("Gaspard2 unfused", false, streams, pool, &unf_dev));
        // The fused route: the same unfused program with the plan-level
        // fusion pass in faithful-codegen mode — bit-identical schedules to
        // the removed model-level `fuse_model` route.
        let mut fus_dev = Device::gtx480();
        let fus_out = run_gaspard_batch(
            s,
            &unfused,
            &mut fus_dev,
            0xD05C,
            ExecOptions { optimize: simgpu::PlanOptLevel::FUSION_FAITHFUL, ..opts },
        )?;
        rows.push(row("Gaspard2 fused", true, streams, pool, &fus_dev));
        fused_outputs_match &= unf_out == fus_out;
    }
    Ok(FusionAblation { rows, fused_outputs_match })
}

/// One dynamic row of the fusion-parity ablation: the three-stage imagepipe
/// stencil chain at the scenario's frame size, run under one fusion
/// strategy.
#[derive(Debug, Clone)]
pub struct FusionParityRow {
    /// Configuration label, e.g. `SaC WLF off + plan fusion`.
    pub config: String,
    /// Compilation route (`sac` / `gaspard`).
    pub route: String,
    /// Whether the plan-level `KernelFusion` pass ran for this row.
    pub plan_fusion: bool,
    /// `Launch` steps in the optimized per-frame plan.
    pub launches_per_frame: usize,
    /// Profiler kernel-class calls over the whole batch.
    pub kernel_calls: u64,
    /// Whole-run makespan, simulated seconds.
    pub total_s: f64,
    /// Whether every executed frame matched the CPU reference bit-exactly.
    pub outputs_match: bool,
}

/// One static row of the downscaler size sweep: `Launch` steps per frame of
/// the lowered plan before and after the plan-level fusion pass. Plan
/// metrics only — the 8K entry is never executed.
#[derive(Debug, Clone)]
pub struct FusionParitySweepRow {
    /// Registry entry name, e.g. `downscale-8k`.
    pub scenario: String,
    /// Frame rows.
    pub rows_px: usize,
    /// Frame columns.
    pub cols_px: usize,
    /// Compilation route (`sac` / `gaspard`).
    pub route: String,
    /// `Launch` steps per frame with planopt off.
    pub launches_unfused: usize,
    /// `Launch` steps per frame after `PlanOptLevel::FUSION`.
    pub launches_fused: usize,
}

/// Result of [`fusion_parity_ablation`].
#[derive(Debug, Clone)]
pub struct FusionParityAblation {
    /// Imagepipe rows: SaC {WLF on, WLF off, WLF off + plan fusion},
    /// Gaspard2 {unfused, fuse_model, plan fusion}.
    pub rows: Vec<FusionParityRow>,
    /// Static launch-count sweep over every downscaler registry entry
    /// (thumbnail through 8K), both routes.
    pub sweep: Vec<FusionParitySweepRow>,
    /// Whether SaC with WLF off + plan fusion matched or beat WLF on in
    /// both launches per frame and simulated makespan.
    pub wlf_recovered: bool,
    /// Whether the Gaspard2 stencil chain reached one kernel per frame via
    /// the plan-level pass.
    pub stencil_single_kernel: bool,
    /// Whether every row's outputs were bit-identical to the CPU reference.
    pub outputs_match: bool,
}

/// Fusion-parity ablation: the route-agnostic plan-level `KernelFusion`
/// pass against each route's own fusion stage, on the same workload with
/// the same batch driver.
///
/// SaC's native fusion is WITH-loop folding (paper §VI); GASPARD2's is the
/// route-local `fuse_model` tiler-composition pass. The plan-level pass
/// subsumes both: it composes tiled-access descriptions *after* lowering,
/// so a SaC plan built with WLF off must recover WLF-on launch counts and
/// makespan, and the GASPARD2 chain must collapse to one kernel per frame
/// without consulting GASPARD2 internals. A static sweep counts launches
/// across the downscaler registry sizes up to 8K, where only plan metrics
/// (never execution) are taken.
pub fn fusion_parity_ablation(s: &Scenario) -> Result<FusionParityAblation, PipelineError> {
    use scenarios::Route;
    let cfg_err = |e: scenarios::ScenarioError| PipelineError::Config(e.to_string());
    let sched_err = |e: simgpu::ScheduleError| PipelineError::Config(e.to_string());

    let spec = scenarios::Workload {
        name: "imagepipe",
        summary: "blur -> gradient -> sharpen column-stencil chain",
        kind: scenarios::Kind::ImagePipe,
        rows: s.rows,
        cols: s.cols,
        frames: s.frames,
        seed: 0x5CE0,
        mix: scenarios::JobMix { jobs: 1, mean_gap_us: 1_000.0, tenants: 1, frames_per_job: 1 },
    };
    let wlf_on = spec.build().map_err(cfg_err)?;
    let wlf_off = spec
        .build_with_sac_config(&sac_lang::opt::OptConfig {
            with_loop_folding: false,
            resolve_modulo: true,
        })
        .map_err(cfg_err)?;

    let base = ExecOptions { executed: 1, host_ns_per_op: HOST_NS_PER_OP, ..Default::default() };
    let launch_steps = |plan: &simgpu::LaunchPlan<'_>| {
        plan.steps.iter().filter(|st| matches!(st, simgpu::PlanStep::Launch { .. })).count()
    };

    let row = |label: &str,
               built: &scenarios::BuiltWorkload,
               route: Route,
               level: simgpu::PlanOptLevel|
     -> Result<FusionParityRow, PipelineError> {
        let mut plan = built.plan(route).map_err(cfg_err)?;
        simgpu::planopt::optimize(&mut plan, level).map_err(sched_err)?;
        let mut dev = Device::gtx480();
        let (outs, _) = built
            .run(route, &mut dev, &ExecOptions { optimize: level, ..base })
            .map_err(cfg_err)?;
        Ok(FusionParityRow {
            config: label.into(),
            route: route.name().into(),
            plan_fusion: level.fusion,
            launches_per_frame: launch_steps(&plan),
            kernel_calls: dev.profiler.class_calls(OpClass::Kernel),
            total_s: dev.now_us() / 1e6,
            outputs_match: outs.iter().enumerate().all(|(f, o)| *o == built.reference(f)),
        })
    };

    // The faithful-codegen baseline, keeping the label of the removed
    // model-level `fuse_model` route it schedules bit-identically to:
    // GASPARD2's three-stage model, fused plan-level with the faithful
    // tiled codegen, run through the same batch driver.
    let fuse_model_row = || -> Result<FusionParityRow, PipelineError> {
        let (model, alloc) = scenarios::models::imagepipe_model(s.rows, s.cols);
        let deployed = gaspard::deploy(model, gaspard::Platform::cpu_gpu(), alloc)?;
        let scheduled = gaspard::schedule(&deployed)?;
        let prog = gaspard::generate_opencl(&scheduled)?;
        let mut plan = gaspard::exec::lower_plan(&prog);
        simgpu::planopt::optimize(&mut plan, simgpu::PlanOptLevel::FUSION_FAITHFUL)
            .map_err(sched_err)?;
        let mut dev = Device::gtx480();
        let frames = wlf_on.frames(Route::Gaspard, 1);
        let (outs, _) = simgpu::BatchScheduler::new(&plan)
            .run(&mut dev, &frames, &ExecOptions { total_frames: spec.frames, ..base })
            .map_err(sched_err)?;
        Ok(FusionParityRow {
            config: "Gaspard2 fuse_model".into(),
            route: "gaspard".into(),
            plan_fusion: false,
            launches_per_frame: launch_steps(&plan),
            kernel_calls: dev.profiler.class_calls(OpClass::Kernel),
            total_s: dev.now_us() / 1e6,
            outputs_match: outs
                .iter()
                .enumerate()
                .all(|(f, o)| o.len() == 1 && o[0] == wlf_on.reference(f)),
        })
    };

    let rows = vec![
        row("SaC WLF on", &wlf_on, Route::Sac, simgpu::PlanOptLevel::OFF)?,
        row("SaC WLF off", &wlf_off, Route::Sac, simgpu::PlanOptLevel::OFF)?,
        row("SaC WLF off + plan fusion", &wlf_off, Route::Sac, simgpu::PlanOptLevel::FUSION)?,
        row("Gaspard2 unfused", &wlf_on, Route::Gaspard, simgpu::PlanOptLevel::OFF)?,
        fuse_model_row()?,
        row("Gaspard2 plan fusion", &wlf_on, Route::Gaspard, simgpu::PlanOptLevel::FUSION)?,
    ];

    let mut sweep = Vec::new();
    for w in scenarios::registry_extended() {
        if w.kind != scenarios::Kind::Downscale {
            continue;
        }
        let built = w.build().map_err(cfg_err)?;
        for route in Route::BOTH {
            let unfused = built.plan(route).map_err(cfg_err)?;
            let mut fused = built.plan(route).map_err(cfg_err)?;
            simgpu::planopt::optimize(&mut fused, simgpu::PlanOptLevel::FUSION)
                .map_err(sched_err)?;
            sweep.push(FusionParitySweepRow {
                scenario: w.name.into(),
                rows_px: w.rows,
                cols_px: w.cols,
                route: route.name().into(),
                launches_unfused: launch_steps(&unfused),
                launches_fused: launch_steps(&fused),
            });
        }
    }

    let by = |label: &str| rows.iter().find(|r| r.config == label).expect("known row");
    let on = by("SaC WLF on");
    let recovered = by("SaC WLF off + plan fusion");
    Ok(FusionParityAblation {
        wlf_recovered: recovered.launches_per_frame <= on.launches_per_frame
            && recovered.total_s <= on.total_s,
        stencil_single_kernel: by("Gaspard2 plan fusion").launches_per_frame == 1,
        outputs_match: rows.iter().all(|r| r.outputs_match),
        rows,
        sweep,
    })
}

/// One row of the plan-optimisation ablation.
#[derive(Debug, Clone)]
pub struct PlanoptRow {
    /// Configuration label, e.g. `Gaspard2 naive placement`.
    pub config: String,
    /// Which planopt passes ran: `off`, a single pass name, or `all`.
    pub passes: String,
    /// Streams / command queues this row was driven with.
    pub streams: usize,
    /// Whether the device memory pool was enabled.
    pub pool: bool,
    /// Whole-run makespan, simulated seconds.
    pub total_s: f64,
    /// Host-to-device transfers actually issued per frame.
    pub h2d_per_frame: f64,
    /// Device-to-host transfers actually issued per frame.
    pub d2h_per_frame: f64,
    /// Total host-to-device bytes over the whole run, MB.
    pub h2d_mb: f64,
    /// Total device-to-host bytes over the whole run, MB.
    pub d2h_mb: f64,
}

/// Result of [`planopt_ablation`].
#[derive(Debug, Clone)]
pub struct PlanoptAblation {
    /// Naive-placement rows (6 pass settings × 2 option sets) followed by
    /// fused-route rows (off/all × 2 option sets).
    pub rows: Vec<PlanoptRow>,
    /// Whether every optimized run's outputs were bit-identical to the
    /// passes-off run of the same configuration and option set.
    pub outputs_match: bool,
}

/// The pass settings the ablation sweeps: off, each pass alone, and all.
const PLANOPT_LEVELS: [(&str, simgpu::PlanOptLevel); 6] = [
    ("off", simgpu::PlanOptLevel::OFF),
    ("residency", simgpu::PlanOptLevel::RESIDENCY),
    ("dead-transfers", simgpu::PlanOptLevel::DEAD_TRANSFERS),
    ("reorder", simgpu::PlanOptLevel::REORDER),
    ("coalesce", simgpu::PlanOptLevel::COALESCE),
    ("all", simgpu::PlanOptLevel::ALL),
];

/// Plan-optimisation ablation: what each `simgpu::planopt` pass is worth,
/// in bytes moved and makespan, under 1-stream naive and 2-stream pooled
/// option sets.
///
/// Two baselines make the story legible. The *naive placement* rows lower
/// the unfused Gaspard2 model with per-kernel host round trips — the
/// placement a straight per-tiler translation emits — so the residency and
/// dead-transfer passes have real redundancy to eliminate (they recover the
/// device-resident placement mechanically). The *fused* rows start from the
/// faithfully fused plan, whose placement is already transfer-minimal; there the
/// headline saving is transfer coalescing, which batches the three
/// per-channel uploads (and downloads) into one transfer each and pays one
/// PCIe latency instead of three — on the transfer-bound HD run that is
/// what finally moves the 2-stream plateau.
pub fn planopt_ablation(s: &Scenario) -> Result<PlanoptAblation, PipelineError> {
    let unfused = build_gaspard(s)?;
    let frames = s.frames as f64;

    let mut rows = Vec::new();
    let mut outputs_match = true;
    let mut run = |config: &str,
                   route: &downscaler::pipelines::GaspardRoute,
                   placement: gaspard::Placement,
                   levels: &[(&str, simgpu::PlanOptLevel)],
                   rows: &mut Vec<PlanoptRow>|
     -> Result<(), PipelineError> {
        for &(streams, pool) in &[(1usize, false), (2, true)] {
            let mut baseline = None;
            for (passes, level) in levels {
                let opts = ExecOptions {
                    streams,
                    pool,
                    executed: 1,
                    host_ns_per_op: HOST_NS_PER_OP,
                    optimize: *level,
                    ..Default::default()
                };
                let mut dev = Device::gtx480();
                let (outs, stats) =
                    run_gaspard_batch_placed(s, route, &mut dev, 0xD05C, opts, placement)?;
                match &baseline {
                    None => baseline = Some(outs),
                    Some(base) => outputs_match &= *base == outs,
                }
                rows.push(PlanoptRow {
                    config: config.into(),
                    passes: (*passes).into(),
                    streams,
                    pool,
                    total_s: dev.now_us() / 1e6,
                    h2d_per_frame: stats.h2d as f64 / frames,
                    d2h_per_frame: stats.d2h as f64 / frames,
                    h2d_mb: stats.h2d_bytes as f64 / 1e6,
                    d2h_mb: stats.d2h_bytes as f64 / 1e6,
                });
            }
        }
        Ok(())
    };

    run(
        "Gaspard2 naive placement",
        &unfused,
        gaspard::Placement::PerKernelRoundTrip,
        &PLANOPT_LEVELS,
        &mut rows,
    )?;
    // The fused baseline: faithful plan-level fusion stands in for the
    // removed pre-fused route (bit-identical schedules), so "off" means
    // "fused, no further passes" and "all" layers the remaining passes on
    // the same fused plan.
    run(
        "Gaspard2 fused",
        &unfused,
        gaspard::Placement::Resident,
        &[
            ("off", simgpu::PlanOptLevel::FUSION_FAITHFUL),
            (
                "all",
                simgpu::PlanOptLevel {
                    fusion: true,
                    fusion_faithful: true,
                    ..simgpu::PlanOptLevel::ALL
                },
            ),
        ],
        &mut rows,
    )?;
    Ok(PlanoptAblation { rows, outputs_match })
}

/// Cost-model ablation: rerun Table I/II totals under a modified calibration.
pub fn totals_with_calibration(
    s: &Scenario,
    calib: simgpu::Calibration,
) -> Result<(f64, f64), PipelineError> {
    // Gaspard.
    let route = build_gaspard(s)?;
    let mut device = Device::gtx480();
    device.set_calibration(calib.clone());
    let channels = FrameGenerator::new(s.channels, s.rows, s.cols, 0xD05C).frame_channels(0);
    gaspard::run_opencl(&route.opencl, &mut device, &channels)?;
    let gaspard_total = device.now_us() * s.frames as f64 / 1e6;
    // SaC non-generic.
    let route = build_sac(s, Variant::NonGeneric, Part::Full, &Default::default())?;
    let mut device = Device::gtx480();
    device.set_calibration(calib);
    run_on_device_opts(&route.cuda, &mut device, &[test_frame(s)], default_exec(s))?;
    let sac_total = device.now_us() * s.frames as f64 / 1e6;
    Ok((sac_total, gaspard_total))
}

/// One row of the serving scaling/policy table.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Fleet width (device count).
    pub devices: usize,
    /// Sharding policy name.
    pub policy: String,
    /// Jobs offered by the trace.
    pub jobs: usize,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Jobs shed by admission control.
    pub shed: usize,
    /// Frames served by completed jobs.
    pub frames: usize,
    /// Served frames per second of trace time.
    pub fps: f64,
    /// Median completed-job latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile completed-job latency, ms (nearest rank).
    pub p99_ms: f64,
    /// Completion time of the last job, seconds.
    pub makespan_s: f64,
}

/// One row of the arrival-rate sweep (fixed fleet, varying offered load).
#[derive(Debug, Clone)]
pub struct ServeRateRow {
    /// Offered load as a fraction of fleet capacity (1.0 = jobs arrive
    /// exactly as fast as the fleet can serve them).
    pub load_factor: f64,
    /// Nominal offered arrival rate, jobs/s.
    pub offered_jobs_per_s: f64,
    /// Fleet width.
    pub devices: usize,
    /// Jobs offered by the trace.
    pub jobs: usize,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Jobs shed by admission control.
    pub shed: usize,
    /// Served frames per second of trace time.
    pub fps: f64,
    /// Median completed-job latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile completed-job latency, ms (nearest rank).
    pub p99_ms: f64,
}

/// Result of the overload run: admission-control shedding plus the OOM
/// degradation ladder acting as per-job load-shedding, with zero output
/// corruption on completed jobs.
#[derive(Debug, Clone)]
pub struct ServeShedDemo {
    /// Fleet width (memory-constrained toy devices).
    pub devices: usize,
    /// Constrained per-device capacity, bytes (sized for one lane, not two).
    pub capacity_bytes: usize,
    /// Jobs offered in one burst.
    pub jobs: usize,
    /// Jobs that ran to completion (degraded to fewer lanes).
    pub completed: usize,
    /// Jobs shed at the door by the bounded queue.
    pub shed: usize,
    /// Degradation-ladder notes in the merged fleet profiler.
    pub degradation_notes: usize,
    /// Admission-control shed notes in the merged fleet profiler.
    pub shed_notes: usize,
    /// Whether every completed job's outputs are bit-identical to the
    /// golden-model reference (shed jobs produce nothing — no partial work).
    pub outputs_ok: bool,
}

/// Result of [`serve_ablation`].
#[derive(Debug, Clone)]
pub struct ServeAblation {
    /// Frames per job in the scaling trace.
    pub frames_per_job: usize,
    /// Measured single-job service time, ms.
    pub job_ms: f64,
    /// Fleet-width scaling rows (round-robin at 1/2/4/8 devices) followed by
    /// the policy comparison at 4 devices.
    pub scaling: Vec<ServeRow>,
    /// Arrival-rate sweep at 4 devices (replay-only jobs, bounded queues).
    pub rates: Vec<ServeRateRow>,
    /// Overload/shedding demonstration on memory-constrained devices.
    pub shed: ServeShedDemo,
    /// Whether the functional jobs' outputs were bit-identical across every
    /// fleet width and policy (and matched the golden-model reference).
    pub outputs_match_across_widths: bool,
    /// Throughput ratio of the 4-device row over the 1-device row.
    pub speedup_1_to_4: f64,
}

fn serve_err(e: serve::ServeError) -> PipelineError {
    PipelineError::Config(e.to_string())
}

/// Fleet-serving ablation: shard one open-loop trace of downscale jobs
/// across 1/2/4/8 simulated devices and report frames/s and p50/p99 job
/// latency, compare sharding policies at fixed width, sweep the offered
/// arrival rate against a fixed fleet, and demonstrate graceful load
/// shedding under overload (bounded queues + the OOM degradation ladder).
///
/// Jobs run the fused Gaspard route's launch plan — the route-agnostic
/// `LaunchPlan` from PR 4 is exactly what lets one lowered plan serve on
/// any number of devices. A handful of jobs per configuration execute
/// functionally (their outputs are bit-checked across every width and
/// policy against the golden model); the rest replay a captured
/// [`serve::JobTemplate`] for exact timing at zero compute, which is what
/// makes thousand-job traces affordable.
pub fn serve_ablation(s: &Scenario) -> Result<ServeAblation, PipelineError> {
    use std::collections::BTreeMap;

    let route = build_gaspard(s)?;
    let plan = downscaler::pipelines::fused_gaspard_plan(&route)?;
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 0xD05C);

    // Scenario-scaled trace shape: HD's 300 frames become 60 five-frame
    // jobs; smaller scenarios shrink proportionally (min 4 jobs, 1 frame).
    let fpj = (s.frames / 60).max(1);
    let jobs_n = (s.frames / fpj).max(4);
    let exec = ExecOptions {
        streams: 2,
        executed: 1,
        pool: true,
        host_ns_per_op: HOST_NS_PER_OP,
        ..Default::default()
    };

    // Measure the job shape once on a scratch device; every serving run
    // (any width, any policy) replays this same template, which is what
    // makes the cross-width comparison exact.
    let mut templates = BTreeMap::new();
    let mut probe = Device::gtx480();
    probe.set_pool_enabled(true);
    let tpl = serve::JobTemplate::capture(&plan, &mut probe, &exec, &[gen.frame_channels(0)], fpj)
        .map_err(serve_err)?;
    let job_us = tpl.dur_us;
    templates.insert(fpj, tpl);

    // Open-loop burst: ~1ms mean inter-arrival over 4 tenants. The first
    // two jobs are functional (1 measured frame + replay to `fpj`) so every
    // serving run produces real outputs to bit-check; the rest are
    // replay-only.
    let functional = 2.min(jobs_n);
    let trace = crate::arrivals::arrival_trace(0x0A21, jobs_n, 1_000.0, 4);
    let jobs: Vec<serve::Job> = trace
        .iter()
        .enumerate()
        .map(|(j, a)| {
            if j < functional {
                serve::Job {
                    id: j,
                    tenant: a.tenant,
                    submit_us: a.submit_us,
                    frames: vec![gen.frame_channels(j)],
                    total_frames: fpj,
                }
            } else {
                serve::Job::replay(j, a.tenant, a.submit_us, fpj)
            }
        })
        .collect();
    let submits: Vec<f64> = jobs.iter().map(|j| j.submit_us).collect();
    let expected: Vec<NdArray<i64>> =
        (0..functional).map(|j| reference_downscale(s, &gen.frame_rank3(j))).collect();

    let base_cfg = serve::ServeConfig {
        policy: serve::ShardPolicy::RoundRobin,
        queue_capacity: jobs_n,
        tenant_weights: vec![1; 4],
        exec,
    };

    let mut outputs_match = true;
    let mut scaling = Vec::new();
    let run = |devices: usize,
               policy: serve::ShardPolicy,
               templates: &mut BTreeMap<usize, serve::JobTemplate>,
               outputs_match: &mut bool|
     -> Result<ServeRow, PipelineError> {
        let mut fleet = simgpu::Fleet::gtx480(devices).map_err(|e| serve_err(e.into()))?;
        let cfg = serve::ServeConfig { policy, ..base_cfg.clone() };
        let report = serve::serve_with_templates(&mut fleet, &plan, &jobs, &cfg, templates)
            .map_err(serve_err)?;
        for (j, exp) in expected.iter().enumerate() {
            match &report.outcomes[j] {
                serve::JobOutcome::Completed { outputs, .. } => {
                    let planes = FrameGenerator::unstack(exp);
                    *outputs_match &= outputs.len() == 1 && outputs[0] == planes;
                }
                serve::JobOutcome::Shed { .. } => *outputs_match = false,
            }
        }
        Ok(ServeRow {
            devices,
            policy: policy.name().into(),
            jobs: jobs_n,
            completed: report.completed,
            shed: report.shed,
            frames: report.total_frames,
            fps: report.throughput_fps(),
            p50_ms: report.latency_percentile_us(&submits, 50.0) / 1e3,
            p99_ms: report.latency_percentile_us(&submits, 99.0) / 1e3,
            makespan_s: report.makespan_us / 1e6,
        })
    };

    for devices in [1usize, 2, 4, 8] {
        scaling.push(run(
            devices,
            serve::ShardPolicy::RoundRobin,
            &mut templates,
            &mut outputs_match,
        )?);
    }
    for policy in [serve::ShardPolicy::LeastLoaded, serve::ShardPolicy::StickyByTenant] {
        scaling.push(run(4, policy, &mut templates, &mut outputs_match)?);
    }
    let speedup_1_to_4 = scaling[2].fps / scaling[0].fps;

    // Arrival-rate sweep: a fixed 4-device fleet, replay-only jobs, bounded
    // queues, offered load below / at / far above fleet capacity.
    let rate_devices = 4usize;
    let capacity_jps = rate_devices as f64 * 1e6 / job_us;
    let rate_jobs = jobs_n * 6;
    let mut rates = Vec::new();
    for (i, load) in [0.3f64, 1.0, 3.0].iter().enumerate() {
        let gap_us = 1e6 / (capacity_jps * load);
        let tr = crate::arrivals::arrival_trace(0x0A31 + i as u64, rate_jobs, gap_us, 4);
        let rjobs: Vec<serve::Job> = tr
            .iter()
            .enumerate()
            .map(|(j, a)| serve::Job::replay(j, a.tenant, a.submit_us, fpj))
            .collect();
        let rsubmits: Vec<f64> = rjobs.iter().map(|j| j.submit_us).collect();
        let mut fleet = simgpu::Fleet::gtx480(rate_devices).map_err(|e| serve_err(e.into()))?;
        let cfg = serve::ServeConfig {
            policy: serve::ShardPolicy::LeastLoaded,
            queue_capacity: 8,
            ..base_cfg.clone()
        };
        let report = serve::serve_with_templates(&mut fleet, &plan, &rjobs, &cfg, &mut templates)
            .map_err(serve_err)?;
        rates.push(ServeRateRow {
            load_factor: *load,
            offered_jobs_per_s: capacity_jps * load,
            devices: rate_devices,
            jobs: rate_jobs,
            completed: report.completed,
            shed: report.shed,
            fps: report.throughput_fps(),
            p50_ms: report.latency_percentile_us(&rsubmits, 50.0) / 1e3,
            p99_ms: report.latency_percentile_us(&rsubmits, 99.0) / 1e3,
        });
    }

    // Overload demonstration: two memory-constrained devices sized for one
    // stream lane each, six two-frame functional jobs arriving in one
    // burst, queue depth 1. Admission control sheds the overflow at the
    // door; every admitted job OOMs at two lanes and the degradation
    // ladder completes it at one lane — visible as notes in the merged
    // fleet profiler, with outputs bit-identical to the golden model.
    let shed_exec = ExecOptions { pool: false, degrade_on_oom: true, ..exec };
    let mut fprobe = Device::gtx480();
    let two_frames: Vec<Vec<NdArray<i64>>> = (0..2).map(|k| gen.frame_channels(100 + k)).collect();
    simgpu::BatchScheduler::new(&plan)
        .run(&mut fprobe, &two_frames, &ExecOptions { streams: 1, pool: false, ..shed_exec })
        .map_err(|e| serve_err(e.into()))?;
    let capacity = fprobe.peak_allocated_bytes();
    let mut fleet = simgpu::Fleet::homogeneous(
        2,
        simgpu::DeviceConfig::toy(capacity),
        simgpu::Calibration::gtx480(),
    )
    .map_err(|e| serve_err(e.into()))?;
    let shed_trace = crate::arrivals::arrival_trace(0x0A41, 6, 50.0, 2);
    let shed_jobs: Vec<serve::Job> = shed_trace
        .iter()
        .enumerate()
        .map(|(j, a)| {
            serve::Job::functional(
                j,
                a.tenant,
                a.submit_us,
                (0..2).map(|k| gen.frame_channels(100 + j * 2 + k)).collect(),
            )
        })
        .collect();
    let shed_cfg = serve::ServeConfig {
        policy: serve::ShardPolicy::RoundRobin,
        queue_capacity: 1,
        tenant_weights: vec![1; 2],
        exec: shed_exec,
    };
    let report = serve::serve(&mut fleet, &plan, &shed_jobs, &shed_cfg).map_err(serve_err)?;
    let mut outputs_ok = true;
    for (j, o) in report.outcomes.iter().enumerate() {
        if let serve::JobOutcome::Completed { outputs, .. } = o {
            outputs_ok &= outputs.len() == 2;
            for (k, out) in outputs.iter().enumerate() {
                let exp = reference_downscale(s, &gen.frame_rank3(100 + j * 2 + k));
                outputs_ok &= *out == FrameGenerator::unstack(&exp);
            }
        }
    }
    let merged = fleet.merged_profiler();
    let shed_demo = ServeShedDemo {
        devices: 2,
        capacity_bytes: capacity,
        jobs: shed_jobs.len(),
        completed: report.completed,
        shed: report.shed,
        degradation_notes: merged.notes().filter(|n| n.contains("degraded")).count(),
        shed_notes: merged.notes().filter(|n| n.starts_with("shed:")).count(),
        outputs_ok,
    };

    Ok(ServeAblation {
        frames_per_job: fpj,
        job_ms: job_us / 1e3,
        scaling,
        rates,
        shed: shed_demo,
        outputs_match_across_widths: outputs_match,
        speedup_1_to_4,
    })
}

/// One execution row of the workload-registry ablation.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// Registry entry name.
    pub scenario: String,
    /// Compilation route (`sac` / `gaspard`).
    pub route: String,
    /// Scheduler configuration (`serial` / `pipelined` / `planopt`).
    pub config: String,
    /// Functionally executed frames (the rest of the batch timing-replays).
    pub frames: usize,
    /// Simulated makespan of the whole batch, seconds.
    pub total_s: f64,
    /// Kernel launches over the executed frames.
    pub launches: usize,
    /// Whether every executed frame matched the CPU reference bit-exactly.
    pub outputs_ok: bool,
}

/// One serving row of the workload-registry ablation: the entry's default
/// job mix served on a 2-device fleet.
#[derive(Debug, Clone)]
pub struct ScenarioServeRow {
    /// Registry entry name.
    pub scenario: String,
    /// Jobs in the mix's arrival trace.
    pub jobs: usize,
    /// Frames charged per job.
    pub frames_per_job: usize,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Jobs shed by admission control.
    pub shed: usize,
    /// Served frames per second of trace time.
    pub fps: f64,
    /// Median completed-job latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile completed-job latency, ms (nearest rank).
    pub p99_ms: f64,
    /// Whether the functional job's outputs matched the CPU reference.
    pub outputs_ok: bool,
}

/// Result of [`scenarios_ablation`].
#[derive(Debug, Clone)]
pub struct ScenariosAblation {
    /// Execution rows: entry × route × scheduler configuration.
    pub rows: Vec<ScenarioRow>,
    /// Serving rows: one per entry, default mix on a 2-device fleet.
    pub serve: Vec<ScenarioServeRow>,
    /// Whether every entry's outputs were bit-identical across both routes
    /// and all three scheduler configurations.
    pub cross_route_match: bool,
    /// Whether the temporal (carry) entry's 2-stream makespan equalled its
    /// serial makespan on both routes — the carry chain honestly collapses
    /// pipelining back to the serial clock.
    pub temporal_serialized: bool,
}

/// Workload-registry ablation: run every registry entry on both routes
/// under three scheduler configurations (serialized, 2-stream pipelined +
/// pool, pipelined + planopt ALL), bit-check each run against the entry's
/// CPU reference and across routes, then serve each entry's default job
/// mix on a 2-device fleet.
///
/// The full registry — including the 1080p and 4K downscaler sizes — runs
/// for the `hd1080` scenario selection; other selections use the small
/// registry, which is what CI smoke-tests.
pub fn scenarios_ablation(s: &Scenario) -> Result<ScenariosAblation, PipelineError> {
    use std::collections::BTreeMap;

    let entries =
        if s.name == "hd1080" { scenarios::registry() } else { scenarios::registry_small() };
    let cfg_err = |e: scenarios::ScenarioError| PipelineError::Config(e.to_string());

    let mut rows = Vec::new();
    let mut serve_rows = Vec::new();
    let mut cross_route_match = true;
    let mut temporal_serialized = true;

    for (i, w) in entries.iter().enumerate() {
        let built = w.build().map_err(cfg_err)?;
        // One functional frame per configuration suffices for the
        // bit-checks (per-frame cost is content-independent); the temporal
        // entry executes three so the carry chain is actually exercised.
        let executed = if w.temporal() { 3.min(w.frames) } else { 1 };
        let base = ExecOptions { executed, host_ns_per_op: HOST_NS_PER_OP, ..Default::default() };
        let configs: [(&str, ExecOptions); 3] = [
            ("serial", base),
            ("pipelined", ExecOptions { streams: 2, pool: true, ..base }),
            (
                "planopt",
                ExecOptions { streams: 2, pool: true, optimize: simgpu::PlanOptLevel::ALL, ..base },
            ),
        ];

        let mut serial_outs: Vec<Vec<NdArray<i64>>> = Vec::new();
        for route in scenarios::Route::BOTH {
            let mut cfg_outs: Vec<Vec<NdArray<i64>>> = Vec::new();
            let mut cfg_times = Vec::new();
            for (config, opts) in &configs {
                let mut device = Device::gtx480();
                let (outs, stats) = built.run(route, &mut device, opts).map_err(cfg_err)?;
                let outputs_ok = outs.iter().enumerate().all(|(f, o)| *o == built.reference(f));
                rows.push(ScenarioRow {
                    scenario: w.name.into(),
                    route: route.name().into(),
                    config: (*config).into(),
                    frames: executed,
                    total_s: device.now_us() / 1e6,
                    launches: stats.launches,
                    outputs_ok,
                });
                cfg_times.push(device.now_us());
                cfg_outs.push(outs);
            }
            cross_route_match &= cfg_outs.iter().all(|o| *o == cfg_outs[0]);
            if w.temporal() {
                temporal_serialized &= (cfg_times[0] - cfg_times[1]).abs() < 1e-9;
            }
            serial_outs.push(cfg_outs.swap_remove(0));
        }
        cross_route_match &= serial_outs[0] == serial_outs[1];

        // Serve the entry's default mix: the Gaspard plan, one functional
        // job (bit-checked), the rest replaying a captured template.
        let plan = built.plan(scenarios::Route::Gaspard).map_err(cfg_err)?;
        let mix = w.mix;
        let exec = ExecOptions {
            streams: 2,
            executed: 1,
            pool: true,
            host_ns_per_op: HOST_NS_PER_OP,
            ..Default::default()
        };
        let mut templates = BTreeMap::new();
        let mut probe = Device::gtx480();
        probe.set_pool_enabled(true);
        let probe_frames = built.frames(scenarios::Route::Gaspard, 1);
        let tpl = serve::JobTemplate::capture(
            &plan,
            &mut probe,
            &exec,
            &probe_frames,
            mix.frames_per_job,
        )
        .map_err(serve_err)?;
        templates.insert(mix.frames_per_job, tpl);
        let trace = crate::arrivals::arrival_trace(
            0x0A51 + i as u64,
            mix.jobs,
            mix.mean_gap_us,
            mix.tenants,
        );
        let jobs: Vec<serve::Job> = trace
            .iter()
            .enumerate()
            .map(|(j, a)| {
                if j == 0 {
                    serve::Job {
                        id: j,
                        tenant: a.tenant,
                        submit_us: a.submit_us,
                        frames: built.frames(scenarios::Route::Gaspard, 1),
                        total_frames: mix.frames_per_job,
                    }
                } else {
                    serve::Job::replay(j, a.tenant, a.submit_us, mix.frames_per_job)
                }
            })
            .collect();
        let submits: Vec<f64> = jobs.iter().map(|j| j.submit_us).collect();
        let mut fleet = simgpu::Fleet::gtx480(2).map_err(|e| serve_err(e.into()))?;
        let cfg = serve::ServeConfig {
            policy: serve::ShardPolicy::RoundRobin,
            queue_capacity: mix.jobs,
            tenant_weights: vec![1; mix.tenants],
            exec,
        };
        let report = serve::serve_with_templates(&mut fleet, &plan, &jobs, &cfg, &mut templates)
            .map_err(serve_err)?;
        let outputs_ok = match &report.outcomes[0] {
            serve::JobOutcome::Completed { outputs, .. } => {
                outputs.len() == 1 && built.canon(outputs[0].clone()) == built.reference(0)
            }
            serve::JobOutcome::Shed { .. } => false,
        };
        serve_rows.push(ScenarioServeRow {
            scenario: w.name.into(),
            jobs: mix.jobs,
            frames_per_job: mix.frames_per_job,
            completed: report.completed,
            shed: report.shed,
            fps: report.throughput_fps(),
            p50_ms: report.latency_percentile_us(&submits, 50.0) / 1e3,
            p99_ms: report.latency_percentile_us(&submits, 99.0) / 1e3,
            outputs_ok,
        });
    }

    Ok(ScenariosAblation { rows, serve: serve_rows, cross_route_match, temporal_serialized })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario::tiny()
    }

    #[test]
    fn figure9_shapes_hold_at_small_scale() {
        // Big enough that per-kernel launch overhead does not dominate the
        // (simulated) GPU side; the qualitative orderings are scale-free
        // beyond that point.
        let small = Scenario::new("small", 3, 270, 480, 10).unwrap();
        let rows = figure9(&small).unwrap();
        assert_eq!(rows.len(), 4);
        let by = |label: &str| {
            rows.iter().find(|r| r.config == label).unwrap_or_else(|| panic!("{label}"))
        };
        let seq_ng = by("SAC-Seq Non-Generic");
        let cuda_ng = by("SAC-CUDA Non-Generic");
        let cuda_g = by("SAC-CUDA Generic");
        // GPU beats sequential.
        assert!(cuda_ng.horizontal_s < seq_ng.horizontal_s);
        assert!(cuda_ng.vertical_s < seq_ng.vertical_s);
        // Generic CUDA is slower than non-generic CUDA (host round-trip).
        assert!(cuda_g.horizontal_s > cuda_ng.horizontal_s);
        assert!(cuda_g.vertical_s > cuda_ng.vertical_s);
    }

    #[test]
    fn tables_have_paper_structure() {
        let s = tiny();
        let t1 = table1(&s).unwrap();
        assert_eq!(t1.rows.len(), 4);
        assert!(t1.rows[0].label.contains("H. Filter (3 kernels)"), "{:?}", t1.rows);
        assert!(t1.rows[1].label.contains("V. Filter (3 kernels)"), "{:?}", t1.rows);
        assert_eq!(t1.rows[2].calls, (s.frames * s.channels) as u64);

        let t2 = table2(&s).unwrap();
        assert!(t2.rows[0].label.contains("H. Filter (5 kernels)"), "{:?}", t2.rows);
        assert!(t2.rows[1].label.contains("V. Filter (7 kernels)"), "{:?}", t2.rows);
        assert_eq!(t2.rows[2].calls, (s.frames * s.channels) as u64);
        // Kernel group call counts follow the paper's convention (one group
        // call per frame).
        assert_eq!(t1.rows[0].calls, s.frames as u64);
        assert_eq!(t2.rows[0].calls, s.frames as u64);
    }

    #[test]
    fn streams_ablation_overlap_strictly_beats_sync() {
        // The acceptance shape of the HD run at test-friendly scale: same
        // frame count (300), smaller frames.
        let s = Scenario::new("hd-ish", 3, 90, 160, 300).unwrap();
        let rows = streams_ablation(&s, &[1, 2, 4]).unwrap();
        assert_eq!(rows.len(), 3);
        let (sync, two, four) = (&rows[0], &rows[1], &rows[2]);
        // Double buffering strictly beats the serialized baseline on both
        // routes, and going wider never hurts.
        assert!(two.sac_s < sync.sac_s, "{} !< {}", two.sac_s, sync.sac_s);
        assert!(two.gaspard_s < sync.gaspard_s);
        assert!(four.sac_s <= two.sac_s + 1e-12);
        assert!(four.gaspard_s <= two.gaspard_s + 1e-12);
        // Sync has nothing to hide; the pipelined runs do.
        assert_eq!(sync.sac_overlap_pct, 0.0);
        assert!(two.sac_overlap_pct > 0.0 && two.gaspard_overlap_pct > 0.0);
        // The makespan can never beat the serial sum's busiest engine: with
        // overlap% < 100·(1 − 1/engines) as a loose sanity bound.
        assert!(two.sac_overlap_pct < 100.0);
    }

    #[test]
    fn one_stream_ablation_matches_serial_total() {
        // streams=1 with replay must reproduce the serial executor's
        // simulated time for the full run bit-for-bit.
        let s = tiny();
        let rows = streams_ablation(&s, &[1]).unwrap();

        let route = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();
        let mut device = Device::gtx480();
        let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 0xD05C);
        for f in 0..s.frames {
            run_on_device_opts(&route.cuda, &mut device, &[gen.frame_rank3(f)], default_exec(&s))
                .unwrap();
        }
        assert_eq!(rows[0].sac_s, device.now_us() / 1e6);
    }

    #[test]
    fn memory_ablation_pooled_never_slower() {
        let s = Scenario::new("mem", 3, 90, 160, 30).unwrap();
        let rows = memory_ablation(&s).unwrap();
        assert_eq!(rows.len(), 2);
        let (naive, pooled) = (&rows[0], &rows[1]);
        assert_eq!(naive.config, "naive");
        assert_eq!(pooled.config, "pooled");
        // The acceptance ordering: pooled strictly beats naive once per-frame
        // allocation is costed, on both routes.
        assert!(pooled.sac_s < naive.sac_s, "{} !< {}", pooled.sac_s, naive.sac_s);
        assert!(pooled.gaspard_s < naive.gaspard_s);
        // Naive never hits a pool; pooled is all hits after frame 0.
        assert_eq!(naive.sac_hit_rate, 0.0);
        assert!(pooled.sac_hit_rate > 50.0, "{}", pooled.sac_hit_rate);
        assert!(pooled.gaspard_hit_rate > 50.0);
        assert!(pooled.sac_driver_mallocs < naive.sac_driver_mallocs);
        assert!(pooled.gaspard_driver_mallocs < naive.gaspard_driver_mallocs);
    }

    #[test]
    fn degradation_demo_completes_where_naive_fails() {
        let s = Scenario::new("deg", 3, 90, 160, 8).unwrap();
        let d = oom_degradation_demo(&s).unwrap();
        assert!(d.naive_error.contains("out of memory"), "{}", d.naive_error);
        assert!(d.outputs_match_baseline);
        assert!(!d.notes.is_empty());
        assert!(d.degraded_s > 0.0);
    }

    #[test]
    fn fusion_ablation_fused_strictly_wins() {
        // The acceptance shape of the HD run at test-friendly scale.
        let s = Scenario::new("hd-ish", 3, 90, 160, 300).unwrap();
        let a = fusion_ablation(&s).unwrap();
        assert_eq!(a.rows.len(), 8);
        assert!(a.fused_outputs_match);
        let pick = |config: &str, streams: usize| {
            a.rows
                .iter()
                .find(|r| r.config == config && r.streams == streams)
                .unwrap_or_else(|| panic!("{config}@{streams}"))
        };
        for streams in [1, 2] {
            let unf = pick("Gaspard2 unfused", streams);
            let fus = pick("Gaspard2 fused", streams);
            // Fusion halves the per-channel H→V chain: strictly faster,
            // strictly fewer launches, strictly lower peak residency.
            assert!(fus.total_s < unf.total_s, "{} !< {}", fus.total_s, unf.total_s);
            assert!(fus.launches_per_frame < unf.launches_per_frame);
            assert!(fus.peak_bytes < unf.peak_bytes, "{} !< {}", fus.peak_bytes, unf.peak_bytes);
            assert_eq!(unf.launches_per_frame, 2 * s.channels as u64);
            assert_eq!(fus.launches_per_frame, s.channels as u64);
            // SaC's own fusion stage (WITH-loop folding) also wins, so the
            // cross-route story is symmetric.
            let on = pick("SaC (WLF on)", streams);
            let off = pick("SaC (WLF off)", streams);
            assert!(on.total_s < off.total_s);
            assert!(on.launches_per_frame < off.launches_per_frame);
        }
        // The composed option set (2 streams + pool) stacks with fusion.
        assert!(pick("Gaspard2 fused", 2).total_s < pick("Gaspard2 fused", 1).total_s);
    }

    #[test]
    fn fusion_parity_ablation_recovers_wlf_and_collapses_the_chain() {
        // The acceptance shape of the HD run at test-friendly scale.
        let s = Scenario::new("hd-ish", 3, 90, 160, 300).unwrap();
        let a = fusion_parity_ablation(&s).unwrap();
        assert_eq!(a.rows.len(), 6);
        assert!(a.outputs_match);
        assert!(a.wlf_recovered);
        assert!(a.stencil_single_kernel);
        let by = |config: &str| {
            a.rows.iter().find(|r| r.config == config).unwrap_or_else(|| panic!("{config}"))
        };
        // WLF off pays three launches per frame; both fusion strategies get
        // back to one, and the plan-level pass matches or beats WLF on.
        assert_eq!(by("SaC WLF off").launches_per_frame, 3);
        assert_eq!(by("SaC WLF off + plan fusion").launches_per_frame, 1);
        assert!(by("SaC WLF off + plan fusion").total_s <= by("SaC WLF on").total_s);
        assert!(by("SaC WLF off + plan fusion").total_s < by("SaC WLF off").total_s);
        // Gaspard2: the plan-level pass reproduces fuse_model's launch
        // counts without touching route internals.
        assert_eq!(by("Gaspard2 unfused").launches_per_frame, 3);
        assert_eq!(
            by("Gaspard2 plan fusion").launches_per_frame,
            by("Gaspard2 fuse_model").launches_per_frame
        );
        assert!(by("Gaspard2 plan fusion").total_s <= by("Gaspard2 fuse_model").total_s);
        // Kernel-class call counts agree with the static plan launch counts
        // over the 300-frame batch.
        for r in &a.rows {
            assert_eq!(r.kernel_calls, (r.launches_per_frame * s.frames) as u64, "{}", r.config);
        }
        // The sweep covers every downscaler size on both routes, including
        // the static-only 8K entry.
        assert_eq!(a.sweep.len(), 8);
        assert!(a.sweep.iter().any(|r| r.scenario == "downscale-8k"));
        for r in &a.sweep {
            assert!(r.launches_fused <= r.launches_unfused, "{}/{}", r.scenario, r.route);
        }
    }

    #[test]
    fn planopt_ablation_recovers_resident_placement_and_wins() {
        // The acceptance shape of the HD run at test-friendly scale.
        let s = Scenario::new("hd-ish", 3, 90, 160, 300).unwrap();
        let a = planopt_ablation(&s).unwrap();
        assert_eq!(a.rows.len(), 16);
        assert!(a.outputs_match);
        let pick = |config: &str, passes: &str, streams: usize| {
            a.rows
                .iter()
                .find(|r| r.config == config && r.passes == passes && r.streams == streams)
                .unwrap_or_else(|| panic!("{config}/{passes}@{streams}"))
        };
        for streams in [1, 2] {
            let naive_off = pick("Gaspard2 naive placement", "off", streams);
            let naive_all = pick("Gaspard2 naive placement", "all", streams);
            // The naive placement round-trips every kernel boundary: 6
            // uploads + 6 downloads per frame vs the resident 3 + 3.
            assert_eq!(naive_off.h2d_per_frame, 6.0);
            assert_eq!(naive_off.d2h_per_frame, 6.0);
            // Residency alone drops the re-uploads; adding dead-transfer
            // elimination drops the intermediate downloads too; all passes
            // also coalesce what remains into one batch per direction.
            let res = pick("Gaspard2 naive placement", "residency", streams);
            assert_eq!(res.h2d_per_frame, 3.0, "{res:?}");
            assert!(res.h2d_mb < naive_off.h2d_mb);
            assert_eq!(naive_all.h2d_per_frame, 1.0, "{naive_all:?}");
            assert_eq!(naive_all.d2h_per_frame, 1.0);
            assert!(naive_all.h2d_mb < naive_off.h2d_mb);
            assert!(naive_all.d2h_mb < naive_off.d2h_mb);
            assert!(naive_all.total_s < naive_off.total_s);
            // No individual pass ever costs time or bytes.
            for passes in ["residency", "dead-transfers", "reorder", "coalesce"] {
                let r = pick("Gaspard2 naive placement", passes, streams);
                assert!(r.total_s <= naive_off.total_s + 1e-12, "{r:?}");
                assert!(r.h2d_mb <= naive_off.h2d_mb && r.d2h_mb <= naive_off.d2h_mb, "{r:?}");
            }
            // The fused route is already transfer-minimal: same bytes, but
            // coalescing saves the per-transfer latencies.
            let fused_off = pick("Gaspard2 fused", "off", streams);
            let fused_all = pick("Gaspard2 fused", "all", streams);
            assert_eq!(fused_all.h2d_mb, fused_off.h2d_mb);
            assert_eq!(fused_all.h2d_per_frame, 1.0);
            assert!(fused_all.total_s < fused_off.total_s, "{fused_all:?} {fused_off:?}");
        }
    }

    #[test]
    fn kernel_counts_match_paper() {
        let k = kernel_counts(&tiny()).unwrap();
        assert_eq!(k.gaspard, (3, 3));
        assert_eq!(k.sac, (5, 7));
    }

    #[test]
    fn artefacts_render() {
        let s = tiny();
        let f8 = figure8_text(&s).unwrap();
        assert!(f8.contains("genarray"), "{f8}");
        let f11 = figure11_text(&s).unwrap();
        assert!(f11.contains("__kernel"), "{f11}");
        let cu = cuda_source_text(&s).unwrap();
        assert!(cu.contains("__global__"), "{cu}");
    }
}
