//! `reproduce` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p bench --bin reproduce [-- <command>] [--scenario hd1080|cif|tiny]
//!
//! commands: fig8 fig9 fig11 fig12 table1 table2 cuda-src summary ablations streams memory all
//! ```

use bench::experiments as exp;
use bench::report;
use downscaler::Scenario;
use simgpu::Calibration;

fn usage() -> ! {
    eprintln!(
        "usage: reproduce [fig3|fig8|fig9|fig11|fig12|table1|table2|cuda-src|summary|ablations|streams|memory|fusion|fusion-parity|planopt|serve|scenarios|tune|sweep|emit-artifacts|all] \
         [--scenario hd1080|cif|tiny] [--json <path>]"
    );
    std::process::exit(2);
}

fn main() {
    let mut command = "all".to_string();
    let mut scenario = Scenario::hd1080();
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scenario" => {
                let v = args.next().unwrap_or_else(|| usage());
                scenario = match v.as_str() {
                    "hd1080" => Scenario::hd1080(),
                    "cif" => Scenario::cif(),
                    "tiny" => Scenario::tiny(),
                    _ => usage(),
                };
            }
            "--json" => json_path = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            cmd if !cmd.starts_with('-') => {
                const KNOWN: [&str; 21] = [
                    "all",
                    "fig3",
                    "fig8",
                    "fig9",
                    "fig11",
                    "fig12",
                    "table1",
                    "table2",
                    "cuda-src",
                    "summary",
                    "ablations",
                    "streams",
                    "memory",
                    "fusion",
                    "fusion-parity",
                    "planopt",
                    "serve",
                    "scenarios",
                    "tune",
                    "sweep",
                    "emit-artifacts",
                ];
                if !KNOWN.contains(&cmd) {
                    eprintln!("unknown command '{cmd}'");
                    usage();
                }
                command = cmd.to_string();
            }
            _ => usage(),
        }
    }

    let run = |name: &str| command == "all" || command == name;
    let s = &scenario;
    println!(
        "== Reproduction of 'Harnessing the Power of GPUs without Losing Abstractions' ==\n\
         scenario: {} ({}x{}x{} pixels, {} frames)\n",
        s.name, s.channels, s.rows, s.cols, s.frames
    );

    if run("fig3") {
        match exp::figure3_dot(s) {
            Ok(t) => println!("--- Figure 3 (downscaler overview, Graphviz DOT) ---\n{t}"),
            Err(e) => eprintln!("fig3 failed: {e}"),
        }
    }
    if run("fig8") {
        match exp::figure8_text(s) {
            Ok(t) => println!("--- Figure 8 (folded WITH-loop) ---\n{t}"),
            Err(e) => eprintln!("fig8 failed: {e}"),
        }
    }
    if run("fig11") {
        match exp::figure11_text(s) {
            Ok(t) => println!("--- Figure 11 (generated OpenCL tiler kernel) ---\n{t}"),
            Err(e) => eprintln!("fig11 failed: {e}"),
        }
    }
    if run("cuda-src") {
        match exp::cuda_source_text(s) {
            Ok(t) => println!("--- Generated CUDA source (SaC route) ---\n{t}"),
            Err(e) => eprintln!("cuda-src failed: {e}"),
        }
    }
    if run("fig9") {
        match exp::figure9(s) {
            Ok(rows) => println!("{}", report::render_fig9(&rows)),
            Err(e) => eprintln!("fig9 failed: {e}"),
        }
    }
    if run("table1") {
        match exp::table1(s) {
            Ok(t) => println!(
                "{}",
                report::render_table(
                    "Table I: kernel execution and data transfer times (GASPARD2)",
                    &t
                )
            ),
            Err(e) => eprintln!("table1 failed: {e}"),
        }
    }
    if run("table2") {
        match exp::table2(s) {
            Ok(t) => println!(
                "{}",
                report::render_table(
                    "Table II: kernel execution and data transfer times (SAC)",
                    &t
                )
            ),
            Err(e) => eprintln!("table2 failed: {e}"),
        }
    }
    if run("fig12") {
        match exp::figure12(s) {
            Ok(f) => println!("{}", report::render_fig12(&f)),
            Err(e) => eprintln!("fig12 failed: {e}"),
        }
    }
    if run("summary") || command == "all" {
        summary(s);
    }
    if run("ablations") {
        ablations(s);
    }
    if run("streams") {
        match exp::streams_ablation(s, &[1, 2, 4]) {
            Ok(rows) => {
                println!("{}", report::render_streams(&rows));
                if command == "streams" {
                    if let Some(path) = &json_path {
                        write_json(path, &bench::json::streams_json(s, &rows));
                    }
                }
            }
            Err(e) => eprintln!("streams ablation failed: {e}"),
        }
    }
    if run("memory") {
        match (exp::memory_ablation(s), exp::oom_degradation_demo(s)) {
            (Ok(rows), Ok(d)) => {
                println!("{}", report::render_memory(&rows));
                println!("{}", report::render_degradation(&d));
                if command == "memory" {
                    if let Some(path) = &json_path {
                        write_json(path, &bench::json::memory_json(s, &rows, &d));
                    }
                }
            }
            (Err(e), _) => eprintln!("memory ablation failed: {e}"),
            (_, Err(e)) => eprintln!("degradation demo failed: {e}"),
        }
    }
    if run("fusion") {
        match exp::fusion_ablation(s) {
            Ok(a) => {
                println!("{}", report::render_fusion(&a));
                if command == "fusion" {
                    if let Some(path) = &json_path {
                        write_json(path, &bench::json::fusion_json(s, &a));
                    }
                }
            }
            Err(e) => eprintln!("fusion ablation failed: {e}"),
        }
    }
    if run("fusion-parity") {
        match exp::fusion_parity_ablation(s) {
            Ok(a) => {
                println!("{}", report::render_fusion_parity(&a));
                if command == "fusion-parity" {
                    if let Some(path) = &json_path {
                        write_json(path, &bench::json::fusion_parity_json(s, &a));
                    }
                }
            }
            Err(e) => eprintln!("fusion-parity ablation failed: {e}"),
        }
    }
    if run("planopt") {
        match exp::planopt_ablation(s) {
            Ok(a) => {
                println!("{}", report::render_planopt(&a));
                if command == "planopt" {
                    if let Some(path) = &json_path {
                        write_json(path, &bench::json::planopt_json(s, &a));
                    }
                }
            }
            Err(e) => eprintln!("planopt ablation failed: {e}"),
        }
    }
    if run("serve") {
        match exp::serve_ablation(s) {
            Ok(a) => {
                println!("{}", report::render_serve(&a));
                if command == "serve" {
                    if let Some(path) = &json_path {
                        write_json(path, &bench::json::serve_json(s, &a));
                    }
                }
            }
            Err(e) => eprintln!("serve ablation failed: {e}"),
        }
    }
    if run("scenarios") {
        match exp::scenarios_ablation(s) {
            Ok(a) => {
                println!("{}", report::render_scenarios(&a));
                if command == "scenarios" {
                    if let Some(path) = &json_path {
                        write_json(path, &bench::json::scenarios_json(s, &a));
                    }
                }
            }
            Err(e) => eprintln!("scenarios ablation failed: {e}"),
        }
    }
    if run("tune") {
        match bench::tune::tune_ablation(s) {
            Ok(a) => {
                println!("{}", report::render_tune(&a));
                if command == "tune" {
                    if let Some(path) = &json_path {
                        write_json(path, &bench::json::tune_json(s, &a));
                    }
                }
            }
            Err(e) => eprintln!("tune ablation failed: {e}"),
        }
    }
    if run("sweep") {
        sweep();
    }
    if command == "emit-artifacts" {
        emit_artifacts(s);
    }
}

fn write_json(path: &str, record: &str) {
    match std::fs::write(path, record) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("writing {path} failed: {e}"),
    }
}

/// Write the generated source trees (what GASPARD2's "execute the OpenCL
/// chain" button produces: `.cpp`, `.cl`, makefile — and the SaC analogues)
/// under `generated/`.
fn emit_artifacts(s: &Scenario) {
    use downscaler::pipelines::{build_gaspard, build_sac};
    use downscaler::sac_src::{Part, Variant};
    let dir = std::path::Path::new("generated");
    let write = |rel: &str, content: &str| {
        let path = dir.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("mkdir");
        }
        std::fs::write(&path, content).expect("write artefact");
        println!("wrote {}", path.display());
    };

    match build_sac(s, Variant::NonGeneric, Part::Full, &Default::default()) {
        Ok(route) => {
            write("sac/downscaler.sac", &route.src);
            write("sac/folded.sac", &route.flat.to_string());
            write("sac/kernels.cu", &route.cuda.emit_cuda_source());
            write("sac/main.cu", &sac_cuda::emit::emit_host_source(&route.cuda));
            write("sac/Makefile", &sac_cuda::emit::emit_makefile("downscaler"));
        }
        Err(e) => eprintln!("sac artefacts failed: {e}"),
    }
    match build_gaspard(s) {
        Ok(route) => {
            write("gaspard/kernels.cl", &route.opencl.emit_opencl_source());
            write("gaspard/main.cpp", &gaspard::emit::emit_host_source(&route.opencl));
            write("gaspard/Makefile", &gaspard::emit::emit_makefile("downscaler"));
            write("gaspard/openmp.c", &gaspard::openmp::emit_openmp_source(&route.scheduled));
            if let Ok(g) = gaspard::transform::to_arrayol(&route.scheduled) {
                write("gaspard/downscaler.dot", &arrayol::dot::to_dot(&g, "Downscaler"));
            }
        }
        Err(e) => eprintln!("gaspard artefacts failed: {e}"),
    }
}

fn sweep() {
    println!("--- Frame-size sweep: sequential vs GPU per frame (non-generic SaC) ---");
    println!("{:>11} {:>12} {:>14} {:>16}", "frame", "seq (us)", "GPU kern (us)", "GPU+xfers (us)");
    match exp::sweep(&[1, 2, 4, 8, 15, 30, 60, 120]) {
        Ok(rows) => {
            let mut crossed_kern = None;
            let mut crossed_total = None;
            for r in &rows {
                println!(
                    "{:>5}x{:<5} {:>12.0} {:>14.0} {:>16.0}",
                    r.rows, r.cols, r.seq_us, r.gpu_kernels_us, r.gpu_total_us
                );
                if crossed_kern.is_none() && r.gpu_kernels_us < r.seq_us {
                    crossed_kern = Some((r.rows, r.cols));
                }
                if crossed_total.is_none() && r.gpu_total_us < r.seq_us {
                    crossed_total = Some((r.rows, r.cols));
                }
            }
            match crossed_kern {
                Some((r, c)) => println!("\nGPU kernels overtake sequential at ~{r}x{c}"),
                None => println!("\nGPU kernels never overtake in this range"),
            }
            match crossed_total {
                Some((r, c)) => {
                    println!("GPU including transfers overtakes at ~{r}x{c}")
                }
                None => println!("GPU including transfers never overtakes in this range"),
            }
            println!();
        }
        Err(e) => eprintln!("sweep failed: {e}"),
    }
}

fn summary(s: &Scenario) {
    println!("--- Summary (paper §VIII / §IX claims vs this reproduction) ---");
    match exp::kernel_counts(s) {
        Ok(k) => {
            println!(
                "kernels per frame:    Gaspard2 {}+{} (paper: 3+3)   SaC {}+{} (paper: 5+7)",
                k.gaspard.0, k.gaspard.1, k.sac.0, k.sac.1
            );
        }
        Err(e) => eprintln!("kernel counts failed: {e}"),
    }
    let (t1, t2, fig9) = match (exp::table1(s), exp::table2(s), exp::figure9(s)) {
        (Ok(a), Ok(b), Ok(c)) => (a, b, c),
        _ => {
            eprintln!("summary incomplete");
            return;
        }
    };
    let transfers1 = (t1.rows[2].percent + t1.rows[3].percent).round();
    let transfers2 = (t2.rows[2].percent + t2.rows[3].percent).round();
    println!(
        "transfer share:       Gaspard2 {transfers1}% (paper: 56%)   SaC {transfers2}% (paper: 48%)"
    );
    println!(
        "totals:               Gaspard2 {:.2}s (paper: 2.86s)   SaC {:.2}s (paper: 3.43s)   ratio {:.2} (paper: 0.83)",
        t1.total_s,
        t2.total_s,
        t1.total_s / t2.total_s
    );
    let by = |label: &str| fig9.iter().find(|r| r.config == label).unwrap();
    let seq = by("SAC-Seq Non-Generic");
    let cng = by("SAC-CUDA Non-Generic");
    let cg = by("SAC-CUDA Generic");
    println!(
        "generic/non-generic:  H {:.1}x (paper: 4.5x)   V {:.1}x (paper: 3x)",
        cg.horizontal_s / cng.horizontal_s,
        cg.vertical_s / cng.vertical_s
    );
    println!(
        "GPU vs sequential:    H {:.1}x   V {:.1}x (paper: up to 11x)",
        seq.horizontal_s / cng.horizontal_s,
        seq.vertical_s / cng.vertical_s
    );
    println!();
}

fn ablations(s: &Scenario) {
    println!("--- Ablation: cost-model sensitivity (SaC total vs Gaspard2 total, s) ---");
    let base = Calibration::gtx480();
    let variants: Vec<(&str, Calibration)> = vec![
        ("baseline", base.clone()),
        (
            "launch x4 (SaC pays 12 launches/frame)",
            Calibration { kernel_launch_us: base.kernel_launch_us * 4.0, ..base.clone() },
        ),
        ("launch = 0", Calibration { kernel_launch_us: 0.0, ..base.clone() }),
        (
            "free L1 (cross-kernel reuse irrelevant)",
            Calibration { l1_access_ns: 0.0, ..base.clone() },
        ),
        (
            "L1 = DRAM (no intra-kernel reuse)",
            Calibration { l1_access_ns: base.dram_access_ns, ..base.clone() },
        ),
        (
            "2x PCIe bandwidth",
            Calibration {
                h2d_bytes_per_us: base.h2d_bytes_per_us * 2.0,
                d2h_bytes_per_us: base.d2h_bytes_per_us * 2.0,
                ..base.clone()
            },
        ),
    ];
    println!("{:<42} {:>10} {:>12} {:>8}", "calibration", "SaC", "Gaspard2", "ratio");
    for (label, calib) in variants {
        match exp::totals_with_calibration(s, calib) {
            Ok((sac, gaspard)) => {
                println!("{label:<42} {sac:>9.2}s {gaspard:>11.2}s {:>8.3}", gaspard / sac)
            }
            Err(e) => eprintln!("{label}: {e}"),
        }
    }
    println!();
    println!("--- Ablation: WITH-loop folding off (kernel counts / launches per frame) ---");
    for (label, cfg) in [
        ("WLF on (paper)", sac_lang::opt::OptConfig::default()),
        ("WLF off", sac_lang::opt::OptConfig { with_loop_folding: false, resolve_modulo: true }),
    ] {
        match downscaler::pipelines::build_sac(
            s,
            downscaler::sac_src::Variant::NonGeneric,
            downscaler::sac_src::Part::Full,
            &cfg,
        ) {
            Ok(route) => println!(
                "{label:<18} kernels/frame: {:>3}   host steps: {}",
                route.cuda.launches_per_run(),
                route.cuda.host_steps_per_run()
            ),
            Err(e) => eprintln!("{label}: {e}"),
        }
    }
    println!();
}
