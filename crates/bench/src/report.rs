//! Text rendering of experiment results (ASCII bars and the paper's tables).

use crate::experiments::{Fig12, Fig9Row, ProfileTable, StreamsRow};

/// Render Figure 9 as labelled ASCII bars.
pub fn render_fig9(rows: &[Fig9Row]) -> String {
    let max =
        rows.iter().flat_map(|r| [r.horizontal_s, r.vertical_s]).fold(0.0f64, f64::max).max(1e-12);
    let bar = |v: f64| {
        let n = ((v / max) * 40.0).round() as usize;
        "#".repeat(n.max(1))
    };
    let mut out = String::from(
        "Figure 9: Execution time of horizontal and vertical filters\n\
         (simulated; whole run)\n\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<22} H {:>8.3}s |{}\n{:<22} V {:>8.3}s |{}\n",
            r.config,
            r.horizontal_s,
            bar(r.horizontal_s),
            "",
            r.vertical_s,
            bar(r.vertical_s)
        ));
    }
    out
}

/// Render a profile table in the paper's Table I/II format.
pub fn render_table(title: &str, t: &ProfileTable) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<26} {:>8} {:>16} {:>13}\n",
        "Operation", "#calls", "GPU time(usec)", "GPU time(%)"
    ));
    for r in &t.rows {
        out.push_str(&format!(
            "{:<26} {:>8} {:>16.0} {:>13.2}\n",
            r.label, r.calls, r.time_us, r.percent
        ));
    }
    let total = if t.total_s >= 0.01 {
        format!("{:.2}s", t.total_s)
    } else {
        format!("{:.3}ms", t.total_s * 1e3)
    };
    out.push_str(&format!("{:<26} {:>8} {:>16} {:>13.2}\n", "Total", "-", total, 100.0));
    out
}

/// Render the stream-count ablation (async frame pipelining).
pub fn render_streams(rows: &[StreamsRow]) -> String {
    let mut out = String::from(
        "Ablation: async streams / double-buffered frame pipelining\n\
         (whole run; streams=1 is the paper's serialized runtime)\n\n",
    );
    out.push_str(&format!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "streams", "SaC", "speedup", "overlap", "Gaspard2", "speedup", "overlap"
    ));
    let base = rows.first();
    for r in rows {
        let (sac0, gasp0) = base.map(|b| (b.sac_s, b.gaspard_s)).unwrap_or((r.sac_s, r.gaspard_s));
        out.push_str(&format!(
            "{:>8} {:>11.3}s {:>11.2}x {:>11.1}% {:>11.3}s {:>11.2}x {:>11.1}%\n",
            r.streams,
            r.sac_s,
            sac0 / r.sac_s,
            r.sac_overlap_pct,
            r.gaspard_s,
            gasp0 / r.gaspard_s,
            r.gaspard_overlap_pct,
        ));
    }
    out
}

/// Render Figure 12's grouped comparison.
pub fn render_fig12(f: &Fig12) -> String {
    let groups = [
        ("Horizontal Filter", f.horizontal),
        ("Vertical Filter", f.vertical),
        ("Host2Device", f.h2d),
        ("Device2Host", f.d2h),
    ];
    let max = groups.iter().flat_map(|(_, (a, b))| [*a, *b]).fold(0.0f64, f64::max).max(1e-12);
    let bar = |v: f64| "#".repeat(((v / max) * 36.0).round() as usize);
    let mut out = String::from("Figure 12: Kernel execution and data transfer time\n\n");
    for (label, (sac, gaspard)) in groups {
        out.push_str(&format!(
            "{label:<18} SAC      {sac:>8.3}s |{}\n{:<18} Gaspard2 {gaspard:>8.3}s |{}\n",
            bar(sac),
            "",
            bar(gaspard)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgpu::profiler::TableRow;

    #[test]
    fn fig9_renders_bars() {
        let rows = vec![
            Fig9Row { config: "A".into(), horizontal_s: 2.0, vertical_s: 1.0 },
            Fig9Row { config: "B".into(), horizontal_s: 0.5, vertical_s: 0.25 },
        ];
        let text = render_fig9(&rows);
        assert!(text.contains('A'));
        assert!(text.contains("2.000s"));
        // Longer bar for the bigger value.
        let lines: Vec<&str> = text.lines().collect();
        let a_h = lines.iter().find(|l| l.starts_with('A')).unwrap();
        let b_h = lines.iter().find(|l| l.starts_with('B')).unwrap();
        assert!(a_h.matches('#').count() > b_h.matches('#').count());
    }

    #[test]
    fn table_renders_paper_columns() {
        let t = ProfileTable {
            rows: vec![TableRow {
                label: "H. Filter (3 kernels)".into(),
                calls: 300,
                time_us: 844185.0,
                percent: 29.51,
            }],
            total_s: 2.86,
        };
        let text = render_table("Table I", &t);
        assert!(text.contains("H. Filter (3 kernels)"));
        assert!(text.contains("844185"));
        assert!(text.contains("2.86s"));
    }

    #[test]
    fn fig12_renders_groups() {
        let f = Fig12 {
            horizontal: (1.0, 0.8),
            vertical: (0.7, 0.4),
            h2d: (1.4, 1.4),
            d2h: (0.2, 0.2),
        };
        let text = render_fig12(&f);
        assert!(text.contains("Horizontal Filter"));
        assert!(text.contains("Gaspard2"));
    }
}
